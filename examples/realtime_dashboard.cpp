// Real-time inventory dashboard: combines the two opt-in §3.2 features —
// optimistic ACID transactions (atomic stock transfers between
// warehouses) and websocket-style change streams (a dashboard that keeps
// a low-stock query result current without polling).
//
// Build & run:  ./build/examples/realtime_dashboard

#include <cstdio>

#include "client/client.h"
#include "client/transaction.h"
#include "common/clock.h"
#include "core/server.h"
#include "core/streams.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

int main() {
  SimulatedClock clock(0);
  db::Database database(&clock);
  core::QuaestorServer server(&clock, &database);
  webcache::InvalidationCache cdn(&clock);
  server.AddPurgeTarget([&](const std::string& key) { cdn.Purge(key); });

  // Schema: every warehouse row needs a non-negative stock count.
  db::TableSchema schema;
  schema.Field("sku", db::FieldType::kString, /*required=*/true)
      .Field("warehouse", db::FieldType::kString, /*required=*/true)
      .Field("stock", db::FieldType::kInt, /*required=*/true);
  server.schemas().SetSchema("inventory", std::move(schema));

  // Seed inventory.
  webcache::ExpirationCache ops_cache(&clock);
  client::QuaestorClient ops(&clock, &server, &ops_cache, &cdn);
  ops.Connect();
  ops.Insert("inventory", "w1-widget",
             db::Value::FromJson(
                 R"({"sku":"widget","warehouse":"w1","stock":40})")
                 .value());
  ops.Insert("inventory", "w2-widget",
             db::Value::FromJson(
                 R"({"sku":"widget","warehouse":"w2","stock":3})")
                 .value());

  // The dashboard subscribes to "stock below 10" — kept fresh by
  // InvaliDB, no polling.
  core::ChangeStreamHub hub(&server);
  db::Query low_stock =
      db::Query::ParseJson("inventory", R"({"stock":{"$lt":10}})").value();
  std::vector<db::Document> initial;
  auto sub = hub.Subscribe(
      low_stock,
      [](const core::StreamEvent& ev) {
        std::printf("  [dashboard] %s: %s%s\n",
                    std::string(invalidb::NotificationTypeName(ev.type))
                        .c_str(),
                    ev.record_id.c_str(),
                    ev.has_body
                        ? (" (stock=" +
                           std::to_string(ev.body.Find("stock")->as_int()) +
                           ")")
                              .c_str()
                        : "");
      },
      &initial);
  if (!sub.ok()) {
    std::printf("subscription failed: %s\n", sub.status().ToString().c_str());
    return 1;
  }
  std::printf("dashboard online: %zu low-stock item(s) initially\n",
              initial.size());

  // Atomic rebalance: move 15 widgets from w1 to w2 in one transaction.
  std::printf("\n== transferring 15 widgets w1 -> w2 (transaction) ==\n");
  clock.Advance(SecondsToMicros(1.0));
  {
    client::ClientTransaction tx(&ops);
    auto from = tx.Read("inventory", "w1-widget");
    auto to = tx.Read("inventory", "w2-widget");
    if (from.status.ok() && to.status.ok()) {
      db::Update debit;
      debit.Inc("stock", db::Value(-15));
      db::Update credit;
      credit.Inc("stock", db::Value(15));
      tx.Update("inventory", "w1-widget", debit);
      tx.Update("inventory", "w2-widget", credit);
    }
    auto commit = tx.Commit();
    std::printf("commit: %s (%zu writes, read set %zu)\n",
                commit.ok() ? "OK" : commit.status().ToString().c_str(),
                tx.write_count(), tx.read_set_size());
  }
  // w2 left the low-stock set (3+15=18); w1 dropped to 25 (still fine).

  // A conflicting transaction aborts instead of losing an update.
  std::printf("\n== conflicting transactions ==\n");
  clock.Advance(SecondsToMicros(1.0));
  {
    client::ClientTransaction slow(&ops);
    (void)slow.Read("inventory", "w1-widget");

    // A concurrent sale commits first.
    db::Update sale;
    sale.Inc("stock", db::Value(-20));
    ops.Update("inventory", "w1-widget", sale);  // 25 -> 5: low stock!

    db::Update stale_write;
    stale_write.Inc("stock", db::Value(-1));
    slow.Update("inventory", "w1-widget", stale_write);
    auto commit = slow.Commit();
    std::printf("stale transaction: %s\n", commit.status().ToString().c_str());
  }

  const auto w1 = database.Get("inventory", "w1-widget");
  std::printf("\nfinal stock w1=%lld (no lost updates), dashboard saw every "
              "threshold crossing above\n",
              static_cast<long long>(w1->body.Find("stock")->as_int()));
  hub.Unsubscribe(sub.value());
  return 0;
}
