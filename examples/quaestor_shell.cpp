// quaestor_shell: an interactive REPL over a full in-process deployment —
// poke at the system the way you would with mongosh/redis-cli.
//
//   ./build/examples/quaestor_shell            # interactive
//   echo "..." | ./build/examples/quaestor_shell   # scripted
//
// Commands:
//   insert <table> <id> <json>     insert a document
//   update <table> <id> <json>     apply a MongoDB-style update document
//   delete <table> <id>            delete a document
//   get <table> <id>               read through the cache hierarchy
//   query <table> <filter-json>    run a query through the caches
//   subscribe <table> <filter>     print change-stream events as they occur
//   bloom                          show EBF stats and staleness of a key
//   stale <key>                    is <key> flagged in the EBF?
//   refresh                        refresh this session's EBF
//   advance <seconds>              advance the simulated clock
//   stats                          server/cache counters
//   help | quit

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "core/streams.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

namespace {

const char* Where(webcache::ServedBy s) {
  switch (s) {
    case webcache::ServedBy::kClientCache:
      return "browser-cache";
    case webcache::ServedBy::kExpirationCache:
      return "proxy";
    case webcache::ServedBy::kInvalidationCache:
      return "cdn";
    case webcache::ServedBy::kOrigin:
      return "origin";
  }
  return "?";
}

void PrintHelp() {
  std::printf(
      "commands: insert|update|delete|get|query|subscribe|bloom|stale|"
      "refresh|advance|stats|help|quit\n");
}

}  // namespace

int main() {
  SimulatedClock clock(0);
  db::Database database(&clock);
  core::QuaestorServer server(&clock, &database);
  webcache::InvalidationCache cdn(&clock);
  server.AddPurgeTarget([&](const std::string& key) { cdn.Purge(key); });
  core::ChangeStreamHub hub(&server);
  webcache::ExpirationCache browser(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = SecondsToMicros(5.0);
  client::QuaestorClient client(&clock, &server, &browser, &cdn, copts);
  client.Connect();

  std::printf("quaestor shell — type 'help' for commands\n");
  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "insert" || cmd == "update") {
      std::string table, id, json;
      in >> table >> id;
      std::getline(in, json);
      auto body = db::Value::FromJson(json);
      if (!body.ok()) {
        std::printf("bad json: %s\n", body.status().ToString().c_str());
        continue;
      }
      if (cmd == "insert") {
        auto r = client.Insert(table, id, std::move(body).value());
        std::printf("%s\n", r.ok() ? ("v" + std::to_string(r->version)).c_str()
                                   : r.status().ToString().c_str());
      } else {
        auto update = db::Update::Parse(body.value());
        if (!update.ok()) {
          std::printf("bad update: %s\n",
                      update.status().ToString().c_str());
          continue;
        }
        auto r = client.Update(table, id, update.value());
        std::printf("%s\n", r.ok() ? ("v" + std::to_string(r->version)).c_str()
                                   : r.status().ToString().c_str());
      }
    } else if (cmd == "delete") {
      std::string table, id;
      in >> table >> id;
      auto r = client.Delete(table, id);
      std::printf("%s\n", r.ok() ? "deleted" : r.status().ToString().c_str());
    } else if (cmd == "get") {
      std::string table, id;
      in >> table >> id;
      auto r = client.Read(table, id);
      if (!r.status.ok()) {
        std::printf("%s\n", r.status.ToString().c_str());
      } else {
        std::printf("%s  [v%llu via %s, %.1f ms%s]\n",
                    r.doc.ToJson().c_str(),
                    static_cast<unsigned long long>(r.version),
                    Where(r.outcome.served_by), r.outcome.latency_ms,
                    r.outcome.revalidated ? ", revalidated" : "");
      }
    } else if (cmd == "query") {
      std::string table, json;
      in >> table;
      std::getline(in, json);
      auto q = db::Query::ParseJson(table, json);
      if (!q.ok()) {
        std::printf("bad query: %s\n", q.status().ToString().c_str());
        continue;
      }
      auto r = client.ExecuteQuery(q.value());
      if (!r.status.ok()) {
        std::printf("%s\n", r.status.ToString().c_str());
        continue;
      }
      std::printf("%zu result(s) via %s, %.1f ms%s\n", r.ids.size(),
                  Where(r.outcome.served_by), r.outcome.latency_ms,
                  r.outcome.revalidated ? ", revalidated" : "");
      for (size_t i = 0; i < r.ids.size(); ++i) {
        std::printf("  %s %s\n", r.ids[i].c_str(),
                    i < r.docs.size() ? r.docs[i].ToJson().c_str() : "");
      }
    } else if (cmd == "subscribe") {
      std::string table, json;
      in >> table;
      std::getline(in, json);
      auto q = db::Query::ParseJson(table, json);
      if (!q.ok()) {
        std::printf("bad query: %s\n", q.status().ToString().c_str());
        continue;
      }
      std::vector<db::Document> initial;
      auto id = hub.Subscribe(
          q.value(),
          [](const core::StreamEvent& ev) {
            std::printf("  ~ %s %s%s\n",
                        std::string(
                            invalidb::NotificationTypeName(ev.type))
                            .c_str(),
                        ev.record_id.c_str(),
                        ev.has_body ? (" " + ev.body.ToJson()).c_str() : "");
          },
          &initial);
      if (!id.ok()) {
        std::printf("%s\n", id.status().ToString().c_str());
      } else {
        std::printf("subscribed (#%llu), %zu initial result(s)\n",
                    static_cast<unsigned long long>(id.value()),
                    initial.size());
      }
    } else if (cmd == "bloom") {
      auto snap = server.BloomSnapshot();
      std::printf("EBF: %zu bits, fill %.4f, est. fpr %.4f, %zu stale keys\n",
                  snap.params().num_bits, snap.FillRatio(),
                  snap.EstimatedFpr(), server.ebf().StaleCount());
    } else if (cmd == "stale") {
      std::string key;
      in >> key;
      std::printf("%s\n", server.ebf().IsStale(key) ? "stale" : "fresh");
    } else if (cmd == "refresh") {
      client.RefreshEbf();
      std::printf("EBF refreshed\n");
    } else if (cmd == "advance") {
      double seconds = 0;
      in >> seconds;
      clock.Advance(SecondsToMicros(seconds));
      std::printf("t = %.1f s\n", MicrosToSeconds(clock.NowMicros()));
    } else if (cmd == "stats") {
      const core::ServerStats s = server.stats();
      const webcache::CacheStats b = browser.stats();
      const webcache::CacheStats c = cdn.stats();
      std::printf("server: %llu reads, %llu queries, %llu writes, "
                  "%llu invalidations\n",
                  static_cast<unsigned long long>(s.record_reads),
                  static_cast<unsigned long long>(s.query_reads),
                  static_cast<unsigned long long>(s.writes),
                  static_cast<unsigned long long>(s.query_invalidations));
      std::printf("browser: %.0f%% hit rate (%llu entries)   "
                  "cdn: %.0f%% hit rate (%llu purges)\n",
                  b.HitRate() * 100,
                  static_cast<unsigned long long>(browser.Size()),
                  c.HitRate() * 100,
                  static_cast<unsigned long long>(c.purges));
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
