// Consistency explorer: demonstrates every consistency level of Figure 4
// — ∆-atomicity (default), read-your-writes, monotonic reads, causal
// consistency, and strong consistency — with two concurrent sessions.
//
// Build & run:  ./build/examples/consistency_explorer

#include <cstdio>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

namespace {

struct Stack {
  explicit Stack(SimulatedClock* clock)
      : database(clock), server(clock, &database), cdn(clock) {
    server.AddPurgeTarget([this](const std::string& key) { cdn.Purge(key); });
  }

  client::QuaestorClient MakeSession(
      SimulatedClock* clock, webcache::ExpirationCache* cache,
      client::ClientOptions copts = client::ClientOptions()) {
    client::QuaestorClient c(clock, &server, cache, &cdn, copts);
    c.Connect();
    return c;
  }

  db::Database database;
  core::QuaestorServer server;
  webcache::InvalidationCache cdn;
};

void DeltaAtomicity() {
  std::printf("== ∆-atomicity: staleness bounded by the EBF age ==\n");
  SimulatedClock clock(0);
  Stack stack(&clock);
  webcache::ExpirationCache ca(&clock);
  webcache::ExpirationCache cb(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = SecondsToMicros(3.0);  // ∆ = 3 s
  auto alice = stack.MakeSession(&clock, &ca, copts);
  auto bob = stack.MakeSession(&clock, &cb, copts);

  alice.Insert("kv", "x", db::Value::FromJson(R"({"v":1})").value());
  (void)bob.Read("kv", "x");  // bob caches v1

  clock.Advance(SecondsToMicros(1.0));
  db::Update u;
  u.Set("v", db::Value(2));
  alice.Update("kv", "x", u);

  auto stale = bob.Read("kv", "x");
  std::printf("  1.0 s after the write bob reads v=%lld "
              "(stale, allowed: EBF is %lld s old, ∆=3)\n",
              static_cast<long long>(stale.doc.Find("v")->as_int()),
              static_cast<long long>(bob.EbfAge() / kMicrosPerSecond));

  clock.Advance(SecondsToMicros(2.5));  // ∆ exceeded
  auto fresh = bob.Read("kv", "x");
  std::printf("  after ∆ elapses bob reads v=%lld (EBF refreshed: %s)\n\n",
              static_cast<long long>(fresh.doc.Find("v")->as_int()),
              fresh.outcome.ebf_refreshed ? "yes" : "no");
}

void ReadYourWrites() {
  std::printf("== read-your-writes: a session sees its own updates ==\n");
  SimulatedClock clock(0);
  Stack stack(&clock);
  webcache::ExpirationCache cache(&clock);
  auto session = stack.MakeSession(&clock, &cache);

  session.Insert("kv", "y", db::Value::FromJson(R"({"v":1})").value());
  db::Update u;
  u.Set("v", db::Value(99));
  session.Update("kv", "y", u);
  auto r = session.Read("kv", "y");
  std::printf("  immediately after writing v=99 the session reads v=%lld "
              "from its %s\n\n",
              static_cast<long long>(r.doc.Find("v")->as_int()),
              r.outcome.served_by == webcache::ServedBy::kClientCache
                  ? "own cache"
                  : "origin");
}

void MonotonicReads() {
  std::printf("== monotonic reads: versions never go backwards ==\n");
  SimulatedClock clock(0);
  Stack stack(&clock);
  webcache::ExpirationCache cache(&clock);
  auto session = stack.MakeSession(&clock, &cache);

  session.Insert("kv", "z", db::Value::FromJson(R"({"v":1})").value());
  db::Update u;
  u.Set("v", db::Value(2));
  session.Update("kv", "z", u);  // session has seen version 2

  // A misbehaving cache serves the OLD version (e.g. a different edge).
  cache.Put("kv/z", db::Value::FromJson(R"({"v":1})").value().ToJson(),
            /*etag=*/1, SecondsToMicros(60.0));
  auto r = session.Read("kv", "z");
  std::printf("  poisoned cache held v=1; the SDK detected the regression "
              "and revalidated: v=%lld (revalidated=%s)\n\n",
              static_cast<long long>(r.doc.Find("v")->as_int()),
              r.outcome.revalidated ? "yes" : "no");
}

void CausalConsistency() {
  std::printf("== causal (opt-in): reads after fresh data revalidate ==\n");
  SimulatedClock clock(0);
  Stack stack(&clock);
  webcache::ExpirationCache cache(&clock);
  client::ClientOptions copts;
  copts.consistency = client::ConsistencyLevel::kCausal;
  copts.ebf_refresh_interval = SecondsToMicros(60.0);
  auto session = stack.MakeSession(&clock, &cache, copts);

  stack.database.Insert("kv", "a", db::Value::FromJson(R"({"v":1})").value());
  stack.database.Insert("kv", "b", db::Value::FromJson(R"({"v":1})").value());

  auto r1 = session.Read("kv", "a");  // origin: newer than the EBF
  auto r2 = session.Read("kv", "b");  // must revalidate to stay causal
  std::printf("  read a via origin; subsequent read of b revalidated=%s "
              "(causal barrier until next EBF refresh)\n\n",
              r2.outcome.revalidated ? "yes" : "no");
  (void)r1;
}

void StrongConsistency() {
  std::printf("== strong (opt-in): every read revalidates ==\n");
  SimulatedClock clock(0);
  Stack stack(&clock);
  webcache::ExpirationCache ca(&clock);
  webcache::ExpirationCache cb(&clock);
  client::ClientOptions strong;
  strong.consistency = client::ConsistencyLevel::kStrong;
  auto reader = stack.MakeSession(&clock, &ca, strong);
  auto writer = stack.MakeSession(&clock, &cb);

  writer.Insert("kv", "s", db::Value::FromJson(R"({"v":1})").value());
  (void)reader.Read("kv", "s");
  db::Update u;
  u.Set("v", db::Value(2));
  writer.Update("kv", "s", u);
  auto r = reader.Read("kv", "s");
  std::printf("  immediately after a foreign write the reader sees v=%lld "
              "(served by origin, latency %.0f ms — the price of "
              "linearizability)\n",
              static_cast<long long>(r.doc.Find("v")->as_int()),
              r.outcome.latency_ms);
}

}  // namespace

int main() {
  DeltaAtomicity();
  ReadYourWrites();
  MonotonicReads();
  CausalConsistency();
  StrongConsistency();
  return 0;
}
