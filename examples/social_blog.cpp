// The paper's running example (§1, Figure 5, Figure 7): a social blogging
// application where clients query posts by tag:
//
//   SELECT * FROM posts WHERE tags CONTAINS 'example'
//
// This example walks through the add / change / remove notification
// lifecycle as a post is updated, and shows two browser sessions staying
// coherent through the Expiring Bloom Filter and CDN purges.
//
// Build & run:  ./build/examples/social_blog

#include <cstdio>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

int main() {
  SimulatedClock clock(0);
  db::Database database(&clock);
  core::QuaestorServer server(&clock, &database);
  webcache::InvalidationCache cdn(&clock);
  server.AddPurgeTarget([&](const std::string& key) { cdn.Purge(key); });

  // Print every InvaliDB notification — the Figure 5 lifecycle.
  server.AddNotificationTap([](const invalidb::Notification& n) {
    std::printf("  [InvaliDB] %s notification for %s (query %s)\n",
                std::string(invalidb::NotificationTypeName(n.type)).c_str(),
                n.record_id.c_str(), n.query_key.c_str());
  });

  // Two browser sessions: an author and a reader.
  webcache::ExpirationCache author_cache(&clock);
  webcache::ExpirationCache reader_cache(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = SecondsToMicros(2.0);
  client::QuaestorClient author(&clock, &server, &author_cache, &cdn, copts);
  client::QuaestorClient reader(&clock, &server, &reader_cache, &cdn, copts);
  author.Connect();
  reader.Connect();

  // A fresh, untagged post.
  std::printf("== author creates an untagged post ==\n");
  author.Insert(
      "posts", "p1",
      db::Value::FromJson(R"({"title":"First Post","tags":[]})").value());

  // The reader subscribes to the 'example' tag via a cached query.
  db::Query by_tag =
      db::Query::ParseJson("posts", R"({"tags":{"$contains":"example"}})")
          .value();
  auto r0 = reader.ExecuteQuery(by_tag);
  std::printf("reader query: %zu posts tagged 'example'\n\n", r0.ids.size());

  // Figure 5, step 1: +'example' → the post ENTERS the result set (add).
  std::printf("== author adds tag 'example' ==\n");
  clock.Advance(SecondsToMicros(1.0));
  db::Update add_tag;
  add_tag.Push("tags", db::Value("example"));
  author.Update("posts", "p1", add_tag);

  // Figure 5, step 2: +'music' → still matches, state changed (change).
  std::printf("\n== author adds tag 'music' ==\n");
  clock.Advance(SecondsToMicros(1.0));
  db::Update add_music;
  add_music.Push("tags", db::Value("music"));
  author.Update("posts", "p1", add_music);

  // The reader's next query (after ∆) revalidates and sees the post.
  clock.Advance(SecondsToMicros(2.1));
  auto r1 = reader.ExecuteQuery(by_tag);
  std::printf("\nreader query after ∆: %zu post(s), revalidated=%s\n",
              r1.ids.size(), r1.outcome.revalidated ? "yes" : "no");
  if (!r1.docs.empty()) {
    std::printf("  -> %s\n", r1.docs[0].Find("title")->as_string().c_str());
  }

  // Figure 5, step 3: -'example' → the post LEAVES the result set
  // (remove).
  std::printf("\n== author removes tag 'example' ==\n");
  clock.Advance(SecondsToMicros(1.0));
  db::Update pull_tag;
  pull_tag.Pull("tags", db::Value("example"));
  author.Update("posts", "p1", pull_tag);

  clock.Advance(SecondsToMicros(2.1));
  auto r2 = reader.ExecuteQuery(by_tag);
  std::printf("\nreader query after ∆: %zu posts tagged 'example'\n",
              r2.ids.size());

  // Top-posts: a stateful (sorted + limited) query maintained by the
  // sorted layer.
  std::printf("\n== top-2 posts by views (stateful query) ==\n");
  for (int i = 0; i < 4; ++i) {
    author.Insert("posts", "v" + std::to_string(i),
                  db::Value::FromJson(("{\"title\":\"Post " +
                                       std::to_string(i) +
                                       "\",\"views\":" +
                                       std::to_string(10 * (i + 1)) + "}")
                                          .c_str())
                      .value());
  }
  db::Query top = db::Query::ParseJson("posts", R"({"views":{"$gte":0}})")
                      .value();
  top.SetOrderBy({{"views", false}}).SetLimit(2);
  auto t0 = reader.ExecuteQuery(top);
  std::printf("top-2: %s, %s\n", t0.ids[0].c_str(), t0.ids[1].c_str());

  clock.Advance(SecondsToMicros(1.0));
  std::printf("== v0 goes viral (+1000 views) ==\n");
  db::Update viral;
  viral.Inc("views", db::Value(1000));
  author.Update("posts", "v0", viral);

  clock.Advance(SecondsToMicros(2.1));
  auto t1 = reader.ExecuteQuery(top);
  std::printf("top-2 after ∆: %s, %s\n", t1.ids[0].c_str(),
              t1.ids[1].c_str());
  return 0;
}
