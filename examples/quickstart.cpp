// Quickstart: stand up a complete Quaestor deployment in-process —
// document database, Quaestor server (TTL estimator + EBF + InvaliDB),
// a CDN-style invalidation cache, and a browser client — then walk
// through the cache behaviour of reads, queries, and writes.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

namespace {

const char* Where(webcache::ServedBy s) {
  switch (s) {
    case webcache::ServedBy::kClientCache:
      return "browser cache";
    case webcache::ServedBy::kExpirationCache:
      return "ISP proxy";
    case webcache::ServedBy::kInvalidationCache:
      return "CDN edge";
    case webcache::ServedBy::kOrigin:
      return "origin (DBaaS)";
  }
  return "?";
}

}  // namespace

int main() {
  // A simulated clock makes the run deterministic; production code would
  // pass SystemClock::Default().
  SimulatedClock clock(0);

  // 1. The substrate: a document database.
  db::Database database(&clock);

  // 2. The Quaestor middleware on top of it.
  core::QuaestorServer server(&clock, &database);

  // 3. Web caching infrastructure: one CDN edge; the server purges it on
  //    invalidations.
  webcache::InvalidationCache cdn(&clock);
  server.AddPurgeTarget([&](const std::string& key) { cdn.Purge(key); });

  // 4. A browser session: client cache + SDK with a 1-second staleness
  //    bound (∆-atomicity).
  webcache::ExpirationCache browser(&clock);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = SecondsToMicros(1.0);
  client::QuaestorClient client(&clock, &server, &browser, &cdn, copts);
  client.Connect();  // fetches the initial Expiring Bloom Filter

  // --- Insert some data -----------------------------------------------
  std::printf("== writing two articles ==\n");
  client.Insert("articles", "a1",
                db::Value::FromJson(
                    R"({"title":"Hello Quaestor","category":"tech","views":0})")
                    .value());
  client.Insert("articles", "a2",
                db::Value::FromJson(
                    R"({"title":"Cache all the things","category":"tech",
                        "views":0})")
                    .value());

  // --- Read a record ---------------------------------------------------
  auto r1 = client.Read("articles", "a1");
  std::printf("read a1: served by %s, latency %.1f ms\n",
              Where(r1.outcome.served_by), r1.outcome.latency_ms);

  // --- Run a query (MongoDB-style filter) ------------------------------
  db::Query tech =
      db::Query::ParseJson("articles", R"({"category":"tech"})").value();
  auto q1 = client.ExecuteQuery(tech);
  std::printf("query tech: %zu results, served by %s, latency %.1f ms\n",
              q1.ids.size(), Where(q1.outcome.served_by),
              q1.outcome.latency_ms);

  // Served again: the cached result answers instantly.
  auto q2 = client.ExecuteQuery(tech);
  std::printf("query tech again: served by %s, latency %.1f ms\n",
              Where(q2.outcome.served_by), q2.outcome.latency_ms);

  // --- A write invalidates the cached query in real time ---------------
  clock.Advance(SecondsToMicros(0.5));
  db::Update bump;
  bump.Set("category", db::Value("news"));
  client.Update("articles", "a2", bump);
  std::printf("\n== a2 moved to 'news': InvaliDB detected the change ==\n");
  std::printf("EBF flags the query as stale: %s\n",
              server.ebf().IsStale(tech.NormalizedKey()) ? "yes" : "no");

  // After the staleness bound ∆ elapses, the next query refreshes the EBF
  // and revalidates — the client sees the new result.
  clock.Advance(SecondsToMicros(1.1));
  auto q3 = client.ExecuteQuery(tech);
  std::printf("query tech after ∆: %zu result(s), revalidated=%s, via %s\n",
              q3.ids.size(), q3.outcome.revalidated ? "yes" : "no",
              Where(q3.outcome.served_by));

  // --- Server-side telemetry ------------------------------------------
  const core::ServerStats stats = server.stats();
  std::printf("\nserver stats: %llu query reads, %llu record reads, "
              "%llu writes, %llu invalidations\n",
              static_cast<unsigned long long>(stats.query_reads),
              static_cast<unsigned long long>(stats.record_reads),
              static_cast<unsigned long long>(stats.writes),
              static_cast<unsigned long long>(stats.query_invalidations));
  return 0;
}
