// A flash-sale scenario modelled on the paper's production anecdote
// (§6.2 "Production results"): an e-commerce shop featured on TV is hit
// by a crowd of shoppers while stock counters keep changing. Quaestor
// serves article pages and category queries from caches while InvaliDB
// keeps stock information fresh.
//
// Build & run:  ./build/examples/flash_sale

#include <cstdio>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

using namespace quaestor;

int main() {
  SimulatedClock clock(0);
  db::Database database(&clock);
  // Stock counters change constantly without altering which articles a
  // category page shows — the cost-based representation model (§4.2)
  // switches such queries to id-lists so the cached page survives stock
  // updates and only the affected article record is refetched.
  core::ServerOptions sopts;
  sopts.representation = core::RepresentationPolicy::kAuto;
  core::QuaestorServer server(&clock, &database, sopts);
  webcache::InvalidationCache cdn(&clock);
  server.AddPurgeTarget([&](const std::string& key) { cdn.Purge(key); });

  // Catalogue: 50 articles in 5 categories, each with a stock counter.
  for (int i = 0; i < 50; ++i) {
    database.Insert(
        "articles", "a" + std::to_string(i),
        db::Value::FromJson(("{\"name\":\"Article " + std::to_string(i) +
                             "\",\"category\":" + std::to_string(i % 5) +
                             ",\"stock\":25,\"price\":" +
                             std::to_string(10 + i) + "}")
                                .c_str())
            .value());
  }

  // The crowd: 40 shoppers with cold browser caches, 1 s staleness bound.
  constexpr int kShoppers = 40;
  std::vector<std::unique_ptr<webcache::ExpirationCache>> caches;
  std::vector<std::unique_ptr<client::QuaestorClient>> shoppers;
  client::ClientOptions copts;
  copts.ebf_refresh_interval = SecondsToMicros(1.0);
  // ∆ − ∆_invalidation optimization (§3.2): EBF-triggered revalidations
  // are answered by the (purge-coherent) CDN instead of the origin.
  copts.revalidate_at_cdn = true;
  for (int i = 0; i < kShoppers; ++i) {
    caches.push_back(std::make_unique<webcache::ExpirationCache>(&clock));
    shoppers.push_back(std::make_unique<client::QuaestorClient>(
        &clock, &server, caches.back().get(), &cdn, copts));
    shoppers.back()->Connect();
  }

  Rng rng(7);
  ZipfianGenerator hot_category(5, 0.99);  // everyone wants the TV item
  double total_latency = 0.0;
  uint64_t requests = 0;
  int purchases = 0;

  // 30 seconds of browsing: category pages + article views + purchases.
  for (int second = 0; second < 30; ++second) {
    for (int s = 0; s < kShoppers; ++s) {
      client::QuaestorClient& shopper = *shoppers[s];
      // Browse a category page.
      const int cat = static_cast<int>(hot_category.Next(rng));
      db::Query category_query =
          db::Query::ParseJson(
              "articles", "{\"category\":" + std::to_string(cat) + "}")
              .value();
      auto page = shopper.ExecuteQuery(category_query);
      total_latency += page.outcome.latency_ms;
      requests++;

      // 5% of shoppers buy a random article from the page: the stock
      // decrement invalidates the article record (and, for object-list
      // pages, the page itself — which is why kAuto flips to id-lists).
      if (!page.ids.empty() && rng.NextBool(0.05)) {
        const std::string& key =
            page.ids[rng.NextUint64(page.ids.size())];
        const std::string id = key.substr(key.find('/') + 1);
        db::Update buy;
        buy.Inc("stock", db::Value(-1));
        if (shopper.Update("articles", id, buy).ok()) purchases++;
      }
    }
    clock.Advance(SecondsToMicros(1.0));
  }

  const webcache::CacheStats cdn_stats = cdn.stats();
  const core::ServerStats stats = server.stats();
  std::printf("flash sale over %d simulated seconds:\n", 30);
  std::printf("  %llu page requests, %d purchases\n",
              static_cast<unsigned long long>(requests), purchases);
  std::printf("  mean page latency: %.1f ms\n",
              total_latency / static_cast<double>(requests));
  std::printf("  CDN: %llu hits / %llu purges (hit rate %.1f%%)\n",
              static_cast<unsigned long long>(cdn_stats.hits),
              static_cast<unsigned long long>(cdn_stats.purges),
              cdn_stats.HitRate() * 100.0);
  std::printf("  origin query evaluations: %llu (of %llu page views)\n",
              static_cast<unsigned long long>(stats.query_reads),
              static_cast<unsigned long long>(requests));
  std::printf("  invalidations detected by InvaliDB: %llu\n",
              static_cast<unsigned long long>(stats.query_invalidations));

  // Stock must be exact at the origin regardless of caching.
  int64_t remaining = 0;
  for (int i = 0; i < 50; ++i) {
    auto doc = database.Get("articles", "a" + std::to_string(i));
    remaining += doc->body.Find("stock")->as_int();
  }
  std::printf("  stock check: 1250 initial - %d sold = %lld remaining "
              "(consistent: %s)\n",
              purchases, static_cast<long long>(remaining),
              remaining == 1250 - purchases ? "yes" : "NO");
  return 0;
}
