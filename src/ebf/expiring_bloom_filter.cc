#include "ebf/expiring_bloom_filter.h"

#include <iterator>
#include <memory>

namespace quaestor::ebf {

void EbfStats::ExportTo(obs::MetricsRegistry* registry,
                        const obs::Labels& labels) const {
  registry->Count("ebf_reads_reported", labels, reads_reported);
  registry->Count("ebf_invalidations_reported", labels,
                  invalidations_reported);
  registry->Count("ebf_keys_added", labels, keys_added);
  registry->Count("ebf_keys_expired", labels, keys_expired);
}

ExpiringBloomFilter::ExpiringBloomFilter(Clock* clock, BloomParams params)
    : clock_(clock), params_(params), counting_(params), flat_(params) {}

void ExpiringBloomFilter::ReportRead(std::string_view key, Micros ttl) {
  if (ttl <= 0) return;  // uncacheable response: nothing to track
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  stats_.reads_reported++;
  KeyState& st = keys_[std::string(key)];
  const Micros expire_at = now + ttl;
  if (expire_at > st.expire_at) {
    st.expire_at = expire_at;
    // Track for cleanup of the keys_ map even if never invalidated.
    deadlines_.push({expire_at, std::string(key)});
  }
}

bool ExpiringBloomFilter::ReportWrite(std::string_view key) {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  stats_.invalidations_reported++;
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return false;  // no unexpired TTL issued
  KeyState& st = it->second;
  if (st.expire_at <= now) return st.in_filter;
  // Some cache may hold this key until st.expire_at: mark stale until then.
  if (st.expire_at > st.stale_until) {
    st.stale_until = st.expire_at;
    deadlines_.push({st.stale_until, std::string(key)});
  }
  if (!st.in_filter) {
    st.in_filter = true;
    stats_.keys_added++;
    counting_.Add(key, [this](size_t pos) { flat_.SetBit(pos); });
  }
  return true;
}

std::vector<std::string> ExpiringBloomFilter::FlagAllTracked() {
  const Micros now = clock_->NowMicros();
  std::vector<std::string> flagged;
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  for (auto& [key, st] : keys_) {
    if (st.expire_at <= now) continue;
    if (st.expire_at > st.stale_until) {
      st.stale_until = st.expire_at;
      deadlines_.push({st.stale_until, key});
    }
    if (!st.in_filter) {
      st.in_filter = true;
      stats_.keys_added++;
      counting_.Add(key, [this](size_t pos) { flat_.SetBit(pos); });
    }
    flagged.push_back(key);
  }
  stats_.invalidations_reported += flagged.size();
  return flagged;
}

bool ExpiringBloomFilter::IsStale(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return false;
  return it->second.in_filter &&
         it->second.stale_until > clock_->NowMicros();
}

bool ExpiringBloomFilter::MaybeStale(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return flat_.MaybeContains(key);
}

BloomFilter ExpiringBloomFilter::Snapshot() {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  return flat_;
}

void ExpiringBloomFilter::Maintain() {
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(clock_->NowMicros());
}

void ExpiringBloomFilter::MaintainLocked(Micros now) {
  while (!deadlines_.empty() && deadlines_.top().at <= now) {
    Deadline d = deadlines_.top();
    deadlines_.pop();
    auto it = keys_.find(d.key);
    if (it == keys_.end()) continue;
    KeyState& st = it->second;
    if (st.in_filter && st.stale_until <= now) {
      // The highest TTL issued before the invalidation has expired: every
      // cache has dropped the stale copy; the key is fresh again.
      st.in_filter = false;
      stats_.keys_expired++;
      counting_.Remove(d.key, [this](size_t pos) { flat_.ClearBit(pos); });
    }
    if (!st.in_filter && st.expire_at <= now) {
      keys_.erase(it);  // no live TTLs and not stale: forget the key
    }
  }
}

size_t ExpiringBloomFilter::StaleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, st] : keys_) {
    if (st.in_filter) ++n;
  }
  return n;
}

size_t ExpiringBloomFilter::TrackedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

EbfStats ExpiringBloomFilter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

ExpiringBloomFilter* PartitionedEbf::Partition(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(table);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(table,
                      std::make_unique<ExpiringBloomFilter>(clock_, params_))
             .first;
  }
  return it->second.get();
}

std::string PartitionedEbf::TableOfKey(std::string_view key) {
  // Record keys look like "table/id"; query keys like "q:table?...".
  std::string_view rest = key;
  if (rest.starts_with("q:")) {
    rest.remove_prefix(2);
    const size_t q = rest.find('?');
    return std::string(rest.substr(0, q));
  }
  const size_t slash = rest.find('/');
  return std::string(rest.substr(0, slash));
}

ExpiringBloomFilter* PartitionedEbf::PartitionForKey(std::string_view key) {
  return Partition(TableOfKey(key));
}

void PartitionedEbf::ReportRead(std::string_view key, Micros ttl) {
  PartitionForKey(key)->ReportRead(key, ttl);
}

bool PartitionedEbf::ReportWrite(std::string_view key) {
  return PartitionForKey(key)->ReportWrite(key);
}

bool PartitionedEbf::IsStale(std::string_view key) {
  return PartitionForKey(key)->IsStale(key);
}

std::vector<std::string> PartitionedEbf::FlagAllTracked() {
  std::vector<ExpiringBloomFilter*> parts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parts.reserve(partitions_.size());
    for (auto& [table, ebf] : partitions_) parts.push_back(ebf.get());
  }
  std::vector<std::string> flagged;
  for (ExpiringBloomFilter* ebf : parts) {
    std::vector<std::string> part = ebf->FlagAllTracked();
    flagged.insert(flagged.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
  }
  return flagged;
}

BloomFilter PartitionedEbf::AggregateSnapshot() {
  std::vector<ExpiringBloomFilter*> parts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    parts.reserve(partitions_.size());
    for (const auto& [table, ebf] : partitions_) parts.push_back(ebf.get());
  }
  BloomFilter out{params_};
  for (ExpiringBloomFilter* p : parts) out.UnionWith(p->Snapshot());
  return out;
}

EbfStats PartitionedEbf::AggregateStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EbfStats out;
  for (const auto& [table, ebf] : partitions_) {
    const EbfStats s = ebf->stats();
    out.reads_reported += s.reads_reported;
    out.invalidations_reported += s.invalidations_reported;
    out.keys_added += s.keys_added;
    out.keys_expired += s.keys_expired;
  }
  return out;
}

size_t PartitionedEbf::StaleCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [table, ebf] : partitions_) n += ebf->StaleCount();
  return n;
}

size_t PartitionedEbf::PartitionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

}  // namespace quaestor::ebf
