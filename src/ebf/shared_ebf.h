#ifndef QUAESTOR_EBF_SHARED_EBF_H_
#define QUAESTOR_EBF_SHARED_EBF_H_

#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "ebf/bloom_filter.h"
#include "kv/kv_store.h"

namespace quaestor::ebf {

/// The distributed Expiring Bloom Filter variant (§3.3 Implementation):
/// the counting Bloom filter and the per-key expiration state live in a
/// shared key-value store (the Redis stand-in) so that multiple DBaaS
/// server processes can report reads and invalidations against one shared
/// filter. Semantics are identical to ExpiringBloomFilter.
///
/// Layout in the KV store (namespaced by `prefix`):
///   <prefix>:bits          — hash: bit position → counter
///   <prefix>:key:<key>     — hash: expire_at, stale_until, in_filter
///
/// Expiration deadlines are tracked in-process by whichever node performs
/// maintenance (mirroring a deployment where a maintenance worker sweeps
/// the shared state).
class SharedEbf {
 public:
  SharedEbf(Clock* clock, kv::KvStore* kv, std::string prefix = "ebf",
            BloomParams params = BloomParams());

  SharedEbf(const SharedEbf&) = delete;
  SharedEbf& operator=(const SharedEbf&) = delete;

  /// See ExpiringBloomFilter::ReportRead.
  void ReportRead(std::string_view key, Micros ttl);

  /// See ExpiringBloomFilter::ReportWrite.
  bool ReportWrite(std::string_view key);

  /// Exact stale check from shared state.
  bool IsStale(std::string_view key) const;

  /// Builds a flat snapshot from the shared counter hash.
  BloomFilter Snapshot();

  /// Processes due expirations against the shared state.
  void Maintain();

  size_t StaleCount() const;

  const BloomParams& params() const { return params_; }

 private:
  struct Deadline {
    Micros at;
    std::string key;
    bool operator>(const Deadline& other) const { return at > other.at; }
  };

  std::string KeyStateKey(std::string_view key) const {
    return prefix_ + ":key:" + std::string(key);
  }
  std::string BitsKey() const { return prefix_ + ":bits"; }

  void MaintainLocked(Micros now);

  Clock* clock_;
  kv::KvStore* kv_;
  std::string prefix_;
  BloomParams params_;
  mutable std::mutex mu_;  // serializes read-modify-write cycles
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>>
      deadlines_;
};

}  // namespace quaestor::ebf

#endif  // QUAESTOR_EBF_SHARED_EBF_H_
