#ifndef QUAESTOR_EBF_EXPIRING_BLOOM_FILTER_H_
#define QUAESTOR_EBF_EXPIRING_BLOOM_FILTER_H_

#include <cstdint>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "ebf/bloom_filter.h"
#include "obs/metrics.h"

namespace quaestor::ebf {

/// Aggregate counters for EBF activity.
struct EbfStats {
  uint64_t reads_reported = 0;
  uint64_t invalidations_reported = 0;
  uint64_t keys_added = 0;    // key entered the stale set
  uint64_t keys_expired = 0;  // key left the stale set (TTL passed)

  /// Adds these totals into `ebf_*` registry counters.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The server-side Expiring Bloom Filter (§3.1, §3.3).
///
/// Tracks, for every cacheable key (normalized query string or record
/// key), the highest cache-expiration time the server has issued. When a
/// key is invalidated while some issued TTL is still unexpired, the key is
/// added to a counting Bloom filter — it is now "potentially stale" in
/// some cache. Once the highest issued TTL passes, all cached copies have
/// expired and the key is removed from the filter.
///
/// A flat Bloom filter is maintained incrementally (bits track non-zero
/// counters) so clients can fetch an up-to-date immutable snapshot in O(m)
/// without rebuilding (§3.3 "Server-side EBF Maintenance").
///
/// Thread-safe.
class ExpiringBloomFilter {
 public:
  explicit ExpiringBloomFilter(Clock* clock,
                               BloomParams params = BloomParams());

  ExpiringBloomFilter(const ExpiringBloomFilter&) = delete;
  ExpiringBloomFilter& operator=(const ExpiringBloomFilter&) = delete;

  /// Reports that a cacheable read/query response for `key` was served
  /// with time-to-live `ttl` (µs). Extends the tracked maximum expiration.
  void ReportRead(std::string_view key, Micros ttl);

  /// Reports a write/invalidation of `key`. If any previously issued TTL
  /// is still unexpired, the key becomes potentially stale: it is added to
  /// the filter until that TTL passes. Returns true if the key is (now)
  /// contained in the filter.
  bool ReportWrite(std::string_view key);

  /// True if the key is in the stale set (exact, not through Bloom
  /// hashing — the server tracks exact state; the Bloom filter is only the
  /// compact client representation).
  bool IsStale(std::string_view key) const;

  /// Conservatively flags every key with an unexpired issued TTL as
  /// potentially stale (degraded-mode entry: any of them may have a
  /// cached copy whose invalidation will be lost). Returns the flagged
  /// keys so the caller can also purge shared caches.
  std::vector<std::string> FlagAllTracked();

  /// Bloom-filter membership test (what a client holding the current
  /// snapshot would conclude, including false positives).
  bool MaybeStale(std::string_view key) const;

  /// Immutable flat snapshot for clients (a plain Bloom filter). Runs
  /// expiration maintenance first so the snapshot is current.
  BloomFilter Snapshot();

  /// Processes all expirations due at the current clock time. Called
  /// automatically by the reporting methods; exposed for tests.
  void Maintain();

  /// Number of keys currently considered stale.
  size_t StaleCount() const;

  /// Number of keys with tracked (unexpired) TTLs.
  size_t TrackedCount() const;

  EbfStats stats() const;

  const BloomParams& params() const { return params_; }

 private:
  struct KeyState {
    Micros expire_at = 0;   // max issued TTL expiry
    Micros stale_until = 0; // while in filter: when to remove
    bool in_filter = false;
  };

  struct Deadline {
    Micros at;
    std::string key;
    bool operator>(const Deadline& other) const { return at > other.at; }
  };

  void MaintainLocked(Micros now);

  Clock* clock_;
  BloomParams params_;
  mutable std::mutex mu_;
  CountingBloomFilter counting_;
  BloomFilter flat_;  // incrementally maintained
  std::unordered_map<std::string, KeyState> keys_;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>>
      deadlines_;
  EbfStats stats_;
};

/// Per-table partitioned EBF (§3.3 Scalability): each table gets its own
/// EBF instance so filter modifications and expiration tracking distribute
/// horizontally; the client-facing aggregate is the bitwise OR over the
/// partitions' flat filters.
class PartitionedEbf {
 public:
  PartitionedEbf(Clock* clock, BloomParams params = BloomParams())
      : clock_(clock), params_(params) {}

  /// Returns the partition for a table, creating it on first use.
  ExpiringBloomFilter* Partition(const std::string& table);

  /// Partition for a prefixed key ("table/id" or "q:table?...").
  ExpiringBloomFilter* PartitionForKey(std::string_view key);

  void ReportRead(std::string_view key, Micros ttl);
  bool ReportWrite(std::string_view key);
  bool IsStale(std::string_view key);

  /// FlagAllTracked over every partition (degraded-mode entry).
  std::vector<std::string> FlagAllTracked();

  /// Union of all partitions' flat filters.
  BloomFilter AggregateSnapshot();

  size_t StaleCount() const;
  size_t PartitionCount() const;

  /// Sum of all partitions' counters.
  EbfStats AggregateStats() const;

  /// The table a cache key belongs to ("table/id" → table,
  /// "q:table?..." → table) — also the partition routing rule clients use
  /// when loading table-specific EBFs (§3.3).
  static std::string TableOfKey(std::string_view key);

 private:

  Clock* clock_;
  BloomParams params_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ExpiringBloomFilter>>
      partitions_;
};

}  // namespace quaestor::ebf

#endif  // QUAESTOR_EBF_EXPIRING_BLOOM_FILTER_H_
