#include "ebf/bloom_filter.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace quaestor::ebf {

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0); }

void BitVector::UnionWith(const BitVector& other) {
  assert(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t BitVector::PopCount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

size_t BloomParams::OptimalNumHashes(size_t m, size_t n) {
  if (n == 0) return 1;
  const double k = (static_cast<double>(m) / static_cast<double>(n)) *
                   std::log(2.0);
  return std::max<size_t>(1, static_cast<size_t>(std::lround(k)));
}

double BloomParams::FalsePositiveRate(size_t m, size_t n, size_t k) {
  if (m == 0) return 1.0;
  const double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                          static_cast<double>(m);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(k));
}

BloomParams BloomParams::ForCapacity(size_t n, double target_fpr) {
  assert(target_fpr > 0.0 && target_fpr < 1.0);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(n) * std::log(target_fpr) /
                   (ln2 * ln2);
  BloomParams p;
  p.num_bits = std::max<size_t>(64, static_cast<size_t>(std::ceil(m)));
  p.num_hashes = std::min<size_t>(16, OptimalNumHashes(p.num_bits, n));
  return p;
}

BloomFilter::BloomFilter(BloomParams params)
    : params_(params), bits_(params.num_bits) {
  assert(params_.num_hashes >= 1 && params_.num_hashes <= 16);
}

void BloomFilter::Add(std::string_view key) {
  size_t pos[16];
  BloomPositions(key, params_.num_hashes, params_.num_bits, pos);
  for (size_t i = 0; i < params_.num_hashes; ++i) bits_.Set(pos[i]);
}

bool BloomFilter::MaybeContains(std::string_view key) const {
  size_t pos[16];
  BloomPositions(key, params_.num_hashes, params_.num_bits, pos);
  for (size_t i = 0; i < params_.num_hashes; ++i) {
    if (!bits_.Test(pos[i])) return false;
  }
  return true;
}

void BloomFilter::Clear() { bits_.Reset(); }

void BloomFilter::UnionWith(const BloomFilter& other) {
  assert(params_.num_bits == other.params_.num_bits &&
         params_.num_hashes == other.params_.num_hashes);
  bits_.UnionWith(other.bits_);
}

double BloomFilter::FillRatio() const {
  if (params_.num_bits == 0) return 0.0;
  return static_cast<double>(bits_.PopCount()) /
         static_cast<double>(params_.num_bits);
}

double BloomFilter::EstimatedFpr() const {
  return std::pow(FillRatio(), static_cast<double>(params_.num_hashes));
}

namespace {

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(std::string_view bytes, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[offset + i]))
         << (8 * i);
  }
  return v;
}

constexpr uint32_t kBloomMagic = 0x51454246;  // "QEBF"

}  // namespace

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(12 + ByteSize());
  AppendU32(out, kBloomMagic);
  AppendU32(out, static_cast<uint32_t>(params_.num_bits));
  AppendU32(out, static_cast<uint32_t>(params_.num_hashes));
  const std::vector<uint64_t>& words = bits_.words();
  size_t remaining = ByteSize();
  for (uint64_t w : words) {
    for (int i = 0; i < 8 && remaining > 0; ++i, --remaining) {
      out.push_back(static_cast<char>((w >> (8 * i)) & 0xff));
    }
  }
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(std::string_view bytes) {
  if (bytes.size() < 12) {
    return Status::Corruption("bloom filter truncated header");
  }
  if (ReadU32(bytes, 0) != kBloomMagic) {
    return Status::Corruption("bloom filter bad magic");
  }
  BloomParams params;
  params.num_bits = ReadU32(bytes, 4);
  params.num_hashes = ReadU32(bytes, 8);
  if (params.num_bits == 0 || params.num_hashes == 0 ||
      params.num_hashes > 16) {
    return Status::Corruption("bloom filter bad parameters");
  }
  BloomFilter filter(params);
  const size_t body = (params.num_bits + 7) / 8;
  if (bytes.size() != 12 + body) {
    return Status::Corruption("bloom filter truncated body");
  }
  std::vector<uint64_t>& words = filter.bits_.mutable_words();
  for (size_t b = 0; b < body; ++b) {
    const uint64_t byte =
        static_cast<unsigned char>(bytes[12 + b]);
    words[b / 8] |= byte << (8 * (b % 8));
  }
  return filter;
}

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_(params.num_bits, 0) {
  assert(params_.num_hashes >= 1 && params_.num_hashes <= 16);
}

void CountingBloomFilter::Positions(std::string_view key, size_t* out) const {
  BloomPositions(key, params_.num_hashes, params_.num_bits, out);
}

void CountingBloomFilter::Add(std::string_view key) {
  Add(key, [](size_t) {});
}

void CountingBloomFilter::Remove(std::string_view key) {
  Remove(key, [](size_t) {});
}

bool CountingBloomFilter::MaybeContains(std::string_view key) const {
  size_t pos[16];
  Positions(key, pos);
  for (size_t i = 0; i < params_.num_hashes; ++i) {
    if (counters_[pos[i]] == 0) return false;
  }
  return true;
}

BloomFilter CountingBloomFilter::ToBloomFilter() const {
  BloomFilter out(params_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0) out.SetBit(i);
  }
  return out;
}

void CountingBloomFilter::Clear() {
  std::fill(counters_.begin(), counters_.end(), 0);
}

}  // namespace quaestor::ebf
