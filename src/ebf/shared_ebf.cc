#include "ebf/shared_ebf.h"

#include <charconv>

#include "common/hash.h"

namespace quaestor::ebf {

namespace {

int64_t ParseI64(const std::string& s, int64_t fallback = 0) {
  int64_t v = fallback;
  std::from_chars(s.data(), s.data() + s.size(), v);
  return v;
}

}  // namespace

SharedEbf::SharedEbf(Clock* clock, kv::KvStore* kv, std::string prefix,
                     BloomParams params)
    : clock_(clock), kv_(kv), prefix_(std::move(prefix)), params_(params) {}

void SharedEbf::ReportRead(std::string_view key, Micros ttl) {
  if (ttl <= 0) return;
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  const std::string state_key = KeyStateKey(key);
  const Micros expire_at = now + ttl;
  const Micros prev =
      ParseI64(kv_->HGet(state_key, "expire_at").value_or("0"));
  if (expire_at > prev) {
    kv_->HSet(state_key, "expire_at", std::to_string(expire_at));
    deadlines_.push({expire_at, std::string(key)});
  }
}

bool SharedEbf::ReportWrite(std::string_view key) {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  const std::string state_key = KeyStateKey(key);
  const auto all = kv_->HGetAll(state_key);
  if (all.empty()) return false;
  auto field = [&all](const char* f) -> int64_t {
    auto it = all.find(f);
    return it == all.end() ? 0 : ParseI64(it->second);
  };
  const Micros expire_at = field("expire_at");
  const bool in_filter = field("in_filter") != 0;
  if (expire_at <= now) return in_filter;
  const Micros stale_until = field("stale_until");
  if (expire_at > stale_until) {
    kv_->HSet(state_key, "stale_until", std::to_string(expire_at));
    deadlines_.push({expire_at, std::string(key)});
  }
  if (!in_filter) {
    kv_->HSet(state_key, "in_filter", "1");
    size_t pos[16];
    BloomPositions(key, params_.num_hashes, params_.num_bits, pos);
    for (size_t i = 0; i < params_.num_hashes; ++i) {
      (void)kv_->HIncrBy(BitsKey(), std::to_string(pos[i]), 1);
    }
  }
  return true;
}

bool SharedEbf::IsStale(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string state_key = KeyStateKey(key);
  const auto in_filter = kv_->HGet(state_key, "in_filter");
  if (!in_filter.ok() || in_filter.value() != "1") return false;
  const Micros stale_until =
      ParseI64(kv_->HGet(state_key, "stale_until").value_or("0"));
  return stale_until > clock_->NowMicros();
}

BloomFilter SharedEbf::Snapshot() {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(now);
  BloomFilter out(params_);
  for (const auto& [pos_str, count_str] : kv_->HGetAll(BitsKey())) {
    if (ParseI64(count_str) > 0) {
      out.SetBit(static_cast<size_t>(ParseI64(pos_str)));
    }
  }
  return out;
}

void SharedEbf::Maintain() {
  std::lock_guard<std::mutex> lock(mu_);
  MaintainLocked(clock_->NowMicros());
}

void SharedEbf::MaintainLocked(Micros now) {
  while (!deadlines_.empty() && deadlines_.top().at <= now) {
    Deadline d = deadlines_.top();
    deadlines_.pop();
    const std::string state_key = KeyStateKey(d.key);
    const auto all = kv_->HGetAll(state_key);
    if (all.empty()) continue;
    auto field = [&all](const char* f) -> int64_t {
      auto it = all.find(f);
      return it == all.end() ? 0 : ParseI64(it->second);
    };
    const bool in_filter = field("in_filter") != 0;
    const Micros stale_until = field("stale_until");
    const Micros expire_at = field("expire_at");
    bool still_in_filter = in_filter;
    if (in_filter && stale_until <= now) {
      kv_->HSet(state_key, "in_filter", "0");
      still_in_filter = false;
      size_t pos[16];
      BloomPositions(d.key, params_.num_hashes, params_.num_bits, pos);
      for (size_t i = 0; i < params_.num_hashes; ++i) {
        const std::string f = std::to_string(pos[i]);
        auto v = kv_->HIncrBy(BitsKey(), f, -1);
        if (v.ok() && v.value() <= 0) kv_->HDel(BitsKey(), f);
      }
    }
    if (!still_in_filter && expire_at <= now) {
      kv_->Del(state_key);
    }
  }
}

size_t SharedEbf::StaleCount() const {
  // Counts distinct stale keys by scanning deadline entries' state. The
  // in-memory variant is the fast path; this is a diagnostics helper.
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>> copy =
      deadlines_;
  std::vector<std::string> seen;
  while (!copy.empty()) {
    Deadline d = copy.top();
    copy.pop();
    bool dup = false;
    for (const auto& s : seen) {
      if (s == d.key) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(d.key);
    const auto in_filter = kv_->HGet(KeyStateKey(d.key), "in_filter");
    if (in_filter.ok() && in_filter.value() == "1") ++n;
  }
  return n;
}

}  // namespace quaestor::ebf
