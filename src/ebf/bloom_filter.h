#ifndef QUAESTOR_EBF_BLOOM_FILTER_H_
#define QUAESTOR_EBF_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace quaestor::ebf {

/// A fixed-size bit vector backed by 64-bit words.
class BitVector {
 public:
  explicit BitVector(size_t num_bits = 0)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(size_t i) { words_[i >> 6] |= (1ULL << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void Reset();

  /// Bitwise OR with another vector of the same size (EBF partition union,
  /// §3.3 Scalability).
  void UnionWith(const BitVector& other);

  /// Number of set bits.
  size_t PopCount() const;

  /// Serialized byte size (what a client download costs before gzip).
  size_t ByteSize() const { return (num_bits_ + 7) / 8; }

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

/// Sizing parameters for Bloom filters. The paper's default matches TCP's
/// initial congestion window: m ≈ 10 × 1460 B = 14.6 KB = 116,800 bits,
/// giving a ~6% false-positive rate at 20,000 stale entries (§3.3).
struct BloomParams {
  size_t num_bits = 116800;
  size_t num_hashes = 4;

  /// Optimal k for a filter of m bits expected to hold n keys:
  /// k = (m/n) ln 2.
  static size_t OptimalNumHashes(size_t m, size_t n);

  /// Expected false-positive rate for m bits, n keys, k hashes:
  /// (1 - e^(-kn/m))^k.
  static double FalsePositiveRate(size_t m, size_t n, size_t k);

  /// Parameters sized for n keys at target false-positive rate f:
  /// m = -n ln f / (ln 2)^2.
  static BloomParams ForCapacity(size_t n, double target_fpr);
};

/// A plain ("flat") Bloom filter: the immutable client-side form of the
/// EBF. Supports insertion, membership tests, and union.
class BloomFilter {
 public:
  explicit BloomFilter(BloomParams params = BloomParams());

  const BloomParams& params() const { return params_; }
  const BitVector& bits() const { return bits_; }

  void Add(std::string_view key);
  bool MaybeContains(std::string_view key) const;
  void Clear();

  /// Sets/clears an individual bit position (used by the EBF to maintain
  /// the flat filter incrementally from counter transitions).
  void SetBit(size_t pos) { bits_.Set(pos); }
  void ClearBit(size_t pos) { bits_.Clear(pos); }

  /// Union with a filter of identical parameters.
  void UnionWith(const BloomFilter& other);

  /// Fraction of set bits.
  double FillRatio() const;

  /// Estimated FPR from the current fill ratio: fill^k.
  double EstimatedFpr() const;

  /// Serialized byte size (bit array only).
  size_t ByteSize() const { return bits_.ByteSize(); }

  /// Serializes to a compact byte string (params header + bit array) —
  /// what travels to clients in one TCP congestion window (§3.3).
  std::string Serialize() const;

  /// Parses a serialized filter.
  static Result<BloomFilter> Deserialize(std::string_view bytes);

 private:
  BloomParams params_;
  BitVector bits_;
};

/// A counting Bloom filter: supports removal, which the server-side EBF
/// needs to discard queries once they are no longer stale (§3.3). Counters
/// are 16-bit and saturate.
class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParams params = BloomParams());

  const BloomParams& params() const { return params_; }

  /// Increments the key's counters. `on_bit_set` is called for every bit
  /// position whose counter transitioned 0 → 1 (flat-filter maintenance).
  template <typename Fn>
  void Add(std::string_view key, Fn on_bit_set);
  void Add(std::string_view key);

  /// Decrements the key's counters (no-op guarding against underflow).
  /// `on_bit_clear` is called for positions transitioning 1 → 0.
  template <typename Fn>
  void Remove(std::string_view key, Fn on_bit_clear);
  void Remove(std::string_view key);

  bool MaybeContains(std::string_view key) const;

  /// Builds the flat filter (all non-zero counters as set bits).
  BloomFilter ToBloomFilter() const;

  void Clear();

 private:
  void Positions(std::string_view key, size_t* out) const;

  BloomParams params_;
  std::vector<uint16_t> counters_;
};

// -- template implementations --

template <typename Fn>
void CountingBloomFilter::Add(std::string_view key, Fn on_bit_set) {
  size_t pos[16];
  Positions(key, pos);
  for (size_t i = 0; i < params_.num_hashes; ++i) {
    uint16_t& c = counters_[pos[i]];
    if (c == UINT16_MAX) continue;  // saturated
    if (c == 0) on_bit_set(pos[i]);
    ++c;
  }
}

template <typename Fn>
void CountingBloomFilter::Remove(std::string_view key, Fn on_bit_clear) {
  size_t pos[16];
  Positions(key, pos);
  for (size_t i = 0; i < params_.num_hashes; ++i) {
    uint16_t& c = counters_[pos[i]];
    if (c == 0 || c == UINT16_MAX) continue;  // underflow/saturation guard
    --c;
    if (c == 0) on_bit_clear(pos[i]);
  }
}

}  // namespace quaestor::ebf

#endif  // QUAESTOR_EBF_BLOOM_FILTER_H_
