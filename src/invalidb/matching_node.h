#ifndef QUAESTOR_INVALIDB_MATCHING_NODE_H_
#define QUAESTOR_INVALIDB_MATCHING_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/document.h"
#include "db/query.h"
#include "invalidb/notification.h"

namespace quaestor::invalidb {

/// One cell of the InvaliDB matching grid (Figure 6): responsible for a
/// subset of all queries (its query partition) and a fraction of each
/// result set (its object partition). Keeps, per query, the former
/// matching status of every record it owns — the only state required for
/// stateless queries (§4.1 "Managing Query State").
///
/// Not thread-safe by itself; the cluster gives each node a dedicated
/// worker thread (threaded mode) or serializes calls (synchronous mode).
class MatchingNode {
 public:
  MatchingNode() = default;

  MatchingNode(const MatchingNode&) = delete;
  MatchingNode& operator=(const MatchingNode&) = delete;

  /// Installs a query with the subset of its initial result ids owned by
  /// this node's object partition.
  void AddQuery(const db::Query& query, const std::string& query_key,
                std::vector<std::string> initial_matching_ids);

  void RemoveQuery(const std::string& query_key);

  bool HasQuery(const std::string& query_key) const;

  /// Matches one change-stream after-image against all installed queries,
  /// appending raw membership notifications to `out` (the cluster filters
  /// by subscription and feeds the sorted layer).
  void Match(const db::ChangeEvent& event, std::vector<Notification>* out);

  /// Matches one event against a single installed query — used to replay
  /// recently received objects when a query is activated, closing the gap
  /// between initial evaluation and activation (§4.1).
  void MatchSingle(const std::string& query_key, const db::ChangeEvent& event,
                   std::vector<Notification>* out);

  /// The count/op accessors are observability reads that may race with
  /// the node's worker thread in threaded mode, so they are backed by
  /// atomics (plain counters here were flagged by TSan via
  /// InvalidbCluster::QueriesPerNode/OpsPerNode).
  size_t QueryCount() const {
    return query_count_.load(std::memory_order_relaxed);
  }
  uint64_t processed_ops() const {
    return processed_ops_.load(std::memory_order_relaxed);
  }
  uint64_t emitted_notifications() const {
    return emitted_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryState {
    db::Query query;
    std::string key;
    std::unordered_set<std::string> matching_ids;  // former matches we own
  };

  void MatchQuery(QueryState& st, const db::ChangeEvent& event,
                  std::vector<Notification>* out);

  std::unordered_map<std::string, QueryState> queries_;
  std::atomic<size_t> query_count_{0};
  std::atomic<uint64_t> processed_ops_{0};
  std::atomic<uint64_t> emitted_{0};
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_MATCHING_NODE_H_
