#ifndef QUAESTOR_INVALIDB_MATCHING_NODE_H_
#define QUAESTOR_INVALIDB_MATCHING_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/document.h"
#include "db/query.h"
#include "invalidb/notification.h"
#include "invalidb/query_index.h"
#include "obs/trace.h"

namespace quaestor::invalidb {

/// One cell of the InvaliDB matching grid (Figure 6): responsible for a
/// subset of all queries (its query partition) and a fraction of each
/// result set (its object partition). Keeps, per query, the former
/// matching status of every record it owns — the only state required for
/// stateless queries (§4.1 "Managing Query State").
///
/// Matching is predicate-indexed: installed queries are filed in a
/// QueryIndex by one indexable conjunct, and each change event is only
/// evaluated against (a) the queries whose indexed conjunct the
/// after-image can satisfy and (b) the queries the record currently
/// matches (the before-image membership, tracked exactly in
/// matching_ids). The union is a superset of every query whose add /
/// change / remove status can be affected, so indexed matching emits
/// exactly the notifications brute force would. Construct with
/// use_index=false for the brute-force reference path (benchmarks,
/// equivalence tests).
///
/// Not thread-safe by itself; the cluster gives each node a dedicated
/// worker thread (threaded mode) or serializes calls (synchronous mode).
class MatchingNode {
 public:
  explicit MatchingNode(bool use_index = true) : use_index_(use_index) {}

  MatchingNode(const MatchingNode&) = delete;
  MatchingNode& operator=(const MatchingNode&) = delete;

  /// Per-Match accounting: how much work the candidate index saved.
  struct MatchStats {
    size_t checked = 0;     // queries actually evaluated (candidates)
    size_t installed = 0;   // brute force would have evaluated this many
    size_t index_candidates = 0;     // via eq/range index lookups
    size_t residual_candidates = 0;  // non-indexable, always checked
  };

  /// Installs a query with the subset of its initial result ids owned by
  /// this node's object partition.
  void AddQuery(const db::Query& query, const std::string& query_key,
                std::vector<std::string> initial_matching_ids);

  void RemoveQuery(const std::string& query_key);

  /// Drops every installed query and all per-record state — a node crash
  /// wipes its in-memory matching state (failover support; the cluster
  /// rebuilds it from the subscription registry on restart).
  void Clear();

  bool HasQuery(const std::string& query_key) const;

  /// Matches one change-stream after-image against the installed queries,
  /// appending raw membership notifications to `out` (the cluster filters
  /// by subscription and feeds the sorted layer). Returns the candidate
  /// accounting for this event.
  MatchStats Match(const db::ChangeEvent& event,
                   std::vector<Notification>* out);

  /// Batch form of Match: processes `events` in order, appending each
  /// event's notifications to `out` and recording slice boundaries in
  /// `offsets` (sized events.size() + 1; event i's notifications occupy
  /// [(*offsets)[i], (*offsets)[i+1])). Output and accounting are
  /// identical to calling Match once per event; the win is that
  /// consecutive events carrying the same after-image shape (same table
  /// and body) reuse one QueryIndex probe instead of re-collecting
  /// candidates. Returns the summed MatchStats.
  MatchStats MatchBatch(const std::vector<db::ChangeEvent>& events,
                        std::vector<Notification>* out,
                        std::vector<size_t>* offsets);

  /// Matches one event against a single installed query — used to replay
  /// recently received objects when a query is activated, closing the gap
  /// between initial evaluation and activation (§4.1).
  void MatchSingle(const std::string& query_key, const db::ChangeEvent& event,
                   std::vector<Notification>* out);

  /// Sorted snapshot of one installed query's matching ids on this node
  /// (its object-partition shard of the result). Empty if the query is
  /// not installed. Used for direct state handoff during a live cluster
  /// Resize().
  std::vector<std::string> MatchingIdsOf(const std::string& query_key) const;

  /// The count/op accessors are observability reads that may race with
  /// the node's worker thread in threaded mode, so they are backed by
  /// atomics (plain counters here were flagged by TSan via
  /// InvalidbCluster::QueriesPerNode/OpsPerNode).
  size_t QueryCount() const {
    return query_count_.load(std::memory_order_relaxed);
  }
  uint64_t processed_ops() const {
    return processed_ops_.load(std::memory_order_relaxed);
  }
  uint64_t emitted_notifications() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Queries evaluated across all Match calls (the reduced number).
  uint64_t match_checks() const {
    return match_checks_.load(std::memory_order_relaxed);
  }
  /// Queries a brute-force scan would have evaluated.
  uint64_t match_checks_naive() const {
    return match_checks_naive_.load(std::memory_order_relaxed);
  }
  /// Installed queries with no indexable conjunct.
  size_t ResidualQueryCount() const { return index_.residual_size(); }

  /// Attaches a tracer; every Match then records an "invalidb.match"
  /// span. nullptr (default) detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct QueryState {
    db::Query query;
    std::string key;
    std::unordered_set<std::string> matching_ids;  // former matches we own
    uint64_t epoch = 0;  // candidate-dedup stamp for the current Match
  };

  void MatchQuery(QueryState& st, const db::ChangeEvent& event,
                  const std::string& record_key,
                  std::vector<Notification>* out);

  /// Indexed match of one event. With `reuse_probe`, candidate_keys_ and
  /// last_probe_ are taken as-is from the previous event (valid only
  /// within a batch — no Add/Remove may intervene — and only when the
  /// after-image shape is unchanged).
  MatchStats MatchIndexed(const db::ChangeEvent& event,
                          std::vector<Notification>* out, bool reuse_probe);

  /// "table/id" → queries currently containing the record. This is the
  /// exact before-image membership, so a record leaving a result set is
  /// always a candidate even when the after-image misses every index.
  std::unordered_map<std::string, std::unordered_set<QueryState*>>
      by_record_;

  std::unordered_map<std::string, QueryState> queries_;
  const bool use_index_;
  obs::Tracer* tracer_ = nullptr;
  QueryIndex index_;
  uint64_t epoch_ = 0;
  // Reused per-Match scratch (hot path: no per-event allocations once
  // capacities warm up).
  std::vector<const std::string*> candidate_keys_;
  std::vector<QueryState*> candidates_;
  /// Index-probe accounting of the last CollectCandidates call, replayed
  /// verbatim when a batch reuses the probe.
  CandidateStats last_probe_;

  std::atomic<size_t> query_count_{0};
  std::atomic<uint64_t> processed_ops_{0};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> match_checks_{0};
  std::atomic<uint64_t> match_checks_naive_{0};
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_MATCHING_NODE_H_
