#include "invalidb/cluster.h"

#include <algorithm>

#include "common/hash.h"

namespace quaestor::invalidb {
namespace {

/// Clusters whose topology lock is currently held by this thread. A sink
/// invoked during dispatch may legitimately call back into the same
/// cluster (synchronous mode) — the nested call must not re-acquire the
/// shared topology lock, which would deadlock against a writer waiting in
/// Resize(). Keyed per cluster so chained distinct clusters still lock.
thread_local std::vector<const void*> t_held_topology;

bool TopologyHeldByThisThread(const void* cluster) {
  return std::find(t_held_topology.begin(), t_held_topology.end(), cluster) !=
         t_held_topology.end();
}

/// Shared (reader) hold on a cluster's topology lock, reentrancy-aware.
class TopologyReadGuard {
 public:
  TopologyReadGuard(std::shared_mutex* mu, const void* cluster)
      : mu_(mu), cluster_(cluster),
        engaged_(!TopologyHeldByThisThread(cluster)) {
    if (engaged_) {
      mu_->lock_shared();
      t_held_topology.push_back(cluster_);
    }
  }
  ~TopologyReadGuard() {
    if (engaged_) {
      t_held_topology.pop_back();
      mu_->unlock_shared();
    }
  }
  TopologyReadGuard(const TopologyReadGuard&) = delete;
  TopologyReadGuard& operator=(const TopologyReadGuard&) = delete;

 private:
  std::shared_mutex* mu_;
  const void* cluster_;
  bool engaged_;
};

}  // namespace

void ClusterStats::ExportTo(obs::MetricsRegistry* registry,
                            const obs::Labels& labels) const {
  registry->Count("invalidb_changes_ingested", labels, changes_ingested);
  registry->Count("invalidb_notifications_delivered", labels,
                  notifications_delivered);
  registry->Count("invalidb_node_kills", labels, node_kills);
  registry->Count("invalidb_node_restarts", labels, node_restarts);
  registry->Count("invalidb_tasks_dropped_dead", labels, tasks_dropped_dead);
  registry->Count("invalidb_match_checks", labels, match_checks);
  registry->Count("invalidb_match_checks_naive", labels, match_checks_naive);
  registry->Count("invalidb_index_candidates", labels, index_candidates);
  registry->Count("invalidb_residual_candidates", labels,
                  residual_candidates);
  registry->Count("invalidb_change_batches", labels, change_batches);
  registry->Count("invalidb_batch_events", labels, batch_events);
  registry->Count("invalidb_notifications_coalesced", labels,
                  notifications_coalesced);
  registry->Count("rebalance_resizes", labels, rebalance_resizes);
  registry->Count("rebalance_queries_reinstalled", labels,
                  rebalance_queries_reinstalled);
  registry->Count("rebalance_events_replayed", labels,
                  rebalance_events_replayed);
  registry->Count("rebalance_nodes_added", labels, rebalance_nodes_added);
  registry->Count("rebalance_nodes_removed", labels, rebalance_nodes_removed);
  registry->Count("rebalance_pause_us_total", labels,
                  rebalance_pause_us_total);
}

InvalidbCluster::InvalidbCluster(Clock* clock, InvalidbOptions options,
                                 NotificationSink sink)
    : clock_(clock), options_(options), sink_(std::move(sink)) {
  if (options_.query_partitions == 0) options_.query_partitions = 1;
  if (options_.object_partitions == 0) options_.object_partitions = 1;
  const size_t n = options_.query_partitions * options_.object_partitions;
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto node = std::make_unique<Node>(options_.indexed_matching);
    if (options_.threaded) {
      node->queue =
          std::make_unique<BoundedQueue<Task>>(options_.node_queue_capacity);
    }
    nodes_.push_back(std::move(node));
  }
  if (options_.threaded) {
    for (auto& node : nodes_) {
      node->worker = std::thread(&InvalidbCluster::WorkerLoop, this,
                                 node.get());
    }
  }
}

InvalidbCluster::~InvalidbCluster() {
  if (options_.threaded) {
    for (auto& node : nodes_) node->queue->Close();
    for (auto& node : nodes_) {
      if (node->worker.joinable()) node->worker.join();
    }
  }
}

size_t InvalidbCluster::ColumnOf(const std::string& query_key) const {
  return static_cast<size_t>(Hash64(query_key, /*seed=*/0x9c0d)) %
         options_.query_partitions;
}

size_t InvalidbCluster::RowOf(const std::string& record_id) const {
  return static_cast<size_t>(Hash64(record_id, /*seed=*/0x51f1)) %
         options_.object_partitions;
}

void InvalidbCluster::Submit(size_t column, size_t row, Task task) {
  SubmitToNode(NodeAt(column, row), std::move(task));
}

void InvalidbCluster::SubmitToNode(Node& node, Task task) {
  if (options_.threaded) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    if (!node.queue->Push(std::move(task))) {
      // Queue closed during shutdown.
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  } else {
    // Synchronous mode executes in the caller; per-thread scratch keeps
    // concurrent callers isolated. A sink that re-enters a synchronous
    // cluster on the same thread (e.g. chained clusters) must not clobber
    // the outer call's buffers, so reentrant calls get a local scratch.
    static thread_local NotifyScratch scratch;
    static thread_local bool scratch_busy = false;
    if (scratch_busy) {
      NotifyScratch local;
      ExecuteTask(node, task, local);
    } else {
      scratch_busy = true;
      ExecuteTask(node, task, scratch);
      scratch_busy = false;
    }
  }
}

void InvalidbCluster::WorkerLoop(Node* node) {
  NotifyScratch scratch;
  std::vector<Task> drained;
  const auto retire = [this](int64_t executed) {
    if (in_flight_.fetch_sub(executed, std::memory_order_acq_rel) ==
        executed) {
      std::lock_guard<std::mutex> lock(flush_mu_);
      flush_cv_.notify_all();
    }
  };
  for (;;) {
    std::optional<Task> task = node->queue->Pop();
    if (!task.has_value()) return;
    // Drain whatever else is already queued in one lock acquisition, then
    // work through the backlog without touching the queue again.
    drained.clear();
    drained.push_back(std::move(*task));
    node->queue->TryPopAll(&drained);
    size_t i = 0;
    while (i < drained.size()) {
      if (options_.batched_matching && i + 1 < drained.size() &&
          std::get_if<ChangeTask>(&drained[i]) != nullptr &&
          std::get_if<ChangeTask>(&drained[i + 1]) != nullptr) {
        // Coalesce a run of per-event change tasks into one batch: one
        // match pass and one dispatch instead of one each per event.
        auto run = std::make_shared<std::vector<db::ChangeEvent>>();
        while (i < drained.size()) {
          auto* change = std::get_if<ChangeTask>(&drained[i]);
          if (change == nullptr) break;
          run->push_back(std::move(change->event));
          ++i;
        }
        const int64_t executed = static_cast<int64_t>(run->size());
        Task coalesced(ChangeBatchTask{std::move(run)});
        ExecuteTask(*node, coalesced, scratch);
        retire(executed);
      } else {
        ExecuteTask(*node, drained[i], scratch);
        ++i;
        retire(1);
      }
    }
  }
}

void InvalidbCluster::ExecuteTask(Node& node, Task& task,
                                  NotifyScratch& scratch) {
  node.last_heartbeat.store(clock_->NowMicros(), std::memory_order_relaxed);
  scratch.raw.clear();
  // Control tasks first: they must execute even on a dead node, in queue
  // order, so the crash window covers exactly the tasks between them.
  if (std::get_if<KillTask>(&task) != nullptr) {
    node.matcher.Clear();
    node.alive.store(false, std::memory_order_release);
    return;
  }
  if (auto* restart = std::get_if<RestartTask>(&task)) {
    node.matcher.Clear();
    for (RegisterTask& reg : restart->installs) {
      node.matcher.AddQuery(reg.query, reg.key, std::move(reg.initial_ids));
      for (const db::ChangeEvent& ev : reg.replay) {
        scratch.raw.clear();
        node.matcher.MatchSingle(reg.key, ev, &scratch.raw);
        if (!scratch.raw.empty()) Dispatch(scratch, ev.after);
      }
    }
    node.alive.store(true, std::memory_order_release);
    return;
  }
  if (!node.alive.load(std::memory_order_acquire)) {
    // A crashed node loses everything sent to it until its restart. A
    // coalesced batch counts once per event it carries, so drop
    // accounting is identical to the per-event path.
    const auto* dead_batch = std::get_if<ChangeBatchTask>(&task);
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.tasks_dropped_dead +=
        dead_batch != nullptr ? dead_batch->events->size() : 1;
    return;
  }
  if (auto* reg = std::get_if<RegisterTask>(&task)) {
    node.matcher.AddQuery(reg->query, reg->key,
                          std::move(reg->initial_ids));
    // Replay recently received objects for this query (§4.1): closes the
    // window between initial evaluation and activation.
    for (const db::ChangeEvent& ev : reg->replay) {
      scratch.raw.clear();
      node.matcher.MatchSingle(reg->key, ev, &scratch.raw);
      if (!scratch.raw.empty()) Dispatch(scratch, ev.after);
    }
  } else if (auto* dereg = std::get_if<DeregisterTask>(&task)) {
    node.matcher.RemoveQuery(dereg->key);
  } else if (auto* change = std::get_if<ChangeTask>(&task)) {
    const MatchingNode::MatchStats ms =
        node.matcher.Match(change->event, &scratch.raw);
    {
      std::lock_guard<std::mutex> lock(sink_mu_);
      stats_.match_checks += ms.checked;
      stats_.match_checks_naive += ms.installed;
      stats_.index_candidates += ms.index_candidates;
      stats_.residual_candidates += ms.residual_candidates;
    }
    if (!scratch.raw.empty()) Dispatch(scratch, change->event.after);
  } else if (auto* batch = std::get_if<ChangeBatchTask>(&task)) {
    scratch.batch_raw.clear();
    const MatchingNode::MatchStats ms = node.matcher.MatchBatch(
        *batch->events, &scratch.batch_raw, &scratch.offsets);
    {
      std::lock_guard<std::mutex> lock(sink_mu_);
      stats_.match_checks += ms.checked;
      stats_.match_checks_naive += ms.installed;
      stats_.index_candidates += ms.index_candidates;
      stats_.residual_candidates += ms.residual_candidates;
    }
    if (!scratch.batch_raw.empty()) {
      DispatchBatch(scratch, *batch->events, scratch.offsets);
    }
  }
}

void InvalidbCluster::Translate(Notification& n,
                                const db::Document& after_image,
                                NotifyScratch& scratch) {
  EventMask mask;
  bool stateful;
  {
    // Only the mask and statefulness are needed here — copying the whole
    // Subscription would deep-copy its query filter per notification.
    std::lock_guard<std::mutex> lock(subs_mu_);
    auto it = subscriptions_.find(n.query_key);
    if (it == subscriptions_.end()) return;  // deregistered meanwhile
    mask = it->second.mask;
    stateful = it->second.stateful;
  }
  if (stateful) {
    // Translate raw membership events into windowed events.
    scratch.windowed.clear();
    sorted_layer_.OnRawEvent(n.query_key, n.type, after_image, n.event_time,
                             &scratch.windowed);
    for (Notification& w : scratch.windowed) {
      if (mask & EventBit(w.type)) {
        scratch.deliverable.push_back(std::move(w));
      }
    }
  } else if (mask & EventBit(n.type)) {
    scratch.deliverable.push_back(std::move(n));
  }
}

void InvalidbCluster::Deliver(NotifyScratch& scratch) {
  std::vector<Notification>& deliverable = scratch.deliverable;
  if (deliverable.empty()) return;
  const Micros now = clock_->NowMicros();
  bool coalesce;
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    for (const Notification& n : deliverable) {
      latency_.Record(MicrosToMillis(now - n.event_time));
      stats_.notifications_delivered++;
    }
    coalesce = static_cast<bool>(batch_sink_);
    if (coalesce) stats_.notifications_coalesced += deliverable.size() - 1;
  }
  // Fan out without holding sink_mu_: the sink may do real work (encode +
  // reliable send). Per-record order is safe — a record always hashes to
  // one row, whose worker delivers sequentially; cross-record order for a
  // query was never specified.
  if (coalesce) {
    // Coalesced fan-out: one envelope per dispatch instead of one call
    // per notification. Order within the batch is commit order.
    batch_sink_(deliverable);
  } else {
    for (const Notification& n : deliverable) sink_(n);
  }
  deliverable.clear();
}

void InvalidbCluster::Dispatch(NotifyScratch& scratch,
                               const db::Document& after_image) {
  obs::ScopedSpan span(tracer_, "invalidb.notify");
  scratch.deliverable.clear();
  for (Notification& n : scratch.raw) {
    Translate(n, after_image, scratch);
  }
  scratch.raw.clear();
  Deliver(scratch);
}

void InvalidbCluster::DispatchBatch(NotifyScratch& scratch,
                                    const std::vector<db::ChangeEvent>& events,
                                    const std::vector<size_t>& offsets) {
  obs::ScopedSpan span(tracer_, "invalidb.notify");
  scratch.deliverable.clear();
  // Each event's notifications must be translated against that event's own
  // after-image (the sorted layer stores the document), so walk the batch
  // through the per-event slices recorded by MatchBatch.
  for (size_t i = 0; i < events.size(); ++i) {
    for (size_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      Translate(scratch.batch_raw[j], events[i].after, scratch);
    }
  }
  scratch.batch_raw.clear();
  Deliver(scratch);
}

Status InvalidbCluster::RegisterQuery(
    const db::Query& query, const std::vector<db::Document>& initial_result,
    EventMask events, Micros evaluated_at) {
  // Held across the whole registration so the column/row computation and
  // the submissions target the same topology (a concurrent Resize would
  // otherwise re-shard between them). Resize re-installs everything in
  // subscriptions_, so a registration strictly-before or strictly-after a
  // cutover lands on the live grid either way.
  TopologyReadGuard topology(&topology_mu_, this);
  const std::string key = query.NormalizedKey();
  const bool stateful = !query.IsStateless();
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    if (subscriptions_.count(key) > 0) {
      return Status::AlreadyExists(key);
    }
    subscriptions_[key] = Subscription{events, stateful, query};
  }
  if (stateful) {
    sorted_layer_.AddQuery(query, key, initial_result);
  }
  // The grid matches the bare predicate; windowing happens in the sorted
  // layer.
  db::Query base(query.table(), query.filter());

  // Snapshot the replay buffer once; each cell replays it against the new
  // query after installation. Events committed at or before the initial
  // evaluation are already reflected in `initial_result` — replaying them
  // would produce spurious invalidations — so only strictly newer events
  // are replayed (the activation race of §4.1 only involves writes that
  // commit after the evaluation).
  const Micros eval_time =
      evaluated_at < 0 ? clock_->NowMicros() : evaluated_at;
  std::vector<db::ChangeEvent> replay;
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    for (const db::ChangeEvent& ev : replay_buffer_) {
      if (ev.commit_time > eval_time) replay.push_back(ev);
    }
  }

  // Partition the initial result ids over the column's rows.
  const size_t column = ColumnOf(key);
  std::vector<std::vector<std::string>> ids_by_row(
      options_.object_partitions);
  for (const db::Document& doc : initial_result) {
    ids_by_row[RowOf(doc.id)].push_back(doc.id);
  }
  for (size_t row = 0; row < options_.object_partitions; ++row) {
    RegisterTask task;
    task.query = base;
    task.key = key;
    task.initial_ids = std::move(ids_by_row[row]);
    // Replay only events owned by this row.
    for (const db::ChangeEvent& ev : replay) {
      if (RowOf(ev.after.id) == row) task.replay.push_back(ev);
    }
    Submit(column, row, Task(std::move(task)));
  }
  return Status::OK();
}

void InvalidbCluster::DeregisterQuery(const std::string& query_key) {
  TopologyReadGuard topology(&topology_mu_, this);
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    if (subscriptions_.erase(query_key) == 0) return;
  }
  sorted_layer_.RemoveQuery(query_key);
  const size_t column = ColumnOf(query_key);
  for (size_t row = 0; row < options_.object_partitions; ++row) {
    Submit(column, row, Task(DeregisterTask{query_key}));
  }
}

bool InvalidbCluster::IsRegistered(const std::string& query_key) const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subscriptions_.count(query_key) > 0;
}

size_t InvalidbCluster::RegisteredCount() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  return subscriptions_.size();
}

void InvalidbCluster::OnChange(const db::ChangeEvent& event) {
  TopologyReadGuard topology(&topology_mu_, this);
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    replay_buffer_.push_back(event);
    while (replay_buffer_.size() > options_.replay_buffer_size) {
      replay_buffer_.pop_front();
    }
    Micros prev = last_ingested_commit_.load(std::memory_order_relaxed);
    while (prev < event.commit_time &&
           !last_ingested_commit_.compare_exchange_weak(
               prev, event.commit_time, std::memory_order_relaxed)) {
    }
  }
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.changes_ingested++;
  }
  const size_t row = RowOf(event.after.id);
  for (size_t col = 0; col < options_.query_partitions; ++col) {
    Submit(col, row, Task(ChangeTask{event}));
  }
}

void InvalidbCluster::OnChangeBatch(std::vector<db::ChangeEvent> events) {
  if (events.empty()) return;
  if (!options_.batched_matching) {
    // Reference path: unbatch at the ingest boundary; everything downstream
    // is the per-event pipeline.
    for (const db::ChangeEvent& event : events) OnChange(event);
    return;
  }
  TopologyReadGuard topology(&topology_mu_, this);
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    for (const db::ChangeEvent& event : events) {
      replay_buffer_.push_back(event);
      Micros prev = last_ingested_commit_.load(std::memory_order_relaxed);
      while (prev < event.commit_time &&
             !last_ingested_commit_.compare_exchange_weak(
                 prev, event.commit_time, std::memory_order_relaxed)) {
      }
    }
    while (replay_buffer_.size() > options_.replay_buffer_size) {
      replay_buffer_.pop_front();
    }
  }
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.changes_ingested += events.size();
    stats_.change_batches++;
    stats_.batch_events += events.size();
    events_per_batch_.Record(static_cast<double>(events.size()));
  }
  // Group by object-partition row, preserving commit order within each row
  // (events for different records are only ordered per record, and one
  // record always hashes to one row, so per-record order is preserved).
  // The replay buffer took its copies above, so the ingest batch can be
  // carved up by move; each row slice is then shared read-only across the
  // row's column tasks.
  std::vector<std::vector<db::ChangeEvent>> by_row(
      options_.object_partitions);
  for (db::ChangeEvent& event : events) {
    const size_t row = RowOf(event.after.id);
    by_row[row].push_back(std::move(event));
  }
  for (size_t row = 0; row < options_.object_partitions; ++row) {
    if (by_row[row].empty()) continue;
    auto slice = std::make_shared<const std::vector<db::ChangeEvent>>(
        std::move(by_row[row]));
    for (size_t col = 0; col < options_.query_partitions; ++col) {
      Submit(col, row, Task(ChangeBatchTask{slice}));
    }
  }
}

void InvalidbCluster::KillNode(size_t node_index) {
  TopologyReadGuard topology(&topology_mu_, this);
  if (node_index >= nodes_.size()) return;
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.node_kills++;
  }
  SubmitToNode(*nodes_[node_index], Task(KillTask{}));
}

size_t InvalidbCluster::RestartNode(size_t node_index,
                                    const ResultEvaluator& evaluate) {
  TopologyReadGuard topology(&topology_mu_, this);
  if (node_index >= nodes_.size()) return 0;
  const size_t column = node_index % options_.query_partitions;
  const size_t row = node_index / options_.query_partitions;

  // Snapshot the registry: every query of this node's column.
  std::vector<std::pair<std::string, Subscription>> to_install;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    for (const auto& [key, sub] : subscriptions_) {
      if (ColumnOf(key) == column) to_install.emplace_back(key, sub);
    }
  }

  // Events that commit after this point race the rebuild; replay them
  // like a fresh registration does (§4.1 activation race). Everything
  // already ingested is reflected in the authoritative evaluation, so
  // lower-bound by the highest ingested commit_time in case the stream's
  // timestamps run ahead of the wall clock.
  const Micros eval_time =
      std::max(clock_->NowMicros(),
               last_ingested_commit_.load(std::memory_order_relaxed));

  RestartTask task;
  for (auto& [key, sub] : to_install) {
    const std::vector<db::Document> result = evaluate(
        db::Query(sub.query.table(), sub.query.filter()));
    if (sub.stateful) {
      // The sorted layer is cluster-level: re-seed its window from the
      // authoritative result (it may have missed events while the node
      // was down).
      sorted_layer_.RemoveQuery(key);
      sorted_layer_.AddQuery(sub.query, key, result);
    }
    RegisterTask reg;
    reg.query = db::Query(sub.query.table(), sub.query.filter());
    reg.key = key;
    for (const db::Document& doc : result) {
      if (RowOf(doc.id) == row) reg.initial_ids.push_back(doc.id);
    }
    {
      std::lock_guard<std::mutex> lock(replay_mu_);
      for (const db::ChangeEvent& ev : replay_buffer_) {
        if (ev.commit_time > eval_time && RowOf(ev.after.id) == row) {
          reg.replay.push_back(ev);
        }
      }
    }
    task.installs.push_back(std::move(reg));
  }
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.node_restarts++;
  }
  const size_t installed = task.installs.size();
  SubmitToNode(*nodes_[node_index], Task(std::move(task)));
  return installed;
}

size_t InvalidbCluster::Resize(size_t new_query_partitions,
                               size_t new_object_partitions,
                               const ResultEvaluator& evaluate) {
  if (new_query_partitions == 0) new_query_partitions = 1;
  if (new_object_partitions == 0) new_object_partitions = 1;
  // Serializes concurrent resizes without blocking traffic: the expensive
  // grid construction below runs before the topology lock is taken.
  std::lock_guard<std::mutex> serialize(resize_mu_);

  const size_t new_n = new_query_partitions * new_object_partitions;
  std::vector<std::unique_ptr<Node>> fresh;
  fresh.reserve(new_n);
  for (size_t i = 0; i < new_n; ++i) {
    auto node = std::make_unique<Node>(options_.indexed_matching);
    if (options_.threaded) {
      node->queue =
          std::make_unique<BoundedQueue<Task>>(options_.node_queue_capacity);
    }
    fresh.push_back(std::move(node));
  }

  obs::ScopedSpan span(tracer_, "invalidb.resize");

  // ---- Stop the world: block new submissions, drain in-flight tasks ----
  std::unique_lock<std::shared_mutex> topology(topology_mu_);
  // Mark the lock held so replay dispatch below may re-enter this cluster
  // through a sink without self-deadlocking on the topology lock.
  t_held_topology.push_back(this);
  const Micros pause_start = clock_->NowMicros();
  if (options_.threaded) {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait(lock, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }

  // The old grid is quiescent: every submitted task has executed, so
  // every buffered change event has already been matched and delivered.
  // eval_time must dominate every drained commit_time or those events
  // would re-match on the new grid as duplicates; the wall clock alone is
  // not enough because stream commit timestamps may run ahead of it, so
  // take the max with the highest ingested commit_time. Events that
  // arrive after the cutover land on the new grid directly (and also in
  // the replay filter, which stays as the §4.1 activation-race replay a
  // fresh registration would perform).
  const Micros eval_time =
      std::max(clock_->NowMicros(),
               last_ingested_commit_.load(std::memory_order_relaxed));

  std::vector<std::pair<std::string, Subscription>> registry;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    registry.reserve(subscriptions_.size());
    for (const auto& [key, sub] : subscriptions_) {
      registry.emplace_back(key, sub);
    }
  }
  std::sort(registry.begin(), registry.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<db::ChangeEvent> replay;
  {
    std::lock_guard<std::mutex> lock(replay_mu_);
    for (const db::ChangeEvent& ev : replay_buffer_) {
      if (ev.commit_time > eval_time) replay.push_back(ev);
    }
  }

  const auto new_column = [&](const std::string& key) {
    return static_cast<size_t>(Hash64(key, /*seed=*/0x9c0d)) %
           new_query_partitions;
  };
  const auto new_row = [&](const std::string& id) {
    return static_cast<size_t>(Hash64(id, /*seed=*/0x51f1)) %
           new_object_partitions;
  };

  uint64_t events_replayed = 0;
  NotifyScratch scratch;
  std::vector<std::vector<std::string>> ids_by_row(new_object_partitions);
  for (auto& [key, sub] : registry) {
    db::Query base(sub.query.table(), sub.query.filter());
    std::vector<std::string> ids;
    if (evaluate) {
      // Registry-rebuild path: authoritative re-evaluation, identical to
      // RestartNode. Also re-seeds the sorted layer, whose window may
      // have drifted if nodes died before this resize.
      const std::vector<db::Document> result = evaluate(base);
      if (sub.stateful) {
        sorted_layer_.RemoveQuery(key);
        sorted_layer_.AddQuery(sub.query, key, result);
      }
      ids.reserve(result.size());
      for (const db::Document& doc : result) ids.push_back(doc.id);
    } else {
      // State handoff: this query's matching set is the union of its
      // per-row shards on the (healthy, drained) old grid. Dead nodes
      // hold empty matchers — recover through the evaluator path instead.
      const size_t old_col = ColumnOf(key);
      for (size_t row = 0; row < options_.object_partitions; ++row) {
        std::vector<std::string> shard =
            NodeAt(old_col, row).matcher.MatchingIdsOf(key);
        ids.insert(ids.end(), std::make_move_iterator(shard.begin()),
                   std::make_move_iterator(shard.end()));
      }
      std::sort(ids.begin(), ids.end());
    }

    // Install directly into the target cell — its worker is not running
    // yet, so the matcher is exclusively ours.
    for (auto& row_ids : ids_by_row) row_ids.clear();
    for (std::string& id : ids) {
      ids_by_row[new_row(id)].push_back(std::move(id));
    }
    const size_t col = new_column(key);
    for (size_t row = 0; row < new_object_partitions; ++row) {
      Node& node = *fresh[row * new_query_partitions + col];
      node.matcher.AddQuery(base, key, std::move(ids_by_row[row]));
      for (const db::ChangeEvent& ev : replay) {
        if (new_row(ev.after.id) != row) continue;
        events_replayed++;
        scratch.raw.clear();
        node.matcher.MatchSingle(key, ev, &scratch.raw);
        if (!scratch.raw.empty()) Dispatch(scratch, ev.after);
      }
    }
  }

  // ---- Cutover ----
  std::vector<std::unique_ptr<Node>> retired = std::move(nodes_);
  nodes_ = std::move(fresh);
  options_.query_partitions = new_query_partitions;
  options_.object_partitions = new_object_partitions;
  if (tracer_ != nullptr) {
    for (auto& node : nodes_) node->matcher.set_tracer(tracer_);
  }
  if (options_.threaded) {
    for (auto& node : nodes_) {
      node->worker =
          std::thread(&InvalidbCluster::WorkerLoop, this, node.get());
    }
  }

  const Micros pause_end = clock_->NowMicros();
  const size_t old_n = retired.size();
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stats_.rebalance_resizes++;
    stats_.rebalance_queries_reinstalled += registry.size();
    stats_.rebalance_events_replayed += events_replayed;
    if (new_n > old_n) {
      stats_.rebalance_nodes_added += new_n - old_n;
    } else {
      stats_.rebalance_nodes_removed += old_n - new_n;
    }
    stats_.rebalance_pause_us_total +=
        static_cast<uint64_t>(pause_end - pause_start);
    migration_pause_.Record(MicrosToMillis(pause_end - pause_start));
  }
  span.Annotate("queries_reinstalled", std::to_string(registry.size()));
  span.Annotate("pause_us", std::to_string(pause_end - pause_start));
  t_held_topology.pop_back();
  topology.unlock();

  // ---- Teardown of the retired grid, outside the pause window ----
  if (options_.threaded) {
    for (auto& node : retired) node->queue->Close();
    for (auto& node : retired) {
      if (node->worker.joinable()) node->worker.join();
    }
  }
  return registry.size();
}

Histogram InvalidbCluster::MigrationPauseHistogram() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return migration_pause_;
}

bool InvalidbCluster::NodeAlive(size_t node_index) const {
  TopologyReadGuard topology(&topology_mu_, this);
  if (node_index >= nodes_.size()) return false;
  return nodes_[node_index]->alive.load(std::memory_order_acquire);
}

size_t InvalidbCluster::AliveCount() const {
  TopologyReadGuard topology(&topology_mu_, this);
  size_t alive = 0;
  for (const auto& node : nodes_) {
    if (node->alive.load(std::memory_order_acquire)) alive++;
  }
  return alive;
}

std::vector<NodeHealth> InvalidbCluster::Health() const {
  TopologyReadGuard topology(&topology_mu_, this);
  std::vector<NodeHealth> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    NodeHealth h;
    h.alive = node->alive.load(std::memory_order_acquire);
    h.last_heartbeat = node->last_heartbeat.load(std::memory_order_relaxed);
    out.push_back(h);
  }
  return out;
}

std::vector<std::string> InvalidbCluster::RegisteredKeys() const {
  std::lock_guard<std::mutex> lock(subs_mu_);
  std::vector<std::string> keys;
  keys.reserve(subscriptions_.size());
  for (const auto& [key, sub] : subscriptions_) keys.push_back(key);
  return keys;
}

void InvalidbCluster::Flush() {
  if (!options_.threaded) return;
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

ClusterStats InvalidbCluster::stats() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return stats_;
}

void InvalidbCluster::set_tracer(obs::Tracer* tracer) {
  TopologyReadGuard topology(&topology_mu_, this);
  tracer_ = tracer;
  for (auto& node : nodes_) node->matcher.set_tracer(tracer);
}

size_t InvalidbCluster::NumNodes() const {
  TopologyReadGuard topology(&topology_mu_, this);
  return nodes_.size();
}

Histogram InvalidbCluster::LatencyHistogram() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return latency_;
}

Histogram InvalidbCluster::EventsPerBatchHistogram() const {
  std::lock_guard<std::mutex> lock(sink_mu_);
  return events_per_batch_;
}

void InvalidbCluster::SetBatchSink(NotificationBatchSink sink) {
  std::lock_guard<std::mutex> lock(sink_mu_);
  batch_sink_ = std::move(sink);
}

std::vector<size_t> InvalidbCluster::QueriesPerNode() const {
  TopologyReadGuard topology(&topology_mu_, this);
  std::vector<size_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node->matcher.QueryCount());
  return out;
}

std::vector<uint64_t> InvalidbCluster::OpsPerNode() const {
  TopologyReadGuard topology(&topology_mu_, this);
  std::vector<uint64_t> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    out.push_back(node->matcher.processed_ops());
  }
  return out;
}

}  // namespace quaestor::invalidb
