#ifndef QUAESTOR_INVALIDB_QUERY_INDEX_H_
#define QUAESTOR_INVALIDB_QUERY_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/query.h"
#include "db/value.h"

namespace quaestor::invalidb {

/// Candidate-set composition returned by one CollectCandidates call.
struct CandidateStats {
  size_t index_candidates = 0;     // reached via eq/range structures
  size_t residual_candidates = 0;  // non-indexable queries (always checked)
};

/// A predicate index over installed queries: the inversion of a table
/// index. Instead of "value → documents", it maintains, per table,
///   (a) path → operand → queries with an equality/$in conjunct there,
///   (b) path → interval list for range/$prefix conjuncts, and
///   (c) a residual list of queries with no indexable conjunct
///       ($or / $not / $exists / $ne roots, …).
///
/// CollectCandidates(table, body) returns a superset of the queries whose
/// predicate matches `body`: one analysis-selected conjunct per query is
/// a necessary condition for the whole (conjunctive) predicate, so a
/// query missing from the candidate set provably cannot match. False
/// candidates are harmless (the caller re-evaluates the full predicate);
/// false negatives would lose invalidations, so anything not provably
/// indexable lands in the residual list.
///
/// Note the asymmetry with matching: candidates cover queries the record
/// may *enter*. Queries the record may *leave* are the ones it currently
/// matches, which the matching node tracks exactly (its former-match
/// state is the before-image membership) and unions in separately.
///
/// Not thread-safe; owned by a single matching node.
class QueryIndex {
 public:
  QueryIndex() = default;

  QueryIndex(const QueryIndex&) = delete;
  QueryIndex& operator=(const QueryIndex&) = delete;

  /// Indexes a query under `key`. Returns true if an indexable conjunct
  /// was found, false if the query joined the residual list.
  bool Add(const std::string& key, const db::Query& query);

  /// Removes a previously added query. No-op for unknown keys.
  void Remove(const std::string& key);

  /// Appends (pointers to) the keys of every installed query on `table`
  /// whose predicate may match `body`. Pointers stay valid until the next
  /// Add/Remove. May contain duplicates (e.g. an array field hitting one
  /// $in entry twice); callers dedup.
  CandidateStats CollectCandidates(const std::string& table,
                                   const db::Value& body,
                                   std::vector<const std::string*>* out) const;

  size_t size() const { return entries_.size(); }
  /// Queries with no indexable conjunct (checked against every change).
  size_t residual_size() const { return residual_total_; }

 private:
  /// Where a query's chosen conjunct was filed, so Remove can unlink it.
  enum class Slot { kEq, kRange, kResidual };

  struct Entry {
    std::string key;
    Slot slot = Slot::kResidual;
    std::string table;
    std::string path;                // kEq / kRange
    std::vector<db::Value> eq_values;  // kEq: operand, or $in elements
  };

  /// One range-indexed query: candidate iff the record's value at the
  /// path falls inside [lo, hi] (respecting openness) within `cls`.
  struct Interval {
    db::Value lo, hi;
    bool has_lo = false, has_hi = false;
    bool lo_incl = false, hi_incl = false;
    int cls = -1;  // range class: 0 bool, 1 number, 2 string
    Entry* entry = nullptr;
  };

  struct PathIndex {
    std::map<db::Value, std::vector<Entry*>, db::ValueLess> eq;
    std::vector<Interval> ranges;
  };

  struct TableIndex {
    std::unordered_map<std::string, PathIndex> paths;
    std::vector<Entry*> residual;
  };

  /// Analyzes the predicate and files the entry; fills entry slot fields.
  /// Returns false if only the residual list was possible.
  bool FileEntry(Entry* entry, const db::Query& query);

  std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, TableIndex> tables_;
  size_t residual_total_ = 0;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_QUERY_INDEX_H_
