#include "invalidb/sorted_layer.h"

#include <algorithm>

namespace quaestor::invalidb {

SortedQueryState::SortedQueryState(db::Query query,
                                   std::vector<db::Document> initial_result)
    : query_(std::move(query)) {
  members_.reserve(initial_result.size());
  for (db::Document& doc : initial_result) {
    members_.push_back(Member{doc.id, std::move(doc.body)});
  }
  std::sort(members_.begin(), members_.end(),
            [this](const Member& a, const Member& b) {
              return query_.OrderedBefore(a.body, a.id, b.body, b.id);
            });
}

size_t SortedQueryState::FindLocked(const std::string& id) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].id == id) return i;
  }
  return static_cast<size_t>(-1);
}

size_t SortedQueryState::LowerBoundLocked(const db::Document& doc) const {
  size_t lo = 0;
  size_t hi = members_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (query_.OrderedBefore(members_[mid].body, members_[mid].id, doc.body,
                             doc.id)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<std::string> SortedQueryState::WindowIdsLocked() const {
  const size_t offset = static_cast<size_t>(
      std::max<int64_t>(0, query_.offset()));
  size_t end = members_.size();
  if (query_.limit() >= 0) {
    end = std::min(end, offset + static_cast<size_t>(query_.limit()));
  }
  std::vector<std::string> out;
  for (size_t i = offset; i < end && i < members_.size(); ++i) {
    out.push_back(members_[i].id);
  }
  return out;
}

std::vector<std::string> SortedQueryState::WindowIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return WindowIdsLocked();
}

size_t SortedQueryState::TotalMatching() const {
  std::lock_guard<std::mutex> lock(mu_);
  return members_.size();
}

void SortedQueryState::OnRawEvent(NotificationType raw_type,
                                  const db::Document& doc, Micros event_time,
                                  std::vector<Notification>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<std::string> old_window = WindowIdsLocked();

  // Apply the mutation to the full ordered set.
  const size_t existing = FindLocked(doc.id);
  const bool had = existing != static_cast<size_t>(-1);
  if (raw_type == NotificationType::kRemove) {
    if (had) members_.erase(members_.begin() + static_cast<long>(existing));
  } else {  // add or change: (re)position with the new body
    if (had) members_.erase(members_.begin() + static_cast<long>(existing));
    const size_t pos = LowerBoundLocked(doc);
    members_.insert(members_.begin() + static_cast<long>(pos),
                    Member{doc.id, doc.body});
  }

  const std::vector<std::string> new_window = WindowIdsLocked();

  // Diff the visible windows.
  auto index_of = [](const std::vector<std::string>& w,
                     const std::string& id) -> int64_t {
    for (size_t i = 0; i < w.size(); ++i) {
      if (w[i] == id) return static_cast<int64_t>(i);
    }
    return -1;
  };

  auto emit = [&](NotificationType t, const std::string& id, int64_t idx) {
    Notification n;
    n.type = t;
    n.query_key = query_.NormalizedKey();
    n.record_id = id;
    n.event_time = event_time;
    n.new_index = idx;
    out->push_back(std::move(n));
  };

  // Records leaving the window.
  for (const std::string& id : old_window) {
    if (index_of(new_window, id) < 0) {
      emit(NotificationType::kRemove, id, -1);
    }
  }
  // Records entering, moving, or changing within the window.
  for (size_t i = 0; i < new_window.size(); ++i) {
    const std::string& id = new_window[i];
    const int64_t old_idx = index_of(old_window, id);
    if (old_idx < 0) {
      emit(NotificationType::kAdd, id, static_cast<int64_t>(i));
    } else if (old_idx != static_cast<int64_t>(i)) {
      emit(NotificationType::kChangeIndex, id, static_cast<int64_t>(i));
    } else if (id == doc.id && raw_type == NotificationType::kChange) {
      emit(NotificationType::kChange, id, static_cast<int64_t>(i));
    }
  }
}

void SortedLayer::AddQuery(const db::Query& query,
                           const std::string& query_key,
                           std::vector<db::Document> initial_result) {
  auto state =
      std::make_shared<SortedQueryState>(query, std::move(initial_result));
  std::lock_guard<std::mutex> lock(mu_);
  states_[query_key] = std::move(state);
}

void SortedLayer::RemoveQuery(const std::string& query_key) {
  std::lock_guard<std::mutex> lock(mu_);
  states_.erase(query_key);
}

bool SortedLayer::Handles(const std::string& query_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.find(query_key) != states_.end();
}

void SortedLayer::OnRawEvent(const std::string& query_key,
                             NotificationType raw_type,
                             const db::Document& doc, Micros event_time,
                             std::vector<Notification>* out) {
  std::shared_ptr<SortedQueryState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = states_.find(query_key);
    if (it == states_.end()) return;
    state = it->second;
  }
  state->OnRawEvent(raw_type, doc, event_time, out);
}

std::vector<std::string> SortedLayer::WindowIds(
    const std::string& query_key) const {
  std::shared_ptr<SortedQueryState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = states_.find(query_key);
    if (it == states_.end()) return {};
    state = it->second;
  }
  return state->WindowIds();
}

size_t SortedLayer::QueryCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return states_.size();
}

}  // namespace quaestor::invalidb
