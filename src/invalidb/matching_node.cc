#include "invalidb/matching_node.h"

#include <algorithm>

namespace quaestor::invalidb {

std::string_view NotificationTypeName(NotificationType t) {
  switch (t) {
    case NotificationType::kAdd:
      return "add";
    case NotificationType::kRemove:
      return "remove";
    case NotificationType::kChange:
      return "change";
    case NotificationType::kChangeIndex:
      return "changeIndex";
  }
  return "unknown";
}

namespace {

std::string RecordKey(const db::Document& doc) {
  std::string key;
  key.reserve(doc.table.size() + 1 + doc.id.size());
  key += doc.table;
  key += '/';
  key += doc.id;
  return key;
}

}  // namespace

void MatchingNode::AddQuery(const db::Query& query,
                            const std::string& query_key,
                            std::vector<std::string> initial_matching_ids) {
  RemoveQuery(query_key);  // reinstallation resets all per-query state
  QueryState& st = queries_[query_key];
  st.query = query;
  st.key = query_key;
  for (std::string& id : initial_matching_ids) {
    by_record_[query.table() + "/" + id].insert(&st);
    st.matching_ids.insert(std::move(id));
  }
  if (use_index_) index_.Add(query_key, query);
  query_count_.store(queries_.size(), std::memory_order_relaxed);
}

void MatchingNode::RemoveQuery(const std::string& query_key) {
  auto it = queries_.find(query_key);
  if (it == queries_.end()) return;
  QueryState& st = it->second;
  for (const std::string& id : st.matching_ids) {
    auto rec = by_record_.find(st.query.table() + "/" + id);
    if (rec == by_record_.end()) continue;
    rec->second.erase(&st);
    if (rec->second.empty()) by_record_.erase(rec);
  }
  if (use_index_) index_.Remove(query_key);
  queries_.erase(it);
  query_count_.store(queries_.size(), std::memory_order_relaxed);
}

void MatchingNode::Clear() {
  std::vector<std::string> keys;
  keys.reserve(queries_.size());
  for (const auto& [key, st] : queries_) keys.push_back(key);
  for (const std::string& key : keys) RemoveQuery(key);
}

bool MatchingNode::HasQuery(const std::string& query_key) const {
  return queries_.find(query_key) != queries_.end();
}

void MatchingNode::MatchQuery(QueryState& st, const db::ChangeEvent& event,
                              const std::string& record_key,
                              std::vector<Notification>* out) {
  const db::Document& doc = event.after;
  if (st.query.table() != doc.table) return;
  const bool was_match = st.matching_ids.count(doc.id) > 0;
  const bool is_match = !doc.deleted && st.query.Matches(doc.body);
  if (!was_match && !is_match) return;

  Notification n;
  n.query_key = st.key;
  n.record_id = doc.id;
  n.event_time = event.commit_time;
  if (was_match && is_match) {
    n.type = NotificationType::kChange;
  } else if (!was_match && is_match) {
    n.type = NotificationType::kAdd;
    st.matching_ids.insert(doc.id);
    by_record_[record_key].insert(&st);
  } else {  // was_match && !is_match
    n.type = NotificationType::kRemove;
    st.matching_ids.erase(doc.id);
    auto rec = by_record_.find(record_key);
    if (rec != by_record_.end()) {
      rec->second.erase(&st);
      if (rec->second.empty()) by_record_.erase(rec);
    }
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  out->push_back(std::move(n));
}

MatchingNode::MatchStats MatchingNode::Match(const db::ChangeEvent& event,
                                             std::vector<Notification>* out) {
  obs::ScopedSpan span(tracer_, "invalidb.match");
  if (use_index_) return MatchIndexed(event, out, /*reuse_probe=*/false);

  processed_ops_.fetch_add(1, std::memory_order_relaxed);
  MatchStats stats;
  stats.installed = queries_.size();
  const std::string record_key = RecordKey(event.after);
  for (auto& [key, st] : queries_) {
    MatchQuery(st, event, record_key, out);
  }
  stats.checked = stats.installed;
  match_checks_.fetch_add(stats.checked, std::memory_order_relaxed);
  match_checks_naive_.fetch_add(stats.installed, std::memory_order_relaxed);
  return stats;
}

MatchingNode::MatchStats MatchingNode::MatchIndexed(
    const db::ChangeEvent& event, std::vector<Notification>* out,
    bool reuse_probe) {
  processed_ops_.fetch_add(1, std::memory_order_relaxed);
  MatchStats stats;
  stats.installed = queries_.size();
  const std::string record_key = RecordKey(event.after);

  // Candidate union, deduped by per-query epoch stamps:
  //   (a) queries whose indexed conjunct the after-image can satisfy, and
  //   (b) queries currently containing the record (before-image members),
  //       so leaves are never missed.
  ++epoch_;
  candidates_.clear();
  if (!reuse_probe) {
    candidate_keys_.clear();
    last_probe_ = index_.CollectCandidates(event.after.table,
                                           event.after.body,
                                           &candidate_keys_);
  }
  stats.index_candidates = last_probe_.index_candidates;
  stats.residual_candidates = last_probe_.residual_candidates;
  for (const std::string* key : candidate_keys_) {
    auto it = queries_.find(*key);
    if (it == queries_.end()) continue;
    QueryState& st = it->second;
    if (st.epoch == epoch_) continue;
    st.epoch = epoch_;
    candidates_.push_back(&st);
  }
  if (auto rec = by_record_.find(record_key); rec != by_record_.end()) {
    for (QueryState* st : rec->second) {
      if (st->epoch == epoch_) continue;
      st->epoch = epoch_;
      candidates_.push_back(st);
    }
  }

  // Evaluation is separated from collection: MatchQuery mutates
  // by_record_, which must not be iterated concurrently.
  for (QueryState* st : candidates_) {
    MatchQuery(*st, event, record_key, out);
  }
  stats.checked = candidates_.size();
  match_checks_.fetch_add(stats.checked, std::memory_order_relaxed);
  match_checks_naive_.fetch_add(stats.installed, std::memory_order_relaxed);
  return stats;
}

MatchingNode::MatchStats MatchingNode::MatchBatch(
    const std::vector<db::ChangeEvent>& events,
    std::vector<Notification>* out, std::vector<size_t>* offsets) {
  obs::ScopedSpan span(tracer_, "invalidb.match");
  MatchStats total;
  offsets->clear();
  offsets->reserve(events.size() + 1);
  offsets->push_back(out->size());
  const db::ChangeEvent* prev = nullptr;
  for (const db::ChangeEvent& event : events) {
    MatchStats s;
    if (use_index_) {
      // candidate_keys_ holds pointers into the index; they stay valid
      // across the batch because no query is added or removed between
      // events of one batch.
      const bool reuse = prev != nullptr &&
                         prev->after.table == event.after.table &&
                         prev->after.body == event.after.body;
      s = MatchIndexed(event, out, reuse);
      prev = &event;
    } else {
      s = Match(event, out);
    }
    total.checked += s.checked;
    total.installed += s.installed;
    total.index_candidates += s.index_candidates;
    total.residual_candidates += s.residual_candidates;
    offsets->push_back(out->size());
  }
  return total;
}

void MatchingNode::MatchSingle(const std::string& query_key,
                               const db::ChangeEvent& event,
                               std::vector<Notification>* out) {
  auto it = queries_.find(query_key);
  if (it == queries_.end()) return;
  MatchQuery(it->second, event, RecordKey(event.after), out);
}

std::vector<std::string> MatchingNode::MatchingIdsOf(
    const std::string& query_key) const {
  std::vector<std::string> ids;
  auto it = queries_.find(query_key);
  if (it == queries_.end()) return ids;
  ids.assign(it->second.matching_ids.begin(), it->second.matching_ids.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace quaestor::invalidb
