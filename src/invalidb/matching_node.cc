#include "invalidb/matching_node.h"

namespace quaestor::invalidb {

std::string_view NotificationTypeName(NotificationType t) {
  switch (t) {
    case NotificationType::kAdd:
      return "add";
    case NotificationType::kRemove:
      return "remove";
    case NotificationType::kChange:
      return "change";
    case NotificationType::kChangeIndex:
      return "changeIndex";
  }
  return "unknown";
}

void MatchingNode::AddQuery(const db::Query& query,
                            const std::string& query_key,
                            std::vector<std::string> initial_matching_ids) {
  QueryState st;
  st.query = query;
  st.key = query_key;
  for (std::string& id : initial_matching_ids) {
    st.matching_ids.insert(std::move(id));
  }
  queries_[query_key] = std::move(st);
  query_count_.store(queries_.size(), std::memory_order_relaxed);
}

void MatchingNode::RemoveQuery(const std::string& query_key) {
  queries_.erase(query_key);
  query_count_.store(queries_.size(), std::memory_order_relaxed);
}

bool MatchingNode::HasQuery(const std::string& query_key) const {
  return queries_.find(query_key) != queries_.end();
}

void MatchingNode::MatchQuery(QueryState& st, const db::ChangeEvent& event,
                              std::vector<Notification>* out) {
  const db::Document& doc = event.after;
  if (st.query.table() != doc.table) return;
  const bool was_match = st.matching_ids.count(doc.id) > 0;
  const bool is_match = !doc.deleted && st.query.Matches(doc.body);
  if (!was_match && !is_match) return;

  Notification n;
  n.query_key = st.key;
  n.record_id = doc.id;
  n.event_time = event.commit_time;
  if (was_match && is_match) {
    n.type = NotificationType::kChange;
  } else if (!was_match && is_match) {
    n.type = NotificationType::kAdd;
    st.matching_ids.insert(doc.id);
  } else {  // was_match && !is_match
    n.type = NotificationType::kRemove;
    st.matching_ids.erase(doc.id);
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  out->push_back(std::move(n));
}

void MatchingNode::Match(const db::ChangeEvent& event,
                         std::vector<Notification>* out) {
  processed_ops_.fetch_add(1, std::memory_order_relaxed);
  for (auto& [key, st] : queries_) {
    MatchQuery(st, event, out);
  }
}

void MatchingNode::MatchSingle(const std::string& query_key,
                               const db::ChangeEvent& event,
                               std::vector<Notification>* out) {
  auto it = queries_.find(query_key);
  if (it == queries_.end()) return;
  MatchQuery(it->second, event, out);
}

}  // namespace quaestor::invalidb
