#ifndef QUAESTOR_INVALIDB_RELIABLE_QUEUE_H_
#define QUAESTOR_INVALIDB_RELIABLE_QUEUE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "kv/kv_store.h"

namespace quaestor::invalidb {

/// At-least-once delivery settings for one transport queue direction.
/// Disabled by default: messages are pushed raw, exactly as the seed
/// transport did, so existing behaviour (and seeds) are unchanged.
struct ReliableOptions {
  bool enabled = false;
  /// First retransmit after this long without an ack; doubles per retry.
  Micros retransmit_timeout = 200 * kMicrosPerMilli;
  Micros max_backoff = 5 * kMicrosPerSecond;
  /// Uniform jitter fraction added to every backoff (decorrelates
  /// retransmit storms).
  double jitter = 0.2;
  uint64_t seed = 1;
  /// Backpressure: Send rejects (kResourceExhausted) while this many
  /// messages are in flight unacked. 0 = unlimited — the default, because
  /// the transport's call sites ignore Send's status and must keep the
  /// seed's fire-and-forget semantics.
  size_t max_inflight = 0;
};

/// Wire helpers for the sequence-numbered envelope (exposed for tests and
/// the transport fuzzer). An envelope wraps an opaque payload string:
///   {"rs": sender, "rn": seq, "rc": checksum, "rp": payload}
/// Acks travel on "<queue>:acks" as {"rs": sender, "ra": seq}.
/// The checksum covers sender+seq+payload, so a corrupted envelope is
/// rejected (and never acked) instead of delivering mutated bytes.
namespace reliable {

struct Envelope {
  std::string sender;
  uint64_t seq = 0;
  std::string payload;
};

std::string Encode(const std::string& sender, uint64_t seq,
                   const std::string& payload);
/// NotFound when `message` is not an envelope (raw passthrough);
/// Corruption when it is one but fails the checksum.
Result<Envelope> Decode(const std::string& message);

std::string EncodeAck(const std::string& sender, uint64_t seq);
Result<Envelope> DecodeAck(const std::string& message);  // payload unused

}  // namespace reliable

/// The sending half: stamps every payload with a per-sender sequence
/// number, keeps it buffered until acked, and retransmits with
/// exponential backoff + seeded jitter. Thread-safe (the transport's
/// background threads tick senders while callers send).
class ReliableSender {
 public:
  ReliableSender(Clock* clock, kv::KvStore* kv, std::string queue,
                 std::string sender_id, ReliableOptions options);

  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  /// Ships one payload. Raw push when the reliable layer is disabled.
  /// kResourceExhausted (payload NOT enqueued) when the unacked window is
  /// at max_inflight — the sender is outrunning the receiver and piling
  /// more onto the queue only feeds the retransmit storm.
  Status Send(std::string payload);

  /// Drains the ack queue and forgets acked messages.
  void ProcessAcks();

  /// Retransmits every message whose ack deadline passed. Returns how
  /// many were re-sent. Early-outs without touching the unacked map when
  /// no deadline has passed (the earliest deadline is tracked on Send and
  /// recomputed after each real scan), so idle ticks are O(1).
  size_t RetransmitDue();

  /// ProcessAcks + RetransmitDue (call from any pump loop).
  void Tick() {
    if (!options_.enabled) return;
    ProcessAcks();
    RetransmitDue();
  }

  size_t unacked() const;
  uint64_t redeliveries() const;
  /// Sends rejected by the max_inflight window.
  uint64_t inflight_rejections() const;
  /// Full scans of the unacked map performed by RetransmitDue (ticks that
  /// early-out on the deadline check do not count).
  uint64_t retransmit_scans() const;
  const ReliableOptions& options() const { return options_; }

 private:
  struct Pending {
    std::string payload;
    Micros next_retransmit = 0;
    Micros backoff = 0;
  };

  Micros JitteredLocked(Micros backoff);

  Clock* clock_;
  kv::KvStore* kv_;
  std::string queue_;
  std::string ack_queue_;
  std::string sender_id_;
  ReliableOptions options_;

  static constexpr Micros kNoDeadline = std::numeric_limits<Micros>::max();

  mutable std::mutex mu_;
  Rng rng_;
  uint64_t next_seq_ = 1;
  std::map<uint64_t, Pending> unacked_;
  uint64_t redeliveries_ = 0;
  /// Every unacked message's next_retransmit, kept exactly in sync with
  /// unacked_ (inserted on Send, erased on ack, replaced on retransmit).
  /// *begin() is the earliest deadline, so the idle-tick early-out never
  /// goes stale: acking the message that held the minimum removes its
  /// deadline here too, instead of leaving a stale-low cached minimum
  /// that would trigger a needless full scan on the next tick.
  std::multiset<Micros> deadlines_;
  uint64_t retransmit_scans_ = 0;
  uint64_t inflight_rejections_ = 0;
};

/// The receiving half: acks every envelope (duplicates included — the
/// original ack may have been lost), drops already-delivered sequence
/// numbers, and buffers out-of-order arrivals until the gap fills, so the
/// handler sees each sender's payloads exactly once, in send order.
/// Non-envelope messages pass through verbatim (seed compatibility).
class ReliableReceiver {
 public:
  using Handler = std::function<void(const std::string& payload)>;

  ReliableReceiver(kv::KvStore* kv, std::string queue,
                   ReliableOptions options);

  ReliableReceiver(const ReliableReceiver&) = delete;
  ReliableReceiver& operator=(const ReliableReceiver&) = delete;

  /// Drains the queue, invoking `handler` for every deliverable payload.
  /// Returns how many payloads reached the handler.
  size_t Poll(const Handler& handler);

  /// Blocking variant: waits up to `timeout_micros` for the first
  /// message, then drains the rest non-blocking.
  size_t PollBlocking(Micros timeout_micros, const Handler& handler);

  uint64_t duplicates_dropped() const;
  /// Out-of-order payloads currently parked waiting for a gap to fill.
  size_t pending() const;

 private:
  /// Processes one raw queue message; returns payloads delivered.
  size_t Accept(const std::string& message, const Handler& handler);

  struct SenderState {
    uint64_t floor = 0;  // highest contiguously delivered seq
    std::map<uint64_t, std::string> pending;
  };

  kv::KvStore* kv_;
  std::string queue_;
  std::string ack_queue_;
  ReliableOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, SenderState> senders_;
  uint64_t duplicates_dropped_ = 0;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_RELIABLE_QUEUE_H_
