#include "invalidb/query_index.h"

#include <algorithm>

namespace quaestor::invalidb {

namespace {

using db::CompareOp;
using db::Predicate;
using db::Value;

/// True if every element of the $in operand is a non-null scalar the
/// index can see. A null element matches documents missing the field
/// entirely, which no value index covers.
bool InOperandIndexable(const Value& operand) {
  if (!operand.is_array() || operand.as_array().empty()) return false;
  for (const Value& e : operand.as_array()) {
    if (e.is_null()) return false;
  }
  return true;
}

}  // namespace

bool QueryIndex::FileEntry(Entry* entry, const db::Query& query) {
  entry->table = query.table();
  TableIndex& table = tables_[entry->table];

  std::vector<const Predicate*> conjuncts;
  db::TopLevelConjuncts(query.filter(), &conjuncts);

  // Preference order: equality (point bucket) beats $in (a few buckets)
  // beats range (interval-list probe); everything else is residual.
  const Predicate* eq = nullptr;
  const Predicate* in = nullptr;
  for (const Predicate* c : conjuncts) {
    if (c->op == CompareOp::kEq && !c->operand.is_null()) {
      eq = c;
      break;
    }
    if (in == nullptr && c->op == CompareOp::kIn &&
        InOperandIndexable(c->operand)) {
      in = c;
    }
  }
  if (eq != nullptr || in != nullptr) {
    const Predicate* chosen = eq != nullptr ? eq : in;
    entry->slot = Slot::kEq;
    entry->path = chosen->path;
    if (eq != nullptr) {
      entry->eq_values.push_back(chosen->operand);
    } else {
      for (const Value& e : chosen->operand.as_array()) {
        entry->eq_values.push_back(e);
      }
    }
    PathIndex& pidx = table.paths[entry->path];
    for (const Value& v : entry->eq_values) {
      std::vector<Entry*>& bucket = pidx.eq[v];
      // $in elements like [1, 1.0] collapse into one bucket; file once.
      if (bucket.empty() || bucket.back() != entry) bucket.push_back(entry);
    }
    return true;
  }

  // Range/$prefix: intersect all same-class bounds on the first indexed
  // path that carries one. Other conjuncts stay verification-only.
  Interval iv;
  std::string path;
  for (const Predicate* c : conjuncts) {
    const bool range =
        db::IsRangeOp(c->op) && db::RangeClassOf(c->operand) >= 0;
    const bool prefix = c->op == CompareOp::kPrefix && c->operand.is_string();
    if (!range && !prefix) continue;
    if (path.empty()) {
      path = c->path;
      iv.cls = prefix ? 2 : db::RangeClassOf(c->operand);
    } else if (path != c->path) {
      continue;
    }
    if ((prefix ? 2 : db::RangeClassOf(c->operand)) != iv.cls) continue;
    auto tighten_lo = [&iv](const Value& v, bool incl) {
      const int c2 = !iv.has_lo ? 1 : Value::Compare(v, iv.lo);
      if (c2 > 0 || (c2 == 0 && !incl)) {
        iv.lo = v;
        iv.has_lo = true;
        iv.lo_incl = incl;
      }
    };
    auto tighten_hi = [&iv](const Value& v, bool incl) {
      const int c2 = !iv.has_hi ? -1 : Value::Compare(v, iv.hi);
      if (c2 < 0 || (c2 == 0 && !incl)) {
        iv.hi = v;
        iv.has_hi = true;
        iv.hi_incl = incl;
      }
    };
    switch (c->op) {
      case CompareOp::kGt:
        tighten_lo(c->operand, false);
        break;
      case CompareOp::kGte:
        tighten_lo(c->operand, true);
        break;
      case CompareOp::kLt:
        tighten_hi(c->operand, false);
        break;
      case CompareOp::kLte:
        tighten_hi(c->operand, true);
        break;
      case CompareOp::kPrefix: {
        tighten_lo(c->operand, true);
        std::string upper;
        if (db::PrefixUpperBound(c->operand.as_string(), &upper)) {
          tighten_hi(Value(std::move(upper)), false);
        }
        break;
      }
      default:
        break;
    }
  }
  if (!path.empty() && (iv.has_lo || iv.has_hi)) {
    entry->slot = Slot::kRange;
    entry->path = path;
    iv.entry = entry;
    table.paths[path].ranges.push_back(std::move(iv));
    return true;
  }

  entry->slot = Slot::kResidual;
  table.residual.push_back(entry);
  residual_total_++;
  return false;
}

bool QueryIndex::Add(const std::string& key, const db::Query& query) {
  Remove(key);  // reinstallation replaces the previous filing
  auto entry = std::make_unique<Entry>();
  entry->key = key;
  Entry* raw = entry.get();
  entries_[key] = std::move(entry);
  return FileEntry(raw, query);
}

void QueryIndex::Remove(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  Entry* entry = it->second.get();
  auto table_it = tables_.find(entry->table);
  if (table_it != tables_.end()) {
    TableIndex& table = table_it->second;
    switch (entry->slot) {
      case Slot::kEq: {
        auto path_it = table.paths.find(entry->path);
        if (path_it != table.paths.end()) {
          PathIndex& pidx = path_it->second;
          for (const Value& v : entry->eq_values) {
            auto bucket = pidx.eq.find(v);
            if (bucket == pidx.eq.end()) continue;
            auto& vec = bucket->second;
            vec.erase(std::remove(vec.begin(), vec.end(), entry), vec.end());
            if (vec.empty()) pidx.eq.erase(bucket);
          }
          if (pidx.eq.empty() && pidx.ranges.empty()) {
            table.paths.erase(path_it);
          }
        }
        break;
      }
      case Slot::kRange: {
        auto path_it = table.paths.find(entry->path);
        if (path_it != table.paths.end()) {
          PathIndex& pidx = path_it->second;
          auto& rs = pidx.ranges;
          rs.erase(std::remove_if(rs.begin(), rs.end(),
                                  [entry](const Interval& iv) {
                                    return iv.entry == entry;
                                  }),
                   rs.end());
          if (pidx.eq.empty() && pidx.ranges.empty()) {
            table.paths.erase(path_it);
          }
        }
        break;
      }
      case Slot::kResidual: {
        auto& rs = table.residual;
        rs.erase(std::remove(rs.begin(), rs.end(), entry), rs.end());
        residual_total_--;
        break;
      }
    }
    if (table.paths.empty() && table.residual.empty()) {
      tables_.erase(table_it);
    }
  }
  entries_.erase(it);
}

CandidateStats QueryIndex::CollectCandidates(
    const std::string& table, const db::Value& body,
    std::vector<const std::string*>* out) const {
  CandidateStats stats;
  auto table_it = tables_.find(table);
  if (table_it == tables_.end()) return stats;
  const TableIndex& tidx = table_it->second;

  for (const auto& [path, pidx] : tidx.paths) {
    const Value* v = body.Find(path);
    if (v == nullptr) continue;

    auto emit_eq = [&](const Value& key) {
      auto bucket = pidx.eq.find(key);
      if (bucket == pidx.eq.end()) return;
      for (Entry* e : bucket->second) {
        out->push_back(&e->key);
        stats.index_candidates++;
      }
    };
    emit_eq(*v);
    if (v->is_array()) {
      // Multikey equality: {p: x} also matches docs whose array at p
      // contains x.
      for (const Value& e : v->as_array()) emit_eq(e);
    }

    // Ranges only ever match scalar comparable values (type bracketing).
    const int cls = db::RangeClassOf(*v);
    if (cls >= 0 && !pidx.ranges.empty()) {
      for (const Interval& iv : pidx.ranges) {
        if (iv.cls != cls) continue;
        if (iv.has_lo) {
          const int c = Value::Compare(*v, iv.lo);
          if (c < 0 || (c == 0 && !iv.lo_incl)) continue;
        }
        if (iv.has_hi) {
          const int c = Value::Compare(*v, iv.hi);
          if (c > 0 || (c == 0 && !iv.hi_incl)) continue;
        }
        out->push_back(&iv.entry->key);
        stats.index_candidates++;
      }
    }
  }

  for (Entry* e : tidx.residual) {
    out->push_back(&e->key);
    stats.residual_candidates++;
  }
  return stats;
}

}  // namespace quaestor::invalidb
