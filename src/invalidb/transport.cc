#include "invalidb/transport.h"

#include <chrono>

namespace quaestor::invalidb {

namespace transport {

using db::Array;
using db::Object;
using db::Value;

namespace {

Value DocumentToSpec(const db::Document& doc) {
  Object obj;
  obj["table"] = Value(doc.table);
  obj["id"] = Value(doc.id);
  obj["version"] = Value(static_cast<int64_t>(doc.version));
  obj["write_time"] = Value(static_cast<int64_t>(doc.write_time));
  obj["deleted"] = Value(doc.deleted);
  obj["body"] = doc.body;
  return Value(std::move(obj));
}

Result<db::Document> DocumentFromSpec(const Value& spec) {
  const Value* table = spec.Find("table");
  const Value* id = spec.Find("id");
  const Value* body = spec.Find("body");
  if (table == nullptr || !table->is_string() || id == nullptr ||
      !id->is_string() || body == nullptr) {
    return Status::Corruption("malformed document spec");
  }
  db::Document doc;
  doc.table = table->as_string();
  doc.id = id->as_string();
  doc.body = *body;
  if (const Value* v = spec.Find("version"); v != nullptr && v->is_int()) {
    doc.version = static_cast<uint64_t>(v->as_int());
  }
  if (const Value* v = spec.Find("write_time"); v != nullptr && v->is_int()) {
    doc.write_time = v->as_int();
  }
  if (const Value* v = spec.Find("deleted"); v != nullptr && v->is_bool()) {
    doc.deleted = v->as_bool();
  }
  return doc;
}

}  // namespace

Result<db::Document> DecodeDocument(const Value& spec) {
  return DocumentFromSpec(spec);
}

std::string EncodeChange(const db::ChangeEvent& event) {
  Object msg;
  msg["op"] = Value("change");
  msg["kind"] = Value(static_cast<int64_t>(event.kind));
  msg["after"] = DocumentToSpec(event.after);
  msg["commit_time"] = Value(static_cast<int64_t>(event.commit_time));
  return Value(std::move(msg)).ToJson();
}

std::string EncodeRegister(const db::Query& query,
                           const std::vector<db::Document>& initial_result,
                           EventMask events, Micros evaluated_at) {
  Object msg;
  msg["op"] = Value("register");
  msg["query"] = query.ToSpec();
  msg["events"] = Value(static_cast<int64_t>(events));
  msg["evaluated_at"] = Value(static_cast<int64_t>(evaluated_at));
  Array docs;
  for (const db::Document& d : initial_result) {
    docs.push_back(DocumentToSpec(d));
  }
  msg["initial"] = Value(std::move(docs));
  return Value(std::move(msg)).ToJson();
}

std::string EncodeDeregister(const std::string& query_key) {
  Object msg;
  msg["op"] = Value("deregister");
  msg["key"] = Value(query_key);
  return Value(std::move(msg)).ToJson();
}

std::string EncodeNotification(const Notification& n) {
  Object msg;
  msg["type"] = Value(static_cast<int64_t>(n.type));
  msg["query_key"] = Value(n.query_key);
  msg["record_id"] = Value(n.record_id);
  msg["event_time"] = Value(static_cast<int64_t>(n.event_time));
  msg["new_index"] = Value(n.new_index);
  return Value(std::move(msg)).ToJson();
}

Result<Notification> DecodeNotification(const std::string& message) {
  auto parsed = Value::FromJson(message);
  if (!parsed.ok()) return parsed.status();
  const Value& msg = parsed.value();
  const Value* type = msg.Find("type");
  const Value* key = msg.Find("query_key");
  const Value* record = msg.Find("record_id");
  if (type == nullptr || !type->is_int() || key == nullptr ||
      !key->is_string() || record == nullptr || !record->is_string()) {
    return Status::Corruption("malformed notification");
  }
  Notification n;
  n.type = static_cast<NotificationType>(type->as_int());
  n.query_key = key->as_string();
  n.record_id = record->as_string();
  if (const Value* v = msg.Find("event_time"); v != nullptr && v->is_int()) {
    n.event_time = v->as_int();
  }
  if (const Value* v = msg.Find("new_index"); v != nullptr && v->is_int()) {
    n.new_index = v->as_int();
  }
  return n;
}

}  // namespace transport

// ---------------------------------------------------------------------------
// InvalidbRemote
// ---------------------------------------------------------------------------

InvalidbRemote::InvalidbRemote(kv::KvStore* kv, std::string prefix,
                               NotificationSink sink)
    : kv_(kv),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications"),
      sink_(std::move(sink)) {}

InvalidbRemote::~InvalidbRemote() { StopPolling(); }

void InvalidbRemote::RegisterQuery(
    const db::Query& query, const std::vector<db::Document>& initial_result,
    EventMask events, Micros evaluated_at) {
  kv_->QueuePush(requests_queue_, transport::EncodeRegister(
                                      query, initial_result, events,
                                      evaluated_at));
}

void InvalidbRemote::DeregisterQuery(const std::string& query_key) {
  kv_->QueuePush(requests_queue_, transport::EncodeDeregister(query_key));
}

void InvalidbRemote::OnChange(const db::ChangeEvent& event) {
  kv_->QueuePush(requests_queue_, transport::EncodeChange(event));
}

size_t InvalidbRemote::DrainNotifications() {
  size_t delivered = 0;
  for (;;) {
    auto msg = kv_->QueueTryPop(notifications_queue_);
    if (!msg.has_value()) return delivered;
    auto n = transport::DecodeNotification(*msg);
    if (n.ok()) {
      sink_(n.value());
      delivered++;
    }
  }
}

void InvalidbRemote::StartPolling() {
  if (polling_.exchange(true)) return;
  poller_ = std::thread([this] {
    while (polling_.load()) {
      auto msg = kv_->QueuePop(notifications_queue_,
                               /*timeout_micros=*/10 * kMicrosPerMilli);
      if (!msg.has_value()) continue;
      auto n = transport::DecodeNotification(*msg);
      if (n.ok()) sink_(n.value());
    }
  });
}

void InvalidbRemote::StopPolling() {
  if (!polling_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
}

// ---------------------------------------------------------------------------
// InvalidbWorker
// ---------------------------------------------------------------------------

InvalidbWorker::InvalidbWorker(Clock* clock, kv::KvStore* kv,
                               std::string prefix, InvalidbOptions options)
    : kv_(kv),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications") {
  cluster_ = std::make_unique<InvalidbCluster>(
      clock, options, [this](const Notification& n) {
        kv_->QueuePush(notifications_queue_,
                       transport::EncodeNotification(n));
      });
}

InvalidbWorker::~InvalidbWorker() { Stop(); }

void InvalidbWorker::HandleMessage(const std::string& message) {
  auto parsed = db::Value::FromJson(message);
  if (!parsed.ok() || !parsed->is_object()) {
    decode_errors_++;
    return;
  }
  const db::Value& msg = parsed.value();
  const db::Value* op = msg.Find("op");
  if (op == nullptr || !op->is_string()) {
    decode_errors_++;
    return;
  }
  if (op->as_string() == "register") {
    const db::Value* query_spec = msg.Find("query");
    const db::Value* events = msg.Find("events");
    const db::Value* initial = msg.Find("initial");
    const db::Value* evaluated_at = msg.Find("evaluated_at");
    if (query_spec == nullptr || events == nullptr || !events->is_int() ||
        initial == nullptr || !initial->is_array()) {
      decode_errors_++;
      return;
    }
    auto query = db::Query::FromSpec(*query_spec);
    if (!query.ok()) {
      decode_errors_++;
      return;
    }
    std::vector<db::Document> docs;
    for (const db::Value& d : initial->as_array()) {
      auto doc = transport::DecodeDocument(d);
      if (!doc.ok()) {
        decode_errors_++;
        return;
      }
      docs.push_back(std::move(doc).value());
    }
    (void)cluster_->RegisterQuery(
        query.value(), docs, static_cast<EventMask>(events->as_int()),
        evaluated_at != nullptr && evaluated_at->is_int()
            ? evaluated_at->as_int()
            : -1);
  } else if (op->as_string() == "deregister") {
    const db::Value* key = msg.Find("key");
    if (key == nullptr || !key->is_string()) {
      decode_errors_++;
      return;
    }
    cluster_->DeregisterQuery(key->as_string());
  } else if (op->as_string() == "change") {
    const db::Value* after = msg.Find("after");
    const db::Value* kind = msg.Find("kind");
    const db::Value* commit = msg.Find("commit_time");
    if (after == nullptr || kind == nullptr || !kind->is_int()) {
      decode_errors_++;
      return;
    }
    auto doc = transport::DecodeDocument(*after);
    if (!doc.ok()) {
      decode_errors_++;
      return;
    }
    db::ChangeEvent ev;
    ev.kind = static_cast<db::WriteKind>(kind->as_int());
    ev.after = std::move(doc).value();
    ev.commit_time = commit != nullptr && commit->is_int()
                         ? commit->as_int()
                         : ev.after.write_time;
    cluster_->OnChange(ev);
  } else {
    decode_errors_++;
  }
}

size_t InvalidbWorker::ProcessPending() {
  size_t handled = 0;
  for (;;) {
    auto msg = kv_->QueueTryPop(requests_queue_);
    if (!msg.has_value()) break;
    HandleMessage(*msg);
    handled++;
  }
  cluster_->Flush();
  return handled;
}

void InvalidbWorker::Start() {
  if (running_.exchange(true)) return;
  consumer_ = std::thread([this] {
    while (running_.load()) {
      auto msg = kv_->QueuePop(requests_queue_,
                               /*timeout_micros=*/10 * kMicrosPerMilli);
      if (msg.has_value()) HandleMessage(*msg);
    }
  });
}

void InvalidbWorker::Stop() {
  if (!running_.exchange(false)) return;
  if (consumer_.joinable()) consumer_.join();
}

}  // namespace quaestor::invalidb
