#include "invalidb/transport.h"

#include <chrono>

namespace quaestor::invalidb {

void TransportStats::ExportTo(obs::MetricsRegistry* registry,
                              const obs::Labels& labels) const {
  registry->Count("transport_decode_errors", labels, decode_errors);
  registry->Count("transport_duplicates_dropped", labels,
                  duplicates_dropped);
  registry->Count("transport_redeliveries", labels, redeliveries);
}

namespace transport {

using db::Array;
using db::Object;
using db::Value;

namespace {

Value DocumentToSpec(const db::Document& doc) {
  Object obj;
  obj["table"] = Value(doc.table);
  obj["id"] = Value(doc.id);
  obj["version"] = Value(static_cast<int64_t>(doc.version));
  obj["write_time"] = Value(static_cast<int64_t>(doc.write_time));
  obj["deleted"] = Value(doc.deleted);
  obj["body"] = doc.body;
  return Value(std::move(obj));
}

Result<db::Document> DocumentFromSpec(const Value& spec) {
  const Value* table = spec.Find("table");
  const Value* id = spec.Find("id");
  const Value* body = spec.Find("body");
  if (table == nullptr || !table->is_string() || id == nullptr ||
      !id->is_string() || body == nullptr) {
    return Status::Corruption("malformed document spec");
  }
  db::Document doc;
  doc.table = table->as_string();
  doc.id = id->as_string();
  doc.body = *body;
  if (const Value* v = spec.Find("version"); v != nullptr && v->is_int()) {
    doc.version = static_cast<uint64_t>(v->as_int());
  }
  if (const Value* v = spec.Find("write_time"); v != nullptr && v->is_int()) {
    doc.write_time = v->as_int();
  }
  if (const Value* v = spec.Find("deleted"); v != nullptr && v->is_bool()) {
    doc.deleted = v->as_bool();
  }
  return doc;
}

}  // namespace

Result<db::Document> DecodeDocument(const Value& spec) {
  return DocumentFromSpec(spec);
}

std::string EncodeChange(const db::ChangeEvent& event) {
  Object msg;
  msg["op"] = Value("change");
  msg["kind"] = Value(static_cast<int64_t>(event.kind));
  msg["after"] = DocumentToSpec(event.after);
  msg["commit_time"] = Value(static_cast<int64_t>(event.commit_time));
  return Value(std::move(msg)).ToJson();
}

std::string EncodeRegister(const db::Query& query,
                           const std::vector<db::Document>& initial_result,
                           EventMask events, Micros evaluated_at) {
  Object msg;
  msg["op"] = Value("register");
  msg["query"] = query.ToSpec();
  msg["events"] = Value(static_cast<int64_t>(events));
  msg["evaluated_at"] = Value(static_cast<int64_t>(evaluated_at));
  Array docs;
  for (const db::Document& d : initial_result) {
    docs.push_back(DocumentToSpec(d));
  }
  msg["initial"] = Value(std::move(docs));
  return Value(std::move(msg)).ToJson();
}

std::string EncodeDeregister(const std::string& query_key) {
  Object msg;
  msg["op"] = Value("deregister");
  msg["key"] = Value(query_key);
  return Value(std::move(msg)).ToJson();
}

std::string EncodeResize(size_t query_partitions, size_t object_partitions) {
  Object msg;
  msg["op"] = Value("resize");
  msg["query_partitions"] = Value(static_cast<int64_t>(query_partitions));
  msg["object_partitions"] = Value(static_cast<int64_t>(object_partitions));
  return Value(std::move(msg)).ToJson();
}

std::string EncodeNotification(const Notification& n) {
  Object msg;
  msg["type"] = Value(static_cast<int64_t>(n.type));
  msg["query_key"] = Value(n.query_key);
  msg["record_id"] = Value(n.record_id);
  msg["event_time"] = Value(static_cast<int64_t>(n.event_time));
  msg["new_index"] = Value(n.new_index);
  return Value(std::move(msg)).ToJson();
}

Result<Notification> DecodeNotification(const std::string& message) {
  auto parsed = Value::FromJson(message);
  if (!parsed.ok()) return parsed.status();
  const Value& msg = parsed.value();
  const Value* type = msg.Find("type");
  const Value* key = msg.Find("query_key");
  const Value* record = msg.Find("record_id");
  if (type == nullptr || !type->is_int() || key == nullptr ||
      !key->is_string() || record == nullptr || !record->is_string()) {
    return Status::Corruption("malformed notification");
  }
  Notification n;
  n.type = static_cast<NotificationType>(type->as_int());
  n.query_key = key->as_string();
  n.record_id = record->as_string();
  if (const Value* v = msg.Find("event_time"); v != nullptr && v->is_int()) {
    n.event_time = v->as_int();
  }
  if (const Value* v = msg.Find("new_index"); v != nullptr && v->is_int()) {
    n.new_index = v->as_int();
  }
  return n;
}

}  // namespace transport

// ---------------------------------------------------------------------------
// InvalidbRemote
// ---------------------------------------------------------------------------

InvalidbRemote::InvalidbRemote(Clock* clock, kv::KvStore* kv,
                               std::string prefix, NotificationSink sink,
                               TransportOptions options)
    : kv_(kv),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications"),
      sink_(std::move(sink)),
      req_sender_(clock, kv, requests_queue_, "quaestor", options.reliable),
      notif_receiver_(kv, notifications_queue_, options.reliable) {}

InvalidbRemote::~InvalidbRemote() { StopPolling(); }

void InvalidbRemote::RegisterQuery(
    const db::Query& query, const std::vector<db::Document>& initial_result,
    EventMask events, Micros evaluated_at) {
  req_sender_.Send(transport::EncodeRegister(query, initial_result, events,
                                             evaluated_at));
}

void InvalidbRemote::DeregisterQuery(const std::string& query_key) {
  req_sender_.Send(transport::EncodeDeregister(query_key));
}

void InvalidbRemote::OnChange(const db::ChangeEvent& event) {
  req_sender_.Send(transport::EncodeChange(event));
}

void InvalidbRemote::Resize(size_t query_partitions,
                            size_t object_partitions) {
  req_sender_.Send(
      transport::EncodeResize(query_partitions, object_partitions));
}

void InvalidbRemote::HandleWire(const std::string& payload) {
  auto n = transport::DecodeNotification(payload);
  if (n.ok()) {
    sink_(n.value());
  } else {
    decode_errors_++;
  }
}

void InvalidbRemote::Tick() { req_sender_.Tick(); }

size_t InvalidbRemote::DrainNotifications() {
  Tick();
  size_t delivered = 0;
  notif_receiver_.Poll([this, &delivered](const std::string& payload) {
    auto n = transport::DecodeNotification(payload);
    if (n.ok()) {
      sink_(n.value());
      delivered++;
    } else {
      decode_errors_++;
    }
  });
  return delivered;
}

void InvalidbRemote::StartPolling() {
  if (polling_.exchange(true)) return;
  poller_ = std::thread([this] {
    while (polling_.load()) {
      Tick();
      notif_receiver_.PollBlocking(
          /*timeout_micros=*/10 * kMicrosPerMilli,
          [this](const std::string& payload) { HandleWire(payload); });
    }
  });
}

void InvalidbRemote::StopPolling() {
  if (!polling_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
}

TransportStats InvalidbRemote::stats() const {
  TransportStats s;
  s.decode_errors = decode_errors_.load();
  s.duplicates_dropped = notif_receiver_.duplicates_dropped();
  s.redeliveries = req_sender_.redeliveries();
  return s;
}

// ---------------------------------------------------------------------------
// InvalidbWorker
// ---------------------------------------------------------------------------

namespace {

/// Decorrelates the worker's jitter stream from the remote's without a
/// second configuration knob.
ReliableOptions WorkerReliable(ReliableOptions base) {
  base.seed = base.seed * 0x9e3779b97f4a7c15ull + 1;
  return base;
}

}  // namespace

InvalidbWorker::InvalidbWorker(Clock* clock, kv::KvStore* kv,
                               std::string prefix, InvalidbOptions options,
                               TransportOptions transport_options)
    : kv_(kv),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications"),
      req_receiver_(kv, requests_queue_, transport_options.reliable),
      notif_sender_(clock, kv, notifications_queue_, "invalidb",
                    WorkerReliable(transport_options.reliable)) {
  cluster_ = std::make_unique<InvalidbCluster>(
      clock, options, [this](const Notification& n) {
        notif_sender_.Send(transport::EncodeNotification(n));
      });
}

InvalidbWorker::~InvalidbWorker() { Stop(); }

void InvalidbWorker::HandleMessage(const std::string& message) {
  auto parsed = db::Value::FromJson(message);
  if (!parsed.ok() || !parsed->is_object()) {
    decode_errors_++;
    return;
  }
  const db::Value& msg = parsed.value();
  const db::Value* op = msg.Find("op");
  if (op == nullptr || !op->is_string()) {
    decode_errors_++;
    return;
  }
  if (op->as_string() == "register") {
    const db::Value* query_spec = msg.Find("query");
    const db::Value* events = msg.Find("events");
    const db::Value* initial = msg.Find("initial");
    const db::Value* evaluated_at = msg.Find("evaluated_at");
    if (query_spec == nullptr || events == nullptr || !events->is_int() ||
        initial == nullptr || !initial->is_array()) {
      decode_errors_++;
      return;
    }
    auto query = db::Query::FromSpec(*query_spec);
    if (!query.ok()) {
      decode_errors_++;
      return;
    }
    std::vector<db::Document> docs;
    for (const db::Value& d : initial->as_array()) {
      auto doc = transport::DecodeDocument(d);
      if (!doc.ok()) {
        decode_errors_++;
        return;
      }
      docs.push_back(std::move(doc).value());
    }
    (void)cluster_->RegisterQuery(
        query.value(), docs, static_cast<EventMask>(events->as_int()),
        evaluated_at != nullptr && evaluated_at->is_int()
            ? evaluated_at->as_int()
            : -1);
  } else if (op->as_string() == "deregister") {
    const db::Value* key = msg.Find("key");
    if (key == nullptr || !key->is_string()) {
      decode_errors_++;
      return;
    }
    cluster_->DeregisterQuery(key->as_string());
  } else if (op->as_string() == "change") {
    const db::Value* after = msg.Find("after");
    const db::Value* kind = msg.Find("kind");
    const db::Value* commit = msg.Find("commit_time");
    if (after == nullptr || kind == nullptr || !kind->is_int()) {
      decode_errors_++;
      return;
    }
    auto doc = transport::DecodeDocument(*after);
    if (!doc.ok()) {
      decode_errors_++;
      return;
    }
    db::ChangeEvent ev;
    ev.kind = static_cast<db::WriteKind>(kind->as_int());
    ev.after = std::move(doc).value();
    ev.commit_time = commit != nullptr && commit->is_int()
                         ? commit->as_int()
                         : ev.after.write_time;
    cluster_->OnChange(ev);
  } else if (op->as_string() == "resize") {
    const db::Value* qp = msg.Find("query_partitions");
    const db::Value* op_parts = msg.Find("object_partitions");
    if (qp == nullptr || !qp->is_int() || qp->as_int() <= 0 ||
        op_parts == nullptr || !op_parts->is_int() ||
        op_parts->as_int() <= 0) {
      decode_errors_++;
      return;
    }
    // State handoff (no evaluator): the worker has no database to
    // re-evaluate against; the cluster hands matching sets between grids.
    (void)cluster_->Resize(static_cast<size_t>(qp->as_int()),
                           static_cast<size_t>(op_parts->as_int()));
  } else {
    decode_errors_++;
  }
}

void InvalidbWorker::Tick() { notif_sender_.Tick(); }

size_t InvalidbWorker::ProcessPending() {
  Tick();
  const size_t handled = req_receiver_.Poll(
      [this](const std::string& payload) { HandleMessage(payload); });
  cluster_->Flush();
  return handled;
}

void InvalidbWorker::Start() {
  if (running_.exchange(true)) return;
  consumer_ = std::thread([this] {
    while (running_.load()) {
      Tick();
      req_receiver_.PollBlocking(
          /*timeout_micros=*/10 * kMicrosPerMilli,
          [this](const std::string& payload) { HandleMessage(payload); });
    }
  });
}

void InvalidbWorker::Stop() {
  if (!running_.exchange(false)) return;
  if (consumer_.joinable()) consumer_.join();
}

TransportStats InvalidbWorker::stats() const {
  TransportStats s;
  s.decode_errors = decode_errors_.load();
  s.duplicates_dropped = req_receiver_.duplicates_dropped();
  s.redeliveries = notif_sender_.redeliveries();
  return s;
}

}  // namespace quaestor::invalidb
