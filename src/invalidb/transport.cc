#include "invalidb/transport.h"

#include <charconv>
#include <chrono>
#include <string_view>

namespace quaestor::invalidb {

void TransportStats::ExportTo(obs::MetricsRegistry* registry,
                              const obs::Labels& labels) const {
  registry->Count("transport_decode_errors", labels, decode_errors);
  registry->Count("transport_duplicates_dropped", labels,
                  duplicates_dropped);
  registry->Count("transport_redeliveries", labels, redeliveries);
  registry->Count("transport_batches_sent", labels, batches_sent);
  registry->Count("transport_batch_events", labels, batch_events);
  const auto with_reason = [&labels](const char* reason) {
    obs::Labels merged = labels;
    merged.emplace_back("reason", reason);
    return merged;
  };
  registry->Count("transport_batch_flushes", with_reason("size"),
                  flushes_size);
  registry->Count("transport_batch_flushes", with_reason("interval"),
                  flushes_interval);
  registry->Count("transport_batch_flushes", with_reason("barrier"),
                  flushes_barrier);
  registry->Count("transport_batch_flushes", with_reason("manual"),
                  flushes_manual);
}

namespace transport {

using db::Value;

namespace {

/// Single-pass canonical document spec. Key order (body, deleted, id,
/// table, version, write_time) is the sorted order a db::Object would
/// serialize in — golden-tested against the tree encoder.
void AppendDocumentSpec(std::string* out, const db::Document& doc) {
  *out += "{\"body\":";
  doc.body.AppendJson(out);
  *out += ",\"deleted\":";
  *out += doc.deleted ? "true" : "false";
  *out += ",\"id\":";
  db::AppendJsonEscaped(out, doc.id);
  *out += ",\"table\":";
  db::AppendJsonEscaped(out, doc.table);
  *out += ",\"version\":";
  *out += std::to_string(static_cast<int64_t>(doc.version));
  *out += ",\"write_time\":";
  *out += std::to_string(static_cast<int64_t>(doc.write_time));
  *out += '}';
}

}  // namespace

/// Change-event spec without the "op" discriminator — the inner element
/// of a change_batch envelope. Keys: after, commit_time, kind.
void AppendChangeEventSpec(std::string* out, const db::ChangeEvent& event) {
  *out += "{\"after\":";
  AppendDocumentSpec(out, event.after);
  *out += ",\"commit_time\":";
  *out += std::to_string(static_cast<int64_t>(event.commit_time));
  *out += ",\"kind\":";
  *out += std::to_string(static_cast<int64_t>(event.kind));
  *out += '}';
}

/// Notification spec without "op". Keys: event_time, new_index,
/// query_key, record_id, type.
void AppendNotificationSpec(std::string* out, const Notification& n) {
  *out += "{\"event_time\":";
  *out += std::to_string(static_cast<int64_t>(n.event_time));
  *out += ",\"new_index\":";
  *out += std::to_string(static_cast<int64_t>(n.new_index));
  *out += ",\"query_key\":";
  db::AppendJsonEscaped(out, n.query_key);
  *out += ",\"record_id\":";
  db::AppendJsonEscaped(out, n.record_id);
  *out += ",\"type\":";
  *out += std::to_string(static_cast<int64_t>(n.type));
  *out += '}';
}

namespace {

/// Scanner for the canonical batch wire form: the encoders above emit a
/// fixed key order with no whitespace, so the common case decodes in one
/// pass without building a Value tree for the batch skeleton. Any byte
/// that deviates from the canonical layout makes the caller fall back to
/// the generic Value-based decoder, which handles non-canonical producers
/// and yields the proper error for corrupt input.
class CanonicalScanner {
 public:
  explicit CanonicalScanner(std::string_view text) : text_(text) {}

  bool Lit(std::string_view lit) {
    if (text_.size() - pos_ < lit.size() ||
        text_.compare(pos_, lit.size(), lit) != 0) {
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool Int(int64_t* out) {
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) return false;
    pos_ += static_cast<size_t>(ptr - begin);
    return true;
  }

  bool Bool(bool* out) {
    if (Lit("true")) {
      *out = true;
      return true;
    }
    if (Lit("false")) {
      *out = false;
      return true;
    }
    return false;
  }

  /// JSON string literal. Escape-free strings (the common case for ids,
  /// tables, and query keys) copy straight out of the wire buffer; a
  /// backslash delegates to the generic parser for correct unescaping.
  bool Str(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    const size_t stop = text_.find_first_of("\"\\", pos_ + 1);
    if (stop == std::string_view::npos) return false;
    if (text_[stop] == '"') {
      out->assign(text_, pos_ + 1, stop - pos_ - 1);
      pos_ = stop + 1;
      return true;
    }
    return Val() && scratch_.is_string() &&
           (*out = std::move(scratch_).as_string(), true);
  }

  /// Embedded arbitrary value (document bodies) via the generic parser.
  bool Val(Value* out = nullptr) {
    size_t consumed = 0;
    auto v = Value::FromJsonPrefix(text_.substr(pos_), &consumed);
    if (!v.ok()) return false;
    (out != nullptr ? *out : scratch_) = std::move(v).value();
    pos_ += consumed;
    return true;
  }

  bool AtEnd() const { return pos_ == text_.size(); }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  Value scratch_;
};

bool TryDecodeCanonicalChangeBatch(std::string_view text,
                                   std::vector<db::ChangeEvent>* out) {
  CanonicalScanner sc(text);
  if (!sc.Lit("{\"events\":[")) return false;
  out->clear();
  if (!sc.Lit("]")) {
    for (;;) {
      db::ChangeEvent ev;
      int64_t version = 0;
      int64_t kind = 0;
      if (!sc.Lit("{\"after\":{\"body\":") || !sc.Val(&ev.after.body) ||
          !sc.Lit(",\"deleted\":") || !sc.Bool(&ev.after.deleted) ||
          !sc.Lit(",\"id\":") || !sc.Str(&ev.after.id) ||
          !sc.Lit(",\"table\":") || !sc.Str(&ev.after.table) ||
          !sc.Lit(",\"version\":") || !sc.Int(&version) ||
          !sc.Lit(",\"write_time\":") || !sc.Int(&ev.after.write_time) ||
          !sc.Lit("},\"commit_time\":") || !sc.Int(&ev.commit_time) ||
          !sc.Lit(",\"kind\":") || !sc.Int(&kind) || !sc.Lit("}")) {
        return false;
      }
      ev.after.version = static_cast<uint64_t>(version);
      ev.kind = static_cast<db::WriteKind>(kind);
      out->push_back(std::move(ev));
      if (sc.Lit(",")) continue;
      if (sc.Lit("]")) break;
      return false;
    }
  }
  return sc.Lit(",\"op\":\"change_batch\"}") && sc.AtEnd();
}

bool TryDecodeCanonicalNotificationBatch(std::string_view text,
                                         std::vector<Notification>* out) {
  CanonicalScanner sc(text);
  if (!sc.Lit("{\"notifications\":[")) return false;
  out->clear();
  if (!sc.Lit("]")) {
    for (;;) {
      Notification n;
      int64_t type = 0;
      if (!sc.Lit("{\"event_time\":") || !sc.Int(&n.event_time) ||
          !sc.Lit(",\"new_index\":") || !sc.Int(&n.new_index) ||
          !sc.Lit(",\"query_key\":") || !sc.Str(&n.query_key) ||
          !sc.Lit(",\"record_id\":") || !sc.Str(&n.record_id) ||
          !sc.Lit(",\"type\":") || !sc.Int(&type) || !sc.Lit("}")) {
        return false;
      }
      n.type = static_cast<NotificationType>(type);
      out->push_back(std::move(n));
      if (sc.Lit(",")) continue;
      if (sc.Lit("]")) break;
      return false;
    }
  }
  return sc.Lit(",\"op\":\"notify_batch\"}") && sc.AtEnd();
}

Result<db::Document> DocumentFromSpec(const Value& spec) {
  const Value* table = spec.Find("table");
  const Value* id = spec.Find("id");
  const Value* body = spec.Find("body");
  if (table == nullptr || !table->is_string() || id == nullptr ||
      !id->is_string() || body == nullptr) {
    return Status::Corruption("malformed document spec");
  }
  db::Document doc;
  doc.table = table->as_string();
  doc.id = id->as_string();
  doc.body = *body;
  if (const Value* v = spec.Find("version"); v != nullptr && v->is_int()) {
    doc.version = static_cast<uint64_t>(v->as_int());
  }
  if (const Value* v = spec.Find("write_time"); v != nullptr && v->is_int()) {
    doc.write_time = v->as_int();
  }
  if (const Value* v = spec.Find("deleted"); v != nullptr && v->is_bool()) {
    doc.deleted = v->as_bool();
  }
  return doc;
}

}  // namespace

Result<db::Document> DecodeDocument(const Value& spec) {
  return DocumentFromSpec(spec);
}

Result<db::ChangeEvent> DecodeChangeEvent(const Value& spec) {
  const Value* after = spec.Find("after");
  const Value* kind = spec.Find("kind");
  const Value* commit = spec.Find("commit_time");
  if (after == nullptr || kind == nullptr || !kind->is_int()) {
    return Status::Corruption("malformed change event");
  }
  auto doc = DocumentFromSpec(*after);
  if (!doc.ok()) return doc.status();
  db::ChangeEvent ev;
  ev.kind = static_cast<db::WriteKind>(kind->as_int());
  ev.after = std::move(doc).value();
  ev.commit_time = commit != nullptr && commit->is_int()
                       ? commit->as_int()
                       : ev.after.write_time;
  return ev;
}

std::string EncodeChange(const db::ChangeEvent& event) {
  std::string out;
  out.reserve(160);
  out += "{\"after\":";
  AppendDocumentSpec(&out, event.after);
  out += ",\"commit_time\":";
  out += std::to_string(static_cast<int64_t>(event.commit_time));
  out += ",\"kind\":";
  out += std::to_string(static_cast<int64_t>(event.kind));
  out += ",\"op\":\"change\"}";
  return out;
}

std::string EncodeChangeBatch(const std::vector<db::ChangeEvent>& events) {
  std::string out;
  out.reserve(32 + 160 * events.size());
  out += "{\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) out += ',';
    AppendChangeEventSpec(&out, events[i]);
  }
  out += "],\"op\":\"change_batch\"}";
  return out;
}

Result<std::vector<db::ChangeEvent>> DecodeChangeBatch(const Value& msg) {
  const Value* events = msg.Find("events");
  if (events == nullptr || !events->is_array()) {
    return Status::Corruption("malformed change batch");
  }
  std::vector<db::ChangeEvent> out;
  out.reserve(events->as_array().size());
  for (const Value& spec : events->as_array()) {
    auto ev = DecodeChangeEvent(spec);
    if (!ev.ok()) return ev.status();
    out.push_back(std::move(ev).value());
  }
  return out;
}

Result<std::vector<db::ChangeEvent>> DecodeChangeBatch(
    const std::string& message) {
  std::vector<db::ChangeEvent> fast;
  if (TryDecodeCanonicalChangeBatch(message, &fast)) return fast;
  auto parsed = Value::FromJson(message);
  if (!parsed.ok()) return parsed.status();
  const Value* op =
      parsed->is_object() ? parsed->Find("op") : nullptr;
  if (op == nullptr || !op->is_string() ||
      op->as_string() != "change_batch") {
    return Status::Corruption("malformed change batch");
  }
  return DecodeChangeBatch(parsed.value());
}

std::string EncodeRegister(const db::Query& query,
                           const std::vector<db::Document>& initial_result,
                           EventMask events, Micros evaluated_at) {
  std::string out;
  out.reserve(128 + 160 * initial_result.size());
  out += "{\"evaluated_at\":";
  out += std::to_string(static_cast<int64_t>(evaluated_at));
  out += ",\"events\":";
  out += std::to_string(static_cast<int64_t>(events));
  out += ",\"initial\":[";
  for (size_t i = 0; i < initial_result.size(); ++i) {
    if (i > 0) out += ',';
    AppendDocumentSpec(&out, initial_result[i]);
  }
  out += "],\"op\":\"register\",\"query\":";
  query.ToSpec().AppendJson(&out);
  out += '}';
  return out;
}

std::string EncodeDeregister(const std::string& query_key) {
  std::string out;
  out.reserve(32 + query_key.size());
  out += "{\"key\":";
  db::AppendJsonEscaped(&out, query_key);
  out += ",\"op\":\"deregister\"}";
  return out;
}

std::string EncodeResize(size_t query_partitions, size_t object_partitions) {
  std::string out;
  out.reserve(80);
  out += "{\"object_partitions\":";
  out += std::to_string(static_cast<int64_t>(object_partitions));
  out += ",\"op\":\"resize\",\"query_partitions\":";
  out += std::to_string(static_cast<int64_t>(query_partitions));
  out += '}';
  return out;
}

std::string EncodeNotification(const Notification& n) {
  std::string out;
  out.reserve(96 + n.query_key.size() + n.record_id.size());
  AppendNotificationSpec(&out, n);
  return out;
}

std::string EncodeNotificationBatch(const std::vector<Notification>& batch) {
  std::string out;
  out.reserve(40 + 96 * batch.size());
  out += "{\"notifications\":[";
  for (size_t i = 0; i < batch.size(); ++i) {
    if (i > 0) out += ',';
    AppendNotificationSpec(&out, batch[i]);
  }
  out += "],\"op\":\"notify_batch\"}";
  return out;
}

Result<Notification> DecodeNotification(const Value& msg) {
  const Value* type = msg.Find("type");
  const Value* key = msg.Find("query_key");
  const Value* record = msg.Find("record_id");
  if (type == nullptr || !type->is_int() || key == nullptr ||
      !key->is_string() || record == nullptr || !record->is_string()) {
    return Status::Corruption("malformed notification");
  }
  Notification n;
  n.type = static_cast<NotificationType>(type->as_int());
  n.query_key = key->as_string();
  n.record_id = record->as_string();
  if (const Value* v = msg.Find("event_time"); v != nullptr && v->is_int()) {
    n.event_time = v->as_int();
  }
  if (const Value* v = msg.Find("new_index"); v != nullptr && v->is_int()) {
    n.new_index = v->as_int();
  }
  return n;
}

Result<Notification> DecodeNotification(const std::string& message) {
  auto parsed = Value::FromJson(message);
  if (!parsed.ok()) return parsed.status();
  return DecodeNotification(parsed.value());
}

Result<std::vector<Notification>> DecodeNotificationBatch(const Value& msg) {
  const Value* notifs = msg.Find("notifications");
  if (notifs == nullptr || !notifs->is_array()) {
    return Status::Corruption("malformed notification batch");
  }
  std::vector<Notification> out;
  out.reserve(notifs->as_array().size());
  for (const Value& spec : notifs->as_array()) {
    auto n = DecodeNotification(spec);
    if (!n.ok()) return n.status();
    out.push_back(std::move(n).value());
  }
  return out;
}

Result<std::vector<Notification>> DecodeNotificationBatch(
    const std::string& message) {
  std::vector<Notification> fast;
  if (TryDecodeCanonicalNotificationBatch(message, &fast)) return fast;
  auto parsed = Value::FromJson(message);
  if (!parsed.ok()) return parsed.status();
  const Value* op =
      parsed->is_object() ? parsed->Find("op") : nullptr;
  if (op == nullptr || !op->is_string() ||
      op->as_string() != "notify_batch") {
    return Status::Corruption("malformed notification batch");
  }
  return DecodeNotificationBatch(parsed.value());
}

}  // namespace transport

// ---------------------------------------------------------------------------
// InvalidbRemote
// ---------------------------------------------------------------------------

InvalidbRemote::InvalidbRemote(Clock* clock, kv::KvStore* kv,
                               std::string prefix, NotificationSink sink,
                               TransportOptions options)
    : clock_(clock),
      kv_(kv),
      options_(options),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications"),
      sink_(std::move(sink)),
      req_sender_(clock, kv, requests_queue_, "quaestor", options.reliable),
      notif_receiver_(kv, notifications_queue_, options.reliable) {}

InvalidbRemote::~InvalidbRemote() {
  StopPolling();
  FlushChanges();
}

void InvalidbRemote::SendEncodedBatch(std::string payload, size_t count) {
  payload += "],\"op\":\"change_batch\"}";
  req_sender_.Send(payload);
  batches_sent_++;
  batch_events_ += count;
}

void InvalidbRemote::FlushWithReason(std::atomic<uint64_t>* reason) {
  if (!options_.batching.enabled) return;
  std::string payload;
  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (batch_count_ == 0) return;
    payload = std::move(batch_json_);
    count = batch_count_;
    batch_json_.clear();
    batch_count_ = 0;
  }
  (*reason)++;
  SendEncodedBatch(std::move(payload), count);
}

void InvalidbRemote::FlushChanges() { FlushWithReason(&flushes_manual_); }

void InvalidbRemote::MaybeFlushByAge() {
  if (!options_.batching.enabled) return;
  std::string payload;
  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (batch_count_ == 0 ||
        clock_->NowMicros() - batch_oldest_ < options_.batching.flush_interval) {
      return;
    }
    payload = std::move(batch_json_);
    count = batch_count_;
    batch_json_.clear();
    batch_count_ = 0;
  }
  flushes_interval_++;
  SendEncodedBatch(std::move(payload), count);
}

size_t InvalidbRemote::buffered_changes() const {
  std::lock_guard<std::mutex> lock(batch_mu_);
  return batch_count_;
}

void InvalidbRemote::RegisterQuery(
    const db::Query& query, const std::vector<db::Document>& initial_result,
    EventMask events, Micros evaluated_at) {
  // Barrier: a change buffered before this call must be matched before the
  // registration installs (otherwise the worker would replay it against
  // the fresh query as a spurious post-activation event).
  FlushWithReason(&flushes_barrier_);
  req_sender_.Send(transport::EncodeRegister(query, initial_result, events,
                                             evaluated_at));
}

void InvalidbRemote::DeregisterQuery(const std::string& query_key) {
  FlushWithReason(&flushes_barrier_);
  req_sender_.Send(transport::EncodeDeregister(query_key));
}

void InvalidbRemote::OnChange(const db::ChangeEvent& event) {
  if (!options_.batching.enabled) {
    req_sender_.Send(transport::EncodeChange(event));
    return;
  }
  std::string payload;
  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (batch_count_ == 0) {
      batch_oldest_ = clock_->NowMicros();
      batch_json_ = "{\"events\":[";
    } else {
      batch_json_ += ',';
    }
    transport::AppendChangeEventSpec(&batch_json_, event);
    if (++batch_count_ >= options_.batching.max_batch) {
      payload = std::move(batch_json_);
      count = batch_count_;
      batch_json_.clear();
      batch_count_ = 0;
    }
  }
  if (count > 0) {
    flushes_size_++;
    SendEncodedBatch(std::move(payload), count);
  }
}

void InvalidbRemote::Resize(size_t query_partitions,
                            size_t object_partitions) {
  FlushWithReason(&flushes_barrier_);
  req_sender_.Send(
      transport::EncodeResize(query_partitions, object_partitions));
}

size_t InvalidbRemote::HandleWire(const std::string& payload) {
  // Batch fast path: canonical notify_batch envelopes are by far the
  // hottest payload, and only they start with this prefix. The string
  // overload scans the canonical form in a single pass and falls back to
  // the generic (Value-parsing, op-checked) decoder on any deviation.
  if (payload.compare(0, 18, "{\"notifications\":[") == 0) {
    auto batch = transport::DecodeNotificationBatch(payload);
    if (!batch.ok()) {
      decode_errors_++;
      return 0;
    }
    for (const Notification& n : batch.value()) sink_(n);
    return batch.value().size();
  }
  auto parsed = db::Value::FromJson(payload);
  if (!parsed.ok() || !parsed->is_object()) {
    decode_errors_++;
    return 0;
  }
  const db::Value& msg = parsed.value();
  const db::Value* op = msg.Find("op");
  if (op != nullptr && op->is_string() &&
      op->as_string() == "notify_batch") {
    auto batch = transport::DecodeNotificationBatch(msg);
    if (!batch.ok()) {
      decode_errors_++;
      return 0;
    }
    for (const Notification& n : batch.value()) sink_(n);
    return batch.value().size();
  }
  auto n = transport::DecodeNotification(msg);
  if (!n.ok()) {
    decode_errors_++;
    return 0;
  }
  sink_(n.value());
  return 1;
}

void InvalidbRemote::Tick() {
  MaybeFlushByAge();
  req_sender_.Tick();
}

size_t InvalidbRemote::DrainNotifications() {
  Tick();
  size_t delivered = 0;
  notif_receiver_.Poll([this, &delivered](const std::string& payload) {
    delivered += HandleWire(payload);
  });
  return delivered;
}

void InvalidbRemote::StartPolling() {
  if (polling_.exchange(true)) return;
  poller_ = std::thread([this] {
    while (polling_.load()) {
      Tick();
      notif_receiver_.PollBlocking(
          /*timeout_micros=*/10 * kMicrosPerMilli,
          [this](const std::string& payload) { HandleWire(payload); });
    }
  });
}

void InvalidbRemote::StopPolling() {
  if (!polling_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
}

TransportStats InvalidbRemote::stats() const {
  TransportStats s;
  s.decode_errors = decode_errors_.load();
  s.duplicates_dropped = notif_receiver_.duplicates_dropped();
  s.redeliveries = req_sender_.redeliveries();
  s.batches_sent = batches_sent_.load();
  s.batch_events = batch_events_.load();
  s.flushes_size = flushes_size_.load();
  s.flushes_interval = flushes_interval_.load();
  s.flushes_barrier = flushes_barrier_.load();
  s.flushes_manual = flushes_manual_.load();
  return s;
}

// ---------------------------------------------------------------------------
// InvalidbWorker
// ---------------------------------------------------------------------------

namespace {

/// Decorrelates the worker's jitter stream from the remote's without a
/// second configuration knob.
ReliableOptions WorkerReliable(ReliableOptions base) {
  base.seed = base.seed * 0x9e3779b97f4a7c15ull + 1;
  return base;
}

}  // namespace

InvalidbWorker::InvalidbWorker(Clock* clock, kv::KvStore* kv,
                               std::string prefix, InvalidbOptions options,
                               TransportOptions transport_options)
    : kv_(kv),
      options_(transport_options),
      requests_queue_(prefix + ":requests"),
      notifications_queue_(prefix + ":notifications"),
      req_receiver_(kv, requests_queue_, transport_options.reliable),
      notif_sender_(clock, kv, notifications_queue_, "invalidb",
                    WorkerReliable(transport_options.reliable)) {
  cluster_ = std::make_unique<InvalidbCluster>(
      clock, options, [this](const Notification& n) {
        if (options_.batching.enabled) {
          BufferNotifications(&n, 1);
        } else {
          notif_sender_.Send(transport::EncodeNotification(n));
        }
      });
  if (options_.batching.enabled) {
    // Coalesced fan-out: the cluster hands each dispatch's notifications
    // over in one call; they accumulate into one notify_batch envelope
    // per pump cycle (or per max_batch overflow).
    cluster_->SetBatchSink([this](const std::vector<Notification>& batch) {
      BufferNotifications(batch.data(), batch.size());
    });
  }
}

InvalidbWorker::~InvalidbWorker() {
  Stop();
  cluster_->Flush();
  FlushNotifications();
}

void InvalidbWorker::SendEncodedNotifications(std::string payload,
                                              size_t count) {
  payload += "],\"op\":\"notify_batch\"}";
  notif_sender_.Send(payload);
  batches_sent_++;
  batch_events_ += count;
}

void InvalidbWorker::BufferNotifications(const Notification* data,
                                         size_t count) {
  std::string payload;
  size_t flushed = 0;
  {
    std::lock_guard<std::mutex> lock(notif_mu_);
    for (size_t i = 0; i < count; ++i) {
      if (notif_count_ == 0) {
        notif_json_ = "{\"notifications\":[";
      } else {
        notif_json_ += ',';
      }
      transport::AppendNotificationSpec(&notif_json_, data[i]);
      ++notif_count_;
    }
    if (notif_count_ >= options_.batching.max_batch) {
      payload = std::move(notif_json_);
      flushed = notif_count_;
      notif_json_.clear();
      notif_count_ = 0;
    }
  }
  if (flushed > 0) {
    flushes_size_++;
    SendEncodedNotifications(std::move(payload), flushed);
  }
}

size_t InvalidbWorker::FlushNotifications() {
  if (!options_.batching.enabled) return 0;
  std::string payload;
  size_t flushed = 0;
  {
    std::lock_guard<std::mutex> lock(notif_mu_);
    if (notif_count_ == 0) return 0;
    payload = std::move(notif_json_);
    flushed = notif_count_;
    notif_json_.clear();
    notif_count_ = 0;
  }
  flushes_manual_++;
  SendEncodedNotifications(std::move(payload), flushed);
  return flushed;
}

void InvalidbWorker::HandleMessage(const std::string& message) {
  // Batch fast path (see InvalidbRemote::HandleWire): only change_batch
  // envelopes start with this prefix, and the canonical form decodes in
  // one pass with no Value tree for the batch skeleton.
  if (message.compare(0, 11, "{\"events\":[") == 0) {
    auto events = transport::DecodeChangeBatch(message);
    if (!events.ok()) {
      decode_errors_++;
      return;
    }
    cluster_->OnChangeBatch(std::move(events).value());
    return;
  }
  auto parsed = db::Value::FromJson(message);
  if (!parsed.ok() || !parsed->is_object()) {
    decode_errors_++;
    return;
  }
  const db::Value& msg = parsed.value();
  const db::Value* op = msg.Find("op");
  if (op == nullptr || !op->is_string()) {
    decode_errors_++;
    return;
  }
  if (op->as_string() == "register") {
    const db::Value* query_spec = msg.Find("query");
    const db::Value* events = msg.Find("events");
    const db::Value* initial = msg.Find("initial");
    const db::Value* evaluated_at = msg.Find("evaluated_at");
    if (query_spec == nullptr || events == nullptr || !events->is_int() ||
        initial == nullptr || !initial->is_array()) {
      decode_errors_++;
      return;
    }
    auto query = db::Query::FromSpec(*query_spec);
    if (!query.ok()) {
      decode_errors_++;
      return;
    }
    std::vector<db::Document> docs;
    for (const db::Value& d : initial->as_array()) {
      auto doc = transport::DecodeDocument(d);
      if (!doc.ok()) {
        decode_errors_++;
        return;
      }
      docs.push_back(std::move(doc).value());
    }
    (void)cluster_->RegisterQuery(
        query.value(), docs, static_cast<EventMask>(events->as_int()),
        evaluated_at != nullptr && evaluated_at->is_int()
            ? evaluated_at->as_int()
            : -1);
  } else if (op->as_string() == "deregister") {
    const db::Value* key = msg.Find("key");
    if (key == nullptr || !key->is_string()) {
      decode_errors_++;
      return;
    }
    cluster_->DeregisterQuery(key->as_string());
  } else if (op->as_string() == "change") {
    auto ev = transport::DecodeChangeEvent(msg);
    if (!ev.ok()) {
      decode_errors_++;
      return;
    }
    cluster_->OnChange(ev.value());
  } else if (op->as_string() == "change_batch") {
    auto events = transport::DecodeChangeBatch(msg);
    if (!events.ok()) {
      decode_errors_++;
      return;
    }
    cluster_->OnChangeBatch(std::move(events).value());
  } else if (op->as_string() == "resize") {
    const db::Value* qp = msg.Find("query_partitions");
    const db::Value* op_parts = msg.Find("object_partitions");
    if (qp == nullptr || !qp->is_int() || qp->as_int() <= 0 ||
        op_parts == nullptr || !op_parts->is_int() ||
        op_parts->as_int() <= 0) {
      decode_errors_++;
      return;
    }
    // State handoff (no evaluator): the worker has no database to
    // re-evaluate against; the cluster hands matching sets between grids.
    (void)cluster_->Resize(static_cast<size_t>(qp->as_int()),
                           static_cast<size_t>(op_parts->as_int()));
  } else {
    decode_errors_++;
  }
}

void InvalidbWorker::Tick() { notif_sender_.Tick(); }

size_t InvalidbWorker::ProcessPending() {
  Tick();
  const size_t handled = req_receiver_.Poll(
      [this](const std::string& payload) { HandleMessage(payload); });
  cluster_->Flush();
  FlushNotifications();
  return handled;
}

void InvalidbWorker::Start() {
  if (running_.exchange(true)) return;
  consumer_ = std::thread([this] {
    while (running_.load()) {
      Tick();
      req_receiver_.PollBlocking(
          /*timeout_micros=*/10 * kMicrosPerMilli,
          [this](const std::string& payload) { HandleMessage(payload); });
      FlushNotifications();
    }
  });
}

void InvalidbWorker::Stop() {
  if (!running_.exchange(false)) return;
  if (consumer_.joinable()) consumer_.join();
  cluster_->Flush();
  FlushNotifications();
}

TransportStats InvalidbWorker::stats() const {
  TransportStats s;
  s.decode_errors = decode_errors_.load();
  s.duplicates_dropped = req_receiver_.duplicates_dropped();
  s.redeliveries = notif_sender_.redeliveries();
  s.batches_sent = batches_sent_.load();
  s.batch_events = batch_events_.load();
  s.flushes_size = flushes_size_.load();
  s.flushes_manual = flushes_manual_.load();
  return s;
}

}  // namespace quaestor::invalidb
