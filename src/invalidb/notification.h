#ifndef QUAESTOR_INVALIDB_NOTIFICATION_H_
#define QUAESTOR_INVALIDB_NOTIFICATION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "db/document.h"

namespace quaestor::invalidb {

/// Notification kinds (§4.1 "Notification Events"): add — an object enters
/// a result set; remove — it leaves; change — a contained object is
/// updated without altering membership; changeIndex — a positional change
/// within a sorted result (§4.1 "Managing Query State").
enum class NotificationType : uint8_t {
  kAdd,
  kRemove,
  kChange,
  kChangeIndex,
};

std::string_view NotificationTypeName(NotificationType t);

/// Bitmask of subscribed events. Id-list results only need membership
/// changes (add/remove); object-list results additionally need change
/// (§4.1: "only two combinations of event notifications are useful").
enum EventMask : uint8_t {
  kEventAdd = 1 << 0,
  kEventRemove = 1 << 1,
  kEventChange = 1 << 2,
  kEventChangeIndex = 1 << 3,

  kEventsIdList = kEventAdd | kEventRemove,
  kEventsObjectList = kEventAdd | kEventRemove | kEventChange,
  kEventsAll = kEventAdd | kEventRemove | kEventChange | kEventChangeIndex,
};

constexpr EventMask EventBit(NotificationType t) {
  switch (t) {
    case NotificationType::kAdd:
      return kEventAdd;
    case NotificationType::kRemove:
      return kEventRemove;
    case NotificationType::kChange:
      return kEventChange;
    case NotificationType::kChangeIndex:
      return kEventChangeIndex;
  }
  return kEventAdd;
}

/// A single invalidation notification delivered to Quaestor.
struct Notification {
  NotificationType type = NotificationType::kChange;
  std::string query_key;
  std::string record_id;
  /// Commit time of the triggering write (for latency measurement and the
  /// actual-TTL feedback to the TTL estimator).
  Micros event_time = 0;
  /// For changeIndex: the new position of the record in the sorted result.
  int64_t new_index = -1;
};

using NotificationSink = std::function<void(const Notification&)>;

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_NOTIFICATION_H_
