#ifndef QUAESTOR_INVALIDB_CLUSTER_H_
#define QUAESTOR_INVALIDB_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "invalidb/matching_node.h"
#include "invalidb/notification.h"
#include "invalidb/sorted_layer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quaestor::invalidb {

/// Deployment shape of an InvaliDB cluster (Figure 6): a grid of
/// `query_partitions` columns × `object_partitions` rows of matching
/// nodes. Every query lives in one column (all of its rows); every record
/// lives in one row (all of its columns); each update is therefore matched
/// against each query by exactly one node.
struct InvalidbOptions {
  size_t query_partitions = 1;
  size_t object_partitions = 1;
  /// If true, every matching node runs on its own worker thread fed by a
  /// bounded queue (the real-throughput mode, Figure 12). If false, all
  /// matching runs synchronously in the caller — deterministic, used by
  /// the simulation.
  bool threaded = false;
  size_t node_queue_capacity = 1 << 14;
  /// How many recent change events are replayed to a newly activated query
  /// to close the activation race (§4.1).
  size_t replay_buffer_size = 128;
  /// If true (default), each node files installed queries in a predicate
  /// index and only evaluates candidate queries per change event. False
  /// selects the brute-force every-query-per-event path (reference /
  /// comparison benchmarks).
  bool indexed_matching = true;
  /// If true (default), OnChangeBatch() ships one task per (row, column)
  /// and nodes match whole batches (one index probe per distinct
  /// after-image shape, one dispatch pass per batch), and threaded
  /// workers drain their task queue in a single lock acquisition,
  /// coalescing runs of per-event change tasks. False degrades
  /// OnChangeBatch to a per-event OnChange loop (the reference path —
  /// notification output is byte-identical either way).
  bool batched_matching = true;
};

/// Health snapshot of one matching node (heartbeat API).
struct NodeHealth {
  bool alive = true;
  /// Last time the node's worker executed a task (µs since epoch; 0 if it
  /// never ran).
  Micros last_heartbeat = 0;
};

/// Per-cluster activity counters.
struct ClusterStats {
  uint64_t changes_ingested = 0;
  uint64_t notifications_delivered = 0;
  /// Failover accounting: crashes, recoveries, and work lost while dead.
  uint64_t node_kills = 0;
  uint64_t node_restarts = 0;
  uint64_t tasks_dropped_dead = 0;
  /// query×update predicate evaluations actually performed (with indexed
  /// matching: candidates only).
  uint64_t match_checks = 0;
  /// What a brute-force scan would have performed (installed queries ×
  /// events, summed per node). match_checks / match_checks_naive is the
  /// per-cluster match-check reduction.
  uint64_t match_checks_naive = 0;
  /// Candidates produced by the per-node query indexes (eq/range hits).
  uint64_t index_candidates = 0;
  /// Candidates from the residual (non-indexable) query lists.
  uint64_t residual_candidates = 0;
  /// Write-path batching: ingest batches accepted by OnChangeBatch, the
  /// events they carried, and notifications handed to the batch sink
  /// beyond the first of each delivery (the per-call saving).
  uint64_t change_batches = 0;
  uint64_t batch_events = 0;
  uint64_t notifications_coalesced = 0;
  /// Elastic scale-out accounting (live Resize()).
  uint64_t rebalance_resizes = 0;
  uint64_t rebalance_queries_reinstalled = 0;
  uint64_t rebalance_events_replayed = 0;
  uint64_t rebalance_nodes_added = 0;
  uint64_t rebalance_nodes_removed = 0;
  /// Total stop-the-world migration pause across all resizes (µs).
  uint64_t rebalance_pause_us_total = 0;

  /// Adds these totals into `invalidb_*` registry counters.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The InvaliDB cluster: registers cached queries, ingests the database
/// change stream, and emits invalidation notifications in real time.
class InvalidbCluster {
 public:
  /// `sink` receives every subscribed notification. In threaded mode it is
  /// invoked from worker threads (calls are serialized by the cluster).
  InvalidbCluster(Clock* clock, InvalidbOptions options,
                  NotificationSink sink);
  ~InvalidbCluster();

  InvalidbCluster(const InvalidbCluster&) = delete;
  InvalidbCluster& operator=(const InvalidbCluster&) = delete;

  /// Activates a query. `initial_result` must be the query's current
  /// matching set evaluated by Quaestor — for stateful queries (ORDER
  /// BY/LIMIT/OFFSET) the *unwindowed* predicate-matching set. `events`
  /// selects which notifications are delivered (id-list results subscribe
  /// to add/remove; object-lists also to change, §4.1).
  ///
  /// `evaluated_at` is the time the initial result was computed; recent
  /// change events committed after it are replayed against the new query
  /// to close the activation race (§4.1). Defaults to "now".
  Status RegisterQuery(const db::Query& query,
                       const std::vector<db::Document>& initial_result,
                       EventMask events, Micros evaluated_at = -1);

  /// Deactivates a query.
  void DeregisterQuery(const std::string& query_key);

  bool IsRegistered(const std::string& query_key) const;
  size_t RegisteredCount() const;

  /// Ingests one change-stream event (the record after-image, §4.1).
  void OnChange(const db::ChangeEvent& event);

  /// Ingests a contiguous slice of the change stream (commit order) as
  /// one unit: one topology/replay/stats pass and one task per occupied
  /// (row, column) instead of per event. Per-node notification output is
  /// byte-identical to calling OnChange once per event.
  void OnChangeBatch(std::vector<db::ChangeEvent> events);

  /// Batch delivery: when set, each dispatch hands every notification it
  /// produced to this sink in one call instead of one sink_ call each
  /// (latency/stats accounting is unchanged; notifications_coalesced
  /// counts the saved calls). Install before traffic starts.
  using NotificationBatchSink =
      std::function<void(const std::vector<Notification>&)>;
  void SetBatchSink(NotificationBatchSink sink);

  /// Events per ingested batch (OnChangeBatch calls only).
  Histogram EventsPerBatchHistogram() const;

  // -- Node failover --

  /// Evaluates a (predicate-only) query against the authoritative
  /// database; RestartNode uses it to rebuild a node's matching state.
  using ResultEvaluator =
      std::function<std::vector<db::Document>(const db::Query&)>;

  /// Crashes one matching node (row-major index): its in-memory state is
  /// wiped and every non-control task it receives while dead is dropped
  /// (counted in tasks_dropped_dead). Subscriptions survive at the
  /// cluster level — they are the registry a restart rebuilds from.
  void KillNode(size_t node_index);

  /// Restarts a killed node: re-evaluates every registered query of the
  /// node's column via `evaluate`, re-seeds the sorted layer for stateful
  /// queries, and reinstalls this row's share of each result. The node
  /// resumes matching once the rebuild task executes (queue order, so
  /// events that arrived while dead stay dropped). Returns how many
  /// queries were reinstalled.
  size_t RestartNode(size_t node_index, const ResultEvaluator& evaluate);

  bool NodeAlive(size_t node_index) const;
  size_t AliveCount() const;
  std::vector<NodeHealth> Health() const;

  // -- Elastic scale-out --

  /// Live-repartitions the cluster to a `new_query_partitions ×
  /// new_object_partitions` grid without dropping or duplicating
  /// notifications. The target grid is built concurrently with traffic;
  /// the cutover is stop-the-world: new submissions block on the topology
  /// lock, in-flight tasks drain, every registered query is re-installed
  /// on the target grid via stable hashing, and the grids swap. After
  /// Resize() the cluster's notifications are byte-identical to a
  /// freshly-constructed cluster of the target size whose queries were
  /// registered with results evaluated at the cutover instant.
  ///
  /// With `evaluate`, each query's matching set is re-evaluated against
  /// the authoritative database (the PR 3 registry-rebuild path): this
  /// also re-seeds the sorted layer for stateful queries and recovers
  /// state lost to dead nodes. Without it, state is handed off directly
  /// from the old grid (union of each query's per-row matching-id shards)
  /// — cheaper, but it requires every old node alive and leaves the
  /// sorted layer untouched.
  ///
  /// Resizing to the current shape is permitted and acts as a full grid
  /// rebuild. Returns the number of queries re-installed. Must not be
  /// called from a notification sink.
  size_t Resize(size_t new_query_partitions, size_t new_object_partitions,
                const ResultEvaluator& evaluate = {});

  /// Stop-the-world pause of each completed Resize (ms).
  Histogram MigrationPauseHistogram() const;

  /// Keys of all registered queries (the failover registry).
  std::vector<std::string> RegisteredKeys() const;

  /// Blocks until all queued work is processed (threaded mode; immediate
  /// otherwise).
  void Flush();

  /// Visible window of a registered stateful query (testing aid).
  std::vector<std::string> SortedWindow(const std::string& query_key) const {
    return sorted_layer_.WindowIds(query_key);
  }

  ClusterStats stats() const;

  /// Installs a request tracer on the cluster and all matching nodes
  /// (spans: invalidb.match per node match, invalidb.notify per sink
  /// dispatch). Intended for the synchronous (non-threaded) mode; pass
  /// nullptr to detach.
  void set_tracer(obs::Tracer* tracer);

  /// Notification latency from write commit to sink delivery (ms).
  Histogram LatencyHistogram() const;

  size_t NumNodes() const;
  const InvalidbOptions& options() const { return options_; }

  /// Installed-query count per node (row-major: row × query_partitions +
  /// column) — load-balance diagnostics. Safe to call at any time, even
  /// with registrations in flight or a Resize() in progress: the per-node
  /// counters are atomics and the node vector is read under the topology
  /// lock. Counts are naturally momentary while tasks are queued;
  /// Flush() first for an exact snapshot in threaded mode.
  std::vector<size_t> QueriesPerNode() const;

  /// Processed change-operations per node.
  std::vector<uint64_t> OpsPerNode() const;

 private:
  struct RegisterTask {
    db::Query query;
    std::string key;
    std::vector<std::string> initial_ids;     // this node's object partition
    std::vector<db::ChangeEvent> replay;      // recent events to replay
  };
  struct DeregisterTask {
    std::string key;
  };
  struct ChangeTask {
    db::ChangeEvent event;
  };
  /// A row-grouped slice of one ingest batch, matched in one MatchBatch
  /// pass (events stay in commit order). The slice is immutable and
  /// shared across the row's column tasks, so fanning a batch out to N
  /// query partitions costs N refcounts instead of N deep copies.
  struct ChangeBatchTask {
    std::shared_ptr<const std::vector<db::ChangeEvent>> events;
  };
  /// Control tasks (failover): processed even by a dead node, in queue
  /// order, so the alive flag flips exactly where the crash/recovery sits
  /// in the task stream.
  struct KillTask {};
  struct RestartTask {
    std::vector<RegisterTask> installs;
  };
  using Task = std::variant<RegisterTask, DeregisterTask, ChangeTask,
                            ChangeBatchTask, KillTask, RestartTask>;

  struct Node {
    explicit Node(bool indexed) : matcher(indexed) {}
    MatchingNode matcher;
    std::unique_ptr<BoundedQueue<Task>> queue;  // threaded mode only
    std::thread worker;
    /// Toggled by Kill/RestartTask execution on the worker itself.
    std::atomic<bool> alive{true};
    std::atomic<Micros> last_heartbeat{0};
  };

  /// Per-thread reusable notification buffers (hot-path allocation churn:
  /// one Match plus one Dispatch per change event per node).
  struct NotifyScratch {
    std::vector<Notification> raw;
    std::vector<Notification> deliverable;
    std::vector<Notification> windowed;
    /// Batch matching: all notifications of one MatchBatch plus the
    /// per-event slice boundaries.
    std::vector<Notification> batch_raw;
    std::vector<size_t> offsets;
  };

  struct Subscription {
    EventMask mask;
    bool stateful;
    /// The full (windowed) query — the restart registry needs it to
    /// re-evaluate results and re-seed the sorted layer after a crash.
    db::Query query;
  };

  size_t ColumnOf(const std::string& query_key) const;
  size_t RowOf(const std::string& record_id) const;
  Node& NodeAt(size_t column, size_t row) {
    return *nodes_[row * options_.query_partitions + column];
  }

  void ExecuteTask(Node& node, Task& task, NotifyScratch& scratch);
  void Submit(size_t column, size_t row, Task task);
  void SubmitToNode(Node& node, Task task);
  /// Consumes `scratch.raw` (notifications are moved out, vector is left
  /// cleared) and delivers the subscribed subset to the sink.
  void Dispatch(NotifyScratch& scratch, const db::Document& after_image);
  /// Batch form: consumes `scratch.batch_raw` using the per-event slice
  /// boundaries in `offsets` (each slice is translated against its own
  /// after-image), then delivers everything under one sink lock.
  void DispatchBatch(NotifyScratch& scratch,
                     const std::vector<db::ChangeEvent>& events,
                     const std::vector<size_t>& offsets);
  /// Translates one raw notification through the subscription filter and
  /// (for stateful queries) the sorted layer into scratch.deliverable.
  void Translate(Notification& n, const db::Document& after_image,
                 NotifyScratch& scratch);
  /// Delivers scratch.deliverable under one sink_mu_ acquisition.
  void Deliver(NotifyScratch& scratch);
  void WorkerLoop(Node* node);

  Clock* clock_;
  /// Grid shape; query_partitions/object_partitions mutate only under an
  /// exclusive topology_mu_ (Resize cutover).
  InvalidbOptions options_;
  NotificationSink sink_;
  obs::Tracer* tracer_ = nullptr;
  /// Protects nodes_ and the partition counts in options_ against a
  /// concurrent Resize(). Every public operation that routes to or reads
  /// the grid takes it shared (reentrancy-safe via a thread-local
  /// held-cluster list, so sinks may call back into the cluster); Resize
  /// takes it exclusive for the cutover.
  mutable std::shared_mutex topology_mu_;
  /// Serializes concurrent Resize() calls ahead of the topology lock.
  std::mutex resize_mu_;
  std::vector<std::unique_ptr<Node>> nodes_;
  SortedLayer sorted_layer_;

  mutable std::mutex subs_mu_;
  std::unordered_map<std::string, Subscription> subscriptions_;

  mutable std::mutex replay_mu_;
  std::deque<db::ChangeEvent> replay_buffer_;
  /// Highest commit_time ever ingested through OnChange. Resize() uses it
  /// to lower-bound its eval_time: every drained event is already matched
  /// and delivered, so it must never re-enter via the replay buffer even
  /// when the wall clock lags the stream's commit timestamps.
  std::atomic<Micros> last_ingested_commit_{0};

  mutable std::mutex sink_mu_;
  Histogram latency_;  // guarded by sink_mu_
  Histogram migration_pause_;  // guarded by sink_mu_ (ms per Resize)
  Histogram events_per_batch_;  // guarded by sink_mu_ (OnChangeBatch)
  ClusterStats stats_;  // guarded by sink_mu_
  NotificationBatchSink batch_sink_;  // guarded by sink_mu_

  std::atomic<int64_t> in_flight_{0};
  std::mutex flush_mu_;
  std::condition_variable flush_cv_;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_CLUSTER_H_
