#ifndef QUAESTOR_INVALIDB_SORTED_LAYER_H_
#define QUAESTOR_INVALIDB_SORTED_LAYER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/document.h"
#include "db/query.h"
#include "invalidb/notification.h"

namespace quaestor::invalidb {

/// Maintains the ordered result of one stateful query (ORDER BY / LIMIT /
/// OFFSET, §4.1 "Managing Query State"). The matching grid tracks raw
/// predicate membership; this layer keeps the full ordered matching set
/// and translates raw membership events into events on the *visible
/// window* [offset, offset+limit): add/remove when records enter or leave
/// the window, change for in-place updates, changeIndex for positional
/// shifts within the window.
class SortedQueryState {
 public:
  /// `query` must carry the ORDER BY/LIMIT/OFFSET; `initial_result` is the
  /// full (unwindowed) predicate-matching set.
  SortedQueryState(db::Query query, std::vector<db::Document> initial_result);

  /// Processes one raw membership event from the grid; appends windowed
  /// notifications to `out`. Thread-safe (events for one query may arrive
  /// from all object partitions).
  void OnRawEvent(NotificationType raw_type, const db::Document& doc,
                  Micros event_time, std::vector<Notification>* out);

  /// Ids currently visible in the window, in order.
  std::vector<std::string> WindowIds() const;

  /// Size of the full ordered matching set.
  size_t TotalMatching() const;

 private:
  struct Member {
    std::string id;
    db::Value body;
  };

  /// Index of id in members_, or npos.
  size_t FindLocked(const std::string& id) const;

  /// Insert position for a document per the query's order.
  size_t LowerBoundLocked(const db::Document& doc) const;

  std::vector<std::string> WindowIdsLocked() const;

  db::Query query_;
  mutable std::mutex mu_;
  std::vector<Member> members_;  // full matching set, sorted
};

/// The separate processing layer holding all stateful queries, partitioned
/// by query (§4.1: "Our current implementation maintains order-related
/// state in a separate processing layer partitioned by query").
class SortedLayer {
 public:
  void AddQuery(const db::Query& query, const std::string& query_key,
                std::vector<db::Document> initial_result);

  void RemoveQuery(const std::string& query_key);

  /// True if the key belongs to a stateful query handled here.
  bool Handles(const std::string& query_key) const;

  /// Routes a raw grid event to the query's state.
  void OnRawEvent(const std::string& query_key, NotificationType raw_type,
                  const db::Document& doc, Micros event_time,
                  std::vector<Notification>* out);

  /// Current visible window of a query (empty if unknown).
  std::vector<std::string> WindowIds(const std::string& query_key) const;

  size_t QueryCount() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<SortedQueryState>> states_;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_SORTED_LAYER_H_
