#include "invalidb/reliable_queue.h"

#include <algorithm>
#include <vector>

#include "common/hash.h"
#include "db/value.h"

namespace quaestor::invalidb {

namespace reliable {

namespace {

uint64_t Checksum(const std::string& sender, uint64_t seq,
                  const std::string& payload) {
  std::string buf = sender;
  buf.push_back('\x1f');
  buf += std::to_string(seq);
  buf.push_back('\x1f');
  buf += payload;
  return Hash64(buf, /*seed=*/0xfa17);
}

}  // namespace

std::string Encode(const std::string& sender, uint64_t seq,
                   const std::string& payload) {
  // Single-pass serialization, keys in sorted order — byte-identical to
  // the db::Object (std::map) construction this replaces, without the
  // tree build and payload copy per envelope.
  std::string out;
  out.reserve(payload.size() + sender.size() + 64);
  out += "{\"rc\":";
  out += std::to_string(
      static_cast<int64_t>(Checksum(sender, seq, payload)));
  out += ",\"rn\":";
  out += std::to_string(static_cast<int64_t>(seq));
  out += ",\"rp\":";
  db::AppendJsonEscaped(&out, payload);
  out += ",\"rs\":";
  db::AppendJsonEscaped(&out, sender);
  out += '}';
  return out;
}

Result<Envelope> Decode(const std::string& message) {
  auto parsed = db::Value::FromJson(message);
  if (!parsed.ok() || !parsed->is_object()) {
    return Status::NotFound("not an envelope");
  }
  const db::Value& msg = parsed.value();
  const db::Value* sender = msg.Find("rs");
  const db::Value* seq = msg.Find("rn");
  const db::Value* checksum = msg.Find("rc");
  const db::Value* payload = msg.Find("rp");
  if (sender == nullptr || seq == nullptr || payload == nullptr) {
    return Status::NotFound("not an envelope");
  }
  if (!sender->is_string() || !seq->is_int() || checksum == nullptr ||
      !checksum->is_int() || !payload->is_string() || seq->as_int() <= 0) {
    return Status::Corruption("malformed envelope");
  }
  Envelope env;
  env.sender = sender->as_string();
  env.seq = static_cast<uint64_t>(seq->as_int());
  env.payload = payload->as_string();
  if (static_cast<uint64_t>(checksum->as_int()) !=
      Checksum(env.sender, env.seq, env.payload)) {
    return Status::Corruption("envelope checksum mismatch");
  }
  return env;
}

std::string EncodeAck(const std::string& sender, uint64_t seq) {
  std::string out;
  out.reserve(sender.size() + 32);
  out += "{\"ra\":";
  out += std::to_string(static_cast<int64_t>(seq));
  out += ",\"rs\":";
  db::AppendJsonEscaped(&out, sender);
  out += '}';
  return out;
}

Result<Envelope> DecodeAck(const std::string& message) {
  auto parsed = db::Value::FromJson(message);
  if (!parsed.ok() || !parsed->is_object()) {
    return Status::Corruption("malformed ack");
  }
  const db::Value* sender = parsed->Find("rs");
  const db::Value* seq = parsed->Find("ra");
  if (sender == nullptr || !sender->is_string() || seq == nullptr ||
      !seq->is_int() || seq->as_int() <= 0) {
    return Status::Corruption("malformed ack");
  }
  Envelope env;
  env.sender = sender->as_string();
  env.seq = static_cast<uint64_t>(seq->as_int());
  return env;
}

}  // namespace reliable

// ---------------------------------------------------------------------------
// ReliableSender
// ---------------------------------------------------------------------------

ReliableSender::ReliableSender(Clock* clock, kv::KvStore* kv,
                               std::string queue, std::string sender_id,
                               ReliableOptions options)
    : clock_(clock),
      kv_(kv),
      queue_(std::move(queue)),
      ack_queue_(queue_ + ":acks"),
      sender_id_(std::move(sender_id)),
      options_(options),
      rng_(options.seed) {}

Micros ReliableSender::JitteredLocked(Micros backoff) {
  const double jitter = std::max(0.0, options_.jitter);
  return backoff +
         static_cast<Micros>(static_cast<double>(backoff) * jitter *
                             rng_.NextDouble());
}

Status ReliableSender::Send(std::string payload) {
  if (!options_.enabled) {
    kv_->QueuePush(queue_, std::move(payload));
    return Status::OK();
  }
  std::string wire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_inflight > 0 &&
        unacked_.size() >= options_.max_inflight) {
      inflight_rejections_++;
      return Status::ResourceExhausted("reliable sender in-flight window full");
    }
    const uint64_t seq = next_seq_++;
    wire = reliable::Encode(sender_id_, seq, payload);
    Pending p;
    p.payload = std::move(payload);
    p.backoff = options_.retransmit_timeout;
    p.next_retransmit = clock_->NowMicros() + JitteredLocked(p.backoff);
    deadlines_.insert(p.next_retransmit);
    unacked_.emplace(seq, std::move(p));
  }
  kv_->QueuePush(queue_, std::move(wire));
  return Status::OK();
}

void ReliableSender::ProcessAcks() {
  for (;;) {
    auto msg = kv_->QueueTryPop(ack_queue_);
    if (!msg.has_value()) return;
    auto ack = reliable::DecodeAck(*msg);
    if (!ack.ok() || ack->sender != sender_id_) continue;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = unacked_.find(ack->seq);
    if (it == unacked_.end()) continue;
    // Retire the acked message's retransmit deadline with it — if it held
    // the earliest deadline, the idle-tick early-out must see the next
    // one, not a stale minimum.
    auto dl = deadlines_.find(it->second.next_retransmit);
    if (dl != deadlines_.end()) deadlines_.erase(dl);
    unacked_.erase(it);
  }
}

size_t ReliableSender::RetransmitDue() {
  std::vector<std::string> resend;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Micros now = clock_->NowMicros();
    const Micros earliest =
        deadlines_.empty() ? kNoDeadline : *deadlines_.begin();
    if (now < earliest) return 0;  // nothing can be due yet
    retransmit_scans_++;
    for (auto& [seq, p] : unacked_) {
      if (now < p.next_retransmit) continue;
      resend.push_back(reliable::Encode(sender_id_, seq, p.payload));
      auto dl = deadlines_.find(p.next_retransmit);
      if (dl != deadlines_.end()) deadlines_.erase(dl);
      p.backoff = std::min(p.backoff * 2, options_.max_backoff);
      p.next_retransmit = now + JitteredLocked(p.backoff);
      deadlines_.insert(p.next_retransmit);
      redeliveries_++;
    }
  }
  for (std::string& m : resend) kv_->QueuePush(queue_, std::move(m));
  return resend.size();
}

size_t ReliableSender::unacked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unacked_.size();
}

uint64_t ReliableSender::redeliveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return redeliveries_;
}

uint64_t ReliableSender::inflight_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_rejections_;
}

uint64_t ReliableSender::retransmit_scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retransmit_scans_;
}

// ---------------------------------------------------------------------------
// ReliableReceiver
// ---------------------------------------------------------------------------

ReliableReceiver::ReliableReceiver(kv::KvStore* kv, std::string queue,
                                   ReliableOptions options)
    : kv_(kv),
      queue_(std::move(queue)),
      ack_queue_(queue_ + ":acks"),
      options_(options) {}

size_t ReliableReceiver::Accept(const std::string& message,
                                const Handler& handler) {
  auto env = reliable::Decode(message);
  if (env.status().IsNotFound()) {
    // Raw (pre-reliable) message: hand through verbatim so mixed
    // deployments and the seed wire format keep working.
    handler(message);
    return 1;
  }
  if (!env.ok()) {
    // A corrupted envelope is dropped *without* an ack: the sender's
    // retransmit is the recovery path, so the payload is never lost.
    return 0;
  }
  // Ack unconditionally — the sender may be retransmitting because the
  // first ack was lost.
  kv_->QueuePush(ack_queue_, reliable::EncodeAck(env->sender, env->seq));

  std::vector<std::string> deliverable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SenderState& st = senders_[env->sender];
    if (env->seq <= st.floor || st.pending.count(env->seq) > 0) {
      duplicates_dropped_++;
      return 0;
    }
    st.pending.emplace(env->seq, std::move(env->payload));
    // Release the contiguous run starting at floor+1 (in-order delivery:
    // reordered change events would otherwise produce phantom add/remove
    // flaps downstream).
    for (auto it = st.pending.begin();
         it != st.pending.end() && it->first == st.floor + 1;
         it = st.pending.erase(it)) {
      deliverable.push_back(std::move(it->second));
      st.floor = it->first;
    }
  }
  for (const std::string& p : deliverable) handler(p);
  return deliverable.size();
}

size_t ReliableReceiver::Poll(const Handler& handler) {
  size_t delivered = 0;
  for (;;) {
    auto msg = kv_->QueueTryPop(queue_);
    if (!msg.has_value()) return delivered;
    delivered += Accept(*msg, handler);
  }
}

size_t ReliableReceiver::PollBlocking(Micros timeout_micros,
                                      const Handler& handler) {
  auto msg = kv_->QueuePop(queue_, timeout_micros);
  if (!msg.has_value()) return 0;
  size_t delivered = Accept(*msg, handler);
  delivered += Poll(handler);
  return delivered;
}

uint64_t ReliableReceiver::duplicates_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_dropped_;
}

size_t ReliableReceiver::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [sender, st] : senders_) n += st.pending.size();
  return n;
}

}  // namespace quaestor::invalidb
