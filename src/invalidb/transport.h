#ifndef QUAESTOR_INVALIDB_TRANSPORT_H_
#define QUAESTOR_INVALIDB_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "invalidb/cluster.h"
#include "invalidb/notification.h"
#include "invalidb/reliable_queue.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace quaestor::invalidb {

/// Message-queue transport between Quaestor and InvaliDB (§4.1:
/// "Communication between QUAESTOR and InvaliDB is handled through Redis
/// message queues"). Requests (query activations/deactivations, change-
/// stream events) travel on one queue; notifications travel back on
/// another. Messages are self-describing JSON.
///
/// Queue names (namespaced by `prefix`): <prefix>:requests and
/// <prefix>:notifications. With the reliable layer enabled each direction
/// additionally uses "<queue>:acks" for delivery confirmations.
namespace transport {

/// Serialized message builders / parsers (exposed for tests). All
/// encoders emit canonical JSON in a single append pass — keys in sorted
/// order, byte-identical to serializing the equivalent db::Value tree.
std::string EncodeChange(const db::ChangeEvent& event);
/// One envelope carrying a commit-ordered slice of the change stream:
/// {"events":[<event spec>...],"op":"change_batch"}.
std::string EncodeChangeBatch(const std::vector<db::ChangeEvent>& events);
std::string EncodeRegister(const db::Query& query,
                           const std::vector<db::Document>& initial_result,
                           EventMask events, Micros evaluated_at);
std::string EncodeDeregister(const std::string& query_key);
std::string EncodeResize(size_t query_partitions, size_t object_partitions);
std::string EncodeNotification(const Notification& n);
/// One envelope carrying every notification of one dispatch:
/// {"notifications":[<notification spec>...],"op":"notify_batch"}.
std::string EncodeNotificationBatch(const std::vector<Notification>& batch);

/// Streaming element appenders: one inner spec of a batch envelope,
/// appended to an accumulating buffer. The endpoints stage outgoing
/// batches as pre-encoded bytes (one append per event, no deep copies of
/// buffered events), so the flush just closes the envelope and sends.
void AppendChangeEventSpec(std::string* out, const db::ChangeEvent& event);
void AppendNotificationSpec(std::string* out, const Notification& n);
Result<Notification> DecodeNotification(const std::string& message);
/// Parse-once overload for callers that already hold the decoded Value.
Result<Notification> DecodeNotification(const db::Value& msg);

/// Decodes a document spec (internal wire format; exposed for tests).
Result<db::Document> DecodeDocument(const db::Value& spec);
/// Decodes one change-event spec ("after" + "kind" required;
/// "commit_time" falls back to the after-image write_time).
Result<db::ChangeEvent> DecodeChangeEvent(const db::Value& spec);
/// Decodes a change_batch envelope. The whole batch is rejected if any
/// inner event is malformed (a torn batch must not be half-applied).
Result<std::vector<db::ChangeEvent>> DecodeChangeBatch(const db::Value& msg);
Result<std::vector<db::ChangeEvent>> DecodeChangeBatch(
    const std::string& message);
/// Decodes a notify_batch envelope (all-or-nothing, like DecodeChangeBatch).
Result<std::vector<Notification>> DecodeNotificationBatch(
    const db::Value& msg);
Result<std::vector<Notification>> DecodeNotificationBatch(
    const std::string& message);

}  // namespace transport

/// Write-path batching knobs: when enabled, change events buffer at the
/// sending endpoint and ship as one change_batch envelope per flush, and
/// the worker coalesces each dispatch's notifications into one
/// notify_batch envelope. Notification *content* is byte-identical to the
/// per-event wire format; only the framing changes.
struct BatchOptions {
  bool enabled = false;
  /// Flush as soon as this many events are buffered.
  size_t max_batch = 64;
  /// Flush once the oldest buffered event is this old (checked in Tick /
  /// DrainNotifications — manual-pump callers control the cadence).
  Micros flush_interval = 1 * kMicrosPerMilli;
};

/// Transport configuration: both queue directions share the reliable-
/// delivery settings (disabled by default — the seed wire format).
struct TransportOptions {
  ReliableOptions reliable;
  BatchOptions batching;
};

/// Delivery-quality counters for one transport endpoint.
struct TransportStats {
  /// Messages whose decode returned Status::Corruption (surfaced, not
  /// silently swallowed).
  uint64_t decode_errors = 0;
  /// Envelopes discarded because their sequence number was already
  /// delivered (at-least-once duplicates).
  uint64_t duplicates_dropped = 0;
  /// Retransmissions this endpoint's sender performed.
  uint64_t redeliveries = 0;
  /// Batch envelopes sent and the events/notifications they carried.
  uint64_t batches_sent = 0;
  uint64_t batch_events = 0;
  /// Why each flush fired: the buffer filled (size), the oldest event
  /// aged out (interval), a non-change request needed ordering (barrier),
  /// or an explicit FlushChanges / pump-cycle flush (manual).
  uint64_t flushes_size = 0;
  uint64_t flushes_interval = 0;
  uint64_t flushes_barrier = 0;
  uint64_t flushes_manual = 0;

  /// Adds these totals into `transport_*` registry counters. Labels
  /// conventionally carry {"endpoint","remote"|"worker"}; flush reasons
  /// export as transport_batch_flushes with an extra {"reason",...}.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The Quaestor-side stub: mirrors InvalidbCluster's interface but ships
/// every call through the KV queues; a background (or manually pumped)
/// poller delivers notifications to the sink.
class InvalidbRemote {
 public:
  InvalidbRemote(Clock* clock, kv::KvStore* kv, std::string prefix,
                 NotificationSink sink,
                 TransportOptions options = TransportOptions());
  ~InvalidbRemote();

  InvalidbRemote(const InvalidbRemote&) = delete;
  InvalidbRemote& operator=(const InvalidbRemote&) = delete;

  void RegisterQuery(const db::Query& query,
                     const std::vector<db::Document>& initial_result,
                     EventMask events, Micros evaluated_at = -1);
  void DeregisterQuery(const std::string& query_key);
  void OnChange(const db::ChangeEvent& event);

  /// Requests a live repartition of the worker's cluster (elastic
  /// scale-out). The worker resizes via direct state handoff — it has no
  /// database access for re-evaluation — so the request assumes a healthy
  /// grid. Queue order guarantees every change sent before this call is
  /// matched on the old grid and everything after on the new one.
  void Resize(size_t query_partitions, size_t object_partitions);

  /// Ships the buffered change batch now (no-op when batching is off or
  /// the buffer is empty). Register/Deregister/Resize flush implicitly —
  /// a buffered change must never be reordered after a control request.
  void FlushChanges();

  /// Delivers all currently queued notifications to the sink (manual
  /// pump; deterministic tests). Also ticks the request sender (acks +
  /// retransmits). Returns how many notifications were delivered.
  size_t DrainNotifications();

  /// Pumps the reliable machinery (and the batch age-out) without
  /// draining notifications.
  void Tick();

  /// Starts/stops a background notification poller thread. Stop/Start
  /// also models a poller crash + restart: queued notifications survive
  /// in the KV queue and are delivered after the restart.
  void StartPolling();
  void StopPolling();

  bool polling() const { return polling_.load(); }

  const std::string& requests_queue() const { return requests_queue_; }
  const std::string& notifications_queue() const {
    return notifications_queue_;
  }

  /// Request messages awaiting a worker ack (0 when reliability is off).
  size_t unacked_requests() const { return req_sender_.unacked(); }
  /// Out-of-order notifications parked until their gap fills.
  size_t pending_notifications() const { return notif_receiver_.pending(); }
  /// Change events currently buffered awaiting a flush.
  size_t buffered_changes() const;

  uint64_t decode_errors() const { return decode_errors_.load(); }
  TransportStats stats() const;

 private:
  size_t HandleWire(const std::string& payload);
  void SendEncodedBatch(std::string payload, size_t count);
  void FlushWithReason(std::atomic<uint64_t>* reason);
  void MaybeFlushByAge();

  Clock* clock_;
  kv::KvStore* kv_;
  TransportOptions options_;
  std::string requests_queue_;
  std::string notifications_queue_;
  NotificationSink sink_;
  ReliableSender req_sender_;
  ReliableReceiver notif_receiver_;

  /// Ingest batch staged as pre-encoded envelope bytes (guarded by
  /// batch_mu_): the open "{"events":[" prefix plus one spec per buffered
  /// event. batch_oldest_ is the NowMicros when the run started.
  mutable std::mutex batch_mu_;
  std::string batch_json_;
  size_t batch_count_ = 0;
  Micros batch_oldest_ = 0;
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> batch_events_{0};
  std::atomic<uint64_t> flushes_size_{0};
  std::atomic<uint64_t> flushes_interval_{0};
  std::atomic<uint64_t> flushes_barrier_{0};
  std::atomic<uint64_t> flushes_manual_{0};

  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<bool> polling_{false};
  std::thread poller_;
};

/// The InvaliDB-side worker: owns a cluster, consumes the request queue,
/// and publishes notifications back.
class InvalidbWorker {
 public:
  InvalidbWorker(Clock* clock, kv::KvStore* kv, std::string prefix,
                 InvalidbOptions options = InvalidbOptions(),
                 TransportOptions transport_options = TransportOptions());
  ~InvalidbWorker();

  InvalidbWorker(const InvalidbWorker&) = delete;
  InvalidbWorker& operator=(const InvalidbWorker&) = delete;

  /// Processes all currently queued requests (manual pump). Returns how
  /// many messages were handled; malformed messages are counted in
  /// decode_errors() and skipped. Also ticks the notification sender and
  /// flushes buffered notifications at the end of the pump.
  size_t ProcessPending();

  /// Ships the buffered notification batch now (no-op when batching is
  /// off or nothing is buffered). Returns how many notifications shipped.
  size_t FlushNotifications();

  /// Pumps the reliable machinery without processing requests.
  void Tick();

  /// Starts/stops a background consumer thread.
  void Start();
  void Stop();

  InvalidbCluster& cluster() { return *cluster_; }
  uint64_t decode_errors() const { return decode_errors_.load(); }
  TransportStats stats() const;

 private:
  void HandleMessage(const std::string& message);
  void BufferNotifications(const Notification* data, size_t count);
  void SendEncodedNotifications(std::string payload, size_t count);

  kv::KvStore* kv_;
  TransportOptions options_;
  std::string requests_queue_;
  std::string notifications_queue_;
  ReliableReceiver req_receiver_;
  ReliableSender notif_sender_;
  std::unique_ptr<InvalidbCluster> cluster_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> decode_errors_{0};

  /// Outbound notification batch staged as pre-encoded envelope bytes
  /// (guarded by notif_mu_). Fed by the cluster's batch sink from worker
  /// threads; drained by the pump.
  std::mutex notif_mu_;
  std::string notif_json_;
  size_t notif_count_ = 0;
  std::atomic<uint64_t> batches_sent_{0};
  std::atomic<uint64_t> batch_events_{0};
  std::atomic<uint64_t> flushes_size_{0};
  std::atomic<uint64_t> flushes_manual_{0};

  std::thread consumer_;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_TRANSPORT_H_
