#ifndef QUAESTOR_INVALIDB_TRANSPORT_H_
#define QUAESTOR_INVALIDB_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "invalidb/cluster.h"
#include "invalidb/notification.h"
#include "invalidb/reliable_queue.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace quaestor::invalidb {

/// Message-queue transport between Quaestor and InvaliDB (§4.1:
/// "Communication between QUAESTOR and InvaliDB is handled through Redis
/// message queues"). Requests (query activations/deactivations, change-
/// stream events) travel on one queue; notifications travel back on
/// another. Messages are self-describing JSON.
///
/// Queue names (namespaced by `prefix`): <prefix>:requests and
/// <prefix>:notifications. With the reliable layer enabled each direction
/// additionally uses "<queue>:acks" for delivery confirmations.
namespace transport {

/// Serialized message builders / parsers (exposed for tests).
std::string EncodeChange(const db::ChangeEvent& event);
std::string EncodeRegister(const db::Query& query,
                           const std::vector<db::Document>& initial_result,
                           EventMask events, Micros evaluated_at);
std::string EncodeDeregister(const std::string& query_key);
std::string EncodeResize(size_t query_partitions, size_t object_partitions);
std::string EncodeNotification(const Notification& n);
Result<Notification> DecodeNotification(const std::string& message);

/// Decodes a document spec (internal wire format; exposed for tests).
Result<db::Document> DecodeDocument(const db::Value& spec);

}  // namespace transport

/// Transport configuration: both queue directions share the reliable-
/// delivery settings (disabled by default — the seed wire format).
struct TransportOptions {
  ReliableOptions reliable;
};

/// Delivery-quality counters for one transport endpoint.
struct TransportStats {
  /// Messages whose decode returned Status::Corruption (surfaced, not
  /// silently swallowed).
  uint64_t decode_errors = 0;
  /// Envelopes discarded because their sequence number was already
  /// delivered (at-least-once duplicates).
  uint64_t duplicates_dropped = 0;
  /// Retransmissions this endpoint's sender performed.
  uint64_t redeliveries = 0;

  /// Adds these totals into `transport_*` registry counters. Labels
  /// conventionally carry {"endpoint","remote"|"worker"}.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The Quaestor-side stub: mirrors InvalidbCluster's interface but ships
/// every call through the KV queues; a background (or manually pumped)
/// poller delivers notifications to the sink.
class InvalidbRemote {
 public:
  InvalidbRemote(Clock* clock, kv::KvStore* kv, std::string prefix,
                 NotificationSink sink,
                 TransportOptions options = TransportOptions());
  ~InvalidbRemote();

  InvalidbRemote(const InvalidbRemote&) = delete;
  InvalidbRemote& operator=(const InvalidbRemote&) = delete;

  void RegisterQuery(const db::Query& query,
                     const std::vector<db::Document>& initial_result,
                     EventMask events, Micros evaluated_at = -1);
  void DeregisterQuery(const std::string& query_key);
  void OnChange(const db::ChangeEvent& event);

  /// Requests a live repartition of the worker's cluster (elastic
  /// scale-out). The worker resizes via direct state handoff — it has no
  /// database access for re-evaluation — so the request assumes a healthy
  /// grid. Queue order guarantees every change sent before this call is
  /// matched on the old grid and everything after on the new one.
  void Resize(size_t query_partitions, size_t object_partitions);

  /// Delivers all currently queued notifications to the sink (manual
  /// pump; deterministic tests). Also ticks the request sender (acks +
  /// retransmits). Returns how many notifications were delivered.
  size_t DrainNotifications();

  /// Pumps the reliable machinery without draining notifications.
  void Tick();

  /// Starts/stops a background notification poller thread. Stop/Start
  /// also models a poller crash + restart: queued notifications survive
  /// in the KV queue and are delivered after the restart.
  void StartPolling();
  void StopPolling();

  bool polling() const { return polling_.load(); }

  const std::string& requests_queue() const { return requests_queue_; }
  const std::string& notifications_queue() const {
    return notifications_queue_;
  }

  /// Request messages awaiting a worker ack (0 when reliability is off).
  size_t unacked_requests() const { return req_sender_.unacked(); }
  /// Out-of-order notifications parked until their gap fills.
  size_t pending_notifications() const { return notif_receiver_.pending(); }

  uint64_t decode_errors() const { return decode_errors_.load(); }
  TransportStats stats() const;

 private:
  void HandleWire(const std::string& payload);

  kv::KvStore* kv_;
  std::string requests_queue_;
  std::string notifications_queue_;
  NotificationSink sink_;
  ReliableSender req_sender_;
  ReliableReceiver notif_receiver_;
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<bool> polling_{false};
  std::thread poller_;
};

/// The InvaliDB-side worker: owns a cluster, consumes the request queue,
/// and publishes notifications back.
class InvalidbWorker {
 public:
  InvalidbWorker(Clock* clock, kv::KvStore* kv, std::string prefix,
                 InvalidbOptions options = InvalidbOptions(),
                 TransportOptions transport_options = TransportOptions());
  ~InvalidbWorker();

  InvalidbWorker(const InvalidbWorker&) = delete;
  InvalidbWorker& operator=(const InvalidbWorker&) = delete;

  /// Processes all currently queued requests (manual pump). Returns how
  /// many messages were handled; malformed messages are counted in
  /// decode_errors() and skipped. Also ticks the notification sender.
  size_t ProcessPending();

  /// Pumps the reliable machinery without processing requests.
  void Tick();

  /// Starts/stops a background consumer thread.
  void Start();
  void Stop();

  InvalidbCluster& cluster() { return *cluster_; }
  uint64_t decode_errors() const { return decode_errors_.load(); }
  TransportStats stats() const;

 private:
  void HandleMessage(const std::string& message);

  kv::KvStore* kv_;
  std::string requests_queue_;
  std::string notifications_queue_;
  ReliableReceiver req_receiver_;
  ReliableSender notif_sender_;
  std::unique_ptr<InvalidbCluster> cluster_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> decode_errors_{0};
  std::thread consumer_;
};

}  // namespace quaestor::invalidb

#endif  // QUAESTOR_INVALIDB_TRANSPORT_H_
