#ifndef QUAESTOR_COMMON_QUEUE_H_
#define QUAESTOR_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace quaestor {

/// Thread-safe bounded multi-producer multi-consumer FIFO queue.
/// Producers block when the queue is full (backpressure — InvaliDB relies
/// on this to detect saturation); consumers block when it is empty.
/// `Close()` wakes all waiters; Pop returns nullopt once closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available or the queue is closed.
  /// Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Pops with a timeout; nullopt on timeout or closed-and-empty.
  std::optional<T> PopWithTimeout(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking drain: moves every queued item into `out` (appending,
  /// FIFO order) under a single lock acquisition. Returns how many items
  /// were moved. Consumers that process items in bulk use this instead of
  /// paying one lock round-trip per TryPop.
  size_t TryPopAll(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = items_.size();
    if (n == 0) return 0;
    out->reserve(out->size() + n);
    for (T& item : items_) out->push_back(std::move(item));
    items_.clear();
    not_full_.notify_all();
    return n;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending Pops drain remaining items then see nullopt;
  /// subsequent Pushes fail.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool IsClosed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_QUEUE_H_
