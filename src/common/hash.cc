#include "common/hash.h"

#include <cstring>

namespace quaestor {

namespace {

inline uint64_t FMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (len * m);

  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
    p += 8;
    len -= 8;
  }

  uint64_t tail = 0;
  std::memcpy(&tail, p, len);
  if (len > 0) {
    h ^= tail;
    h *= m;
  }
  return FMix64(h);
}

uint64_t Hash64(std::string_view s, uint64_t seed) {
  return Hash64(s.data(), s.size(), seed);
}

uint64_t Hash64(uint64_t x, uint64_t seed) {
  return FMix64(x + seed * 0x9e3779b97f4a7c15ULL);
}

void BloomPositions(std::string_view key, size_t k, size_t m, size_t* out) {
  const uint64_t h1 = Hash64(key, /*seed=*/0x51ed270b);
  uint64_t h2 = Hash64(key, /*seed=*/0xc3a5c85c);
  // Ensure h2 is odd so that for power-of-two m all positions are reachable;
  // harmless for other m.
  h2 |= 1;
  uint64_t h = h1;
  for (size_t i = 0; i < k; ++i) {
    out[i] = static_cast<size_t>(h % m);
    h += h2;
  }
}

}  // namespace quaestor
