#ifndef QUAESTOR_COMMON_RANDOM_H_
#define QUAESTOR_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace quaestor {

/// Deterministic 64-bit pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Every randomized component in the library takes an explicit
/// seed so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Exponentially distributed sample with rate `lambda` (> 0).
  /// Mean is 1/lambda.
  double NextExponential(double lambda);

  /// Poisson-distributed sample with mean `mean` (>= 0). Uses Knuth's
  /// algorithm for small means and a normal approximation for large ones.
  uint64_t NextPoisson(double mean);

  /// Normally distributed sample (Box-Muller).
  double NextGaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipfian generator over [0, n) with parameter `theta` (the YCSB /
/// Gray et al. "Quickly generating billion-record synthetic databases"
/// algorithm). Item 0 is the most popular. theta in (0, 1); the paper's
/// experiments use the YCSB default and 0.99 for Table 1.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  /// Draws the next Zipf-distributed item in [0, n).
  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// The probability of drawing item `rank` (0-based; rank 0 = hottest).
  double Probability(uint64_t rank) const;

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double zeta2theta_;
};

/// A "scrambled" Zipfian: Zipf ranks are spread over the key space by a
/// hash so popular keys are not clustered (YCSB's scrambled_zipfian).
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

 private:
  ZipfianGenerator zipf_;
  uint64_t n_;
};

/// Samples an index from a discrete distribution given by non-negative
/// weights. Used for operation-mix sampling in the workload generator.
class DiscreteDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> weights);

  /// Draws an index in [0, weights.size()).
  size_t Next(Rng& rng) const;

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
};

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_RANDOM_H_
