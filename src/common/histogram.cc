#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace quaestor {

namespace {
// Buckets: bucket 0 holds value == 0; bucket b >= 1 holds values in
// [kBase^(b-1), kBase^b) scaled so that 1e-3 (1 microsecond when the unit
// is milliseconds) falls into bucket 1.
constexpr double kBase = 1.08;
constexpr double kFirstBound = 1e-3;
}  // namespace

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      sum_(0.0),
      min_(std::numeric_limits<double>::infinity()),
      max_(0.0) {}

size_t Histogram::BucketFor(double value) {
  if (value < kFirstBound) return 0;
  const double b = std::log(value / kFirstBound) / std::log(kBase) + 1.0;
  const size_t bucket = static_cast<size_t>(b);
  return std::min(bucket, kNumBuckets - 1);
}

double Histogram::BucketLowerBound(size_t bucket) {
  if (bucket == 0) return 0.0;
  return kFirstBound * std::pow(kBase, static_cast<double>(bucket - 1));
}

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram Histogram::DiffSince(const Histogram& earlier) const {
  Histogram out;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets_[i] = buckets_[i] >= earlier.buckets_[i]
                          ? buckets_[i] - earlier.buckets_[i]
                          : 0;
  }
  out.count_ = count_ >= earlier.count_ ? count_ - earlier.count_ : 0;
  out.sum_ = sum_ - earlier.sum_;
  if (out.count_ == 0) {
    out.sum_ = 0.0;
  } else {
    out.min_ = min_;
    out.max_ = max_;
  }
  return out;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = 0.0;
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  // The extreme quantiles are tracked exactly; returning a bucket
  // midpoint for them would violate the observed range.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t cum = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i];
    if (static_cast<double>(cum) >= target) {
      // Interpolate within the bucket's bounds, clamped to observed range.
      const double lo = BucketLowerBound(i);
      const double hi = (i + 1 < kNumBuckets) ? BucketLowerBound(i + 1) : max_;
      const double mid = (lo + hi) / 2.0;
      return std::clamp(mid, min(), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Median()
     << " p99=" << P99() << " max=" << max_;
  return os.str();
}

void MeanAccumulator::Record(double value) {
  count_++;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double MeanAccumulator::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double MeanAccumulator::StdDev() const { return std::sqrt(Variance()); }

}  // namespace quaestor
