#ifndef QUAESTOR_COMMON_STATUS_H_
#define QUAESTOR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace quaestor {

/// Error categories used across the Quaestor library. Mirrors the
/// RocksDB/Arrow convention of status-based error handling: no exceptions
/// cross public API boundaries.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kAborted = 7,
  kUnavailable = 8,
  kInternal = 9,
  kNotSupported = 10,
  kCorruption = 11,
  kTimedOut = 12,
  kDeadlineExceeded = 13,
};

/// Returns a stable human-readable name for a status code (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. `Status::OK()` carries no message
/// and is cheap to copy; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace quaestor

/// Propagates an error status from an expression, RocksDB-style.
#define QUAESTOR_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::quaestor::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // QUAESTOR_COMMON_STATUS_H_
