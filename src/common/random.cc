#include "common/random.h"

#include <cassert>
#include <cmath>

#include "common/hash.h"

namespace quaestor {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  assert(lambda > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    const double limit = std::exp(-mean);
    double prod = NextDouble();
    uint64_t count = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation for large means.
  double sample = NextGaussian(mean, std::sqrt(mean));
  if (sample < 0.0) sample = 0.0;
  return static_cast<uint64_t>(sample + 0.5);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

double ZipfianGenerator::Probability(uint64_t rank) const {
  assert(rank < n_);
  return 1.0 / (std::pow(static_cast<double>(rank + 1), theta_) * zetan_);
}

ScrambledZipfianGenerator::ScrambledZipfianGenerator(uint64_t n, double theta)
    : zipf_(n, theta), n_(n) {}

uint64_t ScrambledZipfianGenerator::Next(Rng& rng) {
  const uint64_t rank = zipf_.Next(rng);
  return Hash64(rank, /*seed=*/0xfeedbeef) % n_;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

size_t DiscreteDistribution::Next(Rng& rng) const {
  const double u = rng.NextDouble();
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u < cumulative_[i]) return i;
  }
  return cumulative_.size() - 1;
}

}  // namespace quaestor
