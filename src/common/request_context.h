#ifndef QUAESTOR_COMMON_REQUEST_CONTEXT_H_
#define QUAESTOR_COMMON_REQUEST_CONTEXT_H_

#include <string_view>

#include "common/clock.h"

namespace quaestor {

/// Scheduling class of a request under overload. Lower numeric value means
/// more important: the admission controller sheds the least important
/// classes first so the invalidation pipeline and cheap revalidations
/// survive while expensive cache-miss queries are dropped.
enum class Priority {
  /// Invalidation / purge traffic. Dropping it converts a load problem
  /// into a correctness problem, so it is never shed by queue delay.
  kCritical = 0,
  /// Conditional revalidations (If-None-Match) — usually a cheap 304.
  kHigh = 1,
  /// Plain reads and queries.
  kNormal = 2,
  /// Writes — retried by clients and absorbed by write batching, so they
  /// are shed first.
  kLow = 3,
};

constexpr std::string_view PriorityToString(Priority p) {
  switch (p) {
    case Priority::kCritical:
      return "critical";
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

/// Per-request metadata threaded from the client through the cache tiers
/// into the origin server. A default-constructed context carries no
/// deadline and normal priority, which every call site treats as "feature
/// off": the request behaves exactly as it did before deadlines existed.
struct RequestContext {
  /// Absolute deadline in the issuing clock's domain (microseconds).
  /// 0 means "no deadline".
  Micros deadline = 0;
  Priority priority = Priority::kNormal;

  bool has_deadline() const { return deadline > 0; }

  /// True if the deadline has passed at `now`.
  bool Expired(Micros now) const { return has_deadline() && now >= deadline; }

  /// Time left before the deadline, clamped at 0. Returns a very large
  /// value when no deadline is set so comparisons like
  /// `Remaining(now) < cost` stay simple at call sites.
  Micros Remaining(Micros now) const {
    if (!has_deadline()) return kNoDeadlineRemaining;
    return deadline > now ? deadline - now : 0;
  }

  static constexpr Micros kNoDeadlineRemaining =
      static_cast<Micros>(1) << 62;

  static RequestContext WithTimeout(Micros now, Micros timeout,
                                    Priority priority = Priority::kNormal) {
    RequestContext ctx;
    ctx.deadline = now + timeout;
    ctx.priority = priority;
    return ctx;
  }
};

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_REQUEST_CONTEXT_H_
