#ifndef QUAESTOR_COMMON_RESULT_H_
#define QUAESTOR_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace quaestor {

/// A value-or-error holder (the `StatusOr` idiom). A `Result<T>` either
/// holds a `T` (and `status().ok()` is true) or an error `Status`.
///
/// Usage:
///   Result<int> r = ParseInt(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr.
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status)  // NOLINT: implicit by design.
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the held value; must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace quaestor

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// assigns the value to `lhs`.
#define QUAESTOR_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  auto QUAESTOR_CONCAT_(_res_, __LINE__) = (rexpr);           \
  if (!QUAESTOR_CONCAT_(_res_, __LINE__).ok())                \
    return QUAESTOR_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(QUAESTOR_CONCAT_(_res_, __LINE__)).value()

#define QUAESTOR_CONCAT_INNER_(a, b) a##b
#define QUAESTOR_CONCAT_(a, b) QUAESTOR_CONCAT_INNER_(a, b)

#endif  // QUAESTOR_COMMON_RESULT_H_
