#ifndef QUAESTOR_COMMON_HASH_H_
#define QUAESTOR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace quaestor {

/// 64-bit hash of a byte range (MurmurHash3-style finalized avalanche
/// mixing). Stable across runs; used for sharding, Bloom filters, and
/// Zipf scrambling.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

/// 64-bit hash of a string.
uint64_t Hash64(std::string_view s, uint64_t seed = 0);

/// 64-bit hash of an integer (finalizer-only mix).
uint64_t Hash64(uint64_t x, uint64_t seed = 0);

/// Derives `k` Bloom-filter bit positions in [0, m) from a key using the
/// standard Kirsch-Mitzenmacher double-hashing scheme
/// (g_i = h1 + i * h2 mod m). Writes positions into `out[0..k)`.
void BloomPositions(std::string_view key, size_t k, size_t m, size_t* out);

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_HASH_H_
