#ifndef QUAESTOR_COMMON_CLOCK_H_
#define QUAESTOR_COMMON_CLOCK_H_

#include <cstdint>
#include <memory>

namespace quaestor {

/// Time is represented as microseconds since an arbitrary epoch. All
/// Quaestor components are written against this abstract clock so the same
/// code runs under the real monotonic clock (InvaliDB throughput benches)
/// and under the deterministic simulation clock (all staleness and latency
/// experiments).
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Converts seconds (fractional allowed) to microseconds.
constexpr Micros SecondsToMicros(double seconds) {
  return static_cast<Micros>(seconds * static_cast<double>(kMicrosPerSecond));
}

/// Converts microseconds to fractional seconds.
constexpr double MicrosToSeconds(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

/// Converts milliseconds (fractional allowed) to microseconds.
constexpr Micros MillisToMicros(double millis) {
  return static_cast<Micros>(millis * static_cast<double>(kMicrosPerMilli));
}

/// Converts microseconds to fractional milliseconds.
constexpr double MicrosToMillis(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Returns the current time in microseconds since the clock's epoch.
  virtual Micros NowMicros() const = 0;
};

/// Wall/monotonic clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  Micros NowMicros() const override;

  /// Shared process-wide instance.
  static SystemClock* Default();
};

/// Manually advanced clock for tests and discrete-event simulation.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_; }

  /// Advances the clock by `delta` microseconds (must be non-negative).
  void Advance(Micros delta) { now_ += delta; }

  /// Jumps the clock to `t`; `t` must not be in the past.
  void SetTime(Micros t) { now_ = t; }

 private:
  Micros now_;
};

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_CLOCK_H_
