#ifndef QUAESTOR_COMMON_HISTOGRAM_H_
#define QUAESTOR_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace quaestor {

/// Log-bucketed histogram for latency-like values, with exact tracking of
/// count/sum/min/max and approximate quantiles. Values are non-negative
/// doubles (unit chosen by caller; the library uses milliseconds).
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to 0.
  void Record(double value);

  /// Merges another histogram's observations into this one.
  void Merge(const Histogram& other);

  /// Returns the observations accumulated since `earlier`, which must be
  /// a previous snapshot of this histogram (bucket counts subtract;
  /// underflow clamps to zero). min/max cannot be recovered for a delta,
  /// so the result inherits this histogram's lifetime min/max — an
  /// approximation callers of snapshot-diffing accept.
  Histogram DiffSince(const Histogram& earlier) const;

  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const { return max_; }
  double Mean() const;

  /// Approximate quantile (q in [0,1]) via bucket interpolation.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P99() const { return Quantile(0.99); }

  /// One-line summary: count, mean, p50, p99, max.
  std::string ToString() const;

 private:
  static size_t BucketFor(double value);
  static double BucketLowerBound(size_t bucket);

  static constexpr size_t kNumBuckets = 512;
  std::vector<uint64_t> buckets_;
  uint64_t count_;
  double sum_;
  double min_;
  double max_;
};

/// Running mean/variance accumulator (Welford).
class MeanAccumulator {
 public:
  MeanAccumulator() : count_(0), mean_(0.0), m2_(0.0) {}

  void Record(double value);

  uint64_t count() const { return count_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;

 private:
  uint64_t count_;
  double mean_;
  double m2_;
};

}  // namespace quaestor

#endif  // QUAESTOR_COMMON_HISTOGRAM_H_
