#ifndef QUAESTOR_KV_KV_STORE_H_
#define QUAESTOR_KV_KV_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/queue.h"
#include "common/result.h"

namespace quaestor::kv {

/// An in-memory key-value store with Redis-like primitives: string values,
/// atomic counters, hash fields, per-key expiration, pub/sub channels, and
/// blocking FIFO queues. Thread-safe. This is the substrate hosting the
/// distributed Expiring Bloom Filter variant and the Quaestor ↔ InvaliDB
/// message queues (the paper uses Redis for both, §3.3 and §4.1).
class KvStore {
 public:
  explicit KvStore(Clock* clock) : clock_(clock) {}
  virtual ~KvStore() = default;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  // -- Strings --

  /// SET key value [TTL]. ttl_micros < 0 means no expiration.
  void Set(const std::string& key, std::string value, Micros ttl_micros = -1);

  /// GET key. NotFound after expiry or if never set.
  Result<std::string> Get(const std::string& key) const;

  /// DEL key. Returns true if the key existed (and was live).
  bool Del(const std::string& key);

  /// EXISTS key.
  bool Exists(const std::string& key) const;

  /// EXPIRE key ttl. Returns false if the key does not exist.
  bool Expire(const std::string& key, Micros ttl_micros);

  /// TTL key: remaining lifetime in micros; nullopt if missing, -1 if the
  /// key has no expiration.
  std::optional<Micros> Ttl(const std::string& key) const;

  // -- Counters --

  /// INCRBY key delta. Missing keys start at 0. Fails on non-numeric
  /// values. Returns the new value.
  Result<int64_t> IncrBy(const std::string& key, int64_t delta);

  // -- Hashes --

  /// HSET key field value. Returns true if the field is new.
  bool HSet(const std::string& key, const std::string& field,
            std::string value);

  /// HGET key field.
  Result<std::string> HGet(const std::string& key,
                           const std::string& field) const;

  /// HDEL key field. Returns true if removed.
  bool HDel(const std::string& key, const std::string& field);

  /// HGETALL key (empty map if missing).
  std::map<std::string, std::string> HGetAll(const std::string& key) const;

  /// HINCRBY key field delta.
  Result<int64_t> HIncrBy(const std::string& key, const std::string& field,
                          int64_t delta);

  // -- Pub/Sub --

  using Subscriber = std::function<void(const std::string& channel,
                                        const std::string& message)>;

  /// SUBSCRIBE channel. Returns a subscription id for Unsubscribe.
  uint64_t Subscribe(const std::string& channel, Subscriber subscriber);

  void Unsubscribe(uint64_t subscription_id);

  /// PUBLISH channel message. Subscribers are invoked synchronously.
  /// Returns the number of receivers.
  size_t Publish(const std::string& channel, const std::string& message);

  // -- Queues (LPUSH/BRPOP-style message queues) --
  //
  // Virtual so fault-injection decorators (fault::FaultyKvStore) can
  // intercept the Quaestor ↔ InvaliDB message path; everything else in
  // the store is reliable by assumption.

  /// Pushes onto the named queue (created on first use, unbounded-ish cap).
  virtual void QueuePush(const std::string& queue, std::string message);

  /// Blocking pop with timeout. nullopt on timeout.
  virtual std::optional<std::string> QueuePop(const std::string& queue,
                                              Micros timeout_micros);

  /// Non-blocking pop.
  virtual std::optional<std::string> QueueTryPop(const std::string& queue);

  virtual size_t QueueLen(const std::string& queue) const;

  // -- Maintenance --

  /// Drops all expired entries; returns how many were removed. (Reads also
  /// treat expired entries as missing lazily.)
  size_t SweepExpired();

  /// Number of live string/hash keys.
  size_t Size() const;

  /// Removes everything.
  void FlushAll();

 private:
  struct Entry {
    std::string value;
    std::map<std::string, std::string> hash;
    bool is_hash = false;
    Micros expire_at = -1;  // -1 = never
  };

  bool IsExpiredLocked(const Entry& e) const {
    return e.expire_at >= 0 && clock_->NowMicros() >= e.expire_at;
  }

  /// Returns the live entry or nullptr (lazily deleting expired entries).
  Entry* FindLive(const std::string& key);
  const Entry* FindLive(const std::string& key) const;

  using Queue = BoundedQueue<std::string>;

  Clock* clock_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string, Entry> data_;

  mutable std::mutex sub_mu_;
  uint64_t next_sub_id_ = 1;
  // channel -> (id -> subscriber)
  std::unordered_map<std::string, std::map<uint64_t, Subscriber>> subs_;
  std::unordered_map<uint64_t, std::string> sub_channels_;

  mutable std::mutex queues_mu_;
  mutable std::unordered_map<std::string, std::unique_ptr<Queue>> queues_;

  Queue* GetQueue(const std::string& name) const;
};

}  // namespace quaestor::kv

#endif  // QUAESTOR_KV_KV_STORE_H_
