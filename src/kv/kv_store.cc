#include "kv/kv_store.h"

#include <charconv>
#include <chrono>

namespace quaestor::kv {

KvStore::Entry* KvStore::FindLive(const std::string& key) {
  auto it = data_.find(key);
  if (it == data_.end()) return nullptr;
  if (IsExpiredLocked(it->second)) {
    data_.erase(it);
    return nullptr;
  }
  return &it->second;
}

const KvStore::Entry* KvStore::FindLive(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return nullptr;
  if (IsExpiredLocked(it->second)) {
    data_.erase(it);
    return nullptr;
  }
  return &it->second;
}

void KvStore::Set(const std::string& key, std::string value,
                  Micros ttl_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = data_[key];
  e.value = std::move(value);
  e.is_hash = false;
  e.hash.clear();
  e.expire_at = ttl_micros < 0 ? -1 : clock_->NowMicros() + ttl_micros;
}

Result<std::string> KvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindLive(key);
  if (e == nullptr || e->is_hash) return Status::NotFound(key);
  return e->value;
}

bool KvStore::Del(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(key);
  if (e == nullptr) return false;
  data_.erase(key);
  return true;
}

bool KvStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return FindLive(key) != nullptr;
}

bool KvStore::Expire(const std::string& key, Micros ttl_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(key);
  if (e == nullptr) return false;
  e->expire_at = ttl_micros < 0 ? -1 : clock_->NowMicros() + ttl_micros;
  return true;
}

std::optional<Micros> KvStore::Ttl(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindLive(key);
  if (e == nullptr) return std::nullopt;
  if (e->expire_at < 0) return -1;
  return e->expire_at - clock_->NowMicros();
}

namespace {
Result<int64_t> ParseInt(const std::string& s) {
  int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    return Status::InvalidArgument("value is not an integer: " + s);
  }
  return v;
}
}  // namespace

Result<int64_t> KvStore::IncrBy(const std::string& key, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(key);
  int64_t current = 0;
  Micros expire_at = -1;
  if (e != nullptr) {
    if (e->is_hash) return Status::InvalidArgument("key holds a hash");
    auto parsed = ParseInt(e->value);
    if (!parsed.ok()) return parsed.status();
    current = parsed.value();
    expire_at = e->expire_at;
  }
  current += delta;
  Entry& slot = data_[key];
  slot.value = std::to_string(current);
  slot.is_hash = false;
  slot.expire_at = expire_at;
  return current;
}

bool KvStore::HSet(const std::string& key, const std::string& field,
                   std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* live = FindLive(key);
  Entry& e = live != nullptr ? *live : data_[key];
  e.is_hash = true;
  auto [it, inserted] = e.hash.insert_or_assign(field, std::move(value));
  (void)it;
  return inserted;
}

Result<std::string> KvStore::HGet(const std::string& key,
                                  const std::string& field) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindLive(key);
  if (e == nullptr || !e->is_hash) return Status::NotFound(key);
  auto it = e->hash.find(field);
  if (it == e->hash.end()) return Status::NotFound(key + "." + field);
  return it->second;
}

bool KvStore::HDel(const std::string& key, const std::string& field) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(key);
  if (e == nullptr || !e->is_hash) return false;
  const bool removed = e->hash.erase(field) > 0;
  if (e->hash.empty()) data_.erase(key);
  return removed;
}

std::map<std::string, std::string> KvStore::HGetAll(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = FindLive(key);
  if (e == nullptr || !e->is_hash) return {};
  return e->hash;
}

Result<int64_t> KvStore::HIncrBy(const std::string& key,
                                 const std::string& field, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* live = FindLive(key);
  Entry& e = live != nullptr ? *live : data_[key];
  e.is_hash = true;
  int64_t current = 0;
  auto it = e.hash.find(field);
  if (it != e.hash.end()) {
    auto parsed = ParseInt(it->second);
    if (!parsed.ok()) return parsed.status();
    current = parsed.value();
  }
  current += delta;
  e.hash[field] = std::to_string(current);
  return current;
}

uint64_t KvStore::Subscribe(const std::string& channel,
                            Subscriber subscriber) {
  std::lock_guard<std::mutex> lock(sub_mu_);
  const uint64_t id = next_sub_id_++;
  subs_[channel][id] = std::move(subscriber);
  sub_channels_[id] = channel;
  return id;
}

void KvStore::Unsubscribe(uint64_t subscription_id) {
  std::lock_guard<std::mutex> lock(sub_mu_);
  auto chan_it = sub_channels_.find(subscription_id);
  if (chan_it == sub_channels_.end()) return;
  auto subs_it = subs_.find(chan_it->second);
  if (subs_it != subs_.end()) {
    subs_it->second.erase(subscription_id);
    if (subs_it->second.empty()) subs_.erase(subs_it);
  }
  sub_channels_.erase(chan_it);
}

size_t KvStore::Publish(const std::string& channel,
                        const std::string& message) {
  std::vector<Subscriber> receivers;
  {
    std::lock_guard<std::mutex> lock(sub_mu_);
    auto it = subs_.find(channel);
    if (it != subs_.end()) {
      receivers.reserve(it->second.size());
      for (const auto& [id, sub] : it->second) receivers.push_back(sub);
    }
  }
  for (const Subscriber& sub : receivers) sub(channel, message);
  return receivers.size();
}

KvStore::Queue* KvStore::GetQueue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(queues_mu_);
  auto it = queues_.find(name);
  if (it == queues_.end()) {
    it = queues_
             .emplace(name, std::make_unique<Queue>(/*capacity=*/1 << 20))
             .first;
  }
  return it->second.get();
}

void KvStore::QueuePush(const std::string& queue, std::string message) {
  GetQueue(queue)->Push(std::move(message));
}

std::optional<std::string> KvStore::QueuePop(const std::string& queue,
                                             Micros timeout_micros) {
  return GetQueue(queue)->PopWithTimeout(
      std::chrono::microseconds(timeout_micros));
}

std::optional<std::string> KvStore::QueueTryPop(const std::string& queue) {
  return GetQueue(queue)->TryPop();
}

size_t KvStore::QueueLen(const std::string& queue) const {
  return GetQueue(queue)->Size();
}

size_t KvStore::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = data_.begin(); it != data_.end();) {
    if (IsExpiredLocked(it->second)) {
      it = data_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t KvStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, e] : data_) {
    if (!IsExpiredLocked(e)) ++n;
  }
  return n;
}

void KvStore::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  data_.clear();
}

}  // namespace quaestor::kv
