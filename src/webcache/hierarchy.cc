#include "webcache/hierarchy.h"

namespace quaestor::webcache {

namespace {

Micros RemainingTtl(const CacheEntry& e, Micros now) {
  return e.expire_at > now ? e.expire_at - now : 0;
}

}  // namespace

FetchOutcome CacheHierarchy::FromOrigin(const std::string& key,
                                        bool write_through) {
  obs::ScopedSpan span(tracer_, "cache.origin");
  HttpRequest req;
  req.key = key;
  req.auth_token = auth_token_;
  // Revalidation: present the freshest ETag we have so the origin can
  // answer 304 (the body then comes from the stored copy).
  const CacheEntry* conditional_source = nullptr;
  std::optional<CacheEntry> client_copy;
  if (client_cache_ != nullptr) {
    client_copy = client_cache_->GetEvenIfExpired(key);
    if (client_copy.has_value()) {
      req.has_if_none_match = true;
      req.if_none_match = client_copy->etag;
      conditional_source = &client_copy.value();
    }
  }

  HttpResponse resp = origin_->Fetch(req);
  FetchOutcome out;
  out.served_by = ServedBy::kOrigin;
  out.latency_ms = latency_.origin_ms;
  if (!resp.ok) {
    out.ok = false;
    out.unavailable = resp.unavailable;
    return out;
  }
  out.ok = true;
  out.remaining_ttl = resp.ttl;
  if (resp.not_modified && conditional_source != nullptr) {
    out.body = conditional_source->body;
    out.etag = conditional_source->etag;
    // 304 carries no body, but the origin still dates the confirmed
    // version; prefer its stamp over the (possibly zero) stored one.
    out.last_modified =
        resp.last_modified > 0 ? resp.last_modified
                               : conditional_source->last_modified;
  } else {
    out.body = resp.body;
    out.etag = resp.etag;
    out.last_modified = resp.last_modified;
  }
  if (write_through && resp.ttl > 0) {
    // The response travels back through the chain and refreshes every
    // cache on the path (HTTP caches store responses they forward).
    if (cdn_ != nullptr) {
      cdn_->Put(key, out.body, out.etag, resp.ttl, out.last_modified);
    }
    if (proxy_ != nullptr) {
      proxy_->Put(key, out.body, out.etag, resp.ttl, out.last_modified);
    }
    if (client_cache_ != nullptr) {
      client_cache_->Put(key, out.body, out.etag, resp.ttl,
                         out.last_modified);
    }
  }
  return out;
}

FetchOutcome CacheHierarchy::Fetch(const std::string& key, FetchMode mode) {
  obs::ScopedSpan span(tracer_, "cache.fetch");
  span.Annotate("key", key);
  const Micros now = clock_->NowMicros();

  if (mode == FetchMode::kRevalidate) {
    return FromOrigin(key, /*write_through=*/true);
  }

  // 1. Client (browser) cache.
  if (mode == FetchMode::kNormal && client_cache_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.client");
    auto hit = client_cache_->Get(key);
    if (hit.has_value()) {
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kClientCache;
      out.latency_ms = latency_.client_cache_ms;
      out.remaining_ttl = RemainingTtl(*hit, now);
      out.last_modified = hit->last_modified;
      return out;
    }
  }

  // 2. Intermediate expiration proxy (ISP), if present. Skipped for
  // revalidate-at-CDN: expiration proxies cannot be purged so their copies
  // are exactly what a revalidation must bypass.
  if (mode == FetchMode::kNormal && proxy_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.proxy");
    auto hit = proxy_->Get(key);
    if (hit.has_value()) {
      if (client_cache_ != nullptr) {
        client_cache_->Put(key, hit->body, hit->etag, RemainingTtl(*hit, now),
                           hit->last_modified);
      }
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kExpirationCache;
      out.latency_ms = latency_.expiration_proxy_ms;
      out.remaining_ttl = RemainingTtl(*hit, now);
      out.last_modified = hit->last_modified;
      return out;
    }
  }

  // 3. Invalidation-based cache (CDN edge).
  if (cdn_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.cdn");
    auto hit = cdn_->Get(key);
    if (hit.has_value()) {
      const Micros remaining = RemainingTtl(*hit, now);
      if (proxy_ != nullptr) {
        proxy_->Put(key, hit->body, hit->etag, remaining, hit->last_modified);
      }
      if (client_cache_ != nullptr) {
        client_cache_->Put(key, hit->body, hit->etag, remaining,
                           hit->last_modified);
      }
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kInvalidationCache;
      out.latency_ms = latency_.cdn_ms;
      out.remaining_ttl = remaining;
      out.last_modified = hit->last_modified;
      return out;
    }
  }

  // 4. Origin.
  return FromOrigin(key, /*write_through=*/true);
}

}  // namespace quaestor::webcache
