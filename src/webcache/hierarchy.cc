#include "webcache/hierarchy.h"

namespace quaestor::webcache {

namespace {

Micros RemainingTtl(const CacheEntry& e, Micros now) {
  return e.expire_at > now ? e.expire_at - now : 0;
}

/// Surfaces the stale-shed marker on a cache hit: an entry re-published
/// by the shed path must never be mistaken for fresh data, however many
/// times it bounces between tiers.
void MarkIfStaleShed(FetchOutcome* out, const CacheEntry& e, Micros now) {
  if (e.stale_since == 0) return;
  out->served_stale_on_shed = true;
  out->stale_entry_age = now > e.stale_since ? now - e.stale_since : 0;
}

}  // namespace

FetchOutcome CacheHierarchy::TryServeStale(const std::string& key,
                                           FetchOutcome base) {
  if (!stale_serve_.enabled) return base;
  const Micros now = clock_->NowMicros();
  // Freshest copy across ALL tiers (not nearest-first): the serve below
  // re-publishes the copy to every tier, so picking a stale client copy
  // while the CDN holds a newer body would push the old state back out
  // to the whole fleet and regress sessions that already saw the new one.
  std::optional<CacheEntry> copy;
  const auto consider = [&copy](std::optional<CacheEntry> candidate) {
    if (!candidate.has_value()) return;
    if (!copy.has_value() ||
        candidate->last_modified > copy->last_modified ||
        (candidate->last_modified == copy->last_modified &&
         candidate->stored_at > copy->stored_at)) {
      copy = std::move(candidate);
    }
  };
  if (client_cache_ != nullptr) consider(client_cache_->GetEvenIfExpired(key));
  if (proxy_ != nullptr) consider(proxy_->GetEvenIfExpired(key));
  if (cdn_ != nullptr) consider(cdn_->GetEvenIfExpired(key));
  if (!copy.has_value()) {
    stale_serve_stats_.no_copy++;
    return base;
  }

  // Age from the *original* origin fetch (fetched_at survives tier
  // propagation; stale_since survives re-publication), so repeated
  // shedding or tier bouncing cannot launder an old body into a young
  // one.
  const Micros origin_time =
      copy->stale_since != 0
          ? copy->stale_since
          : (copy->fetched_at != 0 ? copy->fetched_at : copy->stored_at);
  const Micros age = now > origin_time ? now - origin_time : 0;
  if (age > stale_serve_.max_age) {
    stale_serve_stats_.too_old++;
    return base;
  }

  stale_serve_stats_.serves++;
  obs::ScopedSpan span(tracer_, "cache.stale_shed");
  // 0 is the "not stale-shed" sentinel, but a copy fetched at simulated
  // t=0 has stored_at == 0 — clamp the marker to 1µs so it survives.
  const Micros marker = origin_time > 0 ? origin_time : 1;
  FetchOutcome out = base;  // keeps the shed/deadline flags and latency
  out.ok = true;
  out.body = copy->body;
  out.etag = copy->etag;
  out.last_modified = copy->last_modified;
  out.served_stale_on_shed = true;
  out.stale_entry_age = age;
  out.remaining_ttl = stale_serve_.ttl_cap;
  // Re-publish with a capped TTL so the flash crowd behind this client
  // hits caches instead of the saturated origin. The marker travels with
  // the entry: every later hit stays flagged with the true age.
  if (cdn_ != nullptr) {
    cdn_->Put(key, out.body, out.etag, stale_serve_.ttl_cap,
              out.last_modified, marker, marker);
  }
  if (proxy_ != nullptr) {
    proxy_->Put(key, out.body, out.etag, stale_serve_.ttl_cap,
                out.last_modified, marker, marker);
  }
  if (client_cache_ != nullptr) {
    client_cache_->Put(key, out.body, out.etag, stale_serve_.ttl_cap,
                       out.last_modified, marker, marker);
  }
  return out;
}

FetchOutcome CacheHierarchy::FromOrigin(const std::string& key,
                                        bool write_through,
                                        const RequestContext& ctx) {
  obs::ScopedSpan span(tracer_, "cache.origin");

  // A deadline that cannot cover the origin round trip is already lost:
  // skip the trip (sparing the origin the doomed work) and fall back to
  // the stale-retained copy if policy allows.
  if (ctx.has_deadline() &&
      ctx.Remaining(clock_->NowMicros()) < MillisToMicros(latency_.origin_ms)) {
    FetchOutcome out;
    out.served_by = ServedBy::kOrigin;
    out.deadline_exceeded = true;
    return TryServeStale(key, out);
  }

  HttpRequest req;
  req.key = key;
  req.auth_token = auth_token_;
  req.context = ctx;
  // Revalidation: present the freshest ETag we have so the origin can
  // answer 304 (the body then comes from the stored copy).
  const CacheEntry* conditional_source = nullptr;
  std::optional<CacheEntry> client_copy;
  if (client_cache_ != nullptr) {
    client_copy = client_cache_->GetEvenIfExpired(key);
    if (client_copy.has_value()) {
      req.has_if_none_match = true;
      req.if_none_match = client_copy->etag;
      conditional_source = &client_copy.value();
    }
  }

  HttpResponse resp = origin_->Fetch(req);
  FetchOutcome out;
  out.served_by = ServedBy::kOrigin;
  out.latency_ms = latency_.origin_ms;
  if (!resp.ok) {
    out.ok = false;
    out.unavailable = resp.unavailable;
    out.shed = resp.shed;
    out.deadline_exceeded = resp.deadline_exceeded;
    if (resp.shed || resp.deadline_exceeded) {
      // The origin is saturated, not wrong: a bounded-stale flagged copy
      // beats an error (and sheds the retry, too).
      return TryServeStale(key, out);
    }
    return out;
  }
  out.ok = true;
  out.remaining_ttl = resp.ttl;
  if (resp.not_modified && conditional_source != nullptr) {
    out.body = conditional_source->body;
    out.etag = conditional_source->etag;
    // 304 carries no body, but the origin still dates the confirmed
    // version; prefer its stamp over the (possibly zero) stored one.
    out.last_modified =
        resp.last_modified > 0 ? resp.last_modified
                               : conditional_source->last_modified;
  } else {
    out.body = resp.body;
    out.etag = resp.etag;
    out.last_modified = resp.last_modified;
  }
  if (write_through && resp.ttl > 0) {
    // The response travels back through the chain and refreshes every
    // cache on the path (HTTP caches store responses they forward).
    if (cdn_ != nullptr) {
      cdn_->Put(key, out.body, out.etag, resp.ttl, out.last_modified);
    }
    if (proxy_ != nullptr) {
      proxy_->Put(key, out.body, out.etag, resp.ttl, out.last_modified);
    }
    if (client_cache_ != nullptr) {
      client_cache_->Put(key, out.body, out.etag, resp.ttl,
                         out.last_modified);
    }
  }
  return out;
}

FetchOutcome CacheHierarchy::Fetch(const std::string& key, FetchMode mode,
                                   const RequestContext& ctx) {
  obs::ScopedSpan span(tracer_, "cache.fetch");
  span.Annotate("key", key);
  const Micros now = clock_->NowMicros();

  if (mode == FetchMode::kRevalidate) {
    return FromOrigin(key, /*write_through=*/true, ctx);
  }

  // 1. Client (browser) cache.
  if (mode == FetchMode::kNormal && client_cache_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.client");
    auto hit = client_cache_->Get(key);
    if (hit.has_value()) {
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kClientCache;
      out.latency_ms = latency_.client_cache_ms;
      out.remaining_ttl = RemainingTtl(*hit, now);
      out.last_modified = hit->last_modified;
      MarkIfStaleShed(&out, *hit, now);
      return out;
    }
  }

  // 2. Intermediate expiration proxy (ISP), if present. Skipped for
  // revalidate-at-CDN: expiration proxies cannot be purged so their copies
  // are exactly what a revalidation must bypass.
  if (mode == FetchMode::kNormal && proxy_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.proxy");
    auto hit = proxy_->Get(key);
    if (hit.has_value()) {
      if (client_cache_ != nullptr) {
        client_cache_->Put(key, hit->body, hit->etag, RemainingTtl(*hit, now),
                           hit->last_modified, hit->stale_since,
                           hit->fetched_at);
      }
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kExpirationCache;
      out.latency_ms = latency_.expiration_proxy_ms;
      out.remaining_ttl = RemainingTtl(*hit, now);
      out.last_modified = hit->last_modified;
      MarkIfStaleShed(&out, *hit, now);
      return out;
    }
  }

  // 3. Invalidation-based cache (CDN edge).
  if (cdn_ != nullptr) {
    obs::ScopedSpan tier_span(tracer_, "cache.cdn");
    auto hit = cdn_->Get(key);
    if (hit.has_value()) {
      const Micros remaining = RemainingTtl(*hit, now);
      if (proxy_ != nullptr) {
        proxy_->Put(key, hit->body, hit->etag, remaining, hit->last_modified,
                    hit->stale_since, hit->fetched_at);
      }
      if (client_cache_ != nullptr) {
        client_cache_->Put(key, hit->body, hit->etag, remaining,
                           hit->last_modified, hit->stale_since,
                           hit->fetched_at);
      }
      FetchOutcome out;
      out.ok = true;
      out.body = hit->body;
      out.etag = hit->etag;
      out.served_by = ServedBy::kInvalidationCache;
      out.latency_ms = latency_.cdn_ms;
      out.remaining_ttl = remaining;
      out.last_modified = hit->last_modified;
      MarkIfStaleShed(&out, *hit, now);
      return out;
    }
  }

  // 4. Origin.
  return FromOrigin(key, /*write_through=*/true, ctx);
}

}  // namespace quaestor::webcache
