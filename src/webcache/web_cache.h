#ifndef QUAESTOR_WEBCACHE_WEB_CACHE_H_
#define QUAESTOR_WEBCACHE_WEB_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "webcache/http.h"

namespace quaestor::webcache {

/// A stored cache entry.
struct CacheEntry {
  std::string body;
  uint64_t etag = 0;
  Micros stored_at = 0;
  Micros expire_at = 0;
  /// Last-Modified of the stored response (commit time of the version).
  Micros last_modified = 0;

  bool IsFresh(Micros now) const { return now < expire_at; }
};

/// Hit/miss counters for one cache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        // key absent
  uint64_t expired_misses = 0;  // key present but TTL passed
  uint64_t purges = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses + expired_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Adds these totals into `cache_*` registry counters (plus a
  /// `cache_hit_rate` gauge). Labels conventionally carry {"tier",...};
  /// exporting several caches under the same labels sums them.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// An HTTP expiration-based cache (browser cache, forward/ISP proxy):
/// serves stored entries until their TTL passes; the server cannot purge
/// it — only client-triggered revalidations replace stale content (§2).
/// LRU-bounded; thread-safe.
class ExpirationCache {
 public:
  explicit ExpirationCache(Clock* clock, size_t max_entries = 0)
      : clock_(clock), max_entries_(max_entries) {}

  ExpirationCache(const ExpirationCache&) = delete;
  ExpirationCache& operator=(const ExpirationCache&) = delete;

  virtual ~ExpirationCache() = default;

  /// Fresh entry or nullopt (miss / expired).
  std::optional<CacheEntry> Get(const std::string& key);

  /// Entry regardless of freshness (clients use this with the EBF: a
  /// stale-by-TTL copy can still be served if the EBF clears it — and a
  /// fresh-by-TTL copy must be revalidated if the EBF flags it).
  std::optional<CacheEntry> GetEvenIfExpired(const std::string& key);

  /// Stores a response with TTL (no-op when ttl <= 0).
  void Put(const std::string& key, const std::string& body, uint64_t etag,
           Micros ttl, Micros last_modified = 0);

  /// Removes one entry locally (used by clients for their own writes —
  /// read-your-writes; NOT a server purge).
  bool Remove(const std::string& key);

  void Clear();
  size_t Size() const;
  CacheStats stats() const;

  /// Snapshot of the currently stored keys (regardless of freshness) —
  /// used by fault-injection harnesses to pick eviction victims.
  std::vector<std::string> Keys() const;

 protected:
  Clock* clock_;

 private:
  void TouchLocked(const std::string& key);
  void EvictIfNeededLocked();

  const size_t max_entries_;  // 0 = unbounded
  mutable std::mutex mu_;
  std::unordered_map<std::string, CacheEntry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<std::string>::iterator> lru_pos_;
  CacheStats stats_;
};

/// An invalidation-based cache (CDN edge, reverse proxy): an expiration
/// cache that additionally accepts asynchronous purges from the server
/// (§2: "invalidation-based caches support ... asynchronous invalidations
/// from the server that purge stale content").
class InvalidationCache : public ExpirationCache {
 public:
  explicit InvalidationCache(Clock* clock, size_t max_entries = 0)
      : ExpirationCache(clock, max_entries) {}

  /// Server-initiated purge. Returns true if a copy was dropped.
  bool Purge(const std::string& key) {
    const bool removed = Remove(key);
    std::lock_guard<std::mutex> lock(purge_mu_);
    purge_count_++;
    return removed;
  }

  uint64_t PurgeCount() const {
    std::lock_guard<std::mutex> lock(purge_mu_);
    return purge_count_;
  }

 private:
  mutable std::mutex purge_mu_;
  uint64_t purge_count_ = 0;
};

}  // namespace quaestor::webcache

#endif  // QUAESTOR_WEBCACHE_WEB_CACHE_H_
