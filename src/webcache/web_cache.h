#ifndef QUAESTOR_WEBCACHE_WEB_CACHE_H_
#define QUAESTOR_WEBCACHE_WEB_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "obs/metrics.h"
#include "webcache/http.h"

namespace quaestor::webcache {

/// A stored cache entry.
struct CacheEntry {
  std::string body;
  uint64_t etag = 0;
  Micros stored_at = 0;
  Micros expire_at = 0;
  /// When this body was originally fetched from the origin. Unlike
  /// stored_at it survives tier-to-tier propagation (a CDN hit copied
  /// down into the client cache keeps the CDN copy's fetch time), so the
  /// overload stale-serve path can measure a copy's true age — time since
  /// the origin last confirmed it — rather than time since the nearest
  /// tier happened to store it.
  Micros fetched_at = 0;
  /// Last-Modified of the stored response (commit time of the version).
  Micros last_modified = 0;
  /// Stale-shed marker: nonzero iff this entry was (re)published by the
  /// overload stale-serve path, holding the stored_at of the original
  /// fetch. Every hit on such an entry must surface served_stale_on_shed
  /// with age measured from this stamp — re-publishing with a capped TTL
  /// must never let a later hit pass as fresh data (the consistency
  /// oracle widens its bound only for flagged responses).
  Micros stale_since = 0;

  bool IsFresh(Micros now) const { return now < expire_at; }
};

/// Hit/miss counters for one cache.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        // key absent
  uint64_t expired_misses = 0;  // key present but TTL passed
  uint64_t purges = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Expired entries reclaimed by the lazy sweep (not capacity evictions):
  /// dead bodies whose TTL + stale retention both passed.
  uint64_t expired_evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses + expired_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Adds these totals into `cache_*` registry counters (plus a
  /// `cache_hit_rate` gauge). Labels conventionally carry {"tier",...};
  /// exporting several caches under the same labels sums them.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// An HTTP expiration-based cache (browser cache, forward/ISP proxy):
/// serves stored entries until their TTL passes; the server cannot purge
/// it — only client-triggered revalidations replace stale content (§2).
/// Thread-safe.
///
/// Concurrency: entries are striped across shards by key hash, each shard
/// with its own reader-writer lock. A hit is a shared-lock read that sets a
/// relaxed CLOCK reference bit instead of splicing an LRU list, so
/// concurrent hits on one shard never serialize on eviction metadata.
/// Capacity is enforced per shard with CLOCK second-chance replacement
/// (recently referenced entries survive one sweep — LRU-like without
/// per-hit list mutation). Expired entries stay resident for a stale
/// retention window so conditional revalidation (`GetEvenIfExpired`) can
/// reuse their ETag/body; past the window they are reclaimed lazily on the
/// expired-miss itself and by an amortized sweep on insertions.
class ExpirationCache {
 public:
  /// `num_shards == 0` picks a default. Bounded caches clamp the shard
  /// count so every shard keeps a useful capacity slice (small caches
  /// degenerate to one shard, preserving global replacement order).
  explicit ExpirationCache(Clock* clock, size_t max_entries = 0,
                           size_t num_shards = 0);

  ExpirationCache(const ExpirationCache&) = delete;
  ExpirationCache& operator=(const ExpirationCache&) = delete;

  virtual ~ExpirationCache() = default;

  /// Fresh entry or nullopt (miss / expired).
  std::optional<CacheEntry> Get(const std::string& key);

  /// Entry regardless of freshness (clients use this with the EBF: a
  /// stale-by-TTL copy can still be served if the EBF clears it — and a
  /// fresh-by-TTL copy must be revalidated if the EBF flags it).
  std::optional<CacheEntry> GetEvenIfExpired(const std::string& key);

  /// Stores a response with TTL (no-op when ttl <= 0). `stale_since`
  /// carries the stale-shed marker (see CacheEntry); 0 for normal stores.
  /// `fetched_at` preserves the original origin-fetch time when an entry
  /// is propagated from another tier; 0 (a direct origin store) means now.
  void Put(const std::string& key, const std::string& body, uint64_t etag,
           Micros ttl, Micros last_modified = 0, Micros stale_since = 0,
           Micros fetched_at = 0);

  /// Removes one entry locally (used by clients for their own writes —
  /// read-your-writes; NOT a server purge).
  bool Remove(const std::string& key);

  /// Expires one entry in place: the copy stops being servable as fresh
  /// (Get misses) but stays resident for the stale retention window so
  /// revalidation and the overload stale-serve path (`GetEvenIfExpired`)
  /// can still reach it. Returns true iff a fresh copy was expired.
  bool Expire(const std::string& key);

  void Clear();
  size_t Size() const;
  CacheStats stats() const;

  /// Snapshot of the currently stored keys (regardless of freshness) —
  /// used by fault-injection harnesses to pick eviction victims.
  std::vector<std::string> Keys() const;

  size_t num_shards() const { return shards_.size(); }

  /// How long an expired entry stays resident for revalidation before the
  /// lazy sweep reclaims it. Default 600 s.
  Micros stale_retention() const {
    return stale_retention_.load(std::memory_order_relaxed);
  }
  void set_stale_retention(Micros retention) {
    stale_retention_.store(retention, std::memory_order_relaxed);
  }

 protected:
  Clock* clock_;

 private:
  struct Stored {
    CacheEntry entry;
    /// CLOCK second-chance bit: set on hit (relaxed, under the shared
    /// lock), cleared by the eviction hand.
    std::atomic<bool> referenced{false};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, Stored> entries;
    /// CLOCK ring in insertion order. Two independent hands walk it: the
    /// eviction hand (capacity, second-chance order) and the sweep hand
    /// (amortized expired-entry reclamation) — sharing one hand would let
    /// the sweep drag the eviction hand onto freshly inserted tails.
    std::list<std::string> ring;
    std::unordered_map<std::string, std::list<std::string>::iterator> pos;
    std::list<std::string>::iterator clock_hand = ring.end();
    std::list<std::string>::iterator sweep_hand = ring.end();

    // Counters are atomics so the hit path can bump them under the shared
    // lock.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> expired_misses{0};
    std::atomic<uint64_t> purges{0};
    std::atomic<uint64_t> insertions{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> expired_evictions{0};
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[shards_.size() == 1
                        ? 0
                        : static_cast<size_t>(Hash64(key) % shards_.size())];
  }
  const Shard& ShardFor(const std::string& key) const {
    return const_cast<ExpirationCache*>(this)->ShardFor(key);
  }

  /// Drops `key` from the shard's map and ring. Exclusive lock held.
  static void EraseLocked(Shard& shard,
                          std::unordered_map<std::string, Stored>::iterator it);
  /// Capacity eviction: CLOCK second-chance sweep. Exclusive lock held.
  void EvictIfNeededLocked(Shard& shard, Micros now);
  /// Amortized expired-entry sweep: examines up to `budget` ring slots
  /// from the hand, reclaiming entries past retention. Exclusive lock held.
  void SweepExpiredLocked(Shard& shard, Micros now, size_t budget);

  const size_t max_entries_;        // 0 = unbounded (global)
  size_t per_shard_capacity_ = 0;   // 0 = unbounded
  std::atomic<Micros> stale_retention_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// An invalidation-based cache (CDN edge, reverse proxy): an expiration
/// cache that additionally accepts asynchronous purges from the server
/// (§2: "invalidation-based caches support ... asynchronous invalidations
/// from the server that purge stale content").
class InvalidationCache : public ExpirationCache {
 public:
  explicit InvalidationCache(Clock* clock, size_t max_entries = 0,
                             size_t num_shards = 0)
      : ExpirationCache(clock, max_entries, num_shards) {}

  /// Server-initiated purge. The copy immediately stops being servable as
  /// fresh, but stays resident (expired) for the stale retention window:
  /// the overload stale-serve path may still publish it *flagged* as a
  /// bounded-stale response when the origin sheds. Returns true if a fresh
  /// copy was invalidated.
  bool Purge(const std::string& key) {
    const bool expired = Expire(key);
    purge_count_.fetch_add(1, std::memory_order_relaxed);
    return expired;
  }

  uint64_t PurgeCount() const {
    return purge_count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> purge_count_{0};
};

}  // namespace quaestor::webcache

#endif  // QUAESTOR_WEBCACHE_WEB_CACHE_H_
