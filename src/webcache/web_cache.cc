#include "webcache/web_cache.h"

namespace quaestor::webcache {

void CacheStats::ExportTo(obs::MetricsRegistry* registry,
                          const obs::Labels& labels) const {
  registry->Count("cache_hits", labels, hits);
  registry->Count("cache_misses", labels, misses);
  registry->Count("cache_expired_misses", labels, expired_misses);
  registry->Count("cache_purges", labels, purges);
  registry->Count("cache_insertions", labels, insertions);
  registry->Count("cache_evictions", labels, evictions);
  registry->SetGauge("cache_hit_rate", labels, HitRate());
}

std::optional<CacheEntry> ExpirationCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses++;
    return std::nullopt;
  }
  if (!it->second.IsFresh(clock_->NowMicros())) {
    stats_.expired_misses++;
    return std::nullopt;
  }
  stats_.hits++;
  TouchLocked(key);
  return it->second;
}

std::optional<CacheEntry> ExpirationCache::GetEvenIfExpired(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void ExpirationCache::Put(const std::string& key, const std::string& body,
                          uint64_t etag, Micros ttl, Micros last_modified) {
  if (ttl <= 0) return;
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  CacheEntry& e = entries_[key];
  e.body = body;
  e.etag = etag;
  e.stored_at = now;
  e.expire_at = now + ttl;
  e.last_modified = last_modified;
  stats_.insertions++;
  TouchLocked(key);
  EvictIfNeededLocked();
}

bool ExpirationCache::Remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  entries_.erase(it);
  auto pos = lru_pos_.find(key);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  stats_.purges++;
  return true;
}

void ExpirationCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  lru_pos_.clear();
}

size_t ExpirationCache::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats ExpirationCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::string> ExpirationCache::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(key);
  return out;
}

void ExpirationCache::TouchLocked(const std::string& key) {
  auto pos = lru_pos_.find(key);
  if (pos != lru_pos_.end()) lru_.erase(pos->second);
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
}

void ExpirationCache::EvictIfNeededLocked() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    entries_.erase(victim);
    stats_.evictions++;
  }
}

}  // namespace quaestor::webcache
