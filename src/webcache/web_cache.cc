#include "webcache/web_cache.h"

#include <algorithm>

namespace quaestor::webcache {

namespace {

/// Shard-count default for unbounded caches. Bounded caches are clamped so
/// each shard keeps at least this many capacity slots — tiny caches (the
/// max_entries=2 browser-cache tests, say) collapse to one shard and keep
/// exact global replacement semantics.
constexpr size_t kDefaultShards = 16;
constexpr size_t kMinEntriesPerShard = 64;

/// How many ring slots the amortized expired sweep examines per insertion.
constexpr size_t kSweepBudgetPerPut = 2;

constexpr Micros kDefaultStaleRetention = 600 * kMicrosPerSecond;

size_t PickShardCount(size_t max_entries, size_t requested) {
  size_t shards = requested == 0 ? kDefaultShards : requested;
  if (max_entries > 0) {
    shards = std::min(shards, std::max<size_t>(1, max_entries / kMinEntriesPerShard));
  }
  return std::max<size_t>(1, shards);
}

}  // namespace

void CacheStats::ExportTo(obs::MetricsRegistry* registry,
                          const obs::Labels& labels) const {
  registry->Count("cache_hits", labels, hits);
  registry->Count("cache_misses", labels, misses);
  registry->Count("cache_expired_misses", labels, expired_misses);
  registry->Count("cache_purges", labels, purges);
  registry->Count("cache_insertions", labels, insertions);
  registry->Count("cache_evictions", labels, evictions);
  registry->Count("cache_expired_evictions", labels, expired_evictions);
  registry->SetGauge("cache_hit_rate", labels, HitRate());
}

ExpirationCache::ExpirationCache(Clock* clock, size_t max_entries,
                                 size_t num_shards)
    : clock_(clock),
      max_entries_(max_entries),
      stale_retention_(kDefaultStaleRetention) {
  const size_t shards = PickShardCount(max_entries, num_shards);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (max_entries_ > 0) {
    // Ceil-divide so the summed shard capacities cover max_entries; with
    // more than one shard the bound is per-stripe (hash skew can leave one
    // stripe full while another has room — the usual striped-cache
    // approximation).
    per_shard_capacity_ = (max_entries_ + shards - 1) / shards;
  }
}

std::optional<CacheEntry> ExpirationCache::Get(const std::string& key) {
  const Micros now = clock_->NowMicros();
  Shard& shard = ShardFor(key);
  bool reclaim = false;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (it->second.entry.IsFresh(now)) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      it->second.referenced.store(true, std::memory_order_relaxed);
      return it->second.entry;
    }
    shard.expired_misses.fetch_add(1, std::memory_order_relaxed);
    reclaim = now >= it->second.entry.expire_at +
                         stale_retention_.load(std::memory_order_relaxed);
  }
  if (reclaim) {
    // Past the stale-retention window the dead body is useless even for
    // revalidation: reclaim it now instead of pinning it until eviction.
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end() &&
        now >= it->second.entry.expire_at +
                   stale_retention_.load(std::memory_order_relaxed)) {
      EraseLocked(shard, it);
      shard.expired_evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return std::nullopt;
}

std::optional<CacheEntry> ExpirationCache::GetEvenIfExpired(
    const std::string& key) {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return std::nullopt;
  return it->second.entry;
}

void ExpirationCache::Put(const std::string& key, const std::string& body,
                          uint64_t etag, Micros ttl, Micros last_modified,
                          Micros stale_since, Micros fetched_at) {
  if (ttl <= 0) return;
  const Micros now = clock_->NowMicros();
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto [it, inserted] = shard.entries.try_emplace(key);
  CacheEntry& e = it->second.entry;
  e.body = body;
  e.etag = etag;
  e.stored_at = now;
  e.expire_at = now + ttl;
  // 0 is the "direct origin store" sentinel, but a store at simulated t=0
  // would record fetched_at == 0 and be re-read as "unset" when the entry
  // propagates to another tier — that tier would then backfill its own
  // clock, laundering the copy's true age (hierarchy.cc clamps its
  // stale-shed marker the same way).
  e.fetched_at = fetched_at > 0 ? fetched_at : std::max<Micros>(now, 1);
  e.last_modified = last_modified;
  e.stale_since = stale_since;
  // A refreshed entry earns a second chance like a hit would.
  it->second.referenced.store(!inserted, std::memory_order_relaxed);
  if (inserted) {
    shard.ring.push_back(key);
    shard.pos[key] = std::prev(shard.ring.end());
  }
  shard.insertions.fetch_add(1, std::memory_order_relaxed);
  SweepExpiredLocked(shard, now, kSweepBudgetPerPut);
  EvictIfNeededLocked(shard, now);
}

bool ExpirationCache::Remove(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  EraseLocked(shard, it);
  shard.purges.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ExpirationCache::Expire(const std::string& key) {
  const Micros now = clock_->NowMicros();
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return false;
  CacheEntry& e = it->second.entry;
  const bool was_fresh = e.IsFresh(now);
  if (was_fresh) {
    e.expire_at = now;
    shard.purges.fetch_add(1, std::memory_order_relaxed);
  }
  return was_fresh;
}

void ExpirationCache::Clear() {
  for (auto& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    shard->entries.clear();
    shard->ring.clear();
    shard->pos.clear();
    shard->clock_hand = shard->ring.end();
    shard->sweep_hand = shard->ring.end();
  }
}

size_t ExpirationCache::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

CacheStats ExpirationCache::stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    s.hits += shard->hits.load(std::memory_order_relaxed);
    s.misses += shard->misses.load(std::memory_order_relaxed);
    s.expired_misses += shard->expired_misses.load(std::memory_order_relaxed);
    s.purges += shard->purges.load(std::memory_order_relaxed);
    s.insertions += shard->insertions.load(std::memory_order_relaxed);
    s.evictions += shard->evictions.load(std::memory_order_relaxed);
    s.expired_evictions +=
        shard->expired_evictions.load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<std::string> ExpirationCache::Keys() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    out.reserve(out.size() + shard->entries.size());
    for (const auto& [key, stored] : shard->entries) out.push_back(key);
  }
  return out;
}

void ExpirationCache::EraseLocked(
    Shard& shard, std::unordered_map<std::string, Stored>::iterator it) {
  auto pos = shard.pos.find(it->first);
  if (pos != shard.pos.end()) {
    if (shard.clock_hand == pos->second) ++shard.clock_hand;
    if (shard.sweep_hand == pos->second) ++shard.sweep_hand;
    shard.ring.erase(pos->second);
    shard.pos.erase(pos);
  }
  shard.entries.erase(it);
}

void ExpirationCache::SweepExpiredLocked(Shard& shard, Micros now,
                                         size_t budget) {
  const Micros retention = stale_retention_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < budget && !shard.ring.empty(); ++i) {
    if (shard.sweep_hand == shard.ring.end()) {
      shard.sweep_hand = shard.ring.begin();
    }
    auto it = shard.entries.find(*shard.sweep_hand);
    if (it == shard.entries.end()) {  // stale ring slot (shouldn't happen)
      shard.pos.erase(*shard.sweep_hand);
      shard.sweep_hand = shard.ring.erase(shard.sweep_hand);
      continue;
    }
    if (now >= it->second.entry.expire_at + retention) {
      EraseLocked(shard, it);
      shard.expired_evictions.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++shard.sweep_hand;
    }
  }
}

void ExpirationCache::EvictIfNeededLocked(Shard& shard, Micros now) {
  if (per_shard_capacity_ == 0) return;
  // CLOCK second chance: referenced entries get their bit cleared and
  // survive one sweep; expired entries are evicted on sight.
  size_t scanned = 0;
  const size_t limit = 2 * shard.ring.size() + 1;
  while (shard.entries.size() > per_shard_capacity_ && !shard.ring.empty() &&
         scanned++ < limit) {
    if (shard.clock_hand == shard.ring.end()) {
      shard.clock_hand = shard.ring.begin();
    }
    auto it = shard.entries.find(*shard.clock_hand);
    if (it == shard.entries.end()) {
      shard.pos.erase(*shard.clock_hand);
      shard.clock_hand = shard.ring.erase(shard.clock_hand);
      continue;
    }
    const bool expired = !it->second.entry.IsFresh(now);
    if (!expired &&
        it->second.referenced.exchange(false, std::memory_order_relaxed)) {
      ++shard.clock_hand;
      continue;
    }
    EraseLocked(shard, it);
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace quaestor::webcache
