#ifndef QUAESTOR_WEBCACHE_HIERARCHY_H_
#define QUAESTOR_WEBCACHE_HIERARCHY_H_

#include <string>

#include "common/clock.h"
#include "common/request_context.h"
#include "obs/trace.h"
#include "webcache/http.h"
#include "webcache/web_cache.h"

namespace quaestor::webcache {

/// How a fetch interacts with the cache levels.
enum class FetchMode {
  /// Serve from any fresh cache (standard HTTP GET).
  kNormal,
  /// Force end-to-end revalidation: bypass every cached copy, confirm or
  /// refresh at the origin (If-None-Match), and refresh all caches on the
  /// way back. Used for EBF-flagged keys and for strong consistency.
  kRevalidate,
  /// Bypass the client cache but allow the invalidation-based cache to
  /// answer: because the server purges CDN copies on invalidation, a CDN
  /// hit is trustworthy up to the invalidation latency. This is the
  /// ∆ − ∆_invalidation optimization of §3.2 that offloads the backend.
  kRevalidateAtCdn,
};

/// Result of a fetch through the hierarchy.
struct FetchOutcome {
  bool ok = false;
  /// The origin answered 503 (transient fault) — retryable, unlike a
  /// plain miss. Never satisfied from or stored into any cache level.
  bool unavailable = false;
  std::string body;
  uint64_t etag = 0;
  ServedBy served_by = ServedBy::kOrigin;
  /// Total request latency implied by the hop that served the response.
  double latency_ms = 0.0;
  /// How much longer this response may be served from a cache: the
  /// remaining TTL at the serving cache, or the freshly issued TTL at the
  /// origin. Clients use it to bound the lifetime of derived cache entries
  /// (e.g. per-record entries extracted from a query result).
  Micros remaining_ttl = 0;
  /// Last-Modified of the served version, propagated from whichever level
  /// answered. Clients compare it to their EBF fetch time to notice data
  /// younger than the Bloom filter (needed for causal consistency).
  Micros last_modified = 0;
  /// The origin rejected the request under overload (admission shed).
  bool shed = false;
  /// The request's deadline expired before a response could be produced.
  bool deadline_exceeded = false;
  /// This response came from a stale-retained copy served because the
  /// origin shed or the deadline could not cover an origin round trip.
  /// Consumers must treat the data as up to `stale_entry_age` old — the
  /// consistency oracle widens its delta bound by exactly that much, and
  /// only for flagged responses.
  bool served_stale_on_shed = false;
  /// Age of the stale copy (now - original fetch time) when flagged.
  Micros stale_entry_age = 0;
};

/// Overload fallback policy: when the origin sheds (kResourceExhausted)
/// or a deadline cannot cover the origin round trip, serve the
/// stale-retained cache entry (bounded by `max_age`) with a capped TTL
/// and the stale-shed marker instead of failing. Off by default — with
/// `enabled = false` the fetch path is byte-identical to before.
struct StaleServePolicy {
  bool enabled = false;
  /// TTL granted to the re-published stale copy: long enough to absorb
  /// the retry storm, short enough to re-check the origin soon.
  Micros ttl_cap = 1 * kMicrosPerSecond;
  /// Oldest copy (measured from its original fetch) still servable.
  Micros max_age = 60 * kMicrosPerSecond;
};

/// The web path between one client and the DBaaS: an optional client
/// (browser) cache, an optional intermediate expiration proxy (ISP), a
/// shared invalidation-based cache (CDN edge), and the origin. Any level
/// may be nullptr (e.g. the "Uncached" baseline passes nullptr for all
/// caches; "CDN only" passes no client cache).
class CacheHierarchy {
 public:
  CacheHierarchy(Clock* clock, ExpirationCache* client_cache,
                 ExpirationCache* proxy, InvalidationCache* cdn,
                 Origin* origin, LatencyModel latency = LatencyModel())
      : clock_(clock),
        client_cache_(client_cache),
        proxy_(proxy),
        cdn_(cdn),
        origin_(origin),
        latency_(latency) {}

  /// Performs a GET through the hierarchy. The context (deadline +
  /// priority) travels with the origin request; a default-constructed
  /// context leaves behaviour unchanged.
  FetchOutcome Fetch(const std::string& key, FetchMode mode,
                     const RequestContext& ctx = RequestContext());

  ExpirationCache* client_cache() { return client_cache_; }
  InvalidationCache* cdn() { return cdn_; }
  const LatencyModel& latency_model() const { return latency_; }

  /// Bearer token attached to every origin request (authorization).
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }

  /// Attaches a tracer; Fetch then records a "cache.fetch" span with one
  /// child per tier consulted (cache.client/proxy/cdn/origin). nullptr
  /// (default) detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Overload fallback: serve stale-retained copies when the origin sheds.
  void set_stale_serve(const StaleServePolicy& policy) {
    stale_serve_ = policy;
  }
  const StaleServePolicy& stale_serve() const { return stale_serve_; }

  /// Stale-shed fallback accounting (since construction).
  struct StaleServeStats {
    uint64_t serves = 0;    // fallback served a retained copy
    uint64_t no_copy = 0;   // no tier held any copy
    uint64_t too_old = 0;   // best copy exceeded max_age
  };
  const StaleServeStats& stale_serve_stats() const {
    return stale_serve_stats_;
  }

 private:
  FetchOutcome FromOrigin(const std::string& key, bool write_through,
                          const RequestContext& ctx);

  /// Attempts the stale-shed fallback for a failed origin round trip
  /// (`base` carries the shed/deadline flags). Returns the flagged stale
  /// outcome, or `base` unchanged when no servable copy exists.
  FetchOutcome TryServeStale(const std::string& key, FetchOutcome base);

  Clock* clock_;
  ExpirationCache* client_cache_;
  ExpirationCache* proxy_;
  InvalidationCache* cdn_;
  Origin* origin_;
  LatencyModel latency_;
  std::string auth_token_;
  obs::Tracer* tracer_ = nullptr;
  StaleServePolicy stale_serve_;
  StaleServeStats stale_serve_stats_;
};

}  // namespace quaestor::webcache

#endif  // QUAESTOR_WEBCACHE_HIERARCHY_H_
