#ifndef QUAESTOR_WEBCACHE_HIERARCHY_H_
#define QUAESTOR_WEBCACHE_HIERARCHY_H_

#include <string>

#include "common/clock.h"
#include "obs/trace.h"
#include "webcache/http.h"
#include "webcache/web_cache.h"

namespace quaestor::webcache {

/// How a fetch interacts with the cache levels.
enum class FetchMode {
  /// Serve from any fresh cache (standard HTTP GET).
  kNormal,
  /// Force end-to-end revalidation: bypass every cached copy, confirm or
  /// refresh at the origin (If-None-Match), and refresh all caches on the
  /// way back. Used for EBF-flagged keys and for strong consistency.
  kRevalidate,
  /// Bypass the client cache but allow the invalidation-based cache to
  /// answer: because the server purges CDN copies on invalidation, a CDN
  /// hit is trustworthy up to the invalidation latency. This is the
  /// ∆ − ∆_invalidation optimization of §3.2 that offloads the backend.
  kRevalidateAtCdn,
};

/// Result of a fetch through the hierarchy.
struct FetchOutcome {
  bool ok = false;
  /// The origin answered 503 (transient fault) — retryable, unlike a
  /// plain miss. Never satisfied from or stored into any cache level.
  bool unavailable = false;
  std::string body;
  uint64_t etag = 0;
  ServedBy served_by = ServedBy::kOrigin;
  /// Total request latency implied by the hop that served the response.
  double latency_ms = 0.0;
  /// How much longer this response may be served from a cache: the
  /// remaining TTL at the serving cache, or the freshly issued TTL at the
  /// origin. Clients use it to bound the lifetime of derived cache entries
  /// (e.g. per-record entries extracted from a query result).
  Micros remaining_ttl = 0;
  /// Last-Modified of the served version, propagated from whichever level
  /// answered. Clients compare it to their EBF fetch time to notice data
  /// younger than the Bloom filter (needed for causal consistency).
  Micros last_modified = 0;
};

/// The web path between one client and the DBaaS: an optional client
/// (browser) cache, an optional intermediate expiration proxy (ISP), a
/// shared invalidation-based cache (CDN edge), and the origin. Any level
/// may be nullptr (e.g. the "Uncached" baseline passes nullptr for all
/// caches; "CDN only" passes no client cache).
class CacheHierarchy {
 public:
  CacheHierarchy(Clock* clock, ExpirationCache* client_cache,
                 ExpirationCache* proxy, InvalidationCache* cdn,
                 Origin* origin, LatencyModel latency = LatencyModel())
      : clock_(clock),
        client_cache_(client_cache),
        proxy_(proxy),
        cdn_(cdn),
        origin_(origin),
        latency_(latency) {}

  /// Performs a GET through the hierarchy.
  FetchOutcome Fetch(const std::string& key, FetchMode mode);

  ExpirationCache* client_cache() { return client_cache_; }
  InvalidationCache* cdn() { return cdn_; }
  const LatencyModel& latency_model() const { return latency_; }

  /// Bearer token attached to every origin request (authorization).
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }

  /// Attaches a tracer; Fetch then records a "cache.fetch" span with one
  /// child per tier consulted (cache.client/proxy/cdn/origin). nullptr
  /// (default) detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  FetchOutcome FromOrigin(const std::string& key, bool write_through);

  Clock* clock_;
  ExpirationCache* client_cache_;
  ExpirationCache* proxy_;
  InvalidationCache* cdn_;
  Origin* origin_;
  LatencyModel latency_;
  std::string auth_token_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace quaestor::webcache

#endif  // QUAESTOR_WEBCACHE_HIERARCHY_H_
