#ifndef QUAESTOR_WEBCACHE_HTTP_H_
#define QUAESTOR_WEBCACHE_HTTP_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/request_context.h"

namespace quaestor::webcache {

/// The subset of HTTP caching semantics Quaestor relies on (§2 "Web
/// Caching"): a resource is a body plus a version tag (ETag) and a
/// server-assigned time-to-live. `Cache-Control: no-store` responses have
/// ttl == 0.
struct HttpResponse {
  bool ok = false;
  /// 503 Service Unavailable: a transient origin fault. Never cacheable;
  /// clients with retry enabled back off and try again.
  bool unavailable = false;
  /// 304 Not Modified (revalidation confirmed freshness; body omitted).
  bool not_modified = false;
  std::string body;
  uint64_t etag = 0;
  Micros ttl = 0;  // 0 = uncacheable
  /// Last-Modified: commit time of the served version (for query results,
  /// the time the result last changed). Caches store and propagate it;
  /// clients compare it against their EBF fetch time to detect data
  /// younger than the Bloom filter (§3.2 Opt-in Consistency: causal mode
  /// must revalidate after observing such data, from *any* cache level).
  Micros last_modified = 0;
  /// 429/503 Retry-After: the origin's admission controller shed this
  /// request under overload (kResourceExhausted). Distinct from
  /// `unavailable` — the origin is up, just saturated; the cache tier may
  /// answer from a stale-retained copy instead of retrying.
  bool shed = false;
  /// The request's deadline expired (at admission or mid-processing);
  /// any body was abandoned.
  bool deadline_exceeded = false;
};

/// A request travelling through the cache hierarchy.
struct HttpRequest {
  std::string key;  // the resource URL (record key or normalized query)
  /// Conditional revalidation: server replies 304 if etag still current.
  bool has_if_none_match = false;
  uint64_t if_none_match = 0;
  /// Bearer token identifying the session (empty = anonymous). Resolved
  /// by the origin's access controller; caches never inspect it.
  std::string auth_token;
  /// Deadline + priority, threaded client → cache tiers → origin. A
  /// default-constructed context (no deadline, normal priority) leaves
  /// every layer's behaviour unchanged.
  RequestContext context;
};

/// Where a response was ultimately served from.
enum class ServedBy {
  kClientCache,
  kExpirationCache,  // forward/ISP proxy level (optional hop)
  kInvalidationCache,
  kOrigin,
};

/// Round-trip latencies between the client and each level (milliseconds).
/// Defaults reproduce the paper's measured setting: client cache hits are
/// free, CDN hits cost 4 ms, origin misses 145-150 ms (§6.1, Figure 8f).
struct LatencyModel {
  double client_cache_ms = 0.0;
  double expiration_proxy_ms = 2.0;
  double cdn_ms = 4.0;
  double origin_ms = 145.0;
};

/// The abstract backend behind all caches (Quaestor's server implements
/// this). `Fetch` must honour If-None-Match by returning not_modified.
class Origin {
 public:
  virtual ~Origin() = default;
  virtual HttpResponse Fetch(const HttpRequest& request) = 0;
};

}  // namespace quaestor::webcache

#endif  // QUAESTOR_WEBCACHE_HTTP_H_
