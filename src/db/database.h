#ifndef QUAESTOR_DB_DATABASE_H_
#define QUAESTOR_DB_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "db/table.h"
#include "db/update.h"

namespace quaestor::db {

/// Listener invoked synchronously after each committed write with the
/// record's after-image. Quaestor's server wires this into InvaliDB's
/// change-stream ingestion (§4.1).
using ChangeListener = std::function<void(const ChangeEvent&)>;

/// Per-shard and total operation counters.
struct DatabaseStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t reads = 0;
  uint64_t queries = 0;
};

/// A multi-table document database with a change stream — the MongoDB
/// stand-in. Documents are hash-sharded by primary key across
/// `num_shards` logical shards (shard assignment is observable for load
/// accounting; all shards live in this process).
class Database {
 public:
  explicit Database(Clock* clock, size_t num_shards = 1)
      : clock_(clock), num_shards_(num_shards == 0 ? 1 : num_shards) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the table, creating it on first use.
  Table* GetOrCreateTable(const std::string& name);

  /// Returns the table or nullptr.
  Table* FindTable(const std::string& name) const;

  // -- CRUD (each committed write notifies change listeners) --

  Result<Document> Insert(const std::string& table, const std::string& id,
                          Value body);
  Result<Document> Upsert(const std::string& table, const std::string& id,
                          Value body);
  Result<Document> Apply(const std::string& table, const std::string& id,
                         const Update& update);
  Result<Document> Delete(const std::string& table, const std::string& id);
  Result<Document> Get(const std::string& table, const std::string& id) const;

  /// Executes a query against its table (empty result for missing tables).
  std::vector<Document> Execute(const Query& query) const;

  /// Registers a change listener. Not thread-safe with respect to
  /// concurrent writes; register listeners during setup.
  void AddChangeListener(ChangeListener listener);

  /// Logical shard for a record key (hashed primary key, like the paper's
  /// MongoDB cluster configuration).
  size_t ShardOf(const std::string& id) const {
    return static_cast<size_t>(Hash64(id) % num_shards_);
  }

  size_t num_shards() const { return num_shards_; }

  DatabaseStats stats() const {
    DatabaseStats s;
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.updates = updates_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.reads = reads_.load(std::memory_order_relaxed);
    s.queries = queries_.load(std::memory_order_relaxed);
    return s;
  }

  std::vector<std::string> TableNames() const;

 private:
  void Notify(WriteKind kind, const Document& after);

  Clock* clock_;
  const size_t num_shards_;
  /// Table registry: looked up shared (every read and write resolves its
  /// table), extended exclusively on first use of a new table name.
  mutable std::shared_mutex tables_mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<ChangeListener> listeners_;
  /// Operation counters, relaxed atomics: read/query paths must not share
  /// a hot mutex.
  mutable std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> updates_{0};
  mutable std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> reads_{0};
  mutable std::atomic<uint64_t> queries_{0};
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_DATABASE_H_
