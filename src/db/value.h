#ifndef QUAESTOR_DB_VALUE_H_
#define QUAESTOR_DB_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace quaestor::db {

class Value;

/// Array of values.
using Array = std::vector<Value>;
/// Object with sorted keys (sorted order makes serialization canonical,
/// which Quaestor relies on for normalized query cache keys).
using Object = std::map<std::string, Value>;

/// A JSON-like dynamic value: the unit of data in the document store.
/// Numbers are stored as int64 or double; comparisons treat them as one
/// numeric type (MongoDB semantics).
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}   // NOLINT
  Value(int64_t i) : data_(i) {}                     // NOLINT
  Value(double d) : data_(d) {}                      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}  // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  Type type() const;

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  /// Numeric value as double regardless of int/double storage.
  double as_number() const;
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Array& as_array() const { return std::get<Array>(data_); }
  Array& as_array() { return std::get<Array>(data_); }
  const Object& as_object() const { return std::get<Object>(data_); }
  Object& as_object() { return std::get<Object>(data_); }

  /// Looks up a dot-separated path ("author.name", "tags") within this
  /// value. Returns nullptr if any segment is missing or a non-object is
  /// traversed. Array indices are supported as numeric segments
  /// ("tags.0").
  const Value* Find(std::string_view path) const;

  /// Sets a dot-separated path, creating intermediate objects. Fails if an
  /// intermediate segment exists but is not an object.
  Status SetPath(std::string_view path, Value v);

  /// Removes a dot-separated path. Returns true if something was removed.
  bool RemovePath(std::string_view path);

  /// Serializes to canonical JSON text (sorted object keys, shortest
  /// round-trip numbers).
  std::string ToJson() const;

  /// Appends the canonical JSON encoding to *out in a single pass.
  /// ToJson is a thin wrapper over this; hot serialization paths reuse
  /// one reserved buffer across many values instead of materializing a
  /// string per value.
  void AppendJson(std::string* out) const;

  /// Parses JSON text.
  static Result<Value> FromJson(std::string_view text);

  /// Parses one JSON value from the front of `text` without requiring the
  /// whole input to be consumed. On success *consumed is the byte offset
  /// just past the parsed value (leading whitespace included). Lets wire
  /// decoders scan framing themselves and delegate embedded values here.
  static Result<Value> FromJsonPrefix(std::string_view text,
                                      size_t* consumed);

  /// Deep structural equality. Int and double values compare numerically
  /// (Value(1) == Value(1.0)).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order used by ORDER BY: null < bool < number < string < array <
  /// object; numbers compare numerically. Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Appends `s` to *out as a JSON string literal (quoted and escaped) —
/// the escaping Value::AppendJson applies to string values, exposed for
/// serializers that emit JSON around raw strings (query responses).
void AppendJsonEscaped(std::string* out, std::string_view s);

/// Strict-weak-ordering wrapper over Value::Compare, for ordered containers
/// keyed by Value (secondary indexes, range scans). Note that int and
/// double keys compare numerically, so Value(1) and Value(1.0) collide —
/// the semantics equality queries want.
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) < 0;
  }
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_VALUE_H_
