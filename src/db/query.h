#ifndef QUAESTOR_DB_QUERY_H_
#define QUAESTOR_DB_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace quaestor::db {

/// Comparison operators supported by the query language (MongoDB subset).
enum class CompareOp {
  kEq,        // $eq  — equality; for array fields also element membership
  kNe,        // $ne
  kGt,        // $gt
  kGte,       // $gte
  kLt,        // $lt
  kLte,       // $lte
  kIn,        // $in  — field value is one of the operand array's elements
  kNin,       // $nin
  kContains,  // $contains — array field contains the operand element
  kExists,    // $exists — operand is a bool
  kPrefix,    // $prefix — string field starts with operand (index-friendly
              //           stand-in for anchored $regex)
};

/// Returns the operator's name (e.g. "$eq").
std::string_view CompareOpName(CompareOp op);

/// A boolean predicate tree over document fields. Leaves compare a
/// dot-path against an operand; inner nodes are AND/OR/NOT.
struct Predicate {
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  Kind kind = Kind::kTrue;

  // kCompare:
  std::string path;
  CompareOp op = CompareOp::kEq;
  Value operand;

  // kAnd / kOr / kNot (kNot has exactly one child):
  std::vector<Predicate> children;

  /// Leaf constructor.
  static Predicate Compare(std::string path, CompareOp op, Value operand);
  static Predicate True();
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);
  static Predicate Not(Predicate child);

  /// Evaluates against a document body (an object value).
  bool Matches(const Value& doc) const;

  /// Canonical text form; AND/OR children are sorted so semantically equal
  /// predicates produce identical strings.
  std::string Normalize() const;

  /// Re-encodes as a MongoDB-style filter spec (the inverse of parsing):
  /// Query::Parse(table, p.ToSpec()) yields an equivalent predicate.
  Value ToSpec() const;
};

// -- Predicate-analysis helpers shared by index planners (db::Table's
// -- secondary indexes and InvaliDB's query index) --

/// True for the ordered comparison operators $gt/$gte/$lt/$lte.
bool IsRangeOp(CompareOp op);

/// Type-bracketing class for ordered comparisons: 0 = bool, 1 = number,
/// 2 = string, -1 = classes ranges never match (null/array/object).
int RangeClassOf(const Value& v);

/// Smallest Value of a range class, for unbounded-lower index scans.
Value RangeClassMin(int cls);

/// Smallest string strictly greater than every string with this prefix.
/// Returns false if no such string exists (prefix is empty or all 0xff) —
/// a $prefix scan is then unbounded above within the string class.
bool PrefixUpperBound(const std::string& prefix, std::string* out);

/// Appends the top-level conjuncts of a predicate: the root itself for a
/// single comparison, or the comparison children of a root AND. Every
/// conjunct is a necessary condition for the whole predicate — the basis
/// for index-plan selection.
void TopLevelConjuncts(const Predicate& p, std::vector<const Predicate*>* out);

/// A sort key: dot-path plus direction.
struct SortKey {
  std::string path;
  bool ascending = true;
};

/// A query over a single table: a predicate plus optional ORDER BY /
/// LIMIT / OFFSET. Queries without order/limit/offset are "stateless" in
/// InvaliDB's sense (§4.1 Managing Query State).
class Query {
 public:
  Query() = default;
  Query(std::string table, Predicate filter)
      : table_(std::move(table)), filter_(std::move(filter)) {}

  const std::string& table() const { return table_; }
  const Predicate& filter() const { return filter_; }
  const std::vector<SortKey>& order_by() const { return order_by_; }
  int64_t limit() const { return limit_; }
  int64_t offset() const { return offset_; }

  Query& SetOrderBy(std::vector<SortKey> keys) {
    order_by_ = std::move(keys);
    return *this;
  }
  Query& SetLimit(int64_t limit) {
    limit_ = limit;
    return *this;
  }
  Query& SetOffset(int64_t offset) {
    offset_ = offset;
    return *this;
  }

  /// True if the predicate matches the document body.
  bool Matches(const Value& doc) const { return filter_.Matches(doc); }

  /// True if the query carries no ORDER BY / LIMIT / OFFSET state.
  bool IsStateless() const {
    return order_by_.empty() && limit_ < 0 && offset_ == 0;
  }

  /// Canonical cache key: "q:<table>?<normalized filter>[&sort=...][&limit=
  /// ...][&offset=...]". Two semantically identical queries (e.g. AND
  /// clauses in different order) share one key — the paper's "normalized
  /// query string" (§3.1).
  std::string NormalizedKey() const;

  /// Compares documents according to this query's ORDER BY (ties broken by
  /// document id for determinism). Returns true if a < b.
  bool OrderedBefore(const Value& a, std::string_view a_id, const Value& b,
                     std::string_view b_id) const;

  /// Parses a MongoDB-style filter document, e.g.
  ///   {"tags": {"$contains": "example"}, "age": {"$gte": 21}}
  ///   {"$or": [{"a": 1}, {"b": {"$lt": 5}}]}
  /// A bare literal means $eq.
  static Result<Query> Parse(std::string table, const Value& filter_spec);

  /// Parses a filter from JSON text (convenience over Parse).
  static Result<Query> ParseJson(std::string table, std::string_view json);

  /// Full wire encoding including table, filter, and windowing —
  /// round-trips through FromSpec (used by the queue transport, §4.1).
  Value ToSpec() const;
  static Result<Query> FromSpec(const Value& spec);

 private:
  std::string table_;
  Predicate filter_;
  std::vector<SortKey> order_by_;
  int64_t limit_ = -1;  // -1 = no limit
  int64_t offset_ = 0;
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_QUERY_H_
