#include "db/value.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace quaestor::db {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

double Value::as_number() const {
  if (is_int()) return static_cast<double>(as_int());
  return as_double();
}

const Value* Value::Find(std::string_view path) const {
  const Value* cur = this;
  size_t start = 0;
  while (start <= path.size()) {
    size_t dot = path.find('.', start);
    std::string_view seg = path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start);
    if (seg.empty()) return nullptr;
    if (cur->is_object()) {
      const Object& obj = cur->as_object();
      auto it = obj.find(std::string(seg));
      if (it == obj.end()) return nullptr;
      cur = &it->second;
    } else if (cur->is_array()) {
      size_t idx = 0;
      auto [p, ec] =
          std::from_chars(seg.data(), seg.data() + seg.size(), idx);
      if (ec != std::errc() || p != seg.data() + seg.size()) return nullptr;
      const Array& arr = cur->as_array();
      if (idx >= arr.size()) return nullptr;
      cur = &arr[idx];
    } else {
      return nullptr;
    }
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return cur;
}

Status Value::SetPath(std::string_view path, Value v) {
  if (path.empty()) return Status::InvalidArgument("empty path");
  if (!is_object()) return Status::InvalidArgument("root is not an object");
  Value* cur = this;
  size_t start = 0;
  for (;;) {
    size_t dot = path.find('.', start);
    std::string seg(path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start));
    if (seg.empty()) return Status::InvalidArgument("empty path segment");
    Object& obj = cur->as_object();
    if (dot == std::string_view::npos) {
      obj[seg] = std::move(v);
      return Status::OK();
    }
    auto [it, inserted] = obj.try_emplace(seg, Object{});
    if (!inserted && !it->second.is_object()) {
      return Status::InvalidArgument("path segment '" + seg +
                                     "' is not an object");
    }
    cur = &it->second;
    start = dot + 1;
  }
}

bool Value::RemovePath(std::string_view path) {
  if (path.empty() || !is_object()) return false;
  Value* cur = this;
  size_t start = 0;
  for (;;) {
    size_t dot = path.find('.', start);
    std::string seg(path.substr(
        start, dot == std::string_view::npos ? std::string_view::npos
                                             : dot - start));
    if (!cur->is_object()) return false;
    Object& obj = cur->as_object();
    auto it = obj.find(seg);
    if (it == obj.end()) return false;
    if (dot == std::string_view::npos) {
      obj.erase(it);
      return true;
    }
    cur = &it->second;
    start = dot + 1;
  }
}

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonImpl(std::string& out, const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::kInt: {
      out += std::to_string(v.as_int());
      break;
    }
    case Value::Type::kDouble: {
      const double d = v.as_double();
      if (std::isnan(d) || std::isinf(d)) {
        out += "null";  // JSON has no NaN/Inf
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      // Use shortest representation that round-trips.
      for (int prec = 1; prec < 17; ++prec) {
        char trial[32];
        std::snprintf(trial, sizeof(trial), "%.*g", prec, d);
        double parsed = std::strtod(trial, nullptr);
        if (parsed == d) {
          std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
          break;
        }
      }
      out += buf;
      break;
    }
    case Value::Type::kString:
      AppendEscaped(out, v.as_string());
      break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out += ',';
        first = false;
        AppendJsonImpl(out, e);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        AppendEscaped(out, k);
        out += ':';
        AppendJsonImpl(out, e);
      }
      out += '}';
      break;
    }
  }
}

/// Minimal recursive-descent JSON parser.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text), pos_(0) {}

  Result<Value> Parse() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

  Result<Value> ParsePrefix(size_t* consumed) {
    SkipWs();
    auto v = ParseValue();
    if (v.ok()) *consumed = pos_;
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  Result<Value> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Value(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(true);
        }
        return Err("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(false);
        }
        return Err("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(nullptr);
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // Encode as UTF-8 (no surrogate-pair handling; BMP only).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Err("invalid number");
    std::string_view num = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t i = 0;
      auto [p, ec] = std::from_chars(num.data(), num.data() + num.size(), i);
      if (ec == std::errc() && p == num.data() + num.size()) return Value(i);
      // Fall through to double on overflow.
    }
    const double d = std::strtod(std::string(num).c_str(), nullptr);
    return Value(d);
  }

  Result<Value> ParseArray() {
    Consume('[');
    Array arr;
    SkipWs();
    if (Consume(']')) return Value(std::move(arr));
    for (;;) {
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      SkipWs();
      if (Consume(']')) return Value(std::move(arr));
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  Result<Value> ParseObject() {
    Consume('{');
    Object obj;
    SkipWs();
    if (Consume('}')) return Value(std::move(obj));
    for (;;) {
      SkipWs();
      auto k = ParseString();
      if (!k.ok()) return k.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj[std::move(k).value()] = std::move(v).value();
      SkipWs();
      if (Consume('}')) return Value(std::move(obj));
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_;
};

int TypeRank(Value::Type t) {
  switch (t) {
    case Value::Type::kNull:
      return 0;
    case Value::Type::kBool:
      return 1;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      return 2;
    case Value::Type::kString:
      return 3;
    case Value::Type::kArray:
      return 4;
    case Value::Type::kObject:
      return 5;
  }
  return 6;
}

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  AppendJsonImpl(out, *this);
  return out;
}

void Value::AppendJson(std::string* out) const { AppendJsonImpl(*out, *this); }

void AppendJsonEscaped(std::string* out, std::string_view s) {
  AppendEscaped(*out, s);
}

Result<Value> Value::FromJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<Value> Value::FromJsonPrefix(std::string_view text, size_t* consumed) {
  return JsonParser(text).ParsePrefix(consumed);
}

bool operator==(const Value& a, const Value& b) {
  return Value::Compare(a, b) == 0;
}

int Value::Compare(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type());
  const int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
    case Type::kInt:
    case Type::kDouble: {
      // Exact comparison when both are ints; numeric otherwise.
      if (a.is_int() && b.is_int()) {
        const int64_t x = a.as_int();
        const int64_t y = b.as_int();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      const double x = a.as_number();
      const double y = b.as_number();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case Type::kString: {
      const int c = a.as_string().compare(b.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case Type::kArray: {
      const Array& x = a.as_array();
      const Array& y = b.as_array();
      const size_t n = std::min(x.size(), y.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = Compare(x[i], y[i]);
        if (c != 0) return c;
      }
      if (x.size() != y.size()) return x.size() < y.size() ? -1 : 1;
      return 0;
    }
    case Type::kObject: {
      const Object& x = a.as_object();
      const Object& y = b.as_object();
      auto ix = x.begin();
      auto iy = y.begin();
      for (; ix != x.end() && iy != y.end(); ++ix, ++iy) {
        const int kc = ix->first.compare(iy->first);
        if (kc != 0) return kc < 0 ? -1 : 1;
        const int vc = Compare(ix->second, iy->second);
        if (vc != 0) return vc;
      }
      if (x.size() != y.size()) return x.size() < y.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

}  // namespace quaestor::db
