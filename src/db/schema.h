#ifndef QUAESTOR_DB_SCHEMA_H_
#define QUAESTOR_DB_SCHEMA_H_

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace quaestor::db {

/// Field types a schema can require. kNumber accepts int and double.
enum class FieldType {
  kAny,
  kBool,
  kInt,
  kDouble,
  kNumber,
  kString,
  kArray,
  kObject,
};

std::string_view FieldTypeName(FieldType t);

/// Returns true if `v` conforms to `t`.
bool ValueMatchesType(const Value& v, FieldType t);

/// Constraints on one (dot-path addressable) field.
struct FieldSpec {
  FieldType type = FieldType::kAny;
  bool required = false;
};

/// Schema of one table (§2: Quaestor "provides DBaaS functionality such
/// as query processing, authorization, and schema management"). Validates
/// document bodies on insert and on the post-image of updates.
class TableSchema {
 public:
  TableSchema() = default;

  /// Declares a field. Paths are dot-paths into the document.
  TableSchema& Field(std::string path, FieldType type, bool required = false);

  /// Reject documents carrying top-level fields not declared here.
  TableSchema& DisallowUnknownFields();

  /// Validates a full document body.
  Status Validate(const Value& body) const;

  size_t FieldCount() const { return fields_.size(); }

 private:
  std::map<std::string, FieldSpec> fields_;
  bool allow_unknown_ = true;
};

/// Table name → schema. Tables without a schema accept anything.
/// Thread-safe.
class SchemaRegistry {
 public:
  /// Installs (or replaces) a table's schema.
  void SetSchema(const std::string& table, TableSchema schema);

  /// Removes a table's schema.
  void RemoveSchema(const std::string& table);

  /// Validates a body against the table's schema (OK if none).
  Status Validate(const std::string& table, const Value& body) const;

  bool HasSchema(const std::string& table) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableSchema> schemas_;
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_SCHEMA_H_
