#include "db/table.h"

#include <algorithm>
#include <mutex>

namespace quaestor::db {

void Table::IndexKeysFor(const Value& body, const std::string& path,
                         std::vector<Value>* out) {
  const Value* v = body.Find(path);
  if (v == nullptr) return;
  out->push_back(*v);
  if (v->is_array()) {
    // Multikey: {tags: "x"} equality matches array elements.
    for (const Value& e : v->as_array()) out->push_back(e);
  }
}

void Table::AddToIndexesLocked(const Document& doc) {
  for (auto& [path, index] : indexes_) {
    std::vector<Value> keys;
    IndexKeysFor(doc.body, path, &keys);
    if (keys.empty()) {
      index.absent_docs++;
    } else if (keys.size() > 1) {
      index.multikey_docs++;
    }
    for (const Value& k : keys) index.buckets[k].insert(doc.id);
  }
}

void Table::RemoveFromIndexesLocked(const Document& doc) {
  for (auto& [path, index] : indexes_) {
    std::vector<Value> keys;
    IndexKeysFor(doc.body, path, &keys);
    if (keys.empty()) {
      index.absent_docs--;
    } else if (keys.size() > 1) {
      index.multikey_docs--;
    }
    for (const Value& k : keys) {
      auto it = index.buckets.find(k);
      if (it == index.buckets.end()) continue;
      it->second.erase(doc.id);
      if (it->second.empty()) index.buckets.erase(it);
    }
  }
}

void Table::CreateIndex(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (indexes_.count(path) > 0) return;
  SecondaryIndex& index = indexes_[path];
  for (const auto& [id, doc] : docs_) {
    if (doc.deleted) continue;
    std::vector<Value> keys;
    IndexKeysFor(doc.body, path, &keys);
    if (keys.empty()) {
      index.absent_docs++;
    } else if (keys.size() > 1) {
      index.multikey_docs++;
    }
    for (const Value& k : keys) index.buckets[k].insert(id);
  }
}

void Table::DropIndex(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  indexes_.erase(path);
}

bool Table::HasIndex(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return indexes_.count(path) > 0;
}

uint64_t Table::index_lookups() const {
  return eq_lookups_.load(std::memory_order_relaxed) +
         range_scans_.load(std::memory_order_relaxed) +
         order_scans_.load(std::memory_order_relaxed);
}

uint64_t Table::full_scans() const {
  return full_scans_.load(std::memory_order_relaxed);
}

TableIndexStats Table::index_stats() const {
  TableIndexStats s;
  s.eq_lookups = eq_lookups_.load(std::memory_order_relaxed);
  s.range_scans = range_scans_.load(std::memory_order_relaxed);
  s.order_scans = order_scans_.load(std::memory_order_relaxed);
  s.full_scans = full_scans_.load(std::memory_order_relaxed);
  return s;
}

Result<Document> Table::Insert(const std::string& id, Value body, Micros now) {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it != docs_.end() && !it->second.deleted) {
    return Status::AlreadyExists(name_ + "/" + id);
  }
  Document doc;
  doc.table = name_;
  doc.id = id;
  doc.version = (it != docs_.end()) ? it->second.version + 1 : 1;
  doc.write_time = now;
  doc.deleted = false;
  doc.body = std::move(body);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Upsert(const std::string& id, Value body, Micros now) {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it != docs_.end() && !it->second.deleted) {
    RemoveFromIndexesLocked(it->second);
  }
  Document doc;
  doc.table = name_;
  doc.id = id;
  doc.version = (it != docs_.end()) ? it->second.version + 1 : 1;
  doc.write_time = now;
  doc.deleted = false;
  doc.body = std::move(body);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Apply(const std::string& id, const Update& update,
                              Micros now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  Document doc = it->second;
  QUAESTOR_RETURN_IF_ERROR(update.ApplyTo(doc.body));
  doc.version++;
  doc.write_time = now;
  RemoveFromIndexesLocked(it->second);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Delete(const std::string& id, Micros now) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  Document& doc = it->second;
  RemoveFromIndexesLocked(doc);
  doc.version++;
  doc.write_time = now;
  doc.deleted = true;
  return doc;
}

Result<Document> Table::Get(const std::string& id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  return it->second;
}

void Table::ExecuteEqLocked(const Query& query, const Predicate& conjunct,
                            std::vector<const Document*>* out) const {
  const SecondaryIndex& index = indexes_.at(conjunct.path);
  auto emit_bucket = [&](const Value& key,
                         std::unordered_set<std::string_view>* seen) {
    auto bucket = index.buckets.find(key);
    if (bucket == index.buckets.end()) return;
    for (const std::string& id : bucket->second) {
      if (seen != nullptr && !seen->insert(id).second) continue;
      auto it = docs_.find(id);
      if (it == docs_.end() || it->second.deleted) continue;
      if (query.Matches(it->second.body)) out->push_back(&it->second);
    }
  };
  if (conjunct.op == CompareOp::kEq) {
    emit_bucket(conjunct.operand, nullptr);
  } else {  // $in: union of the element buckets (a multikey doc can sit in
            // several, so dedup by id).
    std::unordered_set<std::string_view> seen;
    for (const Value& e : conjunct.operand.as_array()) {
      emit_bucket(e, &seen);
    }
  }
}

void Table::ExecuteRangeLocked(const Query& query, const std::string& path,
                               const Value* lo, bool lo_incl, const Value* hi,
                               bool hi_incl,
                               std::vector<const Document*>* out) const {
  const SecondaryIndex& index = indexes_.at(path);
  const int cls = RangeClassOf(lo != nullptr ? *lo : *hi);
  const Value class_min = RangeClassMin(cls);
  auto it = lo == nullptr
                ? index.buckets.lower_bound(class_min)
                : (lo_incl ? index.buckets.lower_bound(*lo)
                           : index.buckets.upper_bound(*lo));
  for (; it != index.buckets.end(); ++it) {
    const int key_cls = RangeClassOf(it->first);
    if (key_cls != cls) break;  // left the class bracket — keys are sorted
    if (hi != nullptr) {
      const int c = Value::Compare(it->first, *hi);
      if (c > 0 || (c == 0 && !hi_incl)) break;
    }
    for (const std::string& id : it->second) {
      auto doc = docs_.find(id);
      if (doc == docs_.end() || doc->second.deleted) continue;
      if (query.Matches(doc->second.body)) out->push_back(&doc->second);
    }
  }
  // Multikey docs can land in the scanned window via several array
  // elements; dedup keeps windowing exact.
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool Table::ExecuteTopKLocked(const Query& query,
                              std::vector<const Document*>* out) const {
  if (query.order_by().size() != 1 || query.limit() < 0) return false;
  auto idx = indexes_.find(query.order_by()[0].path);
  if (idx == indexes_.end()) return false;
  const SecondaryIndex& index = idx->second;
  // Multikey docs appear at several index positions; absent docs sort as
  // null but are invisible to the index. Either breaks in-order traversal.
  if (index.multikey_docs > 0 || index.absent_docs > 0) return false;

  const size_t skip =
      static_cast<size_t>(std::max<int64_t>(0, query.offset()));
  const size_t want = static_cast<size_t>(query.limit());
  if (want == 0) return true;  // LIMIT 0 → empty result, nothing to scan
  size_t skipped = 0;
  std::vector<const std::string*> bucket_ids;
  auto emit_bucket = [&](const std::unordered_set<std::string>& ids) {
    // Within one bucket the sort key compares equal → tie-break by id asc.
    bucket_ids.clear();
    for (const std::string& id : ids) bucket_ids.push_back(&id);
    std::sort(bucket_ids.begin(), bucket_ids.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    for (const std::string* id : bucket_ids) {
      auto doc = docs_.find(*id);
      if (doc == docs_.end() || doc->second.deleted) continue;
      if (!query.Matches(doc->second.body)) continue;
      if (skipped < skip) {
        skipped++;
        continue;
      }
      out->push_back(&doc->second);
      if (out->size() >= want) return true;  // early termination
    }
    return false;
  };
  if (query.order_by()[0].ascending) {
    for (auto it = index.buckets.begin(); it != index.buckets.end(); ++it) {
      if (emit_bucket(it->second)) break;
    }
  } else {
    for (auto it = index.buckets.rbegin(); it != index.buckets.rend(); ++it) {
      if (emit_bucket(it->second)) break;
    }
  }
  return true;
}

std::vector<Document> Table::Execute(const Query& query) const {
  std::vector<Document> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<const Document*> matches;

  // Plan selection over the top-level conjuncts.
  std::vector<const Predicate*> conjuncts;
  TopLevelConjuncts(query.filter(), &conjuncts);

  // (1) Equality / $in bucket lookup. Equality with a null operand also
  // matches documents missing the field entirely, which the index cannot
  // see — those stay on the scan path.
  const Predicate* eq = nullptr;
  for (const Predicate* c : conjuncts) {
    if (indexes_.count(c->path) == 0) continue;
    if (c->op == CompareOp::kEq && !c->operand.is_null()) {
      eq = c;
      break;
    }
    if (c->op == CompareOp::kIn && c->operand.is_array() &&
        !c->operand.as_array().empty()) {
      bool all_non_null = true;
      for (const Value& e : c->operand.as_array()) {
        if (e.is_null()) {
          all_non_null = false;
          break;
        }
      }
      if (all_non_null) {
        eq = c;
        break;
      }
    }
  }

  bool windowed_in_order = false;
  if (eq != nullptr) {
    eq_lookups_.fetch_add(1, std::memory_order_relaxed);
    ExecuteEqLocked(query, *eq, &matches);
  } else {
    // (2) Range / prefix scan: intersect all comparable bounds on the
    // first indexed path carrying one.
    const std::string* range_path = nullptr;
    const Value* lo = nullptr;
    const Value* hi = nullptr;
    Value prefix_hi;
    bool lo_incl = false, hi_incl = false, prefix_unbounded = false;
    int cls = -1;
    for (const Predicate* c : conjuncts) {
      const bool range = IsRangeOp(c->op) && RangeClassOf(c->operand) >= 0;
      const bool prefix = c->op == CompareOp::kPrefix && c->operand.is_string();
      if (!range && !prefix) continue;
      if (indexes_.count(c->path) == 0) continue;
      if (range_path == nullptr) {
        range_path = &c->path;
        cls = prefix ? 2 : RangeClassOf(c->operand);
      } else if (*range_path != c->path) {
        continue;  // one path per scan; other conjuncts verify candidates
      }
      if (prefix ? cls != 2 : RangeClassOf(c->operand) != cls) {
        continue;  // cross-class bound can't tighten this scan
      }
      auto tighten_lo = [&](const Value* v, bool incl) {
        const int c2 = lo == nullptr ? 1 : Value::Compare(*v, *lo);
        if (c2 > 0 || (c2 == 0 && !incl)) {
          lo = v;
          lo_incl = incl;
        }
      };
      auto tighten_hi = [&](const Value* v, bool incl) {
        const int c2 = hi == nullptr ? -1 : Value::Compare(*v, *hi);
        if (c2 < 0 || (c2 == 0 && !incl)) {
          hi = v;
          hi_incl = incl;
        }
      };
      switch (c->op) {
        case CompareOp::kGt:
          tighten_lo(&c->operand, false);
          break;
        case CompareOp::kGte:
          tighten_lo(&c->operand, true);
          break;
        case CompareOp::kLt:
          tighten_hi(&c->operand, false);
          break;
        case CompareOp::kLte:
          tighten_hi(&c->operand, true);
          break;
        case CompareOp::kPrefix: {
          tighten_lo(&c->operand, true);
          std::string upper;
          if (!prefix_unbounded &&
              PrefixUpperBound(c->operand.as_string(), &upper)) {
            prefix_hi = Value(std::move(upper));
            tighten_hi(&prefix_hi, false);
          } else {
            prefix_unbounded = true;
          }
          break;
        }
        default:
          break;
      }
    }
    if (range_path != nullptr && (lo != nullptr || hi != nullptr)) {
      range_scans_.fetch_add(1, std::memory_order_relaxed);
      ExecuteRangeLocked(query, *range_path, lo, lo_incl, hi, hi_incl,
                         &matches);
    } else if (ExecuteTopKLocked(query, &matches)) {
      // (3) ORDER BY + LIMIT top-k with early termination: `matches` is
      // already the final window in final order.
      order_scans_.fetch_add(1, std::memory_order_relaxed);
      windowed_in_order = true;
    } else {
      // (4) Full predicate scan.
      full_scans_.fetch_add(1, std::memory_order_relaxed);
      for (const auto& [id, doc] : docs_) {
        if (doc.deleted) continue;
        if (query.Matches(doc.body)) matches.push_back(&doc);
      }
    }
  }

  if (!windowed_in_order) {
    if (!query.order_by().empty()) {
      std::sort(matches.begin(), matches.end(),
                [&query](const Document* a, const Document* b) {
                  return query.OrderedBefore(a->body, a->id, b->body, b->id);
                });
    } else {
      // Deterministic order even without ORDER BY (scan order of a hash
      // map is arbitrary; id order keeps results and result-based cache
      // entries stable).
      std::sort(matches.begin(), matches.end(),
                [](const Document* a, const Document* b) {
                  return a->id < b->id;
                });
    }
    // OFFSET / LIMIT window over the pointers; only survivors are copied.
    const size_t offset =
        static_cast<size_t>(std::max<int64_t>(0, query.offset()));
    if (offset >= matches.size()) return {};
    size_t end = matches.size();
    if (query.limit() >= 0) {
      end = std::min(end, offset + static_cast<size_t>(query.limit()));
    }
    matches.erase(matches.begin() + end, matches.end());
    matches.erase(matches.begin(), matches.begin() + offset);
  }

  out.reserve(matches.size());
  for (const Document* doc : matches) out.push_back(*doc);
  return out;
}

size_t Table::LiveCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, doc] : docs_) {
    if (!doc.deleted) ++n;
  }
  return n;
}

std::vector<std::string> Table::LiveIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) {
    if (!doc.deleted) ids.push_back(id);
  }
  return ids;
}

}  // namespace quaestor::db
