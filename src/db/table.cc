#include "db/table.h"

#include <algorithm>

namespace quaestor::db {

void Table::IndexKeysFor(const Value& body, const std::string& path,
                         std::vector<std::string>* out) {
  const Value* v = body.Find(path);
  if (v == nullptr) return;
  out->push_back(v->ToJson());
  if (v->is_array()) {
    // Multikey: {tags: "x"} equality matches array elements.
    for (const Value& e : v->as_array()) out->push_back(e.ToJson());
  }
}

void Table::AddToIndexesLocked(const Document& doc) {
  for (auto& [path, index] : indexes_) {
    std::vector<std::string> keys;
    IndexKeysFor(doc.body, path, &keys);
    for (const std::string& k : keys) index[k].insert(doc.id);
  }
}

void Table::RemoveFromIndexesLocked(const Document& doc) {
  for (auto& [path, index] : indexes_) {
    std::vector<std::string> keys;
    IndexKeysFor(doc.body, path, &keys);
    for (const std::string& k : keys) {
      auto it = index.find(k);
      if (it == index.end()) continue;
      it->second.erase(doc.id);
      if (it->second.empty()) index.erase(it);
    }
  }
}

void Table::CreateIndex(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (indexes_.count(path) > 0) return;
  Index& index = indexes_[path];
  for (const auto& [id, doc] : docs_) {
    if (doc.deleted) continue;
    std::vector<std::string> keys;
    IndexKeysFor(doc.body, path, &keys);
    for (const std::string& k : keys) index[k].insert(id);
  }
}

void Table::DropIndex(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  indexes_.erase(path);
}

bool Table::HasIndex(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.count(path) > 0;
}

uint64_t Table::index_lookups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_lookups_;
}

uint64_t Table::full_scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return full_scans_;
}

const Predicate* Table::FindIndexableEqLocked(const Predicate& p) const {
  auto usable = [this](const Predicate& leaf) {
    return leaf.kind == Predicate::Kind::kCompare &&
           leaf.op == CompareOp::kEq && !leaf.operand.is_null() &&
           indexes_.count(leaf.path) > 0;
  };
  if (usable(p)) return &p;
  if (p.kind == Predicate::Kind::kAnd) {
    for (const Predicate& child : p.children) {
      if (usable(child)) return &child;
    }
  }
  return nullptr;
}

Result<Document> Table::Insert(const std::string& id, Value body, Micros now) {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it != docs_.end() && !it->second.deleted) {
    return Status::AlreadyExists(name_ + "/" + id);
  }
  Document doc;
  doc.table = name_;
  doc.id = id;
  doc.version = (it != docs_.end()) ? it->second.version + 1 : 1;
  doc.write_time = now;
  doc.deleted = false;
  doc.body = std::move(body);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Upsert(const std::string& id, Value body, Micros now) {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it != docs_.end() && !it->second.deleted) {
    RemoveFromIndexesLocked(it->second);
  }
  Document doc;
  doc.table = name_;
  doc.id = id;
  doc.version = (it != docs_.end()) ? it->second.version + 1 : 1;
  doc.write_time = now;
  doc.deleted = false;
  doc.body = std::move(body);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Apply(const std::string& id, const Update& update,
                              Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  Document doc = it->second;
  QUAESTOR_RETURN_IF_ERROR(update.ApplyTo(doc.body));
  doc.version++;
  doc.write_time = now;
  RemoveFromIndexesLocked(it->second);
  docs_[id] = doc;
  AddToIndexesLocked(doc);
  return doc;
}

Result<Document> Table::Delete(const std::string& id, Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  Document& doc = it->second;
  RemoveFromIndexesLocked(doc);
  doc.version++;
  doc.write_time = now;
  doc.deleted = true;
  return doc;
}

Result<Document> Table::Get(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end() || it->second.deleted) {
    return Status::NotFound(name_ + "/" + id);
  }
  return it->second;
}

std::vector<Document> Table::Execute(const Query& query) const {
  std::vector<Document> matches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Predicate* eq = FindIndexableEqLocked(query.filter());
    if (eq != nullptr) {
      // Index path: candidates from the multikey hash index, then verify
      // the full predicate (other conjuncts may restrict further).
      index_lookups_++;
      const Index& index = indexes_.at(eq->path);
      auto bucket = index.find(eq->operand.ToJson());
      if (bucket != index.end()) {
        for (const std::string& id : bucket->second) {
          auto it = docs_.find(id);
          if (it == docs_.end() || it->second.deleted) continue;
          if (query.Matches(it->second.body)) matches.push_back(it->second);
        }
      }
    } else {
      full_scans_++;
      for (const auto& [id, doc] : docs_) {
        if (doc.deleted) continue;
        if (query.Matches(doc.body)) matches.push_back(doc);
      }
    }
  }
  if (!query.order_by().empty()) {
    std::sort(matches.begin(), matches.end(),
              [&query](const Document& a, const Document& b) {
                return query.OrderedBefore(a.body, a.id, b.body, b.id);
              });
  } else {
    // Deterministic order even without ORDER BY (scan order of a hash map
    // is arbitrary; id order keeps results and result-based cache entries
    // stable).
    std::sort(matches.begin(), matches.end(),
              [](const Document& a, const Document& b) { return a.id < b.id; });
  }
  // OFFSET / LIMIT.
  const size_t offset = static_cast<size_t>(std::max<int64_t>(
      0, query.offset()));
  if (offset >= matches.size()) return {};
  if (offset > 0) matches.erase(matches.begin(), matches.begin() + offset);
  if (query.limit() >= 0 &&
      matches.size() > static_cast<size_t>(query.limit())) {
    matches.resize(static_cast<size_t>(query.limit()));
  }
  return matches;
}

size_t Table::LiveCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, doc] : docs_) {
    if (!doc.deleted) ++n;
  }
  return n;
}

std::vector<std::string> Table::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) {
    if (!doc.deleted) ids.push_back(id);
  }
  return ids;
}

}  // namespace quaestor::db
