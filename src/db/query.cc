#include "db/query.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace quaestor::db {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "$eq";
    case CompareOp::kNe:
      return "$ne";
    case CompareOp::kGt:
      return "$gt";
    case CompareOp::kGte:
      return "$gte";
    case CompareOp::kLt:
      return "$lt";
    case CompareOp::kLte:
      return "$lte";
    case CompareOp::kIn:
      return "$in";
    case CompareOp::kNin:
      return "$nin";
    case CompareOp::kContains:
      return "$contains";
    case CompareOp::kExists:
      return "$exists";
    case CompareOp::kPrefix:
      return "$prefix";
  }
  return "$unknown";
}

bool IsRangeOp(CompareOp op) {
  return op == CompareOp::kGt || op == CompareOp::kGte ||
         op == CompareOp::kLt || op == CompareOp::kLte;
}

int RangeClassOf(const Value& v) {
  if (v.is_bool()) return 0;
  if (v.is_number()) return 1;
  if (v.is_string()) return 2;
  return -1;
}

Value RangeClassMin(int cls) {
  switch (cls) {
    case 0:
      return Value(false);
    case 1:
      return Value(-std::numeric_limits<double>::infinity());
    default:
      return Value(std::string());
  }
}

bool PrefixUpperBound(const std::string& prefix, std::string* out) {
  *out = prefix;
  while (!out->empty()) {
    if (static_cast<unsigned char>(out->back()) != 0xff) {
      out->back() = static_cast<char>(out->back() + 1);
      return true;
    }
    out->pop_back();
  }
  return false;
}

void TopLevelConjuncts(const Predicate& p,
                       std::vector<const Predicate*>* out) {
  if (p.kind == Predicate::Kind::kCompare) {
    out->push_back(&p);
  } else if (p.kind == Predicate::Kind::kAnd) {
    for (const Predicate& c : p.children) {
      if (c.kind == Predicate::Kind::kCompare) out->push_back(&c);
    }
  }
}

Predicate Predicate::Compare(std::string path, CompareOp op, Value operand) {
  Predicate p;
  p.kind = Kind::kCompare;
  p.path = std::move(path);
  p.op = op;
  p.operand = std::move(operand);
  return p;
}

Predicate Predicate::True() { return Predicate{}; }

Predicate Predicate::And(std::vector<Predicate> children) {
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind = Kind::kAnd;
  p.children = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  if (children.size() == 1) return std::move(children[0]);
  Predicate p;
  p.kind = Kind::kOr;
  p.children = std::move(children);
  return p;
}

Predicate Predicate::Not(Predicate child) {
  Predicate p;
  p.kind = Kind::kNot;
  p.children.push_back(std::move(child));
  return p;
}

namespace {

bool CompareLeaf(const Value* field, CompareOp op, const Value& operand) {
  switch (op) {
    case CompareOp::kEq: {
      if (field == nullptr) return operand.is_null();
      if (*field == operand) return true;
      // MongoDB array semantics: {tags: "x"} matches docs whose tags array
      // contains "x".
      if (field->is_array() && !operand.is_array()) {
        for (const Value& e : field->as_array()) {
          if (e == operand) return true;
        }
      }
      return false;
    }
    case CompareOp::kNe:
      return !CompareLeaf(field, CompareOp::kEq, operand);
    case CompareOp::kGt:
    case CompareOp::kGte:
    case CompareOp::kLt:
    case CompareOp::kLte: {
      if (field == nullptr) return false;
      // Comparisons only between same type classes (numbers with numbers,
      // strings with strings) — MongoDB's behaviour for mixed types is
      // type-bracketing; we return false for cross-type comparisons.
      const bool numeric = field->is_number() && operand.is_number();
      const bool stringy = field->is_string() && operand.is_string();
      const bool booly = field->is_bool() && operand.is_bool();
      if (!numeric && !stringy && !booly) return false;
      const int c = Value::Compare(*field, operand);
      switch (op) {
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGte:
          return c >= 0;
        case CompareOp::kLt:
          return c < 0;
        default:
          return c <= 0;
      }
    }
    case CompareOp::kIn: {
      if (!operand.is_array()) return false;
      for (const Value& e : operand.as_array()) {
        if (CompareLeaf(field, CompareOp::kEq, e)) return true;
      }
      return false;
    }
    case CompareOp::kNin:
      return !CompareLeaf(field, CompareOp::kIn, operand);
    case CompareOp::kContains: {
      if (field == nullptr || !field->is_array()) return false;
      for (const Value& e : field->as_array()) {
        if (e == operand) return true;
      }
      return false;
    }
    case CompareOp::kExists: {
      const bool want = operand.is_bool() ? operand.as_bool() : true;
      return (field != nullptr) == want;
    }
    case CompareOp::kPrefix: {
      if (field == nullptr || !field->is_string() || !operand.is_string()) {
        return false;
      }
      return field->as_string().rfind(operand.as_string(), 0) == 0;
    }
  }
  return false;
}

}  // namespace

bool Predicate::Matches(const Value& doc) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kCompare:
      return CompareLeaf(doc.Find(path), op, operand);
    case Kind::kAnd:
      for (const Predicate& c : children) {
        if (!c.Matches(doc)) return false;
      }
      return true;
    case Kind::kOr:
      for (const Predicate& c : children) {
        if (c.Matches(doc)) return true;
      }
      return false;
    case Kind::kNot:
      assert(children.size() == 1);
      return !children[0].Matches(doc);
  }
  return false;
}

std::string Predicate::Normalize() const {
  switch (kind) {
    case Kind::kTrue:
      return "true";
    case Kind::kCompare: {
      std::string out = path;
      out += ' ';
      out += CompareOpName(op);
      out += ' ';
      out += operand.ToJson();
      return out;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<std::string> parts;
      parts.reserve(children.size());
      for (const Predicate& c : children) parts.push_back(c.Normalize());
      std::sort(parts.begin(), parts.end());
      std::string out = kind == Kind::kAnd ? "and(" : "or(";
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ',';
        out += parts[i];
      }
      out += ')';
      return out;
    }
    case Kind::kNot:
      return "not(" + children[0].Normalize() + ")";
  }
  return "";
}

Value Predicate::ToSpec() const {
  switch (kind) {
    case Kind::kTrue:
      return Value(Object{});
    case Kind::kCompare: {
      Object op_obj;
      op_obj[std::string(CompareOpName(op))] = operand;
      Object root;
      root[path] = Value(std::move(op_obj));
      return Value(std::move(root));
    }
    case Kind::kAnd:
    case Kind::kOr: {
      Array children_spec;
      for (const Predicate& c : children) children_spec.push_back(c.ToSpec());
      Object root;
      root[kind == Kind::kAnd ? "$and" : "$or"] =
          Value(std::move(children_spec));
      return Value(std::move(root));
    }
    case Kind::kNot: {
      Object root;
      root["$not"] = children[0].ToSpec();
      return Value(std::move(root));
    }
  }
  return Value(Object{});
}

Value Query::ToSpec() const {
  Object root;
  root["table"] = Value(table_);
  root["filter"] = filter_.ToSpec();
  if (!order_by_.empty()) {
    Array sort;
    for (const SortKey& k : order_by_) {
      Object key;
      key["path"] = Value(k.path);
      key["asc"] = Value(k.ascending);
      sort.push_back(Value(std::move(key)));
    }
    root["sort"] = Value(std::move(sort));
  }
  if (limit_ >= 0) root["limit"] = Value(limit_);
  if (offset_ > 0) root["offset"] = Value(offset_);
  return Value(std::move(root));
}

Result<Query> Query::FromSpec(const Value& spec) {
  if (!spec.is_object()) {
    return Status::InvalidArgument("query spec must be an object");
  }
  const Value* table = spec.Find("table");
  const Value* filter = spec.Find("filter");
  if (table == nullptr || !table->is_string() || filter == nullptr) {
    return Status::InvalidArgument("query spec missing table/filter");
  }
  auto q = Parse(table->as_string(), *filter);
  if (!q.ok()) return q;
  if (const Value* sort = spec.Find("sort"); sort != nullptr) {
    if (!sort->is_array()) {
      return Status::InvalidArgument("query spec sort must be an array");
    }
    std::vector<SortKey> keys;
    for (const Value& k : sort->as_array()) {
      const Value* path = k.Find("path");
      const Value* asc = k.Find("asc");
      if (path == nullptr || !path->is_string()) {
        return Status::InvalidArgument("sort key missing path");
      }
      keys.push_back(
          SortKey{path->as_string(),
                  asc == nullptr || !asc->is_bool() || asc->as_bool()});
    }
    q->SetOrderBy(std::move(keys));
  }
  if (const Value* limit = spec.Find("limit");
      limit != nullptr && limit->is_int()) {
    q->SetLimit(limit->as_int());
  }
  if (const Value* offset = spec.Find("offset");
      offset != nullptr && offset->is_int()) {
    q->SetOffset(offset->as_int());
  }
  return q;
}

std::string Query::NormalizedKey() const {
  std::string out = "q:";
  out += table_;
  out += '?';
  out += filter_.Normalize();
  if (!order_by_.empty()) {
    out += "&sort=";
    for (size_t i = 0; i < order_by_.size(); ++i) {
      if (i > 0) out += ',';
      out += order_by_[i].path;
      out += order_by_[i].ascending ? ":asc" : ":desc";
    }
  }
  if (limit_ >= 0) {
    out += "&limit=";
    out += std::to_string(limit_);
  }
  if (offset_ > 0) {
    out += "&offset=";
    out += std::to_string(offset_);
  }
  return out;
}

bool Query::OrderedBefore(const Value& a, std::string_view a_id,
                          const Value& b, std::string_view b_id) const {
  static const Value kNull = nullptr;
  for (const SortKey& key : order_by_) {
    const Value* va = a.Find(key.path);
    const Value* vb = b.Find(key.path);
    const int c =
        Value::Compare(va ? *va : kNull, vb ? *vb : kNull);
    if (c != 0) return key.ascending ? c < 0 : c > 0;
  }
  return a_id < b_id;
}

namespace {

Result<CompareOp> OpFromName(std::string_view name) {
  if (name == "$eq") return CompareOp::kEq;
  if (name == "$ne") return CompareOp::kNe;
  if (name == "$gt") return CompareOp::kGt;
  if (name == "$gte") return CompareOp::kGte;
  if (name == "$lt") return CompareOp::kLt;
  if (name == "$lte") return CompareOp::kLte;
  if (name == "$in") return CompareOp::kIn;
  if (name == "$nin") return CompareOp::kNin;
  if (name == "$contains") return CompareOp::kContains;
  if (name == "$exists") return CompareOp::kExists;
  if (name == "$prefix") return CompareOp::kPrefix;
  return Status::InvalidArgument("unknown operator: " + std::string(name));
}

Result<Predicate> ParsePredicate(const Value& spec);

Result<Predicate> ParseLogicalArray(const Value& arr, bool is_and) {
  if (!arr.is_array() || arr.as_array().empty()) {
    return Status::InvalidArgument("$and/$or requires a non-empty array");
  }
  std::vector<Predicate> children;
  for (const Value& e : arr.as_array()) {
    auto child = ParsePredicate(e);
    if (!child.ok()) return child;
    children.push_back(std::move(child).value());
  }
  return is_and ? Predicate::And(std::move(children))
                : Predicate::Or(std::move(children));
}

Result<Predicate> ParsePredicate(const Value& spec) {
  if (!spec.is_object()) {
    return Status::InvalidArgument("filter must be an object");
  }
  std::vector<Predicate> clauses;
  for (const auto& [key, val] : spec.as_object()) {
    if (key == "$and" || key == "$or") {
      auto p = ParseLogicalArray(val, key == "$and");
      if (!p.ok()) return p;
      clauses.push_back(std::move(p).value());
    } else if (key == "$not") {
      auto p = ParsePredicate(val);
      if (!p.ok()) return p;
      clauses.push_back(Predicate::Not(std::move(p).value()));
    } else if (!key.empty() && key[0] == '$') {
      return Status::InvalidArgument("unknown top-level operator: " + key);
    } else if (val.is_object() && !val.as_object().empty() &&
               val.as_object().begin()->first.starts_with("$")) {
      // Operator object: {"age": {"$gte": 21, "$lt": 65}}
      for (const auto& [opname, operand] : val.as_object()) {
        auto op = OpFromName(opname);
        if (!op.ok()) return op.status();
        clauses.push_back(Predicate::Compare(key, op.value(), operand));
      }
    } else {
      // Bare literal: equality.
      clauses.push_back(Predicate::Compare(key, CompareOp::kEq, val));
    }
  }
  if (clauses.empty()) return Predicate::True();
  return Predicate::And(std::move(clauses));
}

}  // namespace

Result<Query> Query::Parse(std::string table, const Value& filter_spec) {
  if (table.empty()) return Status::InvalidArgument("empty table name");
  auto pred = ParsePredicate(filter_spec);
  if (!pred.ok()) return pred.status();
  return Query(std::move(table), std::move(pred).value());
}

Result<Query> Query::ParseJson(std::string table, std::string_view json) {
  auto spec = Value::FromJson(json);
  if (!spec.ok()) return spec.status();
  return Parse(std::move(table), spec.value());
}

}  // namespace quaestor::db
