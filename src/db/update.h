#ifndef QUAESTOR_DB_UPDATE_H_
#define QUAESTOR_DB_UPDATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "db/value.h"

namespace quaestor::db {

/// Partial-update operators, MongoDB style.
enum class UpdateOp {
  kSet,    // $set  — assign a path
  kUnset,  // $unset — remove a path
  kInc,    // $inc  — add a number to a numeric path (creates it at 0)
  kPush,   // $push — append to an array path (creates an empty array)
  kPull,   // $pull — remove all equal elements from an array path
};

/// One update action on a document path.
struct UpdateAction {
  UpdateOp op;
  std::string path;
  Value operand;
};

/// An ordered list of update actions applied atomically to one document.
class Update {
 public:
  Update() = default;

  Update& Set(std::string path, Value v);
  Update& Unset(std::string path);
  Update& Inc(std::string path, Value delta);
  Update& Push(std::string path, Value v);
  Update& Pull(std::string path, Value v);

  const std::vector<UpdateAction>& actions() const { return actions_; }
  bool empty() const { return actions_.empty(); }

  /// Applies all actions to `body` (an object). On error the document is
  /// left unchanged (copy-apply-swap).
  Status ApplyTo(Value& body) const;

  /// Parses a MongoDB-style update document, e.g.
  ///   {"$set": {"a.b": 1}, "$inc": {"n": 2}, "$push": {"tags": "x"}}
  static Result<Update> Parse(const Value& spec);

  /// Inverse of Parse: rebuilds the operator document, so updates
  /// round-trip over the wire (Parse(ToSpec()) preserves semantics; two
  /// actions on the same path under one operator collapse to the last,
  /// matching object-key semantics of the spec format).
  Value ToSpec() const;

 private:
  std::vector<UpdateAction> actions_;
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_UPDATE_H_
