#include "db/database.h"

#include <mutex>

namespace quaestor::db {

Table* Database::GetOrCreateTable(const std::string& name) {
  // Fast path: the table already exists (every request after the first).
  {
    std::shared_lock<std::shared_mutex> lock(tables_mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    it = tables_.emplace(name, std::make_unique<Table>(name)).first;
  }
  return it->second.get();
}

Table* Database::FindTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Document> Database::Insert(const std::string& table,
                                  const std::string& id, Value body) {
  auto res = GetOrCreateTable(table)->Insert(id, std::move(body),
                                             clock_->NowMicros());
  if (res.ok()) {
    inserts_.fetch_add(1, std::memory_order_relaxed);
    Notify(WriteKind::kInsert, res.value());
  }
  return res;
}

Result<Document> Database::Upsert(const std::string& table,
                                  const std::string& id, Value body) {
  auto res = GetOrCreateTable(table)->Upsert(id, std::move(body),
                                             clock_->NowMicros());
  if (res.ok()) {
    const bool was_insert = res.value().version == 1;
    (was_insert ? inserts_ : updates_)
        .fetch_add(1, std::memory_order_relaxed);
    Notify(was_insert ? WriteKind::kInsert : WriteKind::kUpdate, res.value());
  }
  return res;
}

Result<Document> Database::Apply(const std::string& table,
                                 const std::string& id, const Update& update) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound(table + "/" + id);
  auto res = t->Apply(id, update, clock_->NowMicros());
  if (res.ok()) {
    updates_.fetch_add(1, std::memory_order_relaxed);
    Notify(WriteKind::kUpdate, res.value());
  }
  return res;
}

Result<Document> Database::Delete(const std::string& table,
                                  const std::string& id) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound(table + "/" + id);
  auto res = t->Delete(id, clock_->NowMicros());
  if (res.ok()) {
    deletes_.fetch_add(1, std::memory_order_relaxed);
    Notify(WriteKind::kDelete, res.value());
  }
  return res;
}

Result<Document> Database::Get(const std::string& table,
                               const std::string& id) const {
  reads_.fetch_add(1, std::memory_order_relaxed);
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound(table + "/" + id);
  return t->Get(id);
}

std::vector<Document> Database::Execute(const Query& query) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  Table* t = FindTable(query.table());
  if (t == nullptr) return {};
  return t->Execute(query);
}

void Database::AddChangeListener(ChangeListener listener) {
  listeners_.push_back(std::move(listener));
}

void Database::Notify(WriteKind kind, const Document& after) {
  if (listeners_.empty()) return;
  ChangeEvent ev;
  ev.kind = kind;
  ev.after = after;
  ev.commit_time = after.write_time;
  for (const ChangeListener& l : listeners_) l(ev);
}

std::vector<std::string> Database::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(tables_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, t] : tables_) names.push_back(name);
  return names;
}

}  // namespace quaestor::db
