#ifndef QUAESTOR_DB_DOCUMENT_H_
#define QUAESTOR_DB_DOCUMENT_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "db/value.h"

namespace quaestor::db {

/// A versioned record in a table. `body` is always an object value.
/// `version` increases monotonically per key and acts as the HTTP ETag in
/// the web-caching layers. `write_time` is the commit time of the version
/// (used by the staleness detector and the TTL estimator).
struct Document {
  std::string table;
  std::string id;
  uint64_t version = 0;
  Micros write_time = 0;
  bool deleted = false;
  Value body = Object{};

  /// Globally unique record key ("table/id"); also the record's cache key
  /// and its EBF key.
  std::string Key() const { return table + "/" + id; }

  /// Canonical serialized form (body JSON).
  std::string ToJson() const { return body.ToJson(); }
};

/// Kinds of write operations flowing through the change stream.
enum class WriteKind { kInsert, kUpdate, kDelete };

/// A change-stream event: the write kind plus the full record after-image
/// (the paper's invalidation pipeline matches queries against
/// after-images). For deletes, `after.deleted` is true and `after.body`
/// holds the last pre-delete body.
struct ChangeEvent {
  WriteKind kind;
  Document after;
  Micros commit_time = 0;
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_DOCUMENT_H_
