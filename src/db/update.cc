#include "db/update.h"

#include <utility>

namespace quaestor::db {

Update& Update::Set(std::string path, Value v) {
  actions_.push_back({UpdateOp::kSet, std::move(path), std::move(v)});
  return *this;
}

Update& Update::Unset(std::string path) {
  actions_.push_back({UpdateOp::kUnset, std::move(path), Value()});
  return *this;
}

Update& Update::Inc(std::string path, Value delta) {
  actions_.push_back({UpdateOp::kInc, std::move(path), std::move(delta)});
  return *this;
}

Update& Update::Push(std::string path, Value v) {
  actions_.push_back({UpdateOp::kPush, std::move(path), std::move(v)});
  return *this;
}

Update& Update::Pull(std::string path, Value v) {
  actions_.push_back({UpdateOp::kPull, std::move(path), std::move(v)});
  return *this;
}

namespace {

Status ApplyAction(Value& body, const UpdateAction& a) {
  switch (a.op) {
    case UpdateOp::kSet:
      return body.SetPath(a.path, a.operand);
    case UpdateOp::kUnset:
      body.RemovePath(a.path);
      return Status::OK();
    case UpdateOp::kInc: {
      if (!a.operand.is_number()) {
        return Status::InvalidArgument("$inc operand must be a number");
      }
      const Value* cur = body.Find(a.path);
      if (cur == nullptr) {
        return body.SetPath(a.path, a.operand);
      }
      if (!cur->is_number()) {
        return Status::InvalidArgument("$inc target is not a number: " +
                                       a.path);
      }
      if (cur->is_int() && a.operand.is_int()) {
        return body.SetPath(a.path, Value(cur->as_int() + a.operand.as_int()));
      }
      return body.SetPath(a.path,
                          Value(cur->as_number() + a.operand.as_number()));
    }
    case UpdateOp::kPush: {
      const Value* cur = body.Find(a.path);
      Array arr;
      if (cur != nullptr) {
        if (!cur->is_array()) {
          return Status::InvalidArgument("$push target is not an array: " +
                                         a.path);
        }
        arr = cur->as_array();
      }
      arr.push_back(a.operand);
      return body.SetPath(a.path, Value(std::move(arr)));
    }
    case UpdateOp::kPull: {
      const Value* cur = body.Find(a.path);
      if (cur == nullptr) return Status::OK();
      if (!cur->is_array()) {
        return Status::InvalidArgument("$pull target is not an array: " +
                                       a.path);
      }
      Array out;
      for (const Value& e : cur->as_array()) {
        if (!(e == a.operand)) out.push_back(e);
      }
      return body.SetPath(a.path, Value(std::move(out)));
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status Update::ApplyTo(Value& body) const {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  Value scratch = body;
  for (const UpdateAction& a : actions_) {
    QUAESTOR_RETURN_IF_ERROR(ApplyAction(scratch, a));
  }
  body = std::move(scratch);
  return Status::OK();
}

Result<Update> Update::Parse(const Value& spec) {
  if (!spec.is_object()) {
    return Status::InvalidArgument("update must be an object");
  }
  Update u;
  for (const auto& [opname, fields] : spec.as_object()) {
    if (!fields.is_object()) {
      return Status::InvalidArgument(opname + " requires an object");
    }
    for (const auto& [path, operand] : fields.as_object()) {
      if (opname == "$set") {
        u.Set(path, operand);
      } else if (opname == "$unset") {
        u.Unset(path);
      } else if (opname == "$inc") {
        u.Inc(path, operand);
      } else if (opname == "$push") {
        u.Push(path, operand);
      } else if (opname == "$pull") {
        u.Pull(path, operand);
      } else {
        return Status::InvalidArgument("unknown update operator: " + opname);
      }
    }
  }
  if (u.empty()) return Status::InvalidArgument("empty update");
  return u;
}

Value Update::ToSpec() const {
  Object spec;
  for (const UpdateAction& a : actions_) {
    const char* opname = "$set";
    switch (a.op) {
      case UpdateOp::kSet:
        opname = "$set";
        break;
      case UpdateOp::kUnset:
        opname = "$unset";
        break;
      case UpdateOp::kInc:
        opname = "$inc";
        break;
      case UpdateOp::kPush:
        opname = "$push";
        break;
      case UpdateOp::kPull:
        opname = "$pull";
        break;
    }
    Value& fields = spec[opname];
    if (!fields.is_object()) fields = Object{};
    // $unset parses any operand shape; serialize as true for clarity.
    fields.as_object()[a.path] =
        a.op == UpdateOp::kUnset ? Value(true) : a.operand;
  }
  return Value(std::move(spec));
}

}  // namespace quaestor::db
