#include "db/schema.h"

namespace quaestor::db {

std::string_view FieldTypeName(FieldType t) {
  switch (t) {
    case FieldType::kAny:
      return "any";
    case FieldType::kBool:
      return "bool";
    case FieldType::kInt:
      return "int";
    case FieldType::kDouble:
      return "double";
    case FieldType::kNumber:
      return "number";
    case FieldType::kString:
      return "string";
    case FieldType::kArray:
      return "array";
    case FieldType::kObject:
      return "object";
  }
  return "unknown";
}

bool ValueMatchesType(const Value& v, FieldType t) {
  switch (t) {
    case FieldType::kAny:
      return true;
    case FieldType::kBool:
      return v.is_bool();
    case FieldType::kInt:
      return v.is_int();
    case FieldType::kDouble:
      return v.is_double();
    case FieldType::kNumber:
      return v.is_number();
    case FieldType::kString:
      return v.is_string();
    case FieldType::kArray:
      return v.is_array();
    case FieldType::kObject:
      return v.is_object();
  }
  return false;
}

TableSchema& TableSchema::Field(std::string path, FieldType type,
                                bool required) {
  fields_[std::move(path)] = FieldSpec{type, required};
  return *this;
}

TableSchema& TableSchema::DisallowUnknownFields() {
  allow_unknown_ = false;
  return *this;
}

Status TableSchema::Validate(const Value& body) const {
  if (!body.is_object()) {
    return Status::InvalidArgument("document body must be an object");
  }
  for (const auto& [path, spec] : fields_) {
    const Value* v = body.Find(path);
    if (v == nullptr) {
      if (spec.required) {
        return Status::InvalidArgument("missing required field: " + path);
      }
      continue;
    }
    if (!ValueMatchesType(*v, spec.type)) {
      return Status::InvalidArgument(
          "field '" + path + "' must be " +
          std::string(FieldTypeName(spec.type)));
    }
  }
  if (!allow_unknown_) {
    for (const auto& [key, v] : body.as_object()) {
      // Unknown check applies to top-level names; declared dot-paths
      // implicitly declare their first segment.
      bool declared = false;
      for (const auto& [path, spec] : fields_) {
        if (path == key ||
            (path.size() > key.size() && path.compare(0, key.size(), key) == 0 &&
             path[key.size()] == '.')) {
          declared = true;
          break;
        }
      }
      if (!declared) {
        return Status::InvalidArgument("unknown field: " + key);
      }
    }
  }
  return Status::OK();
}

void SchemaRegistry::SetSchema(const std::string& table, TableSchema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  schemas_[table] = std::move(schema);
}

void SchemaRegistry::RemoveSchema(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  schemas_.erase(table);
}

Status SchemaRegistry::Validate(const std::string& table,
                                const Value& body) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(table);
  if (it == schemas_.end()) return Status::OK();
  return it->second.Validate(body);
}

bool SchemaRegistry::HasSchema(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return schemas_.find(table) != schemas_.end();
}

}  // namespace quaestor::db
