#ifndef QUAESTOR_DB_TABLE_H_
#define QUAESTOR_DB_TABLE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "db/update.h"

namespace quaestor::db {

/// A single document table: id → versioned document. Thread-safe. Query
/// execution is a predicate scan plus optional sort/offset/limit (the
/// paper's substrate is an aggregate-oriented store; secondary indexing is
/// orthogonal to the caching contribution).
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }

  /// Inserts a new document. Fails with AlreadyExists if the id is live.
  /// Returns the committed after-image.
  Result<Document> Insert(const std::string& id, Value body, Micros now);

  /// Inserts or fully replaces. Returns the committed after-image.
  Result<Document> Upsert(const std::string& id, Value body, Micros now);

  /// Applies a partial update. Fails with NotFound for missing/deleted ids.
  Result<Document> Apply(const std::string& id, const Update& update,
                         Micros now);

  /// Deletes a document. Returns the tombstone after-image.
  Result<Document> Delete(const std::string& id, Micros now);

  /// Point lookup of the live version.
  Result<Document> Get(const std::string& id) const;

  /// Executes a query: scan + filter + order/offset/limit.
  std::vector<Document> Execute(const Query& query) const;

  /// Number of live (non-deleted) documents.
  size_t LiveCount() const;

  /// Ids of all live documents (snapshot).
  std::vector<std::string> LiveIds() const;

  // -- Secondary indexes --

  /// Creates a multikey hash index on a dot-path (MongoDB-style: array
  /// values index every element). Built from existing documents;
  /// maintained on every write. Queries with a top-level equality on an
  /// indexed path use it instead of scanning. Idempotent.
  void CreateIndex(const std::string& path);

  void DropIndex(const std::string& path);

  bool HasIndex(const std::string& path) const;

  /// How many Execute() calls were answered via an index (diagnostics).
  uint64_t index_lookups() const;
  /// How many Execute() calls fell back to a full scan.
  uint64_t full_scans() const;

 private:
  /// value-json → ids. Multikey: array fields index each element AND the
  /// whole array.
  using Index = std::unordered_map<std::string,
                                   std::unordered_set<std::string>>;

  static void IndexKeysFor(const Value& body, const std::string& path,
                           std::vector<std::string>* out);
  void AddToIndexesLocked(const Document& doc);
  void RemoveFromIndexesLocked(const Document& doc);

  /// Finds a top-level equality predicate on an indexed path (the root
  /// itself or a conjunct of a root AND).
  const Predicate* FindIndexableEqLocked(const Predicate& p) const;

  std::string name_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Document> docs_;
  std::map<std::string, Index> indexes_;
  mutable uint64_t index_lookups_ = 0;
  mutable uint64_t full_scans_ = 0;
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_TABLE_H_
