#ifndef QUAESTOR_DB_TABLE_H_
#define QUAESTOR_DB_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "db/update.h"

namespace quaestor::db {

/// Execution-plan counters for one table (diagnostics; see Execute()).
struct TableIndexStats {
  uint64_t eq_lookups = 0;     // bucket lookups ($eq / $in conjuncts)
  uint64_t range_scans = 0;    // ordered scans ($gt/$gte/$lt/$lte/$prefix)
  uint64_t order_scans = 0;    // ORDER BY + LIMIT top-k index traversals
  uint64_t full_scans = 0;     // no usable index: predicate scan
};

/// A single document table: id → versioned document. Thread-safe: reads
/// (point lookups, query execution, introspection) take a shared lock and
/// run concurrently with each other; only writers (CRUD, index DDL) take
/// the lock exclusively. Plan counters are atomics so concurrent readers
/// never write shared state.
///
/// Query execution picks the cheapest applicable plan: (1) an equality /
/// $in bucket lookup on an ordered secondary index, (2) an ordered range
/// scan for $gt/$gte/$lt/$lte/$prefix conjuncts, (3) an ORDER BY + LIMIT
/// top-k traversal of the sort key's index with early termination, or
/// (4) a full predicate scan. Index candidates are always re-verified
/// against the complete predicate, so plans never change results.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }

  /// Inserts a new document. Fails with AlreadyExists if the id is live.
  /// Returns the committed after-image.
  Result<Document> Insert(const std::string& id, Value body, Micros now);

  /// Inserts or fully replaces. Returns the committed after-image.
  Result<Document> Upsert(const std::string& id, Value body, Micros now);

  /// Applies a partial update. Fails with NotFound for missing/deleted ids.
  Result<Document> Apply(const std::string& id, const Update& update,
                         Micros now);

  /// Deletes a document. Returns the tombstone after-image.
  Result<Document> Delete(const std::string& id, Micros now);

  /// Point lookup of the live version.
  Result<Document> Get(const std::string& id) const;

  /// Executes a query: plan selection + filter + order/offset/limit.
  std::vector<Document> Execute(const Query& query) const;

  /// Number of live (non-deleted) documents.
  size_t LiveCount() const;

  /// Ids of all live documents (snapshot).
  std::vector<std::string> LiveIds() const;

  // -- Secondary indexes --

  /// Creates a multikey ordered index on a dot-path (MongoDB-style: array
  /// values index every element and the whole array). Keys are Values
  /// ordered by Value::Compare, so equality, range, and prefix predicates
  /// as well as single-key ORDER BY can be served from it. Built from
  /// existing documents; maintained on every write. Idempotent.
  void CreateIndex(const std::string& path);

  void DropIndex(const std::string& path);

  bool HasIndex(const std::string& path) const;

  /// How many Execute() calls were answered via an index (diagnostics).
  /// Counts eq lookups + range scans + order scans.
  uint64_t index_lookups() const;
  /// How many Execute() calls fell back to a full scan.
  uint64_t full_scans() const;
  /// Per-plan counters.
  TableIndexStats index_stats() const;

 private:
  /// Ordered multikey index: value → ids holding that value at the path
  /// (arrays contribute each element and the whole array).
  struct SecondaryIndex {
    std::map<Value, std::unordered_set<std::string>, ValueLess> buckets;
    /// Live docs contributing more than one key (array values). The top-k
    /// plan requires 0: a multikey doc would appear at several positions.
    size_t multikey_docs = 0;
    /// Live docs with no value at the path. The top-k plan requires 0:
    /// absent docs sort as null (first ascending / last descending) but
    /// are invisible to the index.
    size_t absent_docs = 0;
  };

  static void IndexKeysFor(const Value& body, const std::string& path,
                           std::vector<Value>* out);
  void AddToIndexesLocked(const Document& doc);
  void RemoveFromIndexesLocked(const Document& doc);

  /// Appends live matching docs via an eq/$in bucket plan. `conjunct` must
  /// be an indexable equality. Ids reaching `out` satisfy the full query
  /// predicate.
  void ExecuteEqLocked(const Query& query, const Predicate& conjunct,
                       std::vector<const Document*>* out) const;

  /// Appends live matching docs via an ordered range scan over `path`'s
  /// index between the given bounds (either may be null = unbounded).
  void ExecuteRangeLocked(const Query& query, const std::string& path,
                          const Value* lo, bool lo_incl, const Value* hi,
                          bool hi_incl,
                          std::vector<const Document*>* out) const;

  /// Top-k via the ORDER BY path's index: emits up to offset+limit
  /// matching docs already in query order, stopping early. Returns false
  /// if the plan is inapplicable (multikey/absent docs, no index).
  bool ExecuteTopKLocked(const Query& query,
                         std::vector<const Document*>* out) const;

  std::string name_;
  /// Readers shared, writers exclusive. Ordered after the database's
  /// table-registry lock and before any cache-shard lock (see DESIGN.md
  /// "Concurrency model").
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Document> docs_;
  std::map<std::string, SecondaryIndex> indexes_;
  /// Per-plan counters, bumped relaxed under the shared lock.
  mutable std::atomic<uint64_t> eq_lookups_{0};
  mutable std::atomic<uint64_t> range_scans_{0};
  mutable std::atomic<uint64_t> order_scans_{0};
  mutable std::atomic<uint64_t> full_scans_{0};
};

}  // namespace quaestor::db

#endif  // QUAESTOR_DB_TABLE_H_
