#include "obs/metrics.h"

#include <algorithm>

namespace quaestor::obs {

std::string EncodeMetricKey(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricsSnapshot MetricsSnapshot::DiffSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [key, value] : counters) {
    auto it = earlier.counters.find(key);
    const uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    out.counters[key] = value >= base ? value - base : value;
  }
  out.gauges = gauges;
  for (const auto& [key, hist] : timers) {
    auto it = earlier.timers.find(key);
    out.timers[key] =
        it == earlier.timers.end() ? hist : hist.DiffSince(it->second);
  }
  return out;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [key, value] : other.counters) counters[key] += value;
  for (const auto& [key, value] : other.gauges) gauges[key] = value;
  for (const auto& [key, hist] : other.timers) timers[key].Merge(hist);
}

db::Value MetricsSnapshot::ToValue() const {
  db::Object root;
  db::Object counter_obj;
  for (const auto& [key, value] : counters) {
    counter_obj[key] = db::Value(static_cast<int64_t>(value));
  }
  db::Object gauge_obj;
  for (const auto& [key, value] : gauges) gauge_obj[key] = db::Value(value);
  db::Object timer_obj;
  for (const auto& [key, hist] : timers) {
    db::Object t;
    t["count"] = db::Value(static_cast<int64_t>(hist.count()));
    t["sum"] = db::Value(hist.sum());
    t["min"] = db::Value(hist.min());
    t["max"] = db::Value(hist.max());
    t["mean"] = db::Value(hist.Mean());
    t["p50"] = db::Value(hist.Quantile(0.5));
    t["p90"] = db::Value(hist.Quantile(0.9));
    t["p99"] = db::Value(hist.Quantile(0.99));
    timer_obj[key] = db::Value(std::move(t));
  }
  root["counters"] = db::Value(std::move(counter_obj));
  root["gauges"] = db::Value(std::move(gauge_obj));
  root["timers"] = db::Value(std::move(timer_obj));
  return db::Value(std::move(root));
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  const std::string key = EncodeMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const Labels& labels) {
  const std::string key = EncodeMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Timer* MetricsRegistry::GetTimer(std::string_view name,
                                 const Labels& labels) {
  const std::string key = EncodeMetricKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = timers_[key];
  if (slot == nullptr) slot = std::make_unique<Timer>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    snap.counters[key] = counter->Value();
  }
  for (const auto& [key, gauge] : gauges_) snap.gauges[key] = gauge->Value();
  for (const auto& [key, timer] : timers_) {
    snap.timers[key] = timer->SnapshotHistogram();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

}  // namespace quaestor::obs
