#ifndef QUAESTOR_OBS_TRACE_H_
#define QUAESTOR_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "db/value.h"

namespace quaestor::obs {

/// One recorded span: a named interval on the request path, optionally
/// parented to an enclosing span (parent == 0 for roots).
struct Span {
  uint64_t id = 0;
  uint64_t parent = 0;
  std::string name;
  Micros start = 0;
  Micros end = -1;  // -1 while open
  uint32_t tid = 0;  // dense per-tracer thread index (1-based)
  std::vector<std::pair<std::string, std::string>> annotations;

  bool finished() const { return end >= start; }
};

struct TracerOptions {
  /// A disabled tracer turns every call into a cheap no-op returning span
  /// id 0 — components can hold a Tracer* unconditionally.
  bool enabled = true;

  /// Span buffer bound; StartSpan drops (and counts) beyond it.
  size_t max_spans = 1 << 20;

  /// Deterministic-ids mode (default, used by the simulator): span ids are
  /// assigned sequentially from 1 in creation order, and per-thread ids
  /// are dense 1-based indices in first-use order — two runs that make
  /// identical calls on an identical clock export byte-identical JSON.
  /// When false, the id sequence starts from a wall-clock-derived base so
  /// ids from separate tracer instances are unlikely to collide.
  bool deterministic_ids = true;
};

/// A low-overhead request tracer: records per-request spans (id, parent,
/// name, start/end micros, annotations) through the client → cache
/// hierarchy → server → EBF/TTL/InvaliDB path, and exports them in the
/// Chrome trace_event JSON format (load in chrome://tracing or Perfetto).
///
/// Parentage is implicit: StartSpan(name) uses the calling thread's
/// innermost open span on this tracer as parent (a thread-local stack),
/// which matches the synchronous call nesting of the request path.
/// StartSpanWithParent pins an explicit parent and does not participate
/// in the thread-local stack (for spans ended on another thread).
///
/// Thread-safe; spans started on worker threads simply become roots of
/// their own trees (each thread has its own implicit-parent stack).
class Tracer {
 public:
  explicit Tracer(Clock* clock, TracerOptions options = TracerOptions());

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Starts a span parented to the current thread's innermost open span
  /// (0 = root). Returns the span id, or 0 if disabled/dropped.
  uint64_t StartSpan(std::string_view name);

  /// Starts a span with an explicit parent (0 = root). Does not join the
  /// implicit-parent stack.
  uint64_t StartSpanWithParent(std::string_view name, uint64_t parent);

  /// Closes a span (idempotent; id 0 is ignored).
  void EndSpan(uint64_t id);

  /// Attaches a key/value annotation to an open span.
  void Annotate(uint64_t id, std::string_view key, std::string_view value);

  /// The calling thread's innermost open span id on this tracer (0 if
  /// none) — what the next StartSpan would use as parent.
  uint64_t CurrentSpan() const;

  /// Copy of every recorded span (open spans have end == -1).
  std::vector<Span> Spans() const;

  /// Chrome trace_event export: {"displayTimeUnit":"ms","traceEvents":
  /// [{"ph":"X","name",...,"ts","dur","pid","tid","args":{...}}]}.
  /// Only finished spans are exported; span/parent ids ride in "args".
  db::Value ToChromeTrace() const;
  std::string ToChromeTraceJson() const;

  /// Drops all recorded spans (open spans too) and the drop counter.
  void Clear();

  uint64_t DroppedSpans() const;
  size_t SpanCount() const;
  bool enabled() const { return enabled_; }

 private:
  uint32_t TidForCurrentThreadLocked();

  Clock* clock_;
  const TracerOptions options_;
  const bool enabled_;

  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::unordered_map<uint64_t, size_t> open_;  // span id → spans_ index
  std::unordered_map<std::thread::id, uint32_t> tids_;
  uint64_t next_id_ = 1;
  uint32_t next_tid_ = 1;
  uint64_t dropped_ = 0;
};

/// RAII span helper, null-safe: a nullptr or disabled tracer makes every
/// operation a no-op, so instrumented code needs no branches of its own.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr && tracer_->enabled()) {
      id_ = tracer_->StartSpan(name);
    }
  }
  ~ScopedSpan() {
    if (id_ != 0) tracer_->EndSpan(id_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Annotate(std::string_view key, std::string_view value) {
    if (id_ != 0) tracer_->Annotate(id_, key, value);
  }

  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
};

}  // namespace quaestor::obs

#endif  // QUAESTOR_OBS_TRACE_H_
