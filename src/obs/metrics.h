#ifndef QUAESTOR_OBS_METRICS_H_
#define QUAESTOR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "db/value.h"

namespace quaestor::obs {

/// A small fixed label set attached to one metric instance, e.g.
/// {{"op","read"},{"cache","cdn"}}. Order-insensitive: keys are sorted
/// when the metric identity is encoded.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical flat identity of one metric instance: `name` for label-less
/// metrics, `name{k=v,k=v}` (keys sorted) otherwise. This string is the
/// key in snapshots and JSON exports, so two registries exporting the
/// same logical metric always collide on the same entry.
std::string EncodeMetricKey(std::string_view name, const Labels& labels);

/// Monotonically increasing counter. Handles returned by MetricsRegistry
/// stay valid for the registry's lifetime, so hot paths resolve the
/// handle once and then only touch the atomic.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram-backed timer/distribution. The unit is chosen by the caller;
/// the convention throughout this repo is milliseconds.
class Timer {
 public:
  void Observe(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }

  /// Folds a whole pre-aggregated histogram in (components that already
  /// keep a Histogram export through this).
  void MergeHistogram(const Histogram& h) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Merge(h);
  }

  Histogram SnapshotHistogram() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// Point-in-time copy of every metric in a registry. Plain data: safe to
/// keep, merge across runs, diff against an earlier snapshot, and export
/// as JSON (via bench_util::WriteJsonFile on ToValue()).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> timers;

  bool empty() const {
    return counters.empty() && gauges.empty() && timers.empty();
  }

  /// Counters and timers become the delta accumulated since `earlier`
  /// (absent-in-earlier entries pass through whole); gauges keep this
  /// snapshot's value (a gauge has no meaningful delta). Timer min/max
  /// are inherited from this snapshot — see Histogram::DiffSince.
  MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  /// Element-wise accumulation: counters add, timers merge, gauges take
  /// the other snapshot's value (last writer wins).
  void Merge(const MetricsSnapshot& other);

  /// JSON-exportable tree:
  ///   {"counters": {...}, "gauges": {...},
  ///    "timers": {"name": {"count","sum","min","max","mean",
  ///                        "p50","p90","p99"}}}
  db::Value ToValue() const;
  std::string ToJson() const { return ToValue().ToJson(); }
};

/// A thread-safe registry of named counters, gauges and histogram-backed
/// timers with small fixed label sets. Metric handles are created on
/// first use and live as long as the registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Timer* GetTimer(std::string_view name, const Labels& labels = {});

  // One-shot conveniences for cold paths (hot paths should cache the
  // handle from Get*).
  void Count(std::string_view name, uint64_t delta = 1) {
    GetCounter(name)->Add(delta);
  }
  void Count(std::string_view name, const Labels& labels,
             uint64_t delta = 1) {
    GetCounter(name, labels)->Add(delta);
  }
  void SetGauge(std::string_view name, double value) {
    GetGauge(name)->Set(value);
  }
  void SetGauge(std::string_view name, const Labels& labels, double value) {
    GetGauge(name, labels)->Set(value);
  }
  void Observe(std::string_view name, double value) {
    GetTimer(name)->Observe(value);
  }
  void Observe(std::string_view name, const Labels& labels, double value) {
    GetTimer(name, labels)->Observe(value);
  }

  MetricsSnapshot Snapshot() const;

  /// Drops every metric (handles from Get* become dangling — only for
  /// tests and between independent benchmark runs).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace quaestor::obs

#endif  // QUAESTOR_OBS_METRICS_H_
