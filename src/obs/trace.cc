#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace quaestor::obs {
namespace {

// Per-thread stack of open spans, tagged with the owning tracer so that
// several tracers (e.g. one per simulation in a test binary) never see
// each other's spans as parents. Entries are pushed by StartSpan and
// erased by EndSpan; the nearest-from-the-back entry for a given tracer
// is the implicit parent.
thread_local std::vector<std::pair<const Tracer*, uint64_t>> g_span_stack;

uint64_t InnermostFor(const Tracer* tracer) {
  for (auto it = g_span_stack.rbegin(); it != g_span_stack.rend(); ++it) {
    if (it->first == tracer) return it->second;
  }
  return 0;
}

void PopFor(const Tracer* tracer, uint64_t id) {
  for (auto it = g_span_stack.rbegin(); it != g_span_stack.rend(); ++it) {
    if (it->first == tracer && it->second == id) {
      g_span_stack.erase(std::next(it).base());
      return;
    }
  }
}

void DropAllFor(const Tracer* tracer) {
  g_span_stack.erase(
      std::remove_if(g_span_stack.begin(), g_span_stack.end(),
                     [tracer](const auto& e) { return e.first == tracer; }),
      g_span_stack.end());
}

}  // namespace

Tracer::Tracer(Clock* clock, TracerOptions options)
    : clock_(clock), options_(options), enabled_(options.enabled) {
  if (!options_.deterministic_ids) {
    // Spread id ranges of distinct tracer instances apart so spans from
    // two tracers can be mixed in one timeline without id collisions.
    next_id_ = (static_cast<uint64_t>(clock_->NowMicros()) << 20) | 1;
  }
}

Tracer::~Tracer() { DropAllFor(this); }

uint64_t Tracer::StartSpan(std::string_view name) {
  if (!enabled_) return 0;
  const uint64_t parent = InnermostFor(this);
  const uint64_t id = StartSpanWithParent(name, parent);
  if (id != 0) g_span_stack.emplace_back(this, id);
  return id;
}

uint64_t Tracer::StartSpanWithParent(std::string_view name, uint64_t parent) {
  if (!enabled_) return 0;
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return 0;
  }
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = std::string(name);
  span.start = now;
  span.tid = TidForCurrentThreadLocked();
  open_[span.id] = spans_.size();
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  if (!enabled_ || id == 0) return;
  const Micros now = clock_->NowMicros();
  PopFor(this, id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].end = now;
  open_.erase(it);
}

void Tracer::Annotate(uint64_t id, std::string_view key,
                      std::string_view value) {
  if (!enabled_ || id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  spans_[it->second].annotations.emplace_back(std::string(key),
                                              std::string(value));
}

uint64_t Tracer::CurrentSpan() const {
  if (!enabled_) return 0;
  return InnermostFor(this);
}

std::vector<Span> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

db::Value Tracer::ToChromeTrace() const {
  db::Array events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(spans_.size());
    for (const Span& span : spans_) {
      if (!span.finished()) continue;
      db::Object ev;
      ev["cat"] = db::Value("quaestor");
      ev["ph"] = db::Value("X");
      ev["name"] = db::Value(span.name);
      ev["pid"] = db::Value(static_cast<int64_t>(1));
      ev["tid"] = db::Value(static_cast<int64_t>(span.tid));
      ev["ts"] = db::Value(static_cast<int64_t>(span.start));
      ev["dur"] = db::Value(static_cast<int64_t>(span.end - span.start));
      db::Object args;
      args["span_id"] = db::Value(static_cast<int64_t>(span.id));
      args["parent_id"] = db::Value(static_cast<int64_t>(span.parent));
      for (const auto& [key, value] : span.annotations) {
        args[key] = db::Value(value);
      }
      ev["args"] = db::Value(std::move(args));
      events.push_back(db::Value(std::move(ev)));
    }
  }
  db::Object root;
  root["displayTimeUnit"] = db::Value("ms");
  root["traceEvents"] = db::Value(std::move(events));
  return db::Value(std::move(root));
}

std::string Tracer::ToChromeTraceJson() const {
  return ToChromeTrace().ToJson();
}

void Tracer::Clear() {
  DropAllFor(this);
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
  dropped_ = 0;
}

uint64_t Tracer::DroppedSpans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

uint32_t Tracer::TidForCurrentThreadLocked() {
  auto [it, inserted] =
      tids_.emplace(std::this_thread::get_id(), next_tid_);
  if (inserted) ++next_tid_;
  return it->second;
}

}  // namespace quaestor::obs
