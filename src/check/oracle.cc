#include "check/oracle.h"

#include <algorithm>
#include <sstream>

#include "core/query_result.h"

namespace quaestor::check {

std::string_view InvariantName(Invariant inv) {
  switch (inv) {
    case Invariant::kDeltaAtomicity:
      return "delta-atomicity";
    case Invariant::kMonotonicReads:
      return "monotonic-reads";
    case Invariant::kCausal:
      return "causal";
    case Invariant::kStrong:
      return "strong";
    case Invariant::kLiveQuerySync:
      return "live-query-sync";
  }
  return "unknown";
}

std::string Violation::ToString() const {
  std::ostringstream os;
  os << "[" << InvariantName(invariant) << "] session=" << session
     << " key=" << key << " t=" << at << "us: " << detail;
  return os.str();
}

ConsistencyOracle::ConsistencyOracle(Clock* clock, db::Database* db,
                                     OracleOptions options)
    : clock_(clock), db_(db), options_(options), max_delta_(options.delta) {}

bool ConsistencyOracle::DegradedNow() const {
  return degraded_ || clock_->NowMicros() < degraded_until_;
}

Micros ConsistencyOracle::Bound() const {
  Micros bound = max_delta_;
  if (options_.revalidate_at_cdn) bound += options_.max_purge_delay;
  if (DegradedNow()) bound += degraded_budget_;
  return bound;
}

void ConsistencyOracle::SetDelta(Micros delta) {
  options_.delta = delta;
  max_delta_ = std::max(max_delta_, delta);
}

void ConsistencyOracle::SetDegraded(bool degraded, Micros budget) {
  if (budget >= 0) degraded_budget_ = budget;
  if (degraded) {
    degraded_ = true;
  } else if (degraded_) {
    degraded_ = false;
    degraded_until_ = clock_->NowMicros() + degraded_budget_;
  }
}

void ConsistencyOracle::Report(Invariant inv, const std::string& session,
                               const std::string& key,
                               const std::string& detail) {
  Violation v;
  v.invariant = inv;
  v.session = session;
  v.key = key;
  v.at = clock_->NowMicros();
  v.detail = detail;
  violations_.push_back(std::move(v));
}

void ConsistencyOracle::ReportLiveQueryMismatch(const std::string& session,
                                                const std::string& query_key,
                                                const std::string& detail) {
  Report(Invariant::kLiveQuerySync, session, query_key, detail);
}

void ConsistencyOracle::OnCommit(const db::ChangeEvent& event) {
  const db::Document& doc = event.after;
  VersionEntry entry;
  entry.version = doc.version;
  entry.commit_time = event.commit_time;
  entry.deleted = doc.deleted;
  history_[doc.Key()].push_back(std::move(entry));
  for (auto& [qkey, tq] : queries_) {
    if (tq.query.table() == doc.table) {
      RefreshQueryEpochs(qkey, tq, event.commit_time);
    }
  }
}

void ConsistencyOracle::RefreshQueryEpochs(const std::string& query_key,
                                           TrackedQuery& tq,
                                           Micros commit_time) {
  (void)query_key;
  const std::vector<db::Document> docs = db_->Execute(tq.query);
  core::QueryResponse as_objects;
  as_objects.representation = ttl::ResultRepresentation::kObjectList;
  core::QueryResponse as_ids;
  as_ids.representation = ttl::ResultRepresentation::kIdList;
  for (const db::Document& d : docs) {
    as_objects.ids.push_back(d.Key());
    as_objects.versions.push_back(d.version);
    as_ids.ids.push_back(d.Key());
  }
  QueryEpoch epoch;
  epoch.from = commit_time;
  epoch.etag_objects = as_objects.ComputeEtag();
  epoch.etag_ids = as_ids.ComputeEtag();
  if (!tq.epochs.empty() &&
      tq.epochs.back().etag_objects == epoch.etag_objects &&
      tq.epochs.back().etag_ids == epoch.etag_ids) {
    return;  // result unchanged by this commit
  }
  tq.epochs.push_back(epoch);
}

void ConsistencyOracle::TrackQuery(const db::Query& query) {
  const std::string key = query.NormalizedKey();
  if (queries_.count(key) > 0) return;
  TrackedQuery tq;
  tq.query = query;
  queries_[key] = std::move(tq);
  RefreshQueryEpochs(key, queries_[key], clock_->NowMicros());
}

void ConsistencyOracle::OnSessionWrite(const std::string& session,
                                       const db::Document& doc) {
  SessionState& ss = sessions_[session];
  const std::string key = doc.Key();
  // Attach the session's full causal past (direct observations merged
  // with inherited dependencies) to the committed version.
  auto hit = history_.find(key);
  if (hit != history_.end()) {
    for (auto rit = hit->second.rbegin(); rit != hit->second.rend(); ++rit) {
      if (rit->version == doc.version) {
        rit->deps = ss.observed;
        for (const auto& [k, v] : ss.causal) {
          uint64_t& d = rit->deps[k];
          d = std::max(d, v);
        }
        break;
      }
    }
  }
  uint64_t& floor = ss.observed[key];
  floor = std::max(floor, doc.version);
  if (options_.check_causal) {
    uint64_t& cf = ss.causal[key];
    cf = std::max(cf, doc.version);
  }
}

void ConsistencyOracle::CheckRead(const std::string& session,
                                  const std::string& key, bool found,
                                  uint64_t version, Micros extra_bound) {
  checked_reads_++;
  if (DegradedNow()) degraded_checks_++;
  const Micros now = clock_->NowMicros();
  const Micros bound = Bound() + extra_bound;
  const Micros window_start = now - bound;
  SessionState& ss = sessions_[session];
  auto hit = history_.find(key);
  const std::vector<VersionEntry>* h =
      hit == history_.end() ? nullptr : &hit->second;

  if (!found) {
    if (h == nullptr || h->empty()) return;  // key never existed
    // Absence intervals: before the first insert, and from each delete to
    // the next re-insert. ∆-atomicity holds if the key was absent at some
    // point within [now − B, now].
    bool delta_ok = (*h)[0].commit_time >= window_start;
    for (size_t i = 0; i < h->size() && !delta_ok; ++i) {
      if (!(*h)[i].deleted) continue;
      const bool last = i + 1 == h->size();
      if ((*h)[i].commit_time <= now &&
          (last || (*h)[i + 1].commit_time >= window_start)) {
        delta_ok = true;
      }
    }
    if (!delta_ok) {
      Report(Invariant::kDeltaAtomicity, session, key,
             "read NotFound, but the key existed throughout the entire "
             "staleness window");
      return;
    }
    // Session monotonicity: the absence must be at least as new as the
    // session's floor — i.e. some qualifying tombstone at or above it.
    const auto check_floor = [&](uint64_t floor_version, Invariant inv,
                                 uint64_t* merge_to) {
      bool ok = false;
      for (size_t i = 0; i < h->size(); ++i) {
        const VersionEntry& e = (*h)[i];
        if (!e.deleted || e.version < floor_version) continue;
        const bool last = i + 1 == h->size();
        if (e.commit_time <= now &&
            (last || (*h)[i + 1].commit_time >= window_start)) {
          ok = true;
          // Merge conservatively to the earliest consistent tombstone.
          *merge_to = e.version;
          break;
        }
      }
      if (!ok) {
        Report(inv, session, key,
               "read NotFound after having observed a live version the "
               "staleness window no longer excuses");
      }
      return ok;
    };
    auto fit = ss.observed.find(key);
    if (fit != ss.observed.end()) {
      uint64_t merged = fit->second;
      if (check_floor(fit->second, Invariant::kMonotonicReads, &merged)) {
        fit->second = std::max(fit->second, merged);
      }
    }
    if (options_.check_causal) {
      auto cit = ss.causal.find(key);
      if (cit != ss.causal.end() &&
          (fit == ss.observed.end() || cit->second > fit->second)) {
        uint64_t merged = cit->second;
        if (check_floor(cit->second, Invariant::kCausal, &merged)) {
          cit->second = std::max(cit->second, merged);
        }
      }
    }
    if (options_.check_strong && !h->back().deleted) {
      Report(Invariant::kStrong, session, key,
             "read NotFound, but the latest committed state is a live "
             "version");
    }
    return;
  }

  // Found: locate the returned version in the history.
  size_t idx = h == nullptr ? 0 : h->size();
  if (h != nullptr) {
    for (size_t i = 0; i < h->size(); ++i) {
      if ((*h)[i].version == version) {
        idx = i;
        break;
      }
    }
  }
  if (h == nullptr || idx == h->size()) {
    Report(Invariant::kDeltaAtomicity, session, key,
           "returned version " + std::to_string(version) +
               " never appears in the write history");
    return;
  }
  const VersionEntry& entry = (*h)[idx];
  if (entry.deleted) {
    Report(Invariant::kDeltaAtomicity, session, key,
           "returned version " + std::to_string(version) +
               " is a tombstone");
    return;
  }
  const bool last = idx + 1 == h->size();
  if (!last && (*h)[idx + 1].commit_time < window_start) {
    const Micros staleness = now - (*h)[idx + 1].commit_time;
    Report(Invariant::kDeltaAtomicity, session, key,
           "version " + std::to_string(version) + " was superseded " +
               std::to_string(staleness) + "us ago (bound " +
               std::to_string(bound) + "us)");
  }
  // A flagged stale-shed response (extra_bound > 0) is an explicit,
  // advertised downgrade to bounded staleness: session-order invariants
  // are not asserted for it, but the floor stands, so the next unflagged
  // read is still held to the session's history.
  uint64_t& floor = ss.observed[key];
  if (version < floor) {
    if (extra_bound == 0) {
      Report(Invariant::kMonotonicReads, session, key,
             "version regressed from " + std::to_string(floor) + " to " +
                 std::to_string(version));
    }
  } else if (options_.check_causal && extra_bound == 0) {
    auto cit = ss.causal.find(key);
    if (cit != ss.causal.end() && version < cit->second) {
      Report(Invariant::kCausal, session, key,
             "version " + std::to_string(version) +
                 " is older than causally required version " +
                 std::to_string(cit->second));
    }
  }
  if (options_.check_strong && !last) {
    Report(Invariant::kStrong, session, key,
           "version " + std::to_string(version) +
               " was already superseded at read time");
  }
  floor = std::max(floor, version);
  if (options_.check_causal) {
    uint64_t& cf = ss.causal[key];
    cf = std::max(cf, version);
    for (const auto& [k, v] : entry.deps) {
      uint64_t& dep_floor = ss.causal[k];
      dep_floor = std::max(dep_floor, v);
    }
  }
}

void ConsistencyOracle::CheckQuery(const std::string& session,
                                   const db::Query& query, bool found,
                                   uint64_t etag,
                                   ttl::ResultRepresentation representation,
                                   Micros extra_bound) {
  checked_queries_++;
  if (!found) return;  // a failed fetch makes no freshness claim
  if (DegradedNow()) degraded_checks_++;
  const Micros now = clock_->NowMicros();
  const Micros window_start = now - (Bound() + extra_bound);
  const std::string qkey = query.NormalizedKey();
  auto it = queries_.find(qkey);
  if (it == queries_.end()) return;  // untracked
  TrackedQuery& tq = it->second;
  SessionState& ss = sessions_[session];

  std::vector<size_t> matches;
  for (size_t i = 0; i < tq.epochs.size(); ++i) {
    const uint64_t expect =
        representation == ttl::ResultRepresentation::kObjectList
            ? tq.epochs[i].etag_objects
            : tq.epochs[i].etag_ids;
    if (expect == etag) matches.push_back(i);
  }
  if (matches.empty()) {
    Report(Invariant::kDeltaAtomicity, session, qkey,
           "result etag matches no result state in history");
    return;
  }
  const auto epoch_live = [&](size_t i) {
    const bool is_last = i + 1 == tq.epochs.size();
    return tq.epochs[i].from <= now &&
           (is_last || tq.epochs[i + 1].from >= window_start);
  };
  bool delta_ok = false;
  for (size_t i : matches) {
    if (epoch_live(i)) {
      delta_ok = true;
      break;
    }
  }
  if (!delta_ok) {
    Report(Invariant::kDeltaAtomicity, session, qkey,
           "result reflects a state superseded before the staleness "
           "window");
  }
  size_t& floor = ss.observed_epoch[qkey];
  const size_t best = matches.back();
  if (best < floor) {
    // Flagged stale-shed responses (extra_bound > 0) advertise bounded
    // staleness only — no session-order claim — so a regression is not a
    // violation; the floor stands for the next unflagged result.
    if (extra_bound == 0) {
      Report(Invariant::kMonotonicReads, session, qkey,
             "result regressed to epoch " + std::to_string(best) +
                 " after epoch " + std::to_string(floor));
    }
  } else {
    // Merge conservatively: the earliest matching, window-consistent
    // epoch at or above the current floor.
    for (size_t i : matches) {
      if (i >= floor && epoch_live(i)) {
        floor = i;
        break;
      }
    }
  }
  if (options_.check_strong && best + 1 != tq.epochs.size()) {
    Report(Invariant::kStrong, session, qkey,
           "result epoch " + std::to_string(best) +
               " was already superseded at read time");
  }
}

}  // namespace quaestor::check
