#ifndef QUAESTOR_CHECK_ORACLE_H_
#define QUAESTOR_CHECK_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "db/database.h"
#include "db/document.h"
#include "db/query.h"
#include "ttl/representation.h"

namespace quaestor::check {

/// The level-specific invariants the oracle can assert (Figure 4).
enum class Invariant {
  /// ∆-atomicity (Theorem 1): a read never returns a version that stopped
  /// being current more than B before the read, where B = max ∆ in force
  /// (+ the maximum purge delay when revalidations are served at the CDN).
  kDeltaAtomicity,
  /// Per-session monotonicity: versions never regress below what the
  /// session has already observed (covers read-your-writes: own writes
  /// raise the floor). For query results, epochs never regress.
  kMonotonicReads,
  /// Reads reflect the session's causal past: observing a version pulls
  /// in the writer session's observations at write time (transitively).
  kCausal,
  /// Strong consistency: reads return the latest committed state.
  kStrong,
  /// A LiveQuery snapshot diverged from the database's current result
  /// (self-maintaining streams of §3.2 are synchronous in-process).
  kLiveQuerySync,
};

std::string_view InvariantName(Invariant inv);

/// One detected inconsistency.
struct Violation {
  Invariant invariant = Invariant::kDeltaAtomicity;
  std::string session;
  std::string key;  // record key ("table/id") or query key ("q:...")
  Micros at = 0;
  std::string detail;

  std::string ToString() const;
};

/// Oracle configuration.
struct OracleOptions {
  /// ∆ currently in force (the client EBF refresh interval). Changeable
  /// mid-run via SetDelta; the staleness bound uses the maximum ever set.
  Micros delta = SecondsToMicros(1.0);
  /// Revalidations may be answered by the invalidation-based cache, which
  /// lags purges by up to this much (∆_invalidation). Only added to the
  /// staleness bound when `revalidate_at_cdn` is true.
  Micros max_purge_delay = 0;
  bool revalidate_at_cdn = false;
  /// Which opt-in invariants to assert on top of the always-on
  /// ∆-atomicity + monotonic-reads pair.
  bool check_causal = false;
  bool check_strong = false;
};

/// A deterministic consistency oracle: records the global write history
/// (version per key, stamped by the simulated clock) by listening to the
/// database change stream, and checks every client read against the
/// invariant of the configured consistency level. Query results are
/// tracked as epochs — one per distinct result state — recomputed from
/// the database whenever a commit touches the query's table.
///
/// Sound by construction: it only reports behaviours the architecture
/// genuinely forbids, so a reported violation is a real bug (or an
/// injected fault). Single-threaded like the simulation it observes.
class ConsistencyOracle {
 public:
  ConsistencyOracle(Clock* clock, db::Database* db, OracleOptions options);

  ConsistencyOracle(const ConsistencyOracle&) = delete;
  ConsistencyOracle& operator=(const ConsistencyOracle&) = delete;

  /// Wire into the database during setup:
  ///   db->AddChangeListener([&o](const db::ChangeEvent& ev) {
  ///     o.OnCommit(ev); });
  void OnCommit(const db::ChangeEvent& event);

  /// Starts tracking a query's result epochs (call before the run; the
  /// current database state becomes epoch 0).
  void TrackQuery(const db::Query& query);

  /// Attributes a committed write to a session: raises the session's
  /// observed floor and attaches the session's current observations as
  /// the write's causal dependencies.
  void OnSessionWrite(const std::string& session, const db::Document& doc);

  /// Checks one record read. `found` is whether the read succeeded;
  /// `version` is the returned document version (ignored when !found).
  /// `extra_bound` widens the staleness window for THIS check only — used
  /// for stale-shed responses, which arrive flagged with their measured
  /// age (an unflagged response never gets the wider window, so silent
  /// staleness is still caught). A flagged check also suspends the
  /// session-order assertions (monotonic reads / causal): serving a
  /// bounded-stale retained copy under overload is an explicit, marked
  /// downgrade. The session floor is left standing either way.
  void CheckRead(const std::string& session, const std::string& key,
                 bool found, uint64_t version, Micros extra_bound = 0);

  /// Checks one query read against the tracked epochs. `extra_bound` as
  /// in CheckRead.
  void CheckQuery(const std::string& session, const db::Query& query,
                  bool found, uint64_t etag,
                  ttl::ResultRepresentation representation,
                  Micros extra_bound = 0);

  /// Records an externally detected LiveQuery divergence.
  void ReportLiveQueryMismatch(const std::string& session,
                               const std::string& query_key,
                               const std::string& detail);

  /// ∆ changed mid-run (the staleness bound keeps the maximum).
  void SetDelta(Micros delta);

  /// Degraded-mode bracket: while the invalidation pipeline is unhealthy
  /// the architecture only promises the degraded staleness budget on top
  /// of B (TTL-capped expiration caching), so the oracle widens its bound
  /// by `budget` instead of asserting exact freshness. On recovery the
  /// widening persists for one extra budget (copies issued while degraded
  /// outlive the transition), then checks are strict again. `budget` < 0
  /// keeps the previously configured value.
  void SetDegraded(bool degraded, Micros budget = -1);

  /// The staleness bound B currently enforced (includes the degraded
  /// widening while it is active).
  Micros Bound() const;

  const std::vector<Violation>& violations() const { return violations_; }
  uint64_t checked_reads() const { return checked_reads_; }
  uint64_t checked_queries() const { return checked_queries_; }
  /// Checks performed under the widened (degraded) bound.
  uint64_t degraded_checks() const { return degraded_checks_; }

 private:
  struct VersionEntry {
    uint64_t version = 0;
    Micros commit_time = 0;
    bool deleted = false;
    /// Causal dependencies: the writer session's observed floors at write
    /// time (empty for unattributed writes, e.g. the initial load).
    std::map<std::string, uint64_t> deps;
  };

  struct QueryEpoch {
    Micros from = 0;  // commit time at which this result became current
    uint64_t etag_objects = 0;
    uint64_t etag_ids = 0;
  };

  struct TrackedQuery {
    db::Query query;
    std::vector<QueryEpoch> epochs;
  };

  struct SessionState {
    /// Record key → lowest version this session may still observe
    /// (raised by direct reads and own writes).
    std::map<std::string, uint64_t> observed;
    /// Causal floors: `observed` plus dependencies inherited from the
    /// writers of observed versions. Only maintained with check_causal.
    std::map<std::string, uint64_t> causal;
    /// Query key → lowest epoch index this session may still observe.
    std::map<std::string, size_t> observed_epoch;
  };

  void Report(Invariant inv, const std::string& session,
              const std::string& key, const std::string& detail);

  /// True while the degraded widening applies (degraded, or within the
  /// post-recovery grace window).
  bool DegradedNow() const;

  /// Recomputes a tracked query's result etags and appends a new epoch if
  /// the result changed.
  void RefreshQueryEpochs(const std::string& query_key, TrackedQuery& tq,
                          Micros commit_time);

  Clock* clock_;
  db::Database* db_;
  OracleOptions options_;
  Micros max_delta_;

  std::unordered_map<std::string, std::vector<VersionEntry>> history_;
  std::unordered_map<std::string, TrackedQuery> queries_;
  std::unordered_map<std::string, SessionState> sessions_;

  std::vector<Violation> violations_;
  uint64_t checked_reads_ = 0;
  uint64_t checked_queries_ = 0;

  bool degraded_ = false;
  Micros degraded_budget_ = 0;
  Micros degraded_until_ = 0;  // post-recovery grace window end
  uint64_t degraded_checks_ = 0;
};

}  // namespace quaestor::check

#endif  // QUAESTOR_CHECK_ORACLE_H_
