#include "check/fuzzer.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "client/live_query.h"
#include "client/transaction.h"
#include "common/random.h"
#include "core/server.h"
#include "core/streams.h"
#include "db/database.h"
#include "db/update.h"
#include "db/value.h"
#include "sim/event_queue.h"
#include "webcache/web_cache.h"

namespace quaestor::check {
namespace {

constexpr char kTable[] = "items";

std::string KeyId(size_t key_index) {
  std::ostringstream os;
  os << "k" << (key_index < 10 ? "0" : "") << key_index;
  return os.str();
}

db::Value MakeBody(size_t group, int value) {
  db::Object body;
  body["g"] = db::Value(static_cast<int64_t>(group));
  body["v"] = db::Value(value);
  return db::Value(std::move(body));
}

db::Query GroupQuery(size_t group) {
  return db::Query(kTable, db::Predicate::Compare(
                               "g", db::CompareOp::kEq,
                               db::Value(static_cast<int64_t>(group))));
}

/// Everything one schedule execution needs, built fresh per run so replays
/// and shrink probes are independent. Single-threaded InvaliDB keeps the
/// whole world deterministic under the event queue's FIFO tie-breaking.
struct World {
  explicit World(const FuzzOptions& opts)
      : options(opts),
        clock(0),
        events(&clock),
        db(&clock),
        cdn(&clock),
        purge_delay(opts.cdn_purge_delay) {
    core::ServerOptions server_options;
    server_options.invalidb_options.threaded = false;
    server_options.fault_disable_ebf_read_tracking =
        opts.fault_disable_ebf_report;
    server = std::make_unique<core::QuaestorServer>(&clock, &db,
                                                    server_options);
    // Purges reach the CDN after the (mutable) invalidation delay.
    server->AddPurgeTarget([this](const std::string& key) {
      events.ScheduleAfter(purge_delay,
                           [this, key] { cdn.Purge(key); });
    });

    OracleOptions oracle_options;
    oracle_options.delta = opts.delta;
    oracle_options.max_purge_delay = opts.max_purge_delay;
    oracle_options.revalidate_at_cdn = opts.revalidate_at_cdn;
    oracle_options.check_causal =
        opts.level == client::ConsistencyLevel::kCausal;
    oracle_options.check_strong =
        opts.level == client::ConsistencyLevel::kStrong;
    oracle = std::make_unique<ConsistencyOracle>(&clock, &db,
                                                 oracle_options);
    // After the server's own listener, so the oracle sees a world where
    // the commit's invalidations have already been dispatched.
    db.AddChangeListener(
        [this](const db::ChangeEvent& ev) { oracle->OnCommit(ev); });

    for (size_t g = 0; g < opts.num_groups; ++g) {
      queries.push_back(GroupQuery(g));
    }

    client::ClientOptions client_options;
    client_options.ebf_refresh_interval = opts.delta;
    client_options.consistency = opts.level;
    client_options.revalidate_at_cdn = opts.revalidate_at_cdn;
    client_options.fault_skip_ebf_refresh = opts.fault_skip_ebf_refresh;
    for (size_t s = 0; s < opts.num_sessions; ++s) {
      Session session;
      session.name = "s" + std::to_string(s);
      session.cache = std::make_unique<webcache::ExpirationCache>(&clock);
      session.client = std::make_unique<client::QuaestorClient>(
          &clock, server.get(), session.cache.get(), &cdn, client_options);
      sessions.push_back(std::move(session));
    }
  }

  /// Initial state + subscriptions; runs at simulated t = 0.
  void Prepare() {
    for (size_t i = 0; i < options.num_keys; ++i) {
      server->Insert(kTable, KeyId(i), MakeBody(i % options.num_groups, 0));
    }
    for (const db::Query& q : queries) {
      server->RegisterQueryShape(q);
      oracle->TrackQuery(q);
    }
    for (Session& s : sessions) s.client->Connect();
    hub = std::make_unique<core::ChangeStreamHub>(server.get());
    live = std::make_unique<client::LiveQuery>(hub.get(), server.get(),
                                               queries[0]);
  }

  void Execute(const FuzzOp& op);

  struct Session {
    std::string name;
    std::unique_ptr<webcache::ExpirationCache> cache;
    std::unique_ptr<client::QuaestorClient> client;
  };

  FuzzOptions options;
  SimulatedClock clock;
  sim::EventQueue events;
  db::Database db;
  webcache::InvalidationCache cdn;
  Micros purge_delay;
  std::unique_ptr<core::QuaestorServer> server;
  std::unique_ptr<ConsistencyOracle> oracle;
  std::vector<db::Query> queries;
  std::vector<Session> sessions;
  std::unique_ptr<core::ChangeStreamHub> hub;
  std::unique_ptr<client::LiveQuery> live;
};

void World::Execute(const FuzzOp& op) {
  Session& s = sessions[op.session % sessions.size()];
  const size_t key_index = op.key_index % options.num_keys;
  const std::string id = KeyId(key_index);
  const std::string key = std::string(kTable) + "/" + id;
  switch (op.kind) {
    case FuzzOpKind::kRead: {
      client::ReadResult rr = s.client->Read(kTable, id);
      oracle->CheckRead(s.name, key, rr.status.ok(), rr.version);
      break;
    }
    case FuzzOpKind::kQuery: {
      const db::Query& q = queries[op.query_index % queries.size()];
      client::QueryResult qr = s.client->ExecuteQuery(q);
      oracle->CheckQuery(s.name, q, qr.status.ok(), qr.etag,
                         qr.representation);
      break;
    }
    case FuzzOpKind::kInsert: {
      // Re-insert under a deterministic fresh-or-recycled id: deleted keys
      // come back, which exercises tombstone handling end to end.
      Result<db::Document> wr = s.client->Insert(
          kTable, id, MakeBody(op.value % options.num_groups, op.value));
      if (wr.ok()) oracle->OnSessionWrite(s.name, wr.value());
      break;
    }
    case FuzzOpKind::kUpdate: {
      db::Update u;
      u.Set("v", db::Value(op.value));
      if (op.value % 3 == 0) {
        // Group churn: moves the record between query results.
        u.Set("g", db::Value(static_cast<int64_t>(
                       static_cast<size_t>(op.value) % options.num_groups)));
      }
      Result<db::Document> wr = s.client->Update(kTable, id, u);
      if (wr.ok()) oracle->OnSessionWrite(s.name, wr.value());
      break;
    }
    case FuzzOpKind::kDelete: {
      Result<db::Document> wr = s.client->Delete(kTable, id);
      if (wr.ok()) oracle->OnSessionWrite(s.name, wr.value());
      break;
    }
    case FuzzOpKind::kTxn: {
      const std::string id2 =
          KeyId((key_index + 1 + static_cast<size_t>(op.value) %
                                     (options.num_keys - 1)) %
                options.num_keys);
      client::ClientTransaction txn(s.client.get());
      client::ReadResult rr = txn.Read(kTable, id);
      oracle->CheckRead(s.name, key, rr.status.ok(), rr.version);
      txn.Update(kTable, id2, db::Update().Set("v", db::Value(op.value)));
      Result<core::CommitResult> cr = txn.Commit();
      if (cr.ok()) {
        for (const db::Document& doc : cr.value().applied) {
          oracle->OnSessionWrite(s.name, doc);
        }
      }
      break;
    }
    case FuzzOpKind::kEvictCache: {
      std::vector<std::string> keys = s.cache->Keys();
      std::sort(keys.begin(), keys.end());
      if (!keys.empty()) {
        s.cache->Remove(keys[static_cast<size_t>(op.value) % keys.size()]);
      }
      break;
    }
    case FuzzOpKind::kDelayPurges:
      purge_delay = op.new_purge_delay;
      break;
    case FuzzOpKind::kChangeDelta:
      for (Session& each : sessions) {
        each.client->set_ebf_refresh_interval(op.new_delta);
      }
      oracle->SetDelta(op.new_delta);
      break;
    case FuzzOpKind::kLiveCheck: {
      std::vector<std::string> got = live->Ids();
      std::sort(got.begin(), got.end());
      std::vector<std::string> want;
      for (const db::Document& d : db.Execute(queries[0])) {
        want.push_back(d.id);
      }
      std::sort(want.begin(), want.end());
      if (got != want) {
        std::ostringstream os;
        os << "live result {";
        for (const std::string& g : got) os << g << ",";
        os << "} != database result {";
        for (const std::string& w : want) os << w << ",";
        os << "}";
        oracle->ReportLiveQueryMismatch(s.name, queries[0].NormalizedKey(),
                                        os.str());
      }
      break;
    }
    case FuzzOpKind::kResize:
      // Elastic scale-out mid-schedule. The synchronous resize must be
      // invisible to every consistency property the oracle checks — the
      // fuzz world runs with degradation disabled and a strict ∆, so any
      // lost or duplicated notification surfaces as a violation.
      server->ResizeInvalidb(1 + static_cast<size_t>(op.value) % 3,
                             1 + op.key_index % 3);
      break;
  }
}

}  // namespace

std::string_view FuzzOpKindName(FuzzOpKind kind) {
  switch (kind) {
    case FuzzOpKind::kRead:
      return "read";
    case FuzzOpKind::kQuery:
      return "query";
    case FuzzOpKind::kInsert:
      return "insert";
    case FuzzOpKind::kUpdate:
      return "update";
    case FuzzOpKind::kDelete:
      return "delete";
    case FuzzOpKind::kTxn:
      return "txn";
    case FuzzOpKind::kEvictCache:
      return "evict";
    case FuzzOpKind::kDelayPurges:
      return "delay-purges";
    case FuzzOpKind::kChangeDelta:
      return "change-delta";
    case FuzzOpKind::kLiveCheck:
      return "live-check";
    case FuzzOpKind::kResize:
      return "resize";
  }
  return "unknown";
}

std::vector<FuzzOp> GenerateSchedule(const FuzzOptions& options) {
  Rng rng(options.seed);
  std::vector<FuzzOp> schedule;
  schedule.reserve(options.num_ops);
  for (size_t i = 0; i < options.num_ops; ++i) {
    FuzzOp op;
    const double roll = rng.NextDouble();
    if (roll < 0.35) {
      op.kind = FuzzOpKind::kRead;
    } else if (roll < 0.50) {
      op.kind = FuzzOpKind::kQuery;
    } else if (roll < 0.58) {
      op.kind = FuzzOpKind::kInsert;
    } else if (roll < 0.70) {
      op.kind = FuzzOpKind::kUpdate;
    } else if (roll < 0.75) {
      op.kind = FuzzOpKind::kDelete;
    } else if (roll < 0.83) {
      op.kind = FuzzOpKind::kTxn;
    } else if (roll < 0.88) {
      op.kind = FuzzOpKind::kEvictCache;
    } else if (roll < 0.92) {
      op.kind = FuzzOpKind::kDelayPurges;
    } else if (roll < 0.95) {
      op.kind = FuzzOpKind::kChangeDelta;
    } else if (roll < 0.975) {
      op.kind = FuzzOpKind::kLiveCheck;
    } else {
      op.kind = FuzzOpKind::kResize;
    }
    op.session = rng.NextUint64(options.num_sessions);
    op.key_index = rng.NextUint64(options.num_keys);
    op.query_index = rng.NextUint64(options.num_groups);
    op.value = static_cast<int>(rng.NextUint64(1000));
    op.new_purge_delay = rng.NextUint64(
        static_cast<uint64_t>(options.max_purge_delay) + 1);
    // Between ∆/2 and 1.5∆ — crossing the initial ∆ in both directions.
    op.new_delta = options.delta / 2 +
                   static_cast<Micros>(rng.NextUint64(
                       static_cast<uint64_t>(options.delta) + 1));
    // Mostly tight interleavings (well inside ∆), with occasional long
    // gaps that let TTLs and the refresh interval expire.
    const double gap_roll = rng.NextDouble();
    uint64_t span;
    if (gap_roll < 0.70) {
      span = static_cast<uint64_t>(options.delta) / 4;
    } else if (gap_roll < 0.90) {
      span = static_cast<uint64_t>(options.delta);
    } else {
      span = static_cast<uint64_t>(options.delta) * 2;
    }
    op.gap = static_cast<Micros>(rng.NextUint64(span + 1));
    schedule.push_back(op);
  }
  return schedule;
}

FuzzReport RunSchedule(const FuzzOptions& options,
                       const std::vector<FuzzOp>& schedule) {
  World world(options);
  world.Prepare();
  Micros at = 0;
  for (const FuzzOp& op : schedule) {
    at += op.gap;
    world.events.Schedule(at, [&world, &op] { world.Execute(op); });
  }
  // Margin so trailing purges and TTLs settle inside the simulation.
  world.events.RunUntil(at + options.max_purge_delay +
                        4 * options.delta + 1);
  FuzzReport report;
  report.violations = world.oracle->violations();
  report.ok = report.violations.empty();
  report.checked_reads = world.oracle->checked_reads();
  report.checked_queries = world.oracle->checked_queries();
  if (!report.ok) report.trace = schedule;
  return report;
}

namespace {

/// ddmin-style shrinking: find the shortest failing prefix by bisection,
/// then repeatedly drop chunks (halving the chunk size down to single
/// ops) as long as the reduced schedule still fails. Budgeted — every
/// probe is a full simulated run.
std::vector<FuzzOp> Shrink(const FuzzOptions& options,
                           std::vector<FuzzOp> schedule) {
  size_t budget = 200;
  const auto fails = [&](const std::vector<FuzzOp>& s) {
    if (s.empty() || budget == 0) return false;
    --budget;
    return !RunSchedule(options, s).ok;
  };

  // Phase 1: shortest failing prefix. Failures are monotone in practice
  // (extra trailing ops never mask an already-reported violation).
  size_t lo = 1, hi = schedule.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    std::vector<FuzzOp> prefix(schedule.begin(),
                               schedule.begin() + static_cast<long>(mid));
    if (fails(prefix)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<FuzzOp> current(schedule.begin(),
                              schedule.begin() + static_cast<long>(hi));
  if (!fails(current)) return schedule;  // non-monotone; keep the original

  // Phase 2: chunk removal. Removing an op keeps the later ops' gaps, so
  // timings shift — the run decides whether the violation survives.
  for (size_t chunk = std::max<size_t>(1, current.size() / 2);;
       chunk /= 2) {
    for (size_t start = 0; start + chunk <= current.size();) {
      std::vector<FuzzOp> candidate;
      candidate.reserve(current.size() - chunk);
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<long>(start));
      candidate.insert(candidate.end(),
                       current.begin() + static_cast<long>(start + chunk),
                       current.end());
      if (fails(candidate)) {
        current = std::move(candidate);
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) break;
  }
  return current;
}

}  // namespace

FuzzReport FuzzAndShrink(const FuzzOptions& options) {
  const std::vector<FuzzOp> schedule = GenerateSchedule(options);
  FuzzReport report = RunSchedule(options, schedule);
  if (report.ok) return report;
  const std::vector<FuzzOp> minimal = Shrink(options, schedule);
  FuzzReport final_report = RunSchedule(options, minimal);
  if (final_report.ok) {
    // Shrinking probes are budgeted; in the (rare) case the final re-run
    // no longer fails, fall back to the original failing schedule.
    report.trace = schedule;
    return report;
  }
  final_report.trace = minimal;
  return final_report;
}

std::string TraceToString(const std::vector<FuzzOp>& schedule) {
  std::ostringstream os;
  Micros at = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const FuzzOp& op = schedule[i];
    at += op.gap;
    os << "#" << i << " t=" << at << "us +" << op.gap << "us s"
       << op.session << " " << FuzzOpKindName(op.kind);
    switch (op.kind) {
      case FuzzOpKind::kRead:
      case FuzzOpKind::kDelete:
        os << " " << KeyId(op.key_index);
        break;
      case FuzzOpKind::kInsert:
      case FuzzOpKind::kUpdate:
        os << " " << KeyId(op.key_index) << " v=" << op.value;
        break;
      case FuzzOpKind::kTxn:
        os << " read " << KeyId(op.key_index) << " v=" << op.value;
        break;
      case FuzzOpKind::kQuery:
        os << " q" << op.query_index;
        break;
      case FuzzOpKind::kEvictCache:
        os << " slot " << op.value;
        break;
      case FuzzOpKind::kDelayPurges:
        os << " -> " << op.new_purge_delay << "us";
        break;
      case FuzzOpKind::kChangeDelta:
        os << " -> " << op.new_delta << "us";
        break;
      case FuzzOpKind::kLiveCheck:
        break;
      case FuzzOpKind::kResize:
        os << " -> " << (1 + static_cast<size_t>(op.value) % 3) << "x"
           << (1 + op.key_index % 3);
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace quaestor::check
