#ifndef QUAESTOR_CHECK_FUZZER_H_
#define QUAESTOR_CHECK_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "client/client.h"
#include "common/clock.h"

namespace quaestor::check {

/// What one fuzzed step does.
enum class FuzzOpKind {
  kRead,         // session reads a record through the cached path
  kQuery,        // session executes a query through the cached path
  kInsert,       // session inserts a record
  kUpdate,       // session updates a record (value and/or group churn)
  kDelete,       // session deletes a record
  kTxn,          // session runs a small optimistic transaction
  kEvictCache,   // injected fault: evict an entry from a session's cache
  kDelayPurges,  // injected fault: change the CDN purge delivery delay
  kChangeDelta,  // injected event: reconfigure ∆ for every session
  kLiveCheck,    // assert the LiveQuery snapshot matches the database
  kResize,       // live-repartition the server's InvaliDB matching grid
};

std::string_view FuzzOpKindName(FuzzOpKind kind);

/// One step of a fuzzed schedule. Generated fully upfront from the seed,
/// so a schedule replays byte-identically and shrinks by removing ops.
struct FuzzOp {
  FuzzOpKind kind = FuzzOpKind::kRead;
  size_t session = 0;
  size_t key_index = 0;    // record ops / eviction victim pick
  size_t query_index = 0;  // query ops
  Micros gap = 0;          // simulated time between the previous op and this
  int value = 0;           // payload discriminator (also drives group churn)
  Micros new_purge_delay = 0;  // kDelayPurges
  Micros new_delta = 0;        // kChangeDelta
};

/// Fuzzer configuration. Defaults keep one run fast enough for a seed
/// sweep under ctest while still exercising EBF refreshes, invalidation
/// races and cache interleavings.
struct FuzzOptions {
  uint64_t seed = 1;
  size_t num_sessions = 4;
  size_t num_ops = 300;
  size_t num_keys = 12;
  size_t num_groups = 3;  // query predicates select on id % num_groups
  client::ConsistencyLevel level = client::ConsistencyLevel::kDeltaAtomic;
  bool revalidate_at_cdn = false;

  /// ∆ (EBF refresh interval) at run start. Deliberately much shorter
  /// than the server's minimum TTL so stale cache copies outlive ∆ and
  /// only the EBF protocol keeps reads within the bound.
  Micros delta = MillisToMicros(200.0);
  /// ∆_invalidation at run start; kDelayPurges moves it within
  /// [0, max_purge_delay].
  Micros cdn_purge_delay = MillisToMicros(20.0);
  Micros max_purge_delay = MillisToMicros(100.0);

  // Fault injection (the oracle must catch these):
  bool fault_skip_ebf_refresh = false;     // client never renews its EBF
  bool fault_disable_ebf_report = false;   // server stops tracking TTLs
};

/// Outcome of one schedule execution (or a full fuzz-and-shrink run).
struct FuzzReport {
  bool ok = true;
  std::vector<Violation> violations;
  /// The schedule that produced the violations — shrunk to a (locally)
  /// minimal failing trace by FuzzAndShrink.
  std::vector<FuzzOp> trace;
  uint64_t checked_reads = 0;
  uint64_t checked_queries = 0;
};

/// Derives the full op schedule from the seed (pure function).
std::vector<FuzzOp> GenerateSchedule(const FuzzOptions& options);

/// Builds a fresh world (simulated clock, event queue, database, server,
/// CDN, one client session per slot, a LiveQuery, the oracle) and drives
/// the schedule through it. Deterministic for a given (options, schedule).
FuzzReport RunSchedule(const FuzzOptions& options,
                       const std::vector<FuzzOp>& schedule);

/// Generates the seed's schedule, runs it, and — on violation — shrinks
/// the schedule to a locally minimal failing trace (prefix truncation
/// followed by ddmin-style chunk removal).
FuzzReport FuzzAndShrink(const FuzzOptions& options);

/// Human-readable trace for reproduction.
std::string TraceToString(const std::vector<FuzzOp>& schedule);

}  // namespace quaestor::check

#endif  // QUAESTOR_CHECK_FUZZER_H_
