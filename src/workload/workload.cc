#include "workload/workload.h"

#include <algorithm>
#include <cassert>

namespace quaestor::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options, uint64_t seed)
    : options_(options),
      rng_(seed),
      num_groups_(std::max<size_t>(
          1, options.docs_per_table / std::max<size_t>(1,
                                                       options.docs_per_query))),
      table_dist_(std::max<size_t>(1, options.num_tables),
                  options.zipf_theta),
      key_dist_(std::max<size_t>(1, options.docs_per_table),
                options.zipf_theta),
      query_dist_(std::max<size_t>(1, options.queries_per_table),
                  options.zipf_theta),
      op_dist_({options.read_weight, options.query_weight,
                options.insert_weight, options.update_weight,
                options.delete_weight}) {
  assert(options.queries_per_table <= num_groups_ &&
         "need at least one group per distinct query");
  // Pick an affine permutation of group ids (see GroupOf).
  auto gcd = [](size_t a, size_t b) {
    while (b != 0) {
      const size_t t = a % b;
      a = b;
      b = t;
    }
    return a;
  };
  group_mult_ = 1;
  for (size_t candidate = 37; candidate < 37 + num_groups_; ++candidate) {
    if (gcd(candidate, num_groups_) == 1) {
      group_mult_ = candidate;
      break;
    }
  }
  group_offset_ = 53 % num_groups_;
  queries_.resize(options.num_tables);
  for (size_t t = 0; t < options.num_tables; ++t) {
    queries_[t].reserve(options.queries_per_table);
    for (size_t q = 0; q < options.queries_per_table; ++q) {
      queries_[t].push_back(MakeQuery(t, q));
    }
  }
}

db::Query WorkloadGenerator::MakeQuery(size_t table_index,
                                       size_t group) const {
  db::Predicate p = db::Predicate::Compare(
      "group", db::CompareOp::kEq, db::Value(static_cast<int64_t>(group)));
  return db::Query(TableName(table_index), std::move(p));
}

db::Value WorkloadGenerator::MakeDoc(size_t table_index,
                                     size_t doc_index) const {
  db::Object obj;
  obj["group"] = db::Value(static_cast<int64_t>(GroupOf(doc_index)));
  obj["title"] = db::Value("Post " + std::to_string(doc_index) + " in " +
                           TableName(table_index));
  obj["author"] =
      db::Value("author" + std::to_string(doc_index % 97));
  obj["views"] = db::Value(static_cast<int64_t>(0));
  db::Array tags;
  tags.push_back(db::Value("tag" + std::to_string(doc_index % 13)));
  tags.push_back(db::Value("tag" + std::to_string(doc_index % 29)));
  obj["tags"] = db::Value(std::move(tags));
  return db::Value(std::move(obj));
}

void WorkloadGenerator::Load(db::Database* db) {
  for (size_t t = 0; t < options_.num_tables; ++t) {
    const std::string table = TableName(t);
    for (size_t d = 0; d < options_.docs_per_table; ++d) {
      auto res = db->Insert(table, DocId(d), MakeDoc(t, d));
      assert(res.ok());
      (void)res;
    }
    // The benchmark queries select by group; index it (the paper's
    // MongoDB deployment would equally index its query fields).
    db->GetOrCreateTable(table)->CreateIndex("group");
  }
}

Operation WorkloadGenerator::Next() {
  Operation op;
  const size_t kind = op_dist_.Next(rng_);
  const size_t t = table_dist_.Next(rng_);
  op.table = TableName(t);
  switch (kind) {
    case 0: {  // read
      op.type = OpType::kRead;
      op.id = DocId(key_dist_.Next(rng_));
      break;
    }
    case 1: {  // query
      op.type = OpType::kQuery;
      op.query = queries_[t][query_dist_.Next(rng_)];
      break;
    }
    case 2: {  // insert
      op.type = OpType::kInsert;
      const size_t idx = options_.docs_per_table + insert_counter_++;
      op.id = DocId(idx);
      op.body = MakeDoc(t, idx);
      break;
    }
    case 3: {  // update
      op.type = OpType::kUpdate;
      op.id = DocId(key_dist_.Next(rng_));
      if (rng_.NextBool(options_.membership_change_fraction)) {
        // Move the document to a uniformly chosen group: membership
        // change for the source and target groups' queries.
        op.update.Set("group",
                      db::Value(static_cast<int64_t>(
                          rng_.NextUint64(num_groups_))));
      } else {
        // Bump a counter: pure state change.
        op.update.Inc("views", db::Value(static_cast<int64_t>(1)));
      }
      break;
    }
    default: {  // delete
      op.type = OpType::kDelete;
      op.id = DocId(key_dist_.Next(rng_));
      break;
    }
  }
  return op;
}

}  // namespace quaestor::workload
