#ifndef QUAESTOR_WORKLOAD_WORKLOAD_H_
#define QUAESTOR_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "db/query.h"
#include "db/update.h"

namespace quaestor::workload {

/// Operation kinds sampled by the generator (§6.1: "Workloads were
/// specified by defining a discrete distribution of operations (reads,
/// queries, inserts, partial updates, and deletes)").
enum class OpType { kRead, kQuery, kInsert, kUpdate, kDelete };

/// One sampled operation.
struct Operation {
  OpType type = OpType::kRead;
  std::string table;
  std::string id;       // reads / updates / deletes / inserts
  db::Query query;      // queries
  db::Update update;    // updates
  db::Value body;       // inserts
};

/// YCSB-style workload shape. The paper's default setting (§6.1): 10
/// tables × 10,000 documents, 100 distinct queries per table each
/// initially matching ~10 documents, Zipfian request distribution.
struct WorkloadOptions {
  size_t num_tables = 10;
  size_t docs_per_table = 10000;
  size_t queries_per_table = 100;
  /// Documents initially matched per query (controls the `group` fan-out).
  size_t docs_per_query = 10;
  /// Zipf parameter for key/query/table sampling (Table 1 uses 0.99).
  double zipf_theta = 0.8;

  /// Operation mix weights (normalized internally). Read-heavy default:
  /// 99% reads+queries (equally weighted), 1% updates.
  double read_weight = 0.495;
  double query_weight = 0.495;
  double insert_weight = 0.0;
  double update_weight = 0.01;
  double delete_weight = 0.0;

  /// Fraction of updates that change query membership (move a document to
  /// another group → add/remove events) rather than only its state
  /// (counter bump → change events).
  double membership_change_fraction = 0.3;
};

/// Generates the database population and an endless stream of operations.
/// Deterministic for a given seed.
class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadOptions options, uint64_t seed);

  /// Populates `db` with `num_tables × docs_per_table` documents. Each
  /// document carries a `group` field; the i-th query of a table selects
  /// `group == i`, so it initially returns `docs_per_query` documents.
  void Load(db::Database* db);

  /// Samples the next operation.
  Operation Next();

  /// The distinct queries of a table (normalized shapes the benchmark
  /// re-issues).
  const std::vector<db::Query>& QueriesFor(size_t table_index) const {
    return queries_[table_index];
  }

  const WorkloadOptions& options() const { return options_; }

  static std::string TableName(size_t index) {
    return "t" + std::to_string(index);
  }
  static std::string DocId(size_t index) {
    return "d" + std::to_string(index);
  }

  /// Builds the document body for (table_index, doc_index) — also used by
  /// tests to predict query membership.
  db::Value MakeDoc(size_t table_index, size_t doc_index) const;

  /// The group a document initially belongs to. Group ids are permuted
  /// (affine bijection) so that the Zipf-hottest documents do not land in
  /// the Zipf-hottest query's group — read popularity and write
  /// popularity of a query result are decorrelated, as they are for
  /// independent real-world keys.
  size_t GroupOf(size_t doc_index) const {
    return (group_mult_ * (doc_index % num_groups_) + group_offset_) %
           num_groups_;
  }

 private:
  db::Query MakeQuery(size_t table_index, size_t group) const;

  WorkloadOptions options_;
  Rng rng_;
  size_t num_groups_;
  size_t group_mult_ = 1;    // coprime with num_groups_
  size_t group_offset_ = 0;
  ZipfianGenerator table_dist_;
  ZipfianGenerator key_dist_;
  ZipfianGenerator query_dist_;
  DiscreteDistribution op_dist_;
  std::vector<std::vector<db::Query>> queries_;  // [table][query]
  uint64_t insert_counter_ = 0;
};

}  // namespace quaestor::workload

#endif  // QUAESTOR_WORKLOAD_WORKLOAD_H_
