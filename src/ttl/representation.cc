#include "ttl/representation.h"

#include <algorithm>
#include <cmath>

namespace quaestor::ttl {

double RepresentationCostDelta(const RepresentationCosts& c) {
  const double read_rate = std::max(c.read_rate, 1e-9);
  const double per_invalidation =
      c.invalidation_cost_ms * c.client_fanout / read_rate;
  const double object_cost =
      (c.change_rate + c.membership_rate) * per_invalidation;
  const double all_records_hit =
      std::pow(c.record_hit_rate, static_cast<double>(c.result_size));
  const double id_cost = c.membership_rate * per_invalidation +
                         (1.0 - all_records_hit) * c.record_miss_latency_ms;
  return object_cost - id_cost;
}

ResultRepresentation ChooseRepresentation(const RepresentationCosts& costs) {
  return RepresentationCostDelta(costs) > 0.0
             ? ResultRepresentation::kIdList
             : ResultRepresentation::kObjectList;
}

}  // namespace quaestor::ttl
