#ifndef QUAESTOR_TTL_TTL_ESTIMATOR_H_
#define QUAESTOR_TTL_TTL_ESTIMATOR_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace quaestor::ttl {

/// Tunables for the statistical TTL estimation model (§4.2).
struct TtlOptions {
  /// Quantile p in Equation (1): TTL = -ln(1-p)/λ_min. Higher p → longer
  /// TTLs → more cache hits but more invalidations.
  double quantile = 0.5;

  /// EWMA weight α in Equation (2): TTL_query = α·TTL_old + (1-α)·TTL_actual.
  double ewma_alpha = 0.7;

  /// Disable the EWMA feedback loop entirely (queries then always use the
  /// initial Poisson estimate) — ablation knob for the §4.2 design.
  bool use_ewma = true;

  /// Bounds on issued TTLs.
  Micros min_ttl = SecondsToMicros(1.0);
  Micros max_ttl = SecondsToMicros(600.0);

  /// Sliding window over which write rates are measured.
  Micros rate_window = SecondsToMicros(60.0);

  /// Number of write timestamps remembered per key.
  size_t max_samples_per_key = 32;
};

/// Estimates per-record write arrival rates λ_w from observed write
/// timestamps over a sliding window (the Poisson-process model of §4.2).
/// Thread-safe.
class WriteRateEstimator {
 public:
  WriteRateEstimator(Clock* clock, const TtlOptions& options)
      : clock_(clock), options_(options) {}

  /// Records a write to `key` at the current time.
  void RecordWrite(std::string_view key);

  /// Estimated write rate in events per microsecond. Keys that have never
  /// been written (or whose samples all aged out) return 0 — "no evidence
  /// of change", which maps to the maximum TTL.
  double RateOf(std::string_view key) const;

  /// Sum of rates over a set of keys: λ_min of the minimum-of-exponentials
  /// distribution for a query result (§4.2).
  double SumRate(const std::vector<std::string>& keys) const;

  size_t TrackedKeys() const;

 private:
  Clock* clock_;
  TtlOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::deque<Micros>> samples_;
};

/// Converts arrival rates into TTLs and maintains per-query EWMA-refined
/// estimates (the TTL Estimator component in Figure 3). Thread-safe.
class TtlEstimator {
 public:
  TtlEstimator(Clock* clock, TtlOptions options = TtlOptions())
      : clock_(clock),
        options_(options),
        write_rates_(clock, options) {}

  const TtlOptions& options() const { return options_; }
  WriteRateEstimator& write_rates() { return write_rates_; }

  /// Observes a write (feeds the rate estimator).
  void RecordWrite(std::string_view record_key) {
    write_rates_.RecordWrite(record_key);
  }

  /// TTL for an individual record: quantile of the exponential
  /// inter-arrival distribution with the record's estimated λ_w, clamped
  /// to [min_ttl, max_ttl]. Records are always estimated from write rates
  /// (§4.2: "For individual records, we always use an estimate based on
  /// the approximated write-rates").
  Micros RecordTtl(std::string_view record_key) const;

  /// TTL for a query result. If an EWMA estimate exists (the query was
  /// invalidated before), it is used; otherwise the initial Poisson
  /// estimate from the member records' summed write rates.
  Micros QueryTtl(std::string_view query_key,
                  const std::vector<std::string>& result_record_keys) const;

  /// Feedback on invalidation: the actual TTL was the span between the
  /// last read and the invalidation (Equation 2). Updates the EWMA.
  void OnQueryInvalidated(std::string_view query_key, Micros actual_ttl);

  /// Raw quantile formula: TTL = -ln(1-p)/λ (Equation 1), for λ in
  /// events/µs. Returns max_ttl when λ is 0.
  Micros QuantileTtl(double lambda) const;

  /// Number of queries with EWMA state.
  size_t TrackedQueries() const;

  /// Drops EWMA state for a query (e.g. on cache-capacity eviction).
  void Forget(std::string_view query_key);

 private:
  Micros Clamp(Micros ttl) const;

  Clock* clock_;
  TtlOptions options_;
  WriteRateEstimator write_rates_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, double> query_ewma_;  // key → ttl (µs)
};

}  // namespace quaestor::ttl

#endif  // QUAESTOR_TTL_TTL_ESTIMATOR_H_
