#ifndef QUAESTOR_TTL_CAPACITY_MANAGER_H_
#define QUAESTOR_TTL_CAPACITY_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/clock.h"

namespace quaestor::ttl {

/// Admission control for cached queries (§4.1: "Through a capacity
/// management model only queries that are sufficiently cachable are
/// admitted and prioritized based on the costs of maintaining them").
///
/// The matching throughput of InvaliDB bounds how many queries can be
/// actively maintained. Each query gets a benefit/cost score:
///
///   score = reads / (1 + invalidations)
///
/// i.e. the expected number of cache hits bought per invalidation-pipeline
/// slot. When at capacity, a new query is admitted only if its score beats
/// the currently worst admitted query, which is then evicted — Zipf access
/// patterns make a small "hot" admitted set carry most of the hit rate
/// (cf. Breslau et al., discussed in §7).
class CapacityManager {
 public:
  /// `capacity` = maximum number of simultaneously maintained queries;
  /// 0 means unlimited.
  explicit CapacityManager(size_t capacity) : capacity_(capacity) {}

  /// Records an access to a (potential) query. Call on every query read.
  void OnRead(std::string_view query_key);

  /// Records an invalidation of the query.
  void OnInvalidation(std::string_view query_key);

  /// Decides whether `query_key` may be cached/maintained right now. If
  /// admission requires evicting a lower-scored query, that query's key is
  /// returned in `evicted` (the caller must deregister it). Returns true
  /// if admitted (or already admitted).
  bool Admit(std::string_view query_key, std::optional<std::string>* evicted);

  /// Removes a query from the admitted set (e.g. after external eviction).
  void Remove(std::string_view query_key);

  bool IsAdmitted(std::string_view query_key) const;
  size_t AdmittedCount() const;
  size_t capacity() const { return capacity_; }

  /// Current benefit/cost score of a query (0 for unknown queries).
  double ScoreOf(std::string_view query_key) const;

 private:
  struct QueryStats {
    uint64_t reads = 0;
    uint64_t invalidations = 0;
    bool admitted = false;
  };

  static double Score(const QueryStats& s) {
    return static_cast<double>(s.reads) /
           (1.0 + static_cast<double>(s.invalidations));
  }

  /// Finds the admitted query with the lowest score (nullptr if none).
  std::pair<const std::string*, double> WorstAdmittedLocked() const;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, QueryStats> stats_;
  size_t admitted_count_ = 0;
};

}  // namespace quaestor::ttl

#endif  // QUAESTOR_TTL_CAPACITY_MANAGER_H_
