#include "ttl/capacity_manager.h"

namespace quaestor::ttl {

void CapacityManager::OnRead(std::string_view query_key) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[std::string(query_key)].reads++;
}

void CapacityManager::OnInvalidation(std::string_view query_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(std::string(query_key));
  if (it != stats_.end()) it->second.invalidations++;
}

std::pair<const std::string*, double> CapacityManager::WorstAdmittedLocked()
    const {
  const std::string* worst_key = nullptr;
  double worst_score = 0.0;
  for (const auto& [key, s] : stats_) {
    if (!s.admitted) continue;
    const double score = Score(s);
    if (worst_key == nullptr || score < worst_score) {
      worst_key = &key;
      worst_score = score;
    }
  }
  return {worst_key, worst_score};
}

bool CapacityManager::Admit(std::string_view query_key,
                            std::optional<std::string>* evicted) {
  if (evicted != nullptr) evicted->reset();
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats& s = stats_[std::string(query_key)];
  if (s.admitted) return true;
  if (capacity_ == 0 || admitted_count_ < capacity_) {
    s.admitted = true;
    admitted_count_++;
    return true;
  }
  // At capacity: admit only by displacing a strictly worse query.
  auto [worst_key, worst_score] = WorstAdmittedLocked();
  if (worst_key == nullptr || Score(s) <= worst_score) return false;
  std::string victim = *worst_key;
  stats_[victim].admitted = false;
  if (evicted != nullptr) *evicted = victim;
  s.admitted = true;
  return true;
}

void CapacityManager::Remove(std::string_view query_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(std::string(query_key));
  if (it != stats_.end() && it->second.admitted) {
    it->second.admitted = false;
    admitted_count_--;
  }
}

bool CapacityManager::IsAdmitted(std::string_view query_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(std::string(query_key));
  return it != stats_.end() && it->second.admitted;
}

size_t CapacityManager::AdmittedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_count_;
}

double CapacityManager::ScoreOf(std::string_view query_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(std::string(query_key));
  return it == stats_.end() ? 0.0 : Score(it->second);
}

}  // namespace quaestor::ttl
