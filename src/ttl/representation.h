#ifndef QUAESTOR_TTL_REPRESENTATION_H_
#define QUAESTOR_TTL_REPRESENTATION_H_

#include <cstddef>

namespace quaestor::ttl {

/// How a cached query result is materialized (§4.2 "Representing Query
/// Results"): either the full documents (object-list) or just the record
/// URLs, assembled by per-record fetches (id-list).
enum class ResultRepresentation {
  kObjectList,
  kIdList,
};

/// Inputs to the cost-based representation decision. All costs are
/// expressed as expected added latency *per query read*.
struct RepresentationCosts {
  /// Number of records in the result.
  size_t result_size = 0;
  /// Reads per second observed for this query.
  double read_rate = 1.0;
  /// Estimated per-result `change` notifications per second (object-lists
  /// are additionally invalidated on every in-place member change, §4.1).
  double change_rate = 0.0;
  /// Estimated add/remove (membership) notifications per second — these
  /// invalidate both representations.
  double membership_rate = 0.0;
  /// Probability that an individual record of the result is a client
  /// cache hit when fetched separately (id-lists piggyback on record
  /// caching).
  double record_hit_rate = 0.9;
  /// Latency of refetching an invalidated result at the origin (ms).
  double invalidation_cost_ms = 145.0;
  /// Latency of assembling a record that missed the client cache —
  /// typically a CDN hit, not a full origin round-trip (ms).
  double record_miss_latency_ms = 8.0;
  /// How many client caches hold a copy when an invalidation strikes
  /// (each of them pays the refetch).
  double client_fanout = 10.0;
};

/// Chooses the representation minimizing expected added latency per read:
///
///   cost(object-list) = (change_rate + membership_rate)
///                       · invalidation_cost · fanout / read_rate
///   cost(id-list)     = membership_rate
///                       · invalidation_cost · fanout / read_rate
///                       + (1 − record_hit_rate^result_size)
///                       · record_miss_latency
///
/// The invalidation terms amortize the cost of refetching stale copies
/// over the reads between invalidations; the id-list additionally pays the
/// result assembly, whose per-read penalty is bounded by the slowest
/// parallel record fetch (browsers fetch result members concurrently).
/// Object-lists win when results rarely change in place or assembly is
/// expensive; id-lists win for hot results over well-cached, frequently
/// changing records — the trade-off of §4.2 ("fewer invalidations against
/// fewer round-trips").
ResultRepresentation ChooseRepresentation(const RepresentationCosts& costs);

/// The expected cost difference cost(object) − cost(id) in ms per read
/// (diagnostic; positive favours id-lists).
double RepresentationCostDelta(const RepresentationCosts& costs);

}  // namespace quaestor::ttl

#endif  // QUAESTOR_TTL_REPRESENTATION_H_
