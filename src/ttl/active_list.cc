#include "ttl/active_list.h"

namespace quaestor::ttl {

ActiveList::ActiveList(size_t num_partitions)
    : partitions_(num_partitions == 0 ? 1 : num_partitions) {}

void ActiveList::OnRead(std::string_view query_key, Micros read_time,
                        Micros ttl) {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  Entry& e = p.entries[std::string(query_key)];
  e.last_read_time = read_time;
  e.last_issued_ttl = ttl;
  e.read_count++;
  e.invalidated_since_read = false;
}

std::optional<Micros> ActiveList::OnInvalidation(std::string_view query_key,
                                                 Micros invalidation_time) {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  auto it = p.entries.find(std::string(query_key));
  if (it == p.entries.end()) return std::nullopt;
  Entry& e = it->second;
  e.invalidation_count++;
  if (e.invalidated_since_read) return std::nullopt;
  e.invalidated_since_read = true;
  if (e.read_count == 0) return std::nullopt;  // never actually served
  const Micros actual = invalidation_time - e.last_read_time;
  return actual < 0 ? 0 : actual;
}

void ActiveList::SetRegistered(std::string_view query_key, bool registered) {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  p.entries[std::string(query_key)].registered = registered;
}

bool ActiveList::IsRegistered(std::string_view query_key) const {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  auto it = p.entries.find(std::string(query_key));
  return it != p.entries.end() && it->second.registered;
}

std::optional<ActiveList::Entry> ActiveList::Find(
    std::string_view query_key) const {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  auto it = p.entries.find(std::string(query_key));
  if (it == p.entries.end()) return std::nullopt;
  return it->second;
}

void ActiveList::Erase(std::string_view query_key) {
  Partition& p = PartitionFor(query_key);
  std::lock_guard<std::mutex> lock(p.mu);
  p.entries.erase(std::string(query_key));
}

size_t ActiveList::Size() const {
  size_t n = 0;
  for (const Partition& p : partitions_) {
    std::lock_guard<std::mutex> lock(p.mu);
    n += p.entries.size();
  }
  return n;
}

std::vector<std::pair<std::string, ActiveList::Entry>> ActiveList::Snapshot()
    const {
  std::vector<std::pair<std::string, Entry>> out;
  for (const Partition& p : partitions_) {
    std::lock_guard<std::mutex> lock(p.mu);
    for (const auto& [key, e] : p.entries) out.emplace_back(key, e);
  }
  return out;
}

}  // namespace quaestor::ttl
