#include "ttl/ttl_estimator.h"

#include <algorithm>
#include <cmath>

namespace quaestor::ttl {

void WriteRateEstimator::RecordWrite(std::string_view key) {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<Micros>& s = samples_[std::string(key)];
  s.push_back(now);
  while (s.size() > options_.max_samples_per_key) s.pop_front();
  while (!s.empty() && s.front() < now - options_.rate_window) s.pop_front();
}

double WriteRateEstimator::RateOf(std::string_view key) const {
  const Micros now = clock_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = samples_.find(std::string(key));
  if (it == samples_.end()) return 0.0;
  const std::deque<Micros>& s = it->second;
  // Count samples within the window (entries are pruned lazily on write,
  // so re-filter here).
  const Micros cutoff = now - options_.rate_window;
  size_t count = 0;
  for (Micros t : s) {
    if (t >= cutoff) ++count;
  }
  if (count == 0) return 0.0;
  if (count >= 2) {
    // Rate over the span actually observed (oldest in-window sample to
    // now). Using this whenever two or more samples are present keeps the
    // estimate continuous as samples age out of the window or ring; the
    // fixed-window denominator is only a fallback for a lone sample,
    // where no span exists.
    const Micros oldest = *std::find_if(
        s.begin(), s.end(), [cutoff](Micros t) { return t >= cutoff; });
    const Micros span = now - oldest;
    if (span > 0) return static_cast<double>(count) / static_cast<double>(span);
  }
  return static_cast<double>(count) /
         static_cast<double>(options_.rate_window);
}

double WriteRateEstimator::SumRate(const std::vector<std::string>& keys) const {
  double sum = 0.0;
  for (const std::string& k : keys) sum += RateOf(k);
  return sum;
}

size_t WriteRateEstimator::TrackedKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

Micros TtlEstimator::Clamp(Micros ttl) const {
  return std::clamp(ttl, options_.min_ttl, options_.max_ttl);
}

Micros TtlEstimator::QuantileTtl(double lambda) const {
  if (lambda <= 0.0) return options_.max_ttl;
  const double ttl = -std::log(1.0 - options_.quantile) / lambda;
  if (ttl >= static_cast<double>(options_.max_ttl)) return options_.max_ttl;
  return Clamp(static_cast<Micros>(ttl));
}

Micros TtlEstimator::RecordTtl(std::string_view record_key) const {
  return QuantileTtl(write_rates_.RateOf(record_key));
}

Micros TtlEstimator::QueryTtl(
    std::string_view query_key,
    const std::vector<std::string>& result_record_keys) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = query_ewma_.find(std::string(query_key));
    if (it != query_ewma_.end()) {
      return Clamp(static_cast<Micros>(it->second));
    }
  }
  // Initial estimate: min of exponentials is exponential with
  // λ_min = Σ λ_wi over the result members (§4.2).
  return QuantileTtl(write_rates_.SumRate(result_record_keys));
}

void TtlEstimator::OnQueryInvalidated(std::string_view query_key,
                                      Micros actual_ttl) {
  if (!options_.use_ewma) return;
  if (actual_ttl < 0) actual_ttl = 0;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key(query_key);
  auto it = query_ewma_.find(key);
  if (it == query_ewma_.end()) {
    // Store the raw observation: clamping happens only when a TTL is
    // issued (QueryTtl), so Eq. (2) always folds values on one scale and
    // the state converges the same regardless of observation order.
    query_ewma_[key] = static_cast<double>(actual_ttl);
    return;
  }
  // Equation (2): TTL = α·TTL_old + (1-α)·TTL_actual.
  it->second = options_.ewma_alpha * it->second +
               (1.0 - options_.ewma_alpha) * static_cast<double>(actual_ttl);
}

size_t TtlEstimator::TrackedQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return query_ewma_.size();
}

void TtlEstimator::Forget(std::string_view query_key) {
  std::lock_guard<std::mutex> lock(mu_);
  query_ewma_.erase(std::string(query_key));
}

}  // namespace quaestor::ttl
