#ifndef QUAESTOR_TTL_ACTIVE_LIST_H_
#define QUAESTOR_TTL_ACTIVE_LIST_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"

namespace quaestor::ttl {

/// Per-query bookkeeping shared across Quaestor server nodes (§4.2: "The
/// current TTL estimate for a query is kept in a shared partitioned data
/// structure called the active list"). Entries track the last read time
/// (needed to derive the actual TTL on invalidation), the last issued TTL,
/// access counters for capacity scoring, and whether the query is
/// currently registered with InvaliDB.
class ActiveList {
 public:
  struct Entry {
    Micros last_read_time = 0;
    Micros last_issued_ttl = 0;
    uint64_t read_count = 0;
    uint64_t invalidation_count = 0;
    bool registered = false;  // active in InvaliDB
    /// A result already invalidated since its last read is stale; further
    /// writes must not produce additional TTL feedback (the observed
    /// cache lifetime ended at the first invalidation).
    bool invalidated_since_read = false;
  };

  explicit ActiveList(size_t num_partitions = 16);

  /// Records a served read of `query_key` with the issued `ttl`. Creates
  /// the entry if missing.
  void OnRead(std::string_view query_key, Micros read_time, Micros ttl);

  /// Records an invalidation; returns the derived actual TTL (time between
  /// the last read and the invalidation) if the query was being tracked.
  std::optional<Micros> OnInvalidation(std::string_view query_key,
                                       Micros invalidation_time);

  /// Marks the query registered/deregistered in InvaliDB.
  void SetRegistered(std::string_view query_key, bool registered);
  bool IsRegistered(std::string_view query_key) const;

  std::optional<Entry> Find(std::string_view query_key) const;

  void Erase(std::string_view query_key);

  size_t Size() const;

  /// Snapshot of all entries (diagnostics and capacity decisions).
  std::vector<std::pair<std::string, Entry>> Snapshot() const;

 private:
  struct Partition {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
  };

  Partition& PartitionFor(std::string_view key) const {
    return partitions_[Hash64(key) % partitions_.size()];
  }

  mutable std::vector<Partition> partitions_;
};

}  // namespace quaestor::ttl

#endif  // QUAESTOR_TTL_ACTIVE_LIST_H_
