#include "core/auth.h"

namespace quaestor::core {

void AccessController::SetRule(const std::string& table, TableRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[table] = std::move(rule);
}

void AccessController::ProtectWrites(const std::string& table,
                                     const std::string& role) {
  TableRule rule;
  rule.read = AccessLevel::kPublic;
  rule.write = AccessLevel::kRole;
  rule.write_role = role;
  SetRule(table, rule);
}

void AccessController::ProtectTable(const std::string& table,
                                    const std::string& role) {
  TableRule rule;
  rule.read = AccessLevel::kRole;
  rule.read_role = role;
  rule.write = AccessLevel::kRole;
  rule.write_role = role;
  SetRule(table, rule);
}

Status AccessController::Check(const Credentials& who, AccessLevel level,
                               const std::string& role,
                               const std::string& table, const char* what) {
  if (who.root) return Status::OK();
  switch (level) {
    case AccessLevel::kPublic:
      return Status::OK();
    case AccessLevel::kAuthenticated:
      if (who.authenticated) return Status::OK();
      break;
    case AccessLevel::kRole:
      if (who.HasRole(role)) return Status::OK();
      break;
    case AccessLevel::kNobody:
      break;
  }
  return Status::FailedPrecondition(std::string(what) + " access to '" +
                                    table + "' denied");
}

Status AccessController::CheckRead(const Credentials& who,
                                   const std::string& table) const {
  TableRule rule;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rules_.find(table);
    if (it == rules_.end()) return Status::OK();
    rule = it->second;
  }
  return Check(who, rule.read, rule.read_role, table, "read");
}

Status AccessController::CheckWrite(const Credentials& who,
                                    const std::string& table) const {
  TableRule rule;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rules_.find(table);
    if (it == rules_.end()) return Status::OK();
    rule = it->second;
  }
  return Check(who, rule.write, rule.write_role, table, "write");
}

bool AccessController::ReadIsPublic(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(table);
  return it == rules_.end() || it->second.read == AccessLevel::kPublic;
}

void AccessController::RegisterSession(const std::string& token,
                                       Credentials creds) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_[token] = std::move(creds);
}

void AccessController::RevokeSession(const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(token);
}

Credentials AccessController::Resolve(const std::string& token) const {
  if (token.empty()) return Credentials::Anonymous();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(token);
  return it == sessions_.end() ? Credentials::Anonymous() : it->second;
}

}  // namespace quaestor::core
