#ifndef QUAESTOR_CORE_TRANSACTIONS_H_
#define QUAESTOR_CORE_TRANSACTIONS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/document.h"
#include "db/update.h"

namespace quaestor::core {

class QuaestorServer;

/// One buffered write inside a transaction.
struct TxWrite {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind = Kind::kUpdate;
  std::string table;
  std::string id;
  db::Value body;      // kInsert
  db::Update update;   // kUpdate
};

/// What the client ships to the server at commit time (§3.2): the read
/// set collected during the transaction — every record key with the
/// version the transaction observed (possibly from a cache) — plus the
/// buffered writes.
struct TransactionRequest {
  /// key ("table/id") → version observed. Version 0 = observed-as-absent.
  std::map<std::string, uint64_t> read_set;
  std::vector<TxWrite> writes;
};

/// Commit outcome.
struct CommitResult {
  uint64_t commit_timestamp = 0;  // µs
  /// After-images of all applied writes (for the client's session cache).
  std::vector<db::Document> applied;
};

/// Server-side transaction validation and atomic apply — a variant of
/// backwards-oriented optimistic concurrency control (§3.2): reads run
/// against caches (shrinking transaction duration), writes are buffered,
/// and at commit the server checks that every read version is still
/// current. Any intervening write — or a stale cached read — aborts the
/// transaction; this detects "both violations of serializability and
/// stale reads".
///
/// Commits are serialized by a single validation lock (single-node OCC;
/// the paper's deployment shards this by transaction scope).
class TransactionManager {
 public:
  explicit TransactionManager(QuaestorServer* server) : server_(server) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Validates and atomically applies the transaction. Returns
  /// Status::Aborted when validation fails (caller may retry), along with
  /// the conflicting key in the message.
  Result<CommitResult> Commit(const TransactionRequest& request);

  uint64_t committed_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return committed_;
  }
  uint64_t aborted_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return aborted_;
  }

 private:
  QuaestorServer* server_;
  mutable std::mutex mu_;  // serializes validate+apply
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_TRANSACTIONS_H_
