#include "core/query_result.h"

#include "common/hash.h"

namespace quaestor::core {

std::string QueryResponse::ToJson() const {
  std::string out;
  AppendJsonTo(&out);
  return out;
}

void QueryResponse::AppendJsonTo(std::string* out) const {
  // Emits exactly what serializing the equivalent db::Value object tree
  // would: sorted keys ("docs" < "ids" < "rep" < "ttls" < "versions"),
  // no whitespace. Keep this in lockstep with Value::AppendJson — cache
  // etags and stored bodies depend on the canonical form.
  const bool object_list =
      representation == ttl::ResultRepresentation::kObjectList;
  out->reserve(out->size() + 40 + ids.size() * 24);
  out->push_back('{');
  bool first = true;
  if (object_list) {
    out->append("\"docs\":[");
    for (const db::Value& d : docs) {
      if (!first) out->push_back(',');
      first = false;
      d.AppendJson(out);
    }
    out->append("],");
  }
  out->append("\"ids\":[");
  first = true;
  for (const std::string& id : ids) {
    if (!first) out->push_back(',');
    first = false;
    db::AppendJsonEscaped(out, id);
  }
  out->append("],\"rep\":");
  out->append(object_list ? "\"objects\"" : "\"ids\"");
  if (object_list) {
    out->append(",\"ttls\":[");
    first = true;
    for (Micros t : record_ttls) {
      if (!first) out->push_back(',');
      first = false;
      out->append(std::to_string(static_cast<int64_t>(t)));
    }
    out->append("],\"versions\":[");
    first = true;
    for (uint64_t v : versions) {
      if (!first) out->push_back(',');
      first = false;
      out->append(std::to_string(static_cast<int64_t>(v)));
    }
    out->push_back(']');
  }
  out->push_back('}');
}

Result<QueryResponse> QueryResponse::FromJson(std::string_view json) {
  auto parsed = db::Value::FromJson(json);
  if (!parsed.ok()) return parsed.status();
  const db::Value& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("query response must be an object");
  }
  QueryResponse out;
  const db::Value* rep = root.Find("rep");
  if (rep == nullptr || !rep->is_string()) {
    return Status::InvalidArgument("missing 'rep'");
  }
  out.representation = rep->as_string() == "ids"
                           ? ttl::ResultRepresentation::kIdList
                           : ttl::ResultRepresentation::kObjectList;
  const db::Value* ids = root.Find("ids");
  if (ids == nullptr || !ids->is_array()) {
    return Status::InvalidArgument("missing 'ids'");
  }
  for (const db::Value& id : ids->as_array()) {
    if (!id.is_string()) return Status::InvalidArgument("non-string id");
    out.ids.push_back(id.as_string());
  }
  if (out.representation == ttl::ResultRepresentation::kObjectList) {
    const db::Value* docs = root.Find("docs");
    const db::Value* versions = root.Find("versions");
    const db::Value* ttls = root.Find("ttls");
    if (docs == nullptr || !docs->is_array() || versions == nullptr ||
        !versions->is_array() || ttls == nullptr || !ttls->is_array()) {
      return Status::InvalidArgument("object-list missing docs/versions/ttls");
    }
    if (docs->as_array().size() != out.ids.size() ||
        versions->as_array().size() != out.ids.size() ||
        ttls->as_array().size() != out.ids.size()) {
      return Status::InvalidArgument("object-list field length mismatch");
    }
    out.docs = docs->as_array();
    for (const db::Value& v : versions->as_array()) {
      if (!v.is_int()) return Status::InvalidArgument("non-int version");
      out.versions.push_back(static_cast<uint64_t>(v.as_int()));
    }
    for (const db::Value& t : ttls->as_array()) {
      if (!t.is_int()) return Status::InvalidArgument("non-int ttl");
      out.record_ttls.push_back(t.as_int());
    }
  }
  return out;
}

uint64_t QueryResponse::ComputeEtag() const {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (const std::string& id : ids) h = Hash64(id, h);
  if (representation == ttl::ResultRepresentation::kObjectList) {
    for (uint64_t v : versions) h = Hash64(v, h);
  }
  // Never collide with "no etag" (0).
  return h == 0 ? 1 : h;
}

}  // namespace quaestor::core
