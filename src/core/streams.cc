#include "core/streams.h"

#include "core/server.h"

namespace quaestor::core {

ChangeStreamHub::ChangeStreamHub(QuaestorServer* server) : server_(server) {
  server_->AddNotificationTap(
      [this](const invalidb::Notification& n) { OnNotification(n); });
}

Result<uint64_t> ChangeStreamHub::Subscribe(
    const db::Query& query, StreamCallback callback,
    std::vector<db::Document>* initial_result) {
  const std::string key = query.NormalizedKey();
  server_->RegisterQueryShape(query);

  // Activate the query in InvaliDB with the full event set; streams need
  // every change, including positional ones for sorted queries.
  if (!server_->invalidb().IsRegistered(key)) {
    std::vector<db::Document> registration_set;
    if (query.IsStateless()) {
      registration_set = server_->database().Execute(query);
    } else {
      db::Query base(query.table(), query.filter());
      registration_set = server_->database().Execute(base);
    }
    Status st = server_->invalidb().RegisterQuery(query, registration_set,
                                                  invalidb::kEventsAll);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    server_->active_list().SetRegistered(key, true);
  }

  if (initial_result != nullptr) {
    *initial_result = server_->database().Execute(query);
  }

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_id_++;
  subscriptions_[id] = Subscription{key, std::move(callback)};
  by_query_[key].push_back(id);
  return id;
}

void ChangeStreamHub::Unsubscribe(uint64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = subscriptions_.find(subscription_id);
  if (it == subscriptions_.end()) return;
  auto& ids = by_query_[it->second.query_key];
  for (auto vit = ids.begin(); vit != ids.end(); ++vit) {
    if (*vit == subscription_id) {
      ids.erase(vit);
      break;
    }
  }
  if (ids.empty()) by_query_.erase(it->second.query_key);
  subscriptions_.erase(it);
}

void ChangeStreamHub::OnNotification(const invalidb::Notification& n) {
  std::vector<StreamCallback> receivers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = by_query_.find(n.query_key);
    if (it == by_query_.end()) return;
    receivers.reserve(it->second.size());
    for (uint64_t id : it->second) {
      receivers.push_back(subscriptions_[id].callback);
    }
  }
  if (receivers.empty()) return;

  StreamEvent ev;
  ev.type = n.type;
  ev.query_key = n.query_key;
  ev.record_id = n.record_id;
  ev.event_time = n.event_time;
  ev.new_index = n.new_index;
  if (n.type == invalidb::NotificationType::kAdd ||
      n.type == invalidb::NotificationType::kChange) {
    // Resolve the record's current state for the frame body. The record
    // id is unqualified; notifications carry the query key, whose table
    // prefix locates the record.
    std::string table;
    if (n.query_key.rfind("q:", 0) == 0) {
      const size_t qmark = n.query_key.find('?');
      table = n.query_key.substr(2, qmark - 2);
    }
    auto doc = server_->database().Get(table, n.record_id);
    if (doc.ok()) {
      ev.body = doc->body;
      ev.has_body = true;
    }
  }
  for (const StreamCallback& cb : receivers) cb(ev);
}

size_t ChangeStreamHub::SubscriberCount(const std::string& query_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_query_.find(query_key);
  return it == by_query_.end() ? 0 : it->second.size();
}

size_t ChangeStreamHub::TotalSubscriptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscriptions_.size();
}

}  // namespace quaestor::core
