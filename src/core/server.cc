#include "core/server.h"

#include <algorithm>
#include <string_view>
#include <unordered_set>

#include "common/hash.h"

namespace quaestor::core {

void ServerStats::ExportTo(obs::MetricsRegistry* registry,
                           const obs::Labels& labels) const {
  registry->Count("server_record_reads", labels, record_reads);
  registry->Count("server_query_reads", labels, query_reads);
  registry->Count("server_writes", labels, writes);
  registry->Count("server_not_modified", labels, not_modified);
  registry->Count("server_query_invalidations", labels, query_invalidations);
  registry->Count("server_record_invalidations", labels,
                  record_invalidations);
  registry->Count("server_uncacheable_queries", labels, uncacheable_queries);
  registry->Count("server_bloom_filter_requests", labels,
                  bloom_filter_requests);
  registry->Count("server_body_memo_hits", labels, body_memo_hits);
  registry->Count("server_body_memo_misses", labels, body_memo_misses);
  registry->Count("server_degraded_reads", labels, degraded_reads);
  registry->Count("server_degradation_flips", labels, degradation_flips);
  registry->Count("server_change_events_dropped", labels,
                  change_events_dropped);
  registry->Count("server_unavailable_responses", labels,
                  unavailable_responses);
  registry->Count("server_shed_responses", labels, shed_responses);
  registry->Count("server_deadline_exceeded_responses", labels,
                  deadline_exceeded_responses);
}

QuaestorServer::QuaestorServer(Clock* clock, db::Database* database,
                               ServerOptions options)
    : clock_(clock),
      db_(database),
      options_(options),
      ebf_(clock, options.bloom_params),
      ttl_estimator_(clock, options.ttl_options),
      active_list_(),
      capacity_(options.query_capacity),
      admission_(options.admission),
      fault_rng_(options.fault_seed) {
  invalidb_ = std::make_unique<invalidb::InvalidbCluster>(
      clock, options.invalidb_options,
      [this](const invalidb::Notification& n) { OnNotification(n); });
  if (options_.write_batching.enabled) {
    // Coalesced fan-out: each batched dispatch hands all of its
    // notifications over in one call, so the memo-erase/EBF/purge pass
    // runs once per distinct stale query.
    invalidb_->SetBatchSink(
        [this](const std::vector<invalidb::Notification>& batch) {
          OnNotificationBatch(batch);
        });
  }
  db_->AddChangeListener([this](const db::ChangeEvent& ev) {
    // Fault gates: a hard pipeline outage swallows the whole change
    // stream; a lossy pipeline drops a seeded fraction of it. Either way
    // the event is counted — the oracle/degradation machinery has to
    // cover the resulting missed invalidations.
    if (pipeline_down_.load(std::memory_order_acquire)) {
      change_events_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (options_.fault_change_loss_rate > 0.0) {
      bool drop;
      {
        std::lock_guard<std::mutex> lock(fault_mu_);
        drop = fault_rng_.NextBool(options_.fault_change_loss_rate);
      }
      if (drop) {
        change_events_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    if (options_.write_batching.enabled) {
      BufferChange(ev);
    } else {
      PipelineOnChange(ev);
    }
  });
  transactions_ = std::make_unique<TransactionManager>(this);
}

QuaestorServer::~QuaestorServer() { FlushChanges(); }

void QuaestorServer::BufferChange(const db::ChangeEvent& ev) {
  std::vector<db::ChangeEvent> flush;
  {
    std::lock_guard<std::mutex> lock(write_batch_mu_);
    if (write_batch_.empty()) write_batch_oldest_ = clock_->NowMicros();
    write_batch_.push_back(ev);
    const auto& wb = options_.write_batching;
    if (write_batch_.size() < wb.max_batch &&
        clock_->NowMicros() - write_batch_oldest_ < wb.flush_interval) {
      return;
    }
    flush = std::move(write_batch_);
    write_batch_.clear();
  }
  PipelineOnChangeBatch(std::move(flush));
}

size_t QuaestorServer::FlushChanges() {
  if (!options_.write_batching.enabled) return 0;
  std::vector<db::ChangeEvent> flush;
  {
    std::lock_guard<std::mutex> lock(write_batch_mu_);
    flush = std::move(write_batch_);
    write_batch_.clear();
  }
  const size_t flushed = flush.size();
  if (!flush.empty()) PipelineOnChangeBatch(std::move(flush));
  return flushed;
}

void QuaestorServer::SetExternalPipeline(ExternalPipeline pipeline) {
  external_pipeline_ = std::move(pipeline);
  has_external_pipeline_ = true;
}

void QuaestorServer::OnExternalNotifications(
    const std::vector<invalidb::Notification>& batch) {
  if (batch.empty()) return;
  OnNotificationBatch(batch);
}

Status QuaestorServer::PipelineRegisterQuery(
    const db::Query& query, const std::vector<db::Document>& initial,
    invalidb::EventMask events) {
  if (has_external_pipeline_) {
    return external_pipeline_.register_query(query, initial, events);
  }
  return invalidb_->RegisterQuery(query, initial, events);
}

void QuaestorServer::PipelineDeregisterQuery(const std::string& query_key) {
  if (has_external_pipeline_) {
    external_pipeline_.deregister_query(query_key);
    return;
  }
  invalidb_->DeregisterQuery(query_key);
}

void QuaestorServer::PipelineOnChange(const db::ChangeEvent& ev) {
  if (has_external_pipeline_) {
    external_pipeline_.on_change(ev);
    return;
  }
  invalidb_->OnChange(ev);
}

void QuaestorServer::PipelineOnChangeBatch(std::vector<db::ChangeEvent> batch) {
  if (has_external_pipeline_) {
    external_pipeline_.on_change_batch(std::move(batch));
    return;
  }
  invalidb_->OnChangeBatch(std::move(batch));
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status QuaestorServer::AdmitWrite(const RequestContext& ctx) {
  if (!options_.admission.enabled) return Status::OK();
  RequestContext eff = ctx;
  // Writes default to the lowest class: clients retry them and write
  // batching absorbs the backlog, so they are the first load to shed.
  if (eff.priority == Priority::kNormal) eff.priority = Priority::kLow;
  Status st = admission_.Admit(clock_->NowMicros(), eff);
  if (st.IsResourceExhausted()) {
    shed_responses_.fetch_add(1, std::memory_order_relaxed);
  } else if (st.IsDeadlineExceeded()) {
    deadline_exceeded_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  return st;
}

Result<db::Document> QuaestorServer::Insert(const Credentials& who,
                                            const std::string& table,
                                            const std::string& id,
                                            db::Value body,
                                            const RequestContext& ctx) {
  obs::ScopedSpan span(tracer_, "server.write");
  QUAESTOR_RETURN_IF_ERROR(AdmitWrite(ctx));
  QUAESTOR_RETURN_IF_ERROR(auth_.CheckWrite(who, table));
  QUAESTOR_RETURN_IF_ERROR(schemas_.Validate(table, body));
  auto res = db_->Insert(table, id, std::move(body));
  if (res.ok()) OnRecordWrite(res.value());
  return res;
}

Result<db::Document> QuaestorServer::Update(const Credentials& who,
                                            const std::string& table,
                                            const std::string& id,
                                            const db::Update& update,
                                            const RequestContext& ctx) {
  obs::ScopedSpan span(tracer_, "server.write");
  QUAESTOR_RETURN_IF_ERROR(AdmitWrite(ctx));
  QUAESTOR_RETURN_IF_ERROR(auth_.CheckWrite(who, table));
  if (schemas_.HasSchema(table)) {
    // Validate the post-image before committing.
    auto current = db_->Get(table, id);
    if (!current.ok()) return current.status();
    db::Value post = current->body;
    QUAESTOR_RETURN_IF_ERROR(update.ApplyTo(post));
    QUAESTOR_RETURN_IF_ERROR(schemas_.Validate(table, post));
  }
  auto res = db_->Apply(table, id, update);
  if (res.ok()) OnRecordWrite(res.value());
  return res;
}

Result<db::Document> QuaestorServer::Delete(const Credentials& who,
                                            const std::string& table,
                                            const std::string& id,
                                            const RequestContext& ctx) {
  obs::ScopedSpan span(tracer_, "server.write");
  QUAESTOR_RETURN_IF_ERROR(AdmitWrite(ctx));
  QUAESTOR_RETURN_IF_ERROR(auth_.CheckWrite(who, table));
  auto res = db_->Delete(table, id);
  if (res.ok()) OnRecordWrite(res.value());
  return res;
}

void QuaestorServer::OnRecordWrite(const db::Document& after) {
  const std::string key = after.Key();
  writes_.fetch_add(1, std::memory_order_relaxed);
  // The record's memoized body (if any) describes the old version; the
  // version bump already makes it unservable, drop it eagerly.
  MemoErase(key);
  // Feed the write-rate estimator (Poisson model, §4.2).
  ttl_estimator_.RecordWrite(key);
  // The record's cached copies are now stale: flag in the EBF (if any
  // issued TTL is outstanding) and purge invalidation-based caches.
  const bool was_cached = ebf_.ReportWrite(key);
  if (was_cached) {
    record_invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  PurgeEverywhere(key);
  // The write response itself is cacheable by the writer
  // (read-your-writes): track its implied TTL so a later foreign write
  // can flag that copy too.
  if (!after.deleted && !options_.fault_disable_ebf_read_tracking) {
    ebf_.ReportRead(key, options_.write_response_ttl);
  }
  // Query invalidations are detected by InvaliDB via the change stream
  // (wired in the constructor) and handled in OnNotification.
}

// ---------------------------------------------------------------------------
// Invalidation pipeline
// ---------------------------------------------------------------------------

void QuaestorServer::OnNotification(const invalidb::Notification& n) {
  obs::ScopedSpan span(tracer_, "server.on_notification");
  // Pipeline health: commit-to-processing lag of this notification, with
  // hysteresis so a single slow message does not flap the mode — degrade
  // past the budget, recover only once the lag is back under half of it.
  const Micros lag = std::max<Micros>(0, clock_->NowMicros() - n.event_time);
  last_notification_lag_.store(lag, std::memory_order_relaxed);
  if (options_.degradation.enabled) {
    const Micros budget = options_.degradation.staleness_budget;
    if (lag > budget) {
      lag_degraded_.store(true, std::memory_order_relaxed);
    } else if (lag <= budget / 2) {
      lag_degraded_.store(false, std::memory_order_relaxed);
    }
    RefreshDegradedState();
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = query_meta_.find(n.query_key);
    if (it != query_meta_.end()) {
      it->second.last_result_change =
          std::max(it->second.last_result_change, n.event_time);
      switch (n.type) {
        case invalidb::NotificationType::kAdd:
          it->second.adds++;
          break;
        case invalidb::NotificationType::kRemove:
          it->second.removes++;
          break;
        default:
          it->second.changes++;
      }
    }
  }
  query_invalidations_.fetch_add(1, std::memory_order_relaxed);
  // The cached result is stale: flag it in the EBF while issued TTLs are
  // outstanding and purge CDNs (end-to-end example step 4, Figure 7);
  // the memoized body died with the etag.
  MemoErase(n.query_key);
  ebf_.ReportWrite(n.query_key);
  PurgeEverywhere(n.query_key);
  // TTL feedback (Equation 2): the result's actual cache lifetime was the
  // span between its last read and this invalidation.
  const auto actual =
      active_list_.OnInvalidation(n.query_key, n.event_time);
  if (actual.has_value()) {
    ttl_estimator_.OnQueryInvalidated(n.query_key, *actual);
  }
  capacity_.OnInvalidation(n.query_key);
  std::vector<invalidb::NotificationSink> taps;
  {
    std::lock_guard<std::mutex> lock(purge_mu_);
    taps = notification_taps_;
  }
  for (const auto& tap : taps) tap(n);
}

void QuaestorServer::OnNotificationBatch(
    const std::vector<invalidb::Notification>& batch) {
  if (batch.empty()) return;
  obs::ScopedSpan span(tracer_, "server.on_notification");
  // Lag / hysteresis: record every notification's lag (the last one wins,
  // matching per-event processing order), then refresh the mode once.
  const Micros now = clock_->NowMicros();
  for (const invalidb::Notification& n : batch) {
    const Micros lag = std::max<Micros>(0, now - n.event_time);
    last_notification_lag_.store(lag, std::memory_order_relaxed);
    if (options_.degradation.enabled) {
      const Micros budget = options_.degradation.staleness_budget;
      if (lag > budget) {
        lag_degraded_.store(true, std::memory_order_relaxed);
      } else if (lag <= budget / 2) {
        lag_degraded_.store(false, std::memory_order_relaxed);
      }
    }
  }
  if (options_.degradation.enabled) RefreshDegradedState();
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    for (const invalidb::Notification& n : batch) {
      auto it = query_meta_.find(n.query_key);
      if (it == query_meta_.end()) continue;
      it->second.last_result_change =
          std::max(it->second.last_result_change, n.event_time);
      switch (n.type) {
        case invalidb::NotificationType::kAdd:
          it->second.adds++;
          break;
        case invalidb::NotificationType::kRemove:
          it->second.removes++;
          break;
        default:
          it->second.changes++;
      }
    }
  }
  query_invalidations_.fetch_add(batch.size(), std::memory_order_relaxed);
  // Stale-key pass, once per distinct query in first-occurrence order:
  // repeated flags/purges of the same key within one batch are redundant
  // (the first already made every copy unservable).
  std::unordered_set<std::string_view> seen;
  seen.reserve(batch.size());
  for (const invalidb::Notification& n : batch) {
    if (!seen.insert(n.query_key).second) continue;
    MemoErase(n.query_key);
    ebf_.ReportWrite(n.query_key);
    PurgeEverywhere(n.query_key);
  }
  // TTL feedback and capacity accounting stay per-notification: the
  // active list needs every invalidation timestamp.
  for (const invalidb::Notification& n : batch) {
    const auto actual =
        active_list_.OnInvalidation(n.query_key, n.event_time);
    if (actual.has_value()) {
      ttl_estimator_.OnQueryInvalidated(n.query_key, *actual);
    }
    capacity_.OnInvalidation(n.query_key);
  }
  std::vector<invalidb::NotificationSink> taps;
  {
    std::lock_guard<std::mutex> lock(purge_mu_);
    taps = notification_taps_;
  }
  for (const invalidb::Notification& n : batch) {
    for (const auto& tap : taps) tap(n);
  }
}

void QuaestorServer::AddNotificationTap(invalidb::NotificationSink tap) {
  std::lock_guard<std::mutex> lock(purge_mu_);
  notification_taps_.push_back(std::move(tap));
}

void QuaestorServer::PurgeEverywhere(const std::string& key) {
  std::vector<PurgeTarget> targets;
  {
    std::lock_guard<std::mutex> lock(purge_mu_);
    targets = purge_targets_;
  }
  for (const PurgeTarget& t : targets) t(key);
}

void QuaestorServer::AddPurgeTarget(PurgeTarget target) {
  std::lock_guard<std::mutex> lock(purge_mu_);
  purge_targets_.push_back(std::move(target));
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void QuaestorServer::RegisterQueryShape(const db::Query& query) {
  const std::string key = query.NormalizedKey();
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = query_meta_.find(key);
  if (it != query_meta_.end()) return;
  QueryMeta meta;
  meta.query = query;
  meta.first_seen = clock_->NowMicros();
  query_meta_[key] = std::move(meta);
}

webcache::HttpResponse QuaestorServer::Fetch(
    const webcache::HttpRequest& request) {
  obs::ScopedSpan span(tracer_, "server.fetch");
  span.Annotate("key", request.key);
  if (unavailable_.load(std::memory_order_acquire)) {
    unavailable_responses_.fetch_add(1, std::memory_order_relaxed);
    webcache::HttpResponse resp;
    resp.unavailable = true;  // 503: retryable, never cacheable
    return resp;
  }
  if (options_.admission.enabled) {
    const Micros now = clock_->NowMicros();
    if (request.context.Expired(now)) {
      // Dead on arrival: the client has already given up on this
      // response, don't burn capacity producing it.
      deadline_exceeded_responses_.fetch_add(1, std::memory_order_relaxed);
      webcache::HttpResponse resp;
      resp.deadline_exceeded = true;
      return resp;
    }
    RequestContext eff = request.context;
    // Conditional revalidations are usually a cheap 304 and keep cache
    // copies fresh; admit them ahead of plain reads.
    if (request.has_if_none_match && eff.priority == Priority::kNormal) {
      eff.priority = Priority::kHigh;
    }
    const Status admit = admission_.Admit(now, eff);
    if (!admit.ok()) {
      webcache::HttpResponse resp;
      if (admit.IsDeadlineExceeded()) {
        deadline_exceeded_responses_.fetch_add(1, std::memory_order_relaxed);
        resp.deadline_exceeded = true;
      } else {
        shed_responses_.fetch_add(1, std::memory_order_relaxed);
        resp.shed = true;  // 429: saturated, not down
      }
      return resp;
    }
  }
  if (request.key.rfind("q:", 0) == 0) {
    db::Query query;
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      auto it = query_meta_.find(request.key);
      if (it == query_meta_.end()) {
        webcache::HttpResponse resp;
        resp.ok = false;
        return resp;
      }
      query = it->second.query;
    }
    return FetchQuery(request, query);
  }
  return FetchRecord(request);
}

webcache::HttpResponse QuaestorServer::FetchRecord(
    const webcache::HttpRequest& request) {
  obs::ScopedSpan span(tracer_, "server.record");
  record_reads_.fetch_add(1, std::memory_order_relaxed);
  webcache::HttpResponse resp;
  const size_t slash = request.key.find('/');
  if (slash == std::string::npos) return resp;  // malformed key
  const std::string table = request.key.substr(0, slash);
  const std::string id = request.key.substr(slash + 1);
  // Authorization: 403 for callers without read access; non-public
  // tables are served uncacheable so shared caches never hold them.
  if (!auth_.CheckRead(auth_.Resolve(request.auth_token), table).ok()) {
    return resp;  // 403
  }
  const bool cacheable_table = auth_.ReadIsPublic(table);
  auto doc = db_->Get(table, id);
  if (!doc.ok()) return resp;  // 404

  resp.ok = true;
  resp.etag = doc->version;
  resp.last_modified = doc->write_time;
  {
    obs::ScopedSpan ttl_span(tracer_, "ttl.estimate");
    resp.ttl = options_.cache_records && cacheable_table
                   ? ttl_estimator_.RecordTtl(request.key)
                   : 0;
  }
  const Micros uncapped_ttl = resp.ttl;
  resp.ttl = CapTtl(resp.ttl);
  if (resp.ttl != uncapped_ttl) {
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  if (request.has_if_none_match && request.if_none_match == doc->version) {
    resp.not_modified = true;
    not_modified_.fetch_add(1, std::memory_order_relaxed);
  } else if (auto memo = MemoLookup(request.key, doc->version,
                                    ttl::ResultRepresentation::kObjectList)) {
    // Record bodies carry no TTLs, so a memoized body is valid whenever
    // the version still matches (degraded or not).
    resp.body = memo->body;
    body_memo_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    auto entry = std::make_shared<MemoEntry>();
    entry->etag = doc->version;
    doc->body.AppendJson(&entry->body);
    resp.body = entry->body;
    MemoStore(request.key, std::move(entry));
    body_memo_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Track the issued TTL so a later write can flag staleness (§3.3).
  if (!options_.fault_disable_ebf_read_tracking) {
    obs::ScopedSpan ebf_span(tracer_, "ebf.report_read");
    ebf_.ReportRead(request.key, resp.ttl);
  }
  return resp;
}

ttl::ResultRepresentation QuaestorServer::ChooseRepresentationFor(
    const std::string& query_key, size_t result_size) {
  switch (options_.representation) {
    case RepresentationPolicy::kAlwaysObjectList:
      return ttl::ResultRepresentation::kObjectList;
    case RepresentationPolicy::kAlwaysIdList:
      return ttl::ResultRepresentation::kIdList;
    case RepresentationPolicy::kAuto:
      break;
  }
  ttl::RepresentationCosts costs;
  costs.result_size = result_size;
  costs.record_hit_rate = options_.assumed_record_hit_rate;
  costs.invalidation_cost_ms = options_.round_trip_ms;
  costs.record_miss_latency_ms = options_.record_miss_latency_ms;
  costs.client_fanout = options_.assumed_client_fanout;
  double age_s = 1.0;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = query_meta_.find(query_key);
    if (it != query_meta_.end()) {
      age_s = std::max(
          1.0, MicrosToSeconds(clock_->NowMicros() - it->second.first_seen));
      costs.change_rate = static_cast<double>(it->second.changes) / age_s;
      costs.membership_rate =
          static_cast<double>(it->second.adds + it->second.removes) / age_s;
    }
  }
  const auto entry = active_list_.Find(query_key);
  costs.read_rate =
      entry.has_value()
          ? std::max(1.0, static_cast<double>(entry->read_count) / age_s)
          : 1.0;
  return ttl::ChooseRepresentation(costs);
}

ttl::ResultRepresentation QuaestorServer::DecideRepresentation(
    const std::string& query_key, size_t result_size, bool* need_switch) {
  *need_switch = false;
  if (options_.representation != RepresentationPolicy::kAuto) {
    return ChooseRepresentationFor(query_key, result_size);
  }
  const Micros now = clock_->NowMicros();
  bool evaluate = false;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = query_meta_.find(query_key);
    if (it != query_meta_.end()) {
      QueryMeta& m = it->second;
      if (!m.has_chosen_representation ||
          now - m.representation_chosen_at >=
              kRepresentationDecisionInterval) {
        evaluate = true;
      } else {
        return m.chosen_representation;
      }
    }
  }
  ttl::ResultRepresentation fresh =
      ChooseRepresentationFor(query_key, result_size);
  if (!evaluate) return fresh;
  std::lock_guard<std::mutex> lock(meta_mu_);
  auto it = query_meta_.find(query_key);
  if (it == query_meta_.end()) return fresh;
  QueryMeta& m = it->second;
  if (m.has_chosen_representation && fresh != m.chosen_representation) {
    *need_switch = true;
  }
  m.has_chosen_representation = true;
  m.chosen_representation = fresh;
  m.representation_chosen_at = now;
  return fresh;
}

webcache::HttpResponse QuaestorServer::FetchQuery(
    const webcache::HttpRequest& request, const db::Query& query) {
  obs::ScopedSpan span(tracer_, "server.query");
  query_reads_.fetch_add(1, std::memory_order_relaxed);
  const std::string& key = request.key;
  const Micros now = clock_->NowMicros();

  // Authorization mirrors the record path: 403 without read access,
  // uncacheable results for non-public tables.
  if (!auth_.CheckRead(auth_.Resolve(request.auth_token), query.table())
           .ok()) {
    webcache::HttpResponse denied;
    return denied;  // 403
  }
  const bool cacheable_table = auth_.ReadIsPublic(query.table());

  // Capacity management (§4.1): only sufficiently cacheable queries are
  // admitted; a displaced query is evicted from the cached set.
  capacity_.OnRead(key);
  bool admitted = false;
  if (options_.cache_queries && cacheable_table) {
    std::optional<std::string> evicted;
    admitted = capacity_.Admit(key, &evicted);
    if (evicted.has_value()) EvictQuery(*evicted);
  }

  // Execute the (windowed) query.
  std::vector<db::Document> docs;
  {
    obs::ScopedSpan db_span(tracer_, "db.execute");
    docs = db_->Execute(query);
  }

  // Deadline re-check after the expensive step: if execution outlived the
  // request, abandon before serialization/registration — the client has
  // already stopped waiting, and the stale-serve path needs the slot more.
  if (options_.admission.enabled &&
      request.context.Expired(clock_->NowMicros())) {
    deadline_exceeded_responses_.fetch_add(1, std::memory_order_relaxed);
    webcache::HttpResponse late;
    late.deadline_exceeded = true;
    return late;
  }

  // Assemble the response. A representation switch changes the InvaliDB
  // event mask, so the query is re-registered; outstanding copies of the
  // old representation are conservatively flagged stale and purged (an
  // object-list copy would otherwise miss `change` invalidations after a
  // switch to an id-list subscription).
  bool representation_switched = false;
  QueryResponse qr;
  qr.representation =
      DecideRepresentation(key, docs.size(), &representation_switched);
  if (representation_switched && active_list_.IsRegistered(key)) {
    // Barrier: buffered changes precede the deregistration in stream
    // order; flushing after it would silently drop their notifications.
    FlushChanges();
    PipelineDeregisterQuery(key);
    active_list_.SetRegistered(key, false);
    MemoErase(key);
    ebf_.ReportWrite(key);
    PurgeEverywhere(key);
  }
  std::vector<std::string> member_keys;
  member_keys.reserve(docs.size());
  for (const db::Document& d : docs) {
    const std::string record_key = d.Key();
    qr.ids.push_back(record_key);
    member_keys.push_back(record_key);
  }
  Micros ttl = 0;
  if (admitted) {
    {
      obs::ScopedSpan ttl_span(tracer_, "ttl.estimate");
      ttl = ttl_estimator_.QueryTtl(key, member_keys);
    }
    const Micros capped = CapTtl(ttl);
    if (capped != ttl) {
      degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    ttl = capped;
  } else {
    uncacheable_queries_.fetch_add(1, std::memory_order_relaxed);
  }
  const bool object_list =
      qr.representation == ttl::ResultRepresentation::kObjectList;
  if (object_list) {
    // Ids and versions alone determine the object-list etag: fill them
    // before the 304/memo decision so neither path copies document bodies.
    qr.versions.reserve(docs.size());
    for (const db::Document& d : docs) qr.versions.push_back(d.version);
  }

  webcache::HttpResponse resp;
  resp.ok = true;
  resp.etag = qr.ComputeEtag();
  resp.ttl = ttl;
  // Last-Modified of a query result: the latest of its members' commit
  // times and the last InvaliDB-detected result change (covers removals,
  // whose commit is no longer visible among the members).
  for (const db::Document& d : docs) {
    resp.last_modified = std::max(resp.last_modified, d.write_time);
  }
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = query_meta_.find(key);
    if (it != query_meta_.end()) {
      resp.last_modified =
          std::max(resp.last_modified, it->second.last_result_change);
    }
  }
  if (request.has_if_none_match && request.if_none_match == resp.etag) {
    // 304: no body leaves the server and no new record copies are issued,
    // so per-record TTL estimation and EBF tracking are skipped — every
    // copy the revalidating client holds was tracked when its body was
    // first served.
    resp.not_modified = true;
    not_modified_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Bodies embed per-record TTLs, so degraded mode (which caps them)
    // must neither serve nor publish memo entries.
    const bool memo_usable = !degraded();
    std::shared_ptr<const MemoEntry> memo =
        memo_usable ? MemoLookup(key, resp.etag, qr.representation) : nullptr;
    if (memo != nullptr) {
      resp.body = memo->body;
      // Re-issue the memoized record TTLs: the embedded values are
      // durations from receipt, so each serve hands out fresh copies the
      // EBF must keep tracking (issued == tracked preserves ∆-atomicity).
      if (!options_.fault_disable_ebf_read_tracking) {
        for (const auto& [record_key, record_ttl] : memo->record_reads) {
          ebf_.ReportRead(record_key, record_ttl);
        }
      }
      body_memo_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      auto entry = std::make_shared<MemoEntry>();
      if (object_list) {
        qr.docs.reserve(docs.size());
        qr.record_ttls.reserve(docs.size());
        entry->record_reads.reserve(docs.size());
        for (const db::Document& d : docs) {
          qr.docs.push_back(d.body);
          const Micros record_ttl =
              CapTtl(options_.cache_records && cacheable_table
                         ? ttl_estimator_.RecordTtl(d.Key())
                         : 0);
          qr.record_ttls.push_back(record_ttl);
          entry->record_reads.emplace_back(d.Key(), record_ttl);
          // The response implicitly issues per-record TTLs (results are
          // inserted into caches as individual entries, §6.2).
          if (!options_.fault_disable_ebf_read_tracking) {
            ebf_.ReportRead(d.Key(), record_ttl);
          }
        }
      }
      entry->etag = resp.etag;
      entry->representation = qr.representation;
      qr.AppendJsonTo(&entry->body);
      resp.body = entry->body;
      if (memo_usable) MemoStore(key, std::move(entry));
      body_memo_misses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (admitted) {
    // Register in InvaliDB before the response can be cached: every
    // subsequent change within the TTL must be detected (Figure 7 step 2).
    if (!active_list_.IsRegistered(key)) {
      const invalidb::EventMask mask =
          qr.representation == ttl::ResultRepresentation::kIdList
              ? invalidb::kEventsIdList
              : invalidb::kEventsObjectList;
      std::vector<db::Document> registration_set = docs;
      if (!query.IsStateless()) {
        // Stateful queries register the unwindowed predicate set.
        db::Query base(query.table(), query.filter());
        registration_set = db_->Execute(base);
      }
      Status st;
      {
        obs::ScopedSpan reg_span(tracer_, "invalidb.register");
        // Barrier: buffered changes committed before this registration's
        // evaluation; flushed afterwards they would re-match against the
        // fresh query as spurious post-activation stream events.
        FlushChanges();
        st = PipelineRegisterQuery(query, registration_set, mask);
      }
      if (st.ok() || st.IsAlreadyExists()) {
        active_list_.SetRegistered(key, true);
      }
    }
    active_list_.OnRead(key, now, ttl);
    if (!options_.fault_disable_ebf_read_tracking) {
      obs::ScopedSpan ebf_span(tracer_, "ebf.report_read");
      ebf_.ReportRead(key, ttl);
    }
  }
  return resp;
}

void QuaestorServer::EvictQuery(const std::string& query_key) {
  // Stop maintaining the query. Outstanding cached copies can no longer be
  // invalidated, so conservatively mark the key stale for as long as any
  // issued TTL is unexpired and purge CDNs now.
  FlushChanges();  // barrier: pre-eviction changes must match while registered
  PipelineDeregisterQuery(query_key);
  active_list_.SetRegistered(query_key, false);
  MemoErase(query_key);
  ebf_.ReportWrite(query_key);
  PurgeEverywhere(query_key);
  ttl_estimator_.Forget(query_key);
}

ebf::BloomFilter QuaestorServer::BloomSnapshot() {
  bloom_filter_requests_.fetch_add(1, std::memory_order_relaxed);
  return ebf_.AggregateSnapshot();
}

ebf::BloomFilter QuaestorServer::BloomSnapshotForTable(
    const std::string& table) {
  bloom_filter_requests_.fetch_add(1, std::memory_order_relaxed);
  return ebf_.Partition(table)->Snapshot();
}

// ---------------------------------------------------------------------------
// Fault tolerance & degradation
// ---------------------------------------------------------------------------

bool QuaestorServer::degraded() const {
  if (!options_.degradation.enabled) return false;
  if (manual_degraded_.load(std::memory_order_relaxed) ||
      pipeline_down_.load(std::memory_order_relaxed) ||
      lag_degraded_.load(std::memory_order_relaxed) ||
      resizing_.load(std::memory_order_relaxed)) {
    return true;
  }
  // A dead matching node silently loses every invalidation routed through
  // it — that alone forfeits the invalidation guarantee.
  return invalidb_->AliveCount() < invalidb_->NumNodes();
}

Micros QuaestorServer::CapTtl(Micros ttl) const {
  if (ttl <= 0 || !degraded()) return ttl;
  return std::min(ttl, options_.degradation.degraded_ttl_cap);
}

void QuaestorServer::FlagAllCachedCopies() {
  // The EBF tracks exactly the keys (records and queries) with unexpired
  // issued TTLs — a strict superset of the currently-registered queries.
  // Registered queries alone would miss cold queries that fell off the
  // active list but still sit in some cache with a long TTL.
  for (const std::string& key : ebf_.FlagAllTracked()) {
    PurgeEverywhere(key);
  }
  // Memoized bodies embed uncapped record TTLs from before the flip —
  // none of them may be replayed.
  MemoClear();
}

void QuaestorServer::RefreshDegradedState() {
  const bool now_degraded = degraded();
  if (was_degraded_.exchange(now_degraded) == now_degraded) return;
  degradation_flips_.fetch_add(1, std::memory_order_relaxed);
  if (now_degraded) FlagAllCachedCopies();
}

void QuaestorServer::SetDegraded(bool degraded) {
  manual_degraded_.store(degraded, std::memory_order_relaxed);
  RefreshDegradedState();
}

void QuaestorServer::SetPipelineDown(bool down) {
  // Barrier either way: events buffered before the outage boundary belong
  // to the healthy stream and must be matched on the pre-outage state.
  FlushChanges();
  if (pipeline_down_.exchange(down, std::memory_order_acq_rel) == down) {
    return;
  }
  if (!down) {
    // Recovery. The matchers missed every change committed during the
    // outage, so their membership state is untrustworthy: crash-restart
    // each node against the authoritative database (the same path a
    // single-node failover takes), then conservatively invalidate every
    // key with an outstanding TTL — copies cached during the outage may
    // be stale.
    const size_t nodes = invalidb_->NumNodes();
    for (size_t i = 0; i < nodes; ++i) {
      invalidb_->KillNode(i);
      invalidb_->RestartNode(
          i, [this](const db::Query& q) { return db_->Execute(q); });
    }
    invalidb_->Flush();
    FlagAllCachedCopies();
    lag_degraded_.store(false, std::memory_order_relaxed);
    last_notification_lag_.store(0, std::memory_order_relaxed);
  }
  RefreshDegradedState();
}

size_t QuaestorServer::ResizeInvalidb(size_t new_query_partitions,
                                      size_t new_object_partitions) {
  // Enter degraded mode before the cutover: notifications may be delayed
  // by the migration pause, so the TTL cap must already bound staleness
  // for responses issued during it (flags outstanding long-TTL copies).
  resizing_.store(true, std::memory_order_relaxed);
  RefreshDegradedState();
  // Barrier: buffered changes must drain onto the old grid before the
  // cutover evaluates every query against the authoritative database.
  FlushChanges();
  const size_t reinstalled = invalidb_->Resize(
      new_query_partitions, new_object_partitions,
      [this](const db::Query& q) { return db_->Execute(q); });
  resizing_.store(false, std::memory_order_relaxed);
  RefreshDegradedState();
  return reinstalled;
}

PipelineHealth QuaestorServer::pipeline_health() const {
  PipelineHealth h;
  h.degraded = degraded();
  h.pipeline_down = pipeline_down_.load(std::memory_order_relaxed);
  h.resizing = resizing_.load(std::memory_order_relaxed);
  h.nodes_alive = invalidb_->AliveCount();
  h.nodes_total = invalidb_->NumNodes();
  h.last_notification_lag =
      last_notification_lag_.load(std::memory_order_relaxed);
  return h;
}

ServerStats QuaestorServer::stats() const {
  ServerStats s;
  s.record_reads = record_reads_.load(std::memory_order_relaxed);
  s.query_reads = query_reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.not_modified = not_modified_.load(std::memory_order_relaxed);
  s.query_invalidations =
      query_invalidations_.load(std::memory_order_relaxed);
  s.record_invalidations =
      record_invalidations_.load(std::memory_order_relaxed);
  s.uncacheable_queries =
      uncacheable_queries_.load(std::memory_order_relaxed);
  s.bloom_filter_requests =
      bloom_filter_requests_.load(std::memory_order_relaxed);
  s.body_memo_hits = body_memo_hits_.load(std::memory_order_relaxed);
  s.body_memo_misses = body_memo_misses_.load(std::memory_order_relaxed);
  s.degraded_reads = degraded_reads_.load(std::memory_order_relaxed);
  s.degradation_flips = degradation_flips_.load(std::memory_order_relaxed);
  s.change_events_dropped =
      change_events_dropped_.load(std::memory_order_relaxed);
  s.unavailable_responses =
      unavailable_responses_.load(std::memory_order_relaxed);
  s.shed_responses = shed_responses_.load(std::memory_order_relaxed);
  s.deadline_exceeded_responses =
      deadline_exceeded_responses_.load(std::memory_order_relaxed);
  return s;
}

std::shared_ptr<const QuaestorServer::MemoEntry> QuaestorServer::MemoLookup(
    const std::string& key, uint64_t etag,
    ttl::ResultRepresentation representation) const {
  MemoShard& shard = body_memo_[Hash64(key) % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  const auto& entry = it->second;
  if (entry->etag != etag || entry->representation != representation) {
    return nullptr;
  }
  return entry;
}

void QuaestorServer::MemoStore(const std::string& key,
                               std::shared_ptr<const MemoEntry> entry) const {
  MemoShard& shard = body_memo_[Hash64(key) % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries[key] = std::move(entry);
}

void QuaestorServer::MemoErase(const std::string& key) const {
  MemoShard& shard = body_memo_[Hash64(key) % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.entries.erase(key);
}

void QuaestorServer::MemoClear() const {
  for (MemoShard& shard : body_memo_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
}

void QuaestorServer::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  invalidb_->set_tracer(tracer);
}

void QuaestorServer::ExportMetrics(obs::MetricsRegistry* registry) const {
  stats().ExportTo(registry);
  if (options_.admission.enabled) admission_.stats().ExportTo(registry);
  ebf_.AggregateStats().ExportTo(registry);
  invalidb_->stats().ExportTo(registry);
  registry->GetTimer("invalidb_notification_latency_ms")
      ->MergeHistogram(invalidb_->LatencyHistogram());
  registry->GetTimer("invalidb_events_per_batch")
      ->MergeHistogram(invalidb_->EventsPerBatchHistogram());
}

}  // namespace quaestor::core
