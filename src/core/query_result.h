#ifndef QUAESTOR_CORE_QUERY_RESULT_H_
#define QUAESTOR_CORE_QUERY_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "db/value.h"
#include "ttl/representation.h"

namespace quaestor::core {

/// The wire representation of a cached query result (§4.2 "Representing
/// Query Results"). An object-list carries the full documents (plus the
/// version and a record TTL per member so clients can populate per-record
/// cache entries as a side effect — §6.2: "All records in a result are
/// inserted into the cache as individual entries"); an id-list carries
/// only the record keys and clients assemble the result with per-record
/// fetches.
struct QueryResponse {
  ttl::ResultRepresentation representation =
      ttl::ResultRepresentation::kObjectList;
  /// Record keys ("table/id") in result order.
  std::vector<std::string> ids;
  /// Object-list only (parallel to ids).
  std::vector<db::Value> docs;
  std::vector<uint64_t> versions;
  std::vector<Micros> record_ttls;

  /// Canonical JSON encoding (the HTTP body).
  std::string ToJson() const;

  /// Appends the canonical JSON encoding to *out in a single pass —
  /// byte-identical to ToJson (which wraps this) but without building an
  /// intermediate db::Value tree, so object-list serialization never
  /// copies the member documents.
  void AppendJsonTo(std::string* out) const;

  /// Parses a response body.
  static Result<QueryResponse> FromJson(std::string_view json);

  /// Version tag of the result: hashes ids for id-lists (invalidated only
  /// on membership change) and ids+versions for object-lists (§4.1).
  uint64_t ComputeEtag() const;

  size_t size() const { return ids.size(); }
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_QUERY_RESULT_H_
