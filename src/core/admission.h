#ifndef QUAESTOR_CORE_ADMISSION_H_
#define QUAESTOR_CORE_ADMISSION_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/request_context.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace quaestor::core {

/// Admission-control configuration. Disabled by default: with
/// `enabled = false` the controller admits everything unconditionally and
/// the server's request path is byte-identical to a build without it.
struct AdmissionOptions {
  bool enabled = false;
  /// Virtual worker count: how many requests the server is modelled to
  /// process concurrently. Mirrors sim::QueueingResource so the simulated
  /// clock drives queueing without real threads.
  size_t max_concurrent = 4;
  /// Bound on the wait queue, in requests (backlog beyond the workers).
  /// Past this, even critical traffic is rejected — an unbounded queue is
  /// exactly the failure mode this controller exists to remove.
  size_t max_queue = 256;
  /// Modelled per-request service cost charged to a worker on admit.
  Micros service_cost = 2 * kMicrosPerMilli;
  /// CoDel-style shedding: once the queue delay has exceeded
  /// `target_queue_delay` continuously for `codel_interval`, the
  /// controller enters shedding mode and drops low-priority work until
  /// the delay drops back under target.
  Micros target_queue_delay = 20 * kMicrosPerMilli;
  Micros codel_interval = 100 * kMicrosPerMilli;
};

/// Why a request was not admitted.
enum class ShedReason {
  kQueueFull = 0,   // wait queue at capacity
  kOverload = 1,    // CoDel shedding mode, priority too low
  kDeadline = 2,    // queue delay alone would miss the deadline
};

/// Counters per priority class plus a queue-delay histogram.
struct AdmissionStats {
  std::array<uint64_t, 4> admitted{};       // indexed by Priority
  std::array<uint64_t, 4> shed_queue_full{};
  std::array<uint64_t, 4> shed_overload{};
  std::array<uint64_t, 4> shed_deadline{};
  Histogram queue_delay_ms;

  uint64_t total_admitted() const {
    uint64_t n = 0;
    for (uint64_t v : admitted) n += v;
    return n;
  }
  uint64_t total_shed() const {
    uint64_t n = 0;
    for (size_t i = 0; i < 4; ++i) {
      n += shed_queue_full[i] + shed_overload[i] + shed_deadline[i];
    }
    return n;
  }

  /// Adds these totals into `admission_*` registry counters, one labelled
  /// series per priority class.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// Concurrency-limited admission with a bounded wait queue and CoDel-style
/// queue-delay shedding (Nichols & Jacobson: shed when delay stays above
/// target for an interval, not on instantaneous spikes).
///
/// The queue is virtual: `max_concurrent` worker free-times advance by
/// `service_cost` per admitted request, so queue delay is
/// `min(free_times) - now`. This models saturation identically under the
/// simulated and real clocks and never blocks the caller — overload policy
/// stays deterministic and testable.
///
/// Shedding is priority-tiered. In shedding mode kLow is dropped; past
/// 2x target delay kNormal too; past 4x kHigh. kCritical (invalidation
/// traffic) is only ever rejected by the hard queue bound, because losing
/// it would turn overload into inconsistency. Requests whose remaining
/// deadline cannot cover the current queue delay are rejected with
/// kDeadlineExceeded without being charged to a worker: work that is
/// already doomed must not consume capacity.
///
/// Thread-safe.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = AdmissionOptions());

  /// Decides one request. OK means admitted (a worker was charged);
  /// otherwise kResourceExhausted (shed) or kDeadlineExceeded. When
  /// disabled, always OK with zero queue delay and no state change.
  /// `queue_delay` (optional) receives the virtual delay the request
  /// would wait before service.
  Status Admit(Micros now, const RequestContext& ctx,
               Micros* queue_delay = nullptr);

  /// Charges every virtual worker `extra` µs of service time starting at
  /// `now` — the whole origin stalls (GC pause, noisy neighbour). Fault
  /// harnesses feed seeded FaultInjector latency spikes through this to
  /// turn origin slowness into real queue pressure. No-op when disabled.
  void InjectDelay(Micros now, Micros extra);

  /// True while CoDel shedding mode is engaged (observability).
  bool shedding() const;

  /// Virtual queue delay at `now` (µs); 0 when idle or disabled.
  Micros QueueDelay(Micros now) const;

  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  Micros QueueDelayLocked(Micros now) const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::vector<Micros> next_free_;  // one entry per virtual worker
  /// When the queue delay first rose above target (0 = currently under).
  Micros above_target_since_ = 0;
  bool shedding_ = false;
  AdmissionStats stats_;
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_ADMISSION_H_
