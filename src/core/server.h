#ifndef QUAESTOR_CORE_SERVER_H_
#define QUAESTOR_CORE_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/request_context.h"
#include "common/result.h"
#include "core/admission.h"
#include "core/auth.h"
#include "core/query_result.h"
#include "core/transactions.h"
#include "db/database.h"
#include "db/schema.h"
#include "ebf/expiring_bloom_filter.h"
#include "invalidb/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ttl/active_list.h"
#include "ttl/capacity_manager.h"
#include "ttl/representation.h"
#include "ttl/ttl_estimator.h"
#include "webcache/http.h"

namespace quaestor::core {

/// Which representation the server uses for query results.
enum class RepresentationPolicy {
  /// Cost-based decision per query (§4.2).
  kAuto,
  kAlwaysObjectList,
  kAlwaysIdList,
};

/// Server configuration.
struct ServerOptions {
  ttl::TtlOptions ttl_options;
  ebf::BloomParams bloom_params;
  invalidb::InvalidbOptions invalidb_options;
  /// Maximum simultaneously maintained (cached) queries; 0 = unlimited
  /// (the InvaliDB capacity management model, §4.1).
  size_t query_capacity = 0;
  RepresentationPolicy representation = RepresentationPolicy::kAlwaysObjectList;
  /// Disable caching entirely for records/queries (baselines).
  bool cache_records = true;
  bool cache_queries = true;
  /// Inputs for the kAuto representation decision that the server cannot
  /// observe itself (client-side record hit rate, hop latencies, number
  /// of caches holding copies).
  double assumed_record_hit_rate = 0.9;
  double round_trip_ms = 145.0;
  double record_miss_latency_ms = 8.0;
  double assumed_client_fanout = 10.0;

  /// Cache lifetime granted to write responses: the writing session keeps
  /// its own after-image for read-your-writes, so the server must track
  /// an issued TTL for it — otherwise a later foreign write could not
  /// flag the writer's copy in the EBF (∆-atomicity would break for up to
  /// the client's own-write cache lifetime). Clients must not cache own
  /// writes longer than this.
  Micros write_response_ttl = 60 * kMicrosPerSecond;

  /// Fault injection (testing only): stop tracking issued record-read TTLs
  /// in the EBF. Writes then see no outstanding copy and never flag the
  /// key, so cached copies go stale beyond ∆ — the consistency oracle must
  /// catch this (see src/check).
  bool fault_disable_ebf_read_tracking = false;

  /// Fault injection: drop this fraction of change-stream events before
  /// they reach InvaliDB (a lossy invalidation pipeline). Deterministic
  /// from fault_seed. Query invalidations are then best-effort — exactly
  /// the regime graceful degradation exists for.
  double fault_change_loss_rate = 0.0;
  uint64_t fault_seed = 0x5eed;

  /// Write-path batching: buffer committed change events and ship them to
  /// InvaliDB as one OnChangeBatch per flush (size- or age-triggered)
  /// instead of one OnChange per write. Notification output is identical
  /// to the per-event path; registrations/deregistrations/resizes flush
  /// the buffer first (barrier) so stream order is preserved.
  struct WriteBatchingOptions {
    bool enabled = false;
    size_t max_batch = 64;
    Micros flush_interval = 1 * kMicrosPerMilli;
  };
  WriteBatchingOptions write_batching;

  /// Graceful degradation (the paper's Δ argument, §3.1): when the
  /// invalidation pipeline is down, lagging, or has dead matching nodes,
  /// the server caps every issued TTL so expiration alone bounds
  /// staleness — invalidation-capable caches degrade to pure expiration
  /// caches, and flip back once the pipeline is healthy.
  struct DegradationOptions {
    bool enabled = false;
    /// Notification lag beyond which the pipeline counts as unhealthy;
    /// recovery needs the lag back under half of this (hysteresis).
    Micros staleness_budget = 5 * kMicrosPerSecond;
    /// TTL ceiling applied to all responses while degraded (the degraded
    /// Δ: reads are then at most this stale once caches drain).
    Micros degraded_ttl_cap = 1 * kMicrosPerSecond;
  };
  DegradationOptions degradation;

  /// Overload protection: concurrency-limited admission with CoDel-style
  /// queue-delay shedding (see core/admission.h). Off by default; when
  /// disabled the request path is byte-identical to a build without it.
  AdmissionOptions admission;
};

/// Health-check snapshot of the invalidation pipeline.
struct PipelineHealth {
  bool degraded = false;       // TTL cap currently in force
  bool pipeline_down = false;  // hard outage (SetPipelineDown)
  bool resizing = false;       // live InvaliDB repartition in progress
  size_t nodes_alive = 0;
  size_t nodes_total = 0;
  /// Commit-to-processing lag of the most recent notification (µs).
  Micros last_notification_lag = 0;
};

/// Server-side counters.
struct ServerStats {
  uint64_t record_reads = 0;
  uint64_t query_reads = 0;
  uint64_t writes = 0;
  uint64_t not_modified = 0;  // 304 responses
  uint64_t query_invalidations = 0;
  uint64_t record_invalidations = 0;
  uint64_t uncacheable_queries = 0;  // served with ttl 0 (capacity)
  uint64_t bloom_filter_requests = 0;
  /// Response-body memoization: misses/revalidations served from the
  /// per-(key, etag) serialized-body memo vs freshly serialized.
  uint64_t body_memo_hits = 0;
  uint64_t body_memo_misses = 0;
  /// Fault-tolerance accounting.
  uint64_t degraded_reads = 0;        // responses served with a capped TTL
  uint64_t degradation_flips = 0;     // healthy <-> degraded transitions
  uint64_t change_events_dropped = 0; // lost before reaching InvaliDB
  uint64_t unavailable_responses = 0; // SetUnavailable fault in force
  /// Overload control: requests rejected by the admission controller
  /// (kResourceExhausted) or abandoned on an expired deadline.
  uint64_t shed_responses = 0;
  uint64_t deadline_exceeded_responses = 0;

  /// Adds these totals into `server_*` registry counters.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The QUAESTOR database service (Figure 3): DBaaS middleware that serves
/// records and query results over the HTTP caching model, maintains the
/// Expiring Bloom Filter, estimates TTLs, registers cached queries in
/// InvaliDB, and purges invalidation-based caches when results change.
///
/// Implements webcache::Origin so cache hierarchies can forward misses and
/// revalidations to it. Thread-safe.
class QuaestorServer : public webcache::Origin {
 public:
  /// A purge hook: invoked with a cache key whenever invalidation-based
  /// caches must drop it. The simulator wires this to CDN purges with a
  /// configurable invalidation latency.
  using PurgeTarget = std::function<void(const std::string& key)>;

  QuaestorServer(Clock* clock, db::Database* database,
                 ServerOptions options = ServerOptions());
  ~QuaestorServer() override;

  QuaestorServer(const QuaestorServer&) = delete;
  QuaestorServer& operator=(const QuaestorServer&) = delete;

  // -- Write path (uncacheable; client SDK calls these directly) --

  /// Credential-checked writes: authorization rules (auth()) and table
  /// schemas (schemas()) are enforced before commit. The 3-argument
  /// forms run as the internal root principal. The optional context
  /// carries a deadline/priority; under overload, writes admit at kLow
  /// priority (clients retry them, write batching absorbs them) and a
  /// shed write returns kResourceExhausted without committing.
  Result<db::Document> Insert(const Credentials& who,
                              const std::string& table, const std::string& id,
                              db::Value body,
                              const RequestContext& ctx = RequestContext());
  Result<db::Document> Update(const Credentials& who,
                              const std::string& table, const std::string& id,
                              const db::Update& update,
                              const RequestContext& ctx = RequestContext());
  Result<db::Document> Delete(const Credentials& who,
                              const std::string& table, const std::string& id,
                              const RequestContext& ctx = RequestContext());

  Result<db::Document> Insert(const std::string& table, const std::string& id,
                              db::Value body) {
    return Insert(Credentials::Root(), table, id, std::move(body));
  }
  Result<db::Document> Update(const std::string& table, const std::string& id,
                              const db::Update& update) {
    return Update(Credentials::Root(), table, id, update);
  }
  Result<db::Document> Delete(const std::string& table,
                              const std::string& id) {
    return Delete(Credentials::Root(), table, id);
  }

  // -- Read path --

  /// Announces a query shape so Fetch can resolve its normalized key (in
  /// HTTP the URL itself carries the query; this models URL decoding).
  /// Idempotent.
  void RegisterQueryShape(const db::Query& query);

  /// Origin entry point: serves record keys ("table/id") and query keys
  /// ("q:table?...") with freshly estimated TTLs, honouring If-None-Match.
  webcache::HttpResponse Fetch(const webcache::HttpRequest& request) override;

  /// Hands out the current flat Bloom filter (client connect & ∆-refresh).
  ebf::BloomFilter BloomSnapshot();

  /// Hands out one table's EBF partition (§3.3: clients may load
  /// table-specific filters to lower the total false-positive rate at the
  /// expense of more individual transfers).
  ebf::BloomFilter BloomSnapshotForTable(const std::string& table);

  /// Registers a purge hook for invalidation-based caches.
  void AddPurgeTarget(PurgeTarget target);

  /// Observability tap: invoked for every InvaliDB notification the server
  /// processes (after its own handling). Used by the simulator to measure
  /// true result lifetimes (Figure 11) and by the websocket-style change
  /// streams of §3.2.
  void AddNotificationTap(invalidb::NotificationSink tap);

  /// Routes the InvaliDB *data path* — query (de)registrations and the
  /// change stream — to an external matching cluster (e.g. workers
  /// reached over TCP, src/net) instead of the in-process one. Health,
  /// resize, fault-injection and stats stay on the local cluster object.
  /// Install before serving traffic; not synchronized against in-flight
  /// requests. Notifications from the external cluster come back through
  /// OnExternalNotifications.
  struct ExternalPipeline {
    std::function<Status(const db::Query& query,
                         const std::vector<db::Document>& initial_result,
                         invalidb::EventMask events)>
        register_query;
    std::function<void(const std::string& query_key)> deregister_query;
    std::function<void(const db::ChangeEvent& event)> on_change;
    std::function<void(std::vector<db::ChangeEvent> batch)> on_change_batch;
  };
  void SetExternalPipeline(ExternalPipeline pipeline);

  /// Invalidation feedback from an external pipeline: runs the same
  /// memo-erase / EBF-flag / CDN-purge handling as local notifications.
  void OnExternalNotifications(
      const std::vector<invalidb::Notification>& batch);

  // -- Fault tolerance & degradation --

  /// True while the TTL cap is in force: an explicit operator/health
  /// decision (SetDegraded / SetPipelineDown), a notification lag beyond
  /// the staleness budget, or a dead matching node. Always false when
  /// degradation is disabled in the options.
  bool degraded() const;

  /// Manually forces (or lifts) degraded mode — the operator override and
  /// the bench's with/without-degradation switch.
  void SetDegraded(bool degraded);

  /// Hard pipeline outage: while down, change events are dropped before
  /// InvaliDB (counted in change_events_dropped) and the server degrades.
  /// On recovery every matching node is crash-restarted against the
  /// authoritative database, and all registered query keys are flagged in
  /// the EBF and purged from CDNs — copies cached during the outage can
  /// be arbitrarily stale, as can the matcher state.
  void SetPipelineDown(bool down);

  /// Fault injection: while set, Fetch answers 503-style (ok=false,
  /// unavailable=true) — the client retry/timeout path exercises this.
  void SetUnavailable(bool unavailable) { unavailable_.store(unavailable); }

  /// Live-repartitions the InvaliDB grid to the given shape (elastic
  /// scale-out). Query state is rebuilt by re-evaluating every registered
  /// query against the authoritative database (the same path an outage
  /// recovery takes), so it is safe even with dead matching nodes. The
  /// server rides out the migration window in degraded mode (when
  /// degradation is enabled): the TTL cap is in force from the start of
  /// the resize until it completes, so expiration bounds staleness if the
  /// pause delays notifications. Returns the number of queries
  /// re-installed on the new grid.
  size_t ResizeInvalidb(size_t new_query_partitions,
                        size_t new_object_partitions);

  /// Heartbeat/health-check endpoint.
  PipelineHealth pipeline_health() const;

  /// Ships the buffered change batch to InvaliDB now (no-op unless write
  /// batching is enabled). Returns how many events were flushed. Called
  /// implicitly before any InvaliDB control operation and on destruction;
  /// exposed for deterministic tests and simulation ticks.
  size_t FlushChanges();

  // -- Introspection --

  ServerStats stats() const;

  /// Installs a request tracer on the server and the InvaliDB cluster
  /// (spans: server.fetch/record/query, server.write, ttl.estimate,
  /// ebf.report_read, db.execute, invalidb.register/match/notify,
  /// server.on_notification). nullptr detaches.
  void set_tracer(obs::Tracer* tracer);

  /// Exports the server's own counters plus its EBF and InvaliDB stats
  /// into `registry` (accumulating — see the ExportTo convention).
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  /// Overload-control decisions (admitted/shed counters, queue delay).
  AdmissionController& admission() { return admission_; }

  ebf::PartitionedEbf& ebf() { return ebf_; }
  ttl::TtlEstimator& ttl_estimator() { return ttl_estimator_; }
  ttl::ActiveList& active_list() { return active_list_; }
  ttl::CapacityManager& capacity() { return capacity_; }
  invalidb::InvalidbCluster& invalidb() { return *invalidb_; }
  db::Database& database() { return *db_; }
  /// Optimistic ACID transactions (§3.2).
  TransactionManager& transactions() { return *transactions_; }
  /// Table schemas, enforced on writes.
  db::SchemaRegistry& schemas() { return schemas_; }
  /// Authorization rules and login sessions. Tables without public read
  /// access are served uncacheable (shared caches must not hold them).
  AccessController& auth() { return auth_; }
  const ServerOptions& options() const { return options_; }

 private:
  /// Runs one write through admission control at kLow priority (unless
  /// the context raised it). Returns the shed/deadline error, or OK.
  Status AdmitWrite(const RequestContext& ctx);

  struct QueryMeta {
    db::Query query;
    Micros first_seen = 0;
    uint64_t adds = 0;
    uint64_t removes = 0;
    uint64_t changes = 0;
    /// Commit time of the last change that affected this query's result
    /// (InvaliDB notification). Feeds the Last-Modified response header.
    Micros last_result_change = 0;
    /// Sticky representation decision (kAuto policy): re-evaluated at most
    /// every kRepresentationDecisionInterval to avoid flapping between
    /// representations (each flip changes the result etag and the
    /// InvaliDB subscription).
    bool has_chosen_representation = false;
    ttl::ResultRepresentation chosen_representation =
        ttl::ResultRepresentation::kObjectList;
    Micros representation_chosen_at = 0;
  };

  static constexpr Micros kRepresentationDecisionInterval =
      5 * kMicrosPerSecond;

  /// Sticky wrapper around ChooseRepresentationFor. Sets `*need_switch`
  /// if the decision changed for an already-registered query (the caller
  /// must re-register with the new event mask).
  ttl::ResultRepresentation DecideRepresentation(const std::string& query_key,
                                                 size_t result_size,
                                                 bool* need_switch);

  webcache::HttpResponse FetchRecord(const webcache::HttpRequest& request);
  webcache::HttpResponse FetchQuery(const webcache::HttpRequest& request,
                                    const db::Query& query);

  /// Handles one InvaliDB notification (query result became stale).
  void OnNotification(const invalidb::Notification& n);

  /// Batch form: one coalesced delivery from InvaliDB's batch sink. Side
  /// effects match per-notification handling, except that the memo-erase /
  /// EBF-flag / CDN-purge pass runs once per distinct query key.
  void OnNotificationBatch(const std::vector<invalidb::Notification>& batch);

  /// Appends one change event to the write batch, flushing when the batch
  /// fills or the oldest buffered event ages out.
  void BufferChange(const db::ChangeEvent& ev);

  /// Data-path dispatch: the external pipeline when one is installed,
  /// the in-process cluster otherwise. Every data-path use of invalidb_
  /// goes through these four; control-plane uses stay direct.
  Status PipelineRegisterQuery(const db::Query& query,
                               const std::vector<db::Document>& initial,
                               invalidb::EventMask events);
  void PipelineDeregisterQuery(const std::string& query_key);
  void PipelineOnChange(const db::ChangeEvent& ev);
  void PipelineOnChangeBatch(std::vector<db::ChangeEvent> batch);

  /// Applies side effects of a committed record write.
  void OnRecordWrite(const db::Document& after);

  /// Purges a key from all registered invalidation-based caches.
  void PurgeEverywhere(const std::string& key);

  /// Evicts a query from the cached set (capacity displacement).
  void EvictQuery(const std::string& query_key);

  /// Picks the representation for a query result.
  ttl::ResultRepresentation ChooseRepresentationFor(
      const std::string& query_key, size_t result_size);

  /// Applies the degraded TTL ceiling (identity while healthy).
  Micros CapTtl(Micros ttl) const;

  /// Conservatively invalidates every key (record or query) with an
  /// unexpired issued TTL: EBF-flag + CDN purge via the EBF's exact
  /// tracking. Used when entering degraded mode and after an outage —
  /// outstanding long-TTL copies, including those of queries that have
  /// since fallen off the active list, can no longer be trusted.
  void FlagAllCachedCopies();

  /// Re-evaluates degraded() against the remembered state: counts the
  /// flip and, on a healthy→degraded edge, flags all cached copies
  /// (their outstanding long-TTL copies predate the cap).
  void RefreshDegradedState();

  // -- Response-body memoization --
  //
  // The serialized body of the last response per key, valid only at the
  // exact (etag, representation) it was built for. The etag check is the
  // correctness guard — any result change bumps the etag, so a stale memo
  // entry simply never matches (explicit erasure on invalidations is
  // memory hygiene, not a safety requirement). Degraded mode bypasses the
  // memo entirely: bodies embed record TTLs, which must honour the cap.

  /// One memoized body. Immutable once published; hits share the pointer.
  struct MemoEntry {
    uint64_t etag = 0;
    ttl::ResultRepresentation representation =
        ttl::ResultRepresentation::kObjectList;
    std::string body;
    /// Per-record (key, ttl) issued inside this body (object-list query
    /// results). Replayed into the EBF on every memo hit: the embedded
    /// TTLs are durations from receipt, so each serve re-issues them.
    std::vector<std::pair<std::string, Micros>> record_reads;
  };
  struct MemoShard {
    std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const MemoEntry>> entries;
  };

  /// Entry for `key` iff it matches `etag` and `representation`.
  std::shared_ptr<const MemoEntry> MemoLookup(
      const std::string& key, uint64_t etag,
      ttl::ResultRepresentation representation) const;
  void MemoStore(const std::string& key,
                 std::shared_ptr<const MemoEntry> entry) const;
  void MemoErase(const std::string& key) const;
  void MemoClear() const;

  Clock* clock_;
  db::Database* db_;
  ServerOptions options_;
  obs::Tracer* tracer_ = nullptr;

  ebf::PartitionedEbf ebf_;
  ttl::TtlEstimator ttl_estimator_;
  ttl::ActiveList active_list_;
  ttl::CapacityManager capacity_;
  std::unique_ptr<invalidb::InvalidbCluster> invalidb_;
  ExternalPipeline external_pipeline_;
  bool has_external_pipeline_ = false;
  std::unique_ptr<TransactionManager> transactions_;
  db::SchemaRegistry schemas_;
  AccessController auth_;

  mutable std::mutex meta_mu_;
  std::unordered_map<std::string, QueryMeta> query_meta_;

  mutable std::mutex purge_mu_;
  std::vector<PurgeTarget> purge_targets_;
  std::vector<invalidb::NotificationSink> notification_taps_;

  /// Write-path batch buffer (guarded by write_batch_mu_; the flush call
  /// into InvaliDB happens outside the lock — a notification tap may
  /// perform a write that re-enters BufferChange).
  std::mutex write_batch_mu_;
  std::vector<db::ChangeEvent> write_batch_;
  Micros write_batch_oldest_ = 0;

  static constexpr size_t kMemoShards = 16;
  mutable std::array<MemoShard, kMemoShards> body_memo_;

  /// Hot-path counters (relaxed atomics: every fetch bumps several; a
  /// shared stats mutex would serialize the whole read path).
  mutable std::atomic<uint64_t> record_reads_{0};
  mutable std::atomic<uint64_t> query_reads_{0};
  mutable std::atomic<uint64_t> writes_{0};
  mutable std::atomic<uint64_t> not_modified_{0};
  mutable std::atomic<uint64_t> query_invalidations_{0};
  mutable std::atomic<uint64_t> record_invalidations_{0};
  mutable std::atomic<uint64_t> uncacheable_queries_{0};
  mutable std::atomic<uint64_t> bloom_filter_requests_{0};
  mutable std::atomic<uint64_t> body_memo_hits_{0};
  mutable std::atomic<uint64_t> body_memo_misses_{0};
  mutable std::atomic<uint64_t> degraded_reads_{0};
  mutable std::atomic<uint64_t> degradation_flips_{0};
  mutable std::atomic<uint64_t> change_events_dropped_{0};
  mutable std::atomic<uint64_t> unavailable_responses_{0};
  mutable std::atomic<uint64_t> shed_responses_{0};
  mutable std::atomic<uint64_t> deadline_exceeded_responses_{0};

  AdmissionController admission_;

  // Fault-tolerance state.
  std::atomic<bool> manual_degraded_{false};
  std::atomic<bool> pipeline_down_{false};
  std::atomic<bool> lag_degraded_{false};
  std::atomic<bool> resizing_{false};
  std::atomic<bool> unavailable_{false};
  std::atomic<bool> was_degraded_{false};
  std::atomic<Micros> last_notification_lag_{0};
  mutable std::mutex fault_mu_;
  Rng fault_rng_;  // guarded by fault_mu_ (change-loss decisions)
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_SERVER_H_
