#ifndef QUAESTOR_CORE_STREAMS_H_
#define QUAESTOR_CORE_STREAMS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "db/document.h"
#include "db/query.h"
#include "invalidb/notification.h"

namespace quaestor::core {

class QuaestorServer;

/// An event delivered to a change-stream subscriber: the notification
/// plus the current after-image body for adds/changes (what a websocket
/// frame would carry).
struct StreamEvent {
  invalidb::NotificationType type = invalidb::NotificationType::kChange;
  std::string query_key;
  std::string record_id;
  Micros event_time = 0;
  int64_t new_index = -1;
  /// Present for add/change events (the record's current state).
  db::Value body;
  bool has_body = false;
};

using StreamCallback = std::function<void(const StreamEvent&)>;

/// Self-maintaining query result streams (§3.2): "clients can directly
/// subscribe to websocket-based query result change streams ... the
/// application can define its critical data set through queries and keep
/// it up-to-date in real-time."
///
/// Subscribing registers the query in InvaliDB (if not already active for
/// caching) and returns the initial result; every subsequent add / remove
/// / change / changeIndex on the result is pushed to the callback.
/// Thread-compatible with the server's notification dispatch.
class ChangeStreamHub {
 public:
  explicit ChangeStreamHub(QuaestorServer* server);

  ChangeStreamHub(const ChangeStreamHub&) = delete;
  ChangeStreamHub& operator=(const ChangeStreamHub&) = delete;

  /// Subscribes to a query's change stream. `initial_result` receives the
  /// query's current (windowed) result. Returns a subscription id.
  Result<uint64_t> Subscribe(const db::Query& query, StreamCallback callback,
                             std::vector<db::Document>* initial_result);

  /// Cancels a subscription. The query stays registered in InvaliDB (it
  /// may still be cached); only delivery stops.
  void Unsubscribe(uint64_t subscription_id);

  size_t SubscriberCount(const std::string& query_key) const;
  size_t TotalSubscriptions() const;

 private:
  /// Wired into the server's notification tap.
  void OnNotification(const invalidb::Notification& n);

  QuaestorServer* server_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  struct Subscription {
    std::string query_key;
    StreamCallback callback;
  };
  std::unordered_map<uint64_t, Subscription> subscriptions_;
  // query key → subscription ids
  std::unordered_map<std::string, std::vector<uint64_t>> by_query_;
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_STREAMS_H_
