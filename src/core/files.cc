#include "core/files.h"

#include "core/server.h"

namespace quaestor::core {

Result<FileInfo> FileService::FromDocument(const db::Document& doc) {
  const db::Value* content = doc.body.Find("content");
  const db::Value* type = doc.body.Find("content_type");
  if (content == nullptr || !content->is_string() || type == nullptr ||
      !type->is_string()) {
    return Status::Corruption("malformed file document: " + doc.Key());
  }
  FileInfo info;
  info.path = doc.id;
  info.content = content->as_string();
  info.content_type = type->as_string();
  info.version = doc.version;
  return info;
}

Result<FileInfo> FileService::Upload(const std::string& path,
                                     std::string content,
                                     std::string content_type) {
  if (path.empty()) return Status::InvalidArgument("empty file path");
  db::Object body;
  body["content"] = db::Value(std::move(content));
  body["content_type"] = db::Value(std::move(content_type));

  // Upsert semantics: first upload inserts, later uploads replace (and
  // flow through the invalidation pipeline like any record write).
  auto existing = server_->database().Get(kTable, path);
  Result<db::Document> doc =
      existing.ok()
          ? [&] {
              db::Update replace;
              replace.Set("content", body["content"]);
              replace.Set("content_type", body["content_type"]);
              return server_->Update(kTable, path, replace);
            }()
          : server_->Insert(kTable, path, db::Value(std::move(body)));
  if (!doc.ok()) return doc.status();
  return FromDocument(doc.value());
}

Result<FileInfo> FileService::Get(const std::string& path) const {
  auto doc = server_->database().Get(kTable, path);
  if (!doc.ok()) return doc.status();
  return FromDocument(doc.value());
}

Status FileService::Delete(const std::string& path) {
  auto res = server_->Delete(kTable, path);
  return res.ok() ? Status::OK() : res.status();
}

}  // namespace quaestor::core
