#include "core/admission.h"

#include <algorithm>

namespace quaestor::core {

namespace {

const char* PriorityLabel(size_t i) {
  switch (static_cast<Priority>(i)) {
    case Priority::kCritical:
      return "critical";
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kLow:
      return "low";
  }
  return "unknown";
}

obs::Labels WithPriority(const obs::Labels& labels, size_t i) {
  obs::Labels out = labels;
  out.emplace_back("priority", PriorityLabel(i));
  return out;
}

}  // namespace

void AdmissionStats::ExportTo(obs::MetricsRegistry* registry,
                              const obs::Labels& labels) const {
  for (size_t i = 0; i < 4; ++i) {
    const obs::Labels l = WithPriority(labels, i);
    registry->Count("admission_admitted", l, admitted[i]);
    registry->Count("admission_shed_queue_full", l, shed_queue_full[i]);
    registry->Count("admission_shed_overload", l, shed_overload[i]);
    registry->Count("admission_shed_deadline", l, shed_deadline[i]);
  }
  registry->Observe("admission_queue_delay_ms_p99", labels,
                    queue_delay_ms.P99());
  registry->Observe("admission_queue_delay_ms_mean", labels,
                    queue_delay_ms.Mean());
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
  if (options_.service_cost <= 0) options_.service_cost = 1;
  next_free_.assign(options_.max_concurrent, 0);
}

Micros AdmissionController::QueueDelayLocked(Micros now) const {
  const Micros min_free = *std::min_element(next_free_.begin(),
                                            next_free_.end());
  return min_free > now ? min_free - now : 0;
}

Micros AdmissionController::QueueDelay(Micros now) const {
  if (!options_.enabled) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  return QueueDelayLocked(now);
}

void AdmissionController::InjectDelay(Micros now, Micros extra) {
  if (!options_.enabled || extra <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Micros& free_at : next_free_) {
    free_at = std::max(free_at, now) + extra;
  }
}

bool AdmissionController::shedding() const {
  if (!options_.enabled) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return shedding_;
}

Status AdmissionController::Admit(Micros now, const RequestContext& ctx,
                                  Micros* queue_delay) {
  if (queue_delay != nullptr) *queue_delay = 0;
  if (!options_.enabled) return Status::OK();

  std::lock_guard<std::mutex> lock(mu_);
  const size_t pri = static_cast<size_t>(ctx.priority);
  const Micros delay = QueueDelayLocked(now);
  if (queue_delay != nullptr) *queue_delay = delay;
  stats_.queue_delay_ms.Record(MicrosToMillis(delay));

  // CoDel bookkeeping: shedding engages only after the delay has stayed
  // above target for a full interval (a burst shorter than the interval
  // rides out on the queue), and disengages the moment the queue drains
  // back under target.
  if (delay > options_.target_queue_delay) {
    if (above_target_since_ == 0) above_target_since_ = now;
    if (now - above_target_since_ >= options_.codel_interval) {
      shedding_ = true;
    }
  } else {
    above_target_since_ = 0;
    shedding_ = false;
  }

  // Hard bound on the wait queue: backlog beyond the workers, in
  // requests. Applies to every class — the queue must stay finite.
  const Micros backlog = delay * static_cast<Micros>(next_free_.size());
  const size_t queued =
      static_cast<size_t>(backlog / options_.service_cost);
  if (queued >= options_.max_queue) {
    stats_.shed_queue_full[pri]++;
    return Status::ResourceExhausted("admission queue full");
  }

  // A request that would sit in the queue past its own deadline is dead
  // on arrival; reject it before it burns a worker slot.
  if (ctx.has_deadline() &&
      ctx.Remaining(now) <= delay + options_.service_cost) {
    stats_.shed_deadline[pri]++;
    return Status::DeadlineExceeded("queue delay exceeds request deadline");
  }

  if (shedding_ && ctx.priority != Priority::kCritical) {
    const Micros target = options_.target_queue_delay;
    const bool shed =
        ctx.priority == Priority::kLow ||
        (ctx.priority == Priority::kNormal && delay > 2 * target) ||
        (ctx.priority == Priority::kHigh && delay > 4 * target);
    if (shed) {
      stats_.shed_overload[pri]++;
      return Status::ResourceExhausted("shedding under overload");
    }
  }

  // Admit: charge the earliest-free worker.
  auto it = std::min_element(next_free_.begin(), next_free_.end());
  *it = std::max(*it, now) + options_.service_cost;
  stats_.admitted[pri]++;
  return Status::OK();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace quaestor::core
