#ifndef QUAESTOR_CORE_AUTH_H_
#define QUAESTOR_CORE_AUTH_H_

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/result.h"

namespace quaestor::core {

/// A caller's identity. Tokens map to credentials via AccessController
/// sessions; the anonymous caller has no token.
struct Credentials {
  bool authenticated = false;
  bool root = false;  // internal callers (server components) bypass checks
  std::set<std::string> roles;

  static Credentials Anonymous() { return Credentials{}; }
  static Credentials Root() {
    Credentials c;
    c.authenticated = true;
    c.root = true;
    return c;
  }
  static Credentials User(std::set<std::string> roles = {}) {
    Credentials c;
    c.authenticated = true;
    c.roles = std::move(roles);
    return c;
  }

  bool HasRole(const std::string& role) const {
    return roles.count(role) > 0;
  }
};

/// Who may perform an operation class on a table.
enum class AccessLevel {
  kPublic,         // everyone, including anonymous
  kAuthenticated,  // any logged-in session
  kRole,           // sessions holding a specific role
  kNobody,         // server-internal only
};

/// Per-table read/write rules (§2: Quaestor provides "authorization" as
/// part of its DBaaS functionality). Default: public read and write.
///
/// Authorization interacts with caching: shared web caches must never
/// serve protected content to the wrong client, so any table whose READ
/// access is not public is served uncacheable (ttl = 0) by the server.
class AccessController {
 public:
  struct TableRule {
    AccessLevel read = AccessLevel::kPublic;
    std::string read_role;
    AccessLevel write = AccessLevel::kPublic;
    std::string write_role;
  };

  /// Installs the rule for a table (replaces any previous rule).
  void SetRule(const std::string& table, TableRule rule);

  /// Convenience: public read, writes restricted to `role`.
  void ProtectWrites(const std::string& table, const std::string& role);

  /// Convenience: reads and writes restricted to `role` (implies
  /// uncacheable reads).
  void ProtectTable(const std::string& table, const std::string& role);

  Status CheckRead(const Credentials& who, const std::string& table) const;
  Status CheckWrite(const Credentials& who, const std::string& table) const;

  /// True if read access is public (cacheable in shared caches).
  bool ReadIsPublic(const std::string& table) const;

  // -- Sessions (token → credentials) --

  /// Registers a login session; the token authenticates as `creds`.
  void RegisterSession(const std::string& token, Credentials creds);

  void RevokeSession(const std::string& token);

  /// Resolves a token; empty tokens and unknown tokens are anonymous.
  Credentials Resolve(const std::string& token) const;

 private:
  static Status Check(const Credentials& who, AccessLevel level,
                      const std::string& role, const std::string& table,
                      const char* what);

  mutable std::mutex mu_;
  std::map<std::string, TableRule> rules_;
  std::map<std::string, Credentials> sessions_;
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_AUTH_H_
