#include "core/transactions.h"

#include "core/server.h"

namespace quaestor::core {

Result<CommitResult> TransactionManager::Commit(
    const TransactionRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  db::Database& db = server_->database();

  // Validation phase (BOCC): every observed version must still be
  // current. A version of 0 asserts the record did not exist.
  for (const auto& [key, observed_version] : request.read_set) {
    const size_t slash = key.find('/');
    if (slash == std::string::npos) {
      aborted_++;
      return Status::InvalidArgument("malformed read-set key: " + key);
    }
    const std::string table = key.substr(0, slash);
    const std::string id = key.substr(slash + 1);
    auto current = db.Get(table, id);
    const uint64_t current_version = current.ok() ? current->version : 0;
    if (current_version != observed_version) {
      aborted_++;
      return Status::Aborted("validation failed for " + key + ": read v" +
                             std::to_string(observed_version) + ", now v" +
                             std::to_string(current_version));
    }
  }

  // Writes implicitly read their targets: guard against write-write
  // conflicts for targets not in the read set by checking insert/update
  // applicability up front (all-or-nothing apply below must not fail
  // midway).
  for (const TxWrite& w : request.writes) {
    auto current = db.Get(w.table, w.id);
    switch (w.kind) {
      case TxWrite::Kind::kInsert:
        if (current.ok()) {
          aborted_++;
          return Status::Aborted("insert target exists: " + w.table + "/" +
                                 w.id);
        }
        break;
      case TxWrite::Kind::kUpdate:
      case TxWrite::Kind::kDelete:
        if (!current.ok()) {
          aborted_++;
          return Status::Aborted("write target missing: " + w.table + "/" +
                                 w.id);
        }
        if (w.kind == TxWrite::Kind::kUpdate) {
          db::Value scratch = current->body;
          if (!w.update.ApplyTo(scratch).ok()) {
            aborted_++;
            return Status::Aborted("update not applicable to " + w.table +
                                   "/" + w.id);
          }
        }
        break;
    }
  }

  // Apply phase: writes go through the server so TTL estimation, the
  // EBF, purges, and InvaliDB all observe them.
  CommitResult result;
  for (const TxWrite& w : request.writes) {
    Result<db::Document> applied = [&]() -> Result<db::Document> {
      switch (w.kind) {
        case TxWrite::Kind::kInsert:
          return server_->Insert(w.table, w.id, w.body);
        case TxWrite::Kind::kUpdate:
          return server_->Update(w.table, w.id, w.update);
        case TxWrite::Kind::kDelete:
          return server_->Delete(w.table, w.id);
      }
      return Status::Internal("unreachable");
    }();
    if (!applied.ok()) {
      // Pre-validation makes this unreachable under the commit lock.
      aborted_++;
      return Status::Internal("apply failed after validation: " +
                              applied.status().ToString());
    }
    result.applied.push_back(std::move(applied).value());
  }
  result.commit_timestamp = static_cast<uint64_t>(
      result.applied.empty() ? 0 : result.applied.back().write_time);
  committed_++;
  return result;
}

}  // namespace quaestor::core
