#ifndef QUAESTOR_CORE_FILES_H_
#define QUAESTOR_CORE_FILES_H_

#include <string>

#include "common/result.h"
#include "db/document.h"

namespace quaestor::core {

class QuaestorServer;

/// A stored file/asset.
struct FileInfo {
  std::string path;
  std::string content;
  std::string content_type;
  uint64_t version = 0;
};

/// File and asset hosting (§1: Quaestor caches "database records and
/// volatile files"; the Baqend deployment serves a site's HTML, CSS and
/// images through the same machinery).
///
/// Files are stored as documents in the reserved `__files` table, which
/// makes them first-class cacheable resources automatically: they receive
/// estimated TTLs, appear in the Expiring Bloom Filter when overwritten
/// before expiry, and are purged from invalidation-based caches on
/// upload — identical semantics to records, as the paper prescribes.
class FileService {
 public:
  static constexpr const char* kTable = "__files";

  explicit FileService(QuaestorServer* server) : server_(server) {}

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  /// Uploads or replaces a file. Overwrites bump the version (ETag).
  Result<FileInfo> Upload(const std::string& path, std::string content,
                          std::string content_type = "text/plain");

  /// Fetches the current file from the origin (clients normally read
  /// through their cache hierarchy using CacheKeyFor()).
  Result<FileInfo> Get(const std::string& path) const;

  Status Delete(const std::string& path);

  /// The HTTP cache key of a file ("__files/<path>"): usable with any
  /// CacheHierarchy / QuaestorClient record read.
  static std::string CacheKeyFor(const std::string& path) {
    return std::string(kTable) + "/" + path;
  }

  /// Decodes a file document body into FileInfo fields.
  static Result<FileInfo> FromDocument(const db::Document& doc);

 private:
  QuaestorServer* server_;
};

}  // namespace quaestor::core

#endif  // QUAESTOR_CORE_FILES_H_
