#include "net/http_codec.h"

#include <time.h>

#include <cstdio>
#include <cstdlib>

namespace quaestor::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '%' && i + 2 < raw.size()) {
      const int hi = HexVal(raw[i + 1]), lo = HexVal(raw[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(raw[i] == '+' ? ' ' : raw[i]);
  }
  return out;
}

void ParseTarget(HttpMessage* msg) {
  const size_t q = msg->target.find('?');
  msg->path = msg->target.substr(0, q);
  if (q == std::string::npos) return;
  std::string_view query = std::string_view(msg->target).substr(q + 1);
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      msg->params[PercentDecode(pair.substr(0, eq))] =
          PercentDecode(pair.substr(eq + 1));
    } else if (!pair.empty()) {
      msg->params[PercentDecode(pair)] = "";
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
}

/// Shared header+body machinery: `in` positioned at the first header
/// line (start-line already consumed at offset `pos`).
HttpDecode DecodeRest(std::string_view in, size_t pos, HttpMessage* msg,
                      size_t* consumed) {
  for (;;) {
    const size_t eol = in.find(kCrlf, pos);
    if (eol == std::string_view::npos) return HttpDecode::kNeedMore;
    if (eol == pos) {  // blank line: end of headers
      pos += 2;
      break;
    }
    std::string_view line = in.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return HttpDecode::kError;
    msg->headers[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
    pos = eol + 2;
  }
  size_t content_length = 0;
  auto it = msg->headers.find("content-length");
  if (it != msg->headers.end()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') return HttpDecode::kError;
    content_length = static_cast<size_t>(v);
    if (content_length > (64u << 20)) return HttpDecode::kError;
  }
  if (in.size() - pos < content_length) return HttpDecode::kNeedMore;
  msg->body = std::string(in.substr(pos, content_length));
  *consumed = pos + content_length;
  return HttpDecode::kComplete;
}

void AppendHeaders(std::string* out, const HttpMessage& msg) {
  for (const auto& [name, value] : msg.headers) {
    out->append(name);
    out->append(": ");
    out->append(value);
    out->append(kCrlf);
  }
  out->append("content-length: ");
  out->append(std::to_string(msg.body.size()));
  out->append(kCrlf);
  out->append(kCrlf);
  out->append(msg.body);
}

std::string HttpDate(Micros micros) {
  const time_t secs = static_cast<time_t>(micros / kMicrosPerSecond);
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[64];
  strftime(buf, sizeof(buf), "%a, %d %b %Y %H:%M:%S GMT", &tm_utc);
  return buf;
}

int64_t ParseI64(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

}  // namespace

std::string PercentEncode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const unsigned char u = static_cast<unsigned char>(c);
    const bool safe = (u >= 'a' && u <= 'z') || (u >= 'A' && u <= 'Z') ||
                      (u >= '0' && u <= '9') || u == '-' || u == '_' ||
                      u == '.' || u == '~';
    if (safe) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    }
  }
  return out;
}

HttpDecode DecodeHttpRequest(std::string_view in, HttpMessage* msg,
                             size_t* consumed) {
  *msg = HttpMessage{};
  const size_t eol = in.find(kCrlf);
  if (eol == std::string_view::npos) {
    return in.size() > 8192 ? HttpDecode::kError : HttpDecode::kNeedMore;
  }
  std::string_view line = in.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return HttpDecode::kError;
  if (line.substr(sp2 + 1).compare(0, 5, "HTTP/") != 0) {
    return HttpDecode::kError;
  }
  msg->method = std::string(line.substr(0, sp1));
  msg->target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (msg->method.empty() || msg->target.empty()) return HttpDecode::kError;
  ParseTarget(msg);
  return DecodeRest(in, eol + 2, msg, consumed);
}

HttpDecode DecodeHttpResponse(std::string_view in, HttpMessage* msg,
                              size_t* consumed) {
  *msg = HttpMessage{};
  const size_t eol = in.find(kCrlf);
  if (eol == std::string_view::npos) {
    return in.size() > 8192 ? HttpDecode::kError : HttpDecode::kNeedMore;
  }
  std::string_view line = in.substr(0, eol);
  if (line.compare(0, 5, "HTTP/") != 0) return HttpDecode::kError;
  const size_t sp = line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > line.size()) {
    return HttpDecode::kError;
  }
  msg->status = std::atoi(std::string(line.substr(sp + 1, 3)).c_str());
  if (msg->status < 100 || msg->status > 599) return HttpDecode::kError;
  return DecodeRest(in, eol + 2, msg, consumed);
}

std::string EncodeHttpRequest(const HttpMessage& msg) {
  std::string out = msg.method;
  out.push_back(' ');
  out.append(msg.target);
  out.append(" HTTP/1.1");
  out.append(kCrlf);
  AppendHeaders(&out, msg);
  return out;
}

std::string EncodeHttpResponse(const HttpMessage& msg) {
  static const std::map<int, std::string_view> kReasons = {
      {200, "OK"},           {304, "Not Modified"},
      {400, "Bad Request"},  {403, "Forbidden"},
      {404, "Not Found"},    {429, "Too Many Requests"},
      {503, "Service Unavailable"}, {504, "Gateway Timeout"},
  };
  std::string out = "HTTP/1.1 ";
  out.append(std::to_string(msg.status));
  out.push_back(' ');
  auto it = kReasons.find(msg.status);
  out.append(it == kReasons.end() ? "Unknown" : it->second);
  out.append(kCrlf);
  AppendHeaders(&out, msg);
  return out;
}

HttpMessage ToHttpMessage(const WireResponse& response) {
  const webcache::HttpResponse& r = response.http;
  HttpMessage msg;
  if (r.not_modified) {
    msg.status = 304;
  } else if (r.ok) {
    msg.status = 200;
    msg.body = r.body;
  } else if (r.deadline_exceeded) {
    msg.status = 504;
  } else if (r.shed) {
    msg.status = 429;
  } else if (r.unavailable) {
    msg.status = 503;
  } else {
    msg.status = 404;
  }
  if (msg.status == 200 || msg.status == 304) {
    msg.headers["etag"] = "\"" + std::to_string(r.etag) + "\"";
    if (r.ttl > 0) {
      msg.headers["cache-control"] =
          "max-age=" + std::to_string(r.ttl / kMicrosPerSecond);
    } else {
      msg.headers["cache-control"] = "no-store";
    }
    msg.headers["x-ttl-us"] = std::to_string(r.ttl);
    if (r.last_modified > 0) {
      msg.headers["last-modified"] = HttpDate(r.last_modified);
    }
    msg.headers["x-last-modified-us"] = std::to_string(r.last_modified);
  }
  if (response.served_stale_on_shed) {
    msg.headers["x-served-stale-on-shed"] = "1";
    msg.headers["x-stale-age-us"] = std::to_string(response.stale_entry_age);
  }
  return msg;
}

WireResponse FromHttpMessage(const HttpMessage& msg) {
  WireResponse out;
  webcache::HttpResponse& r = out.http;
  switch (msg.status) {
    case 200:
      r.ok = true;
      r.body = msg.body;
      break;
    case 304:
      r.not_modified = true;
      break;
    case 429:
      r.shed = true;
      break;
    case 503:
      r.unavailable = true;
      break;
    case 504:
      r.deadline_exceeded = true;
      break;
    default:
      break;  // 404 and friends: plain miss
  }
  auto get = [&](const char* name) -> const std::string* {
    auto it = msg.headers.find(name);
    return it == msg.headers.end() ? nullptr : &it->second;
  };
  if (const std::string* etag = get("etag")) {
    std::string_view v = *etag;
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
      v = v.substr(1, v.size() - 2);
    }
    r.etag = std::strtoull(std::string(v).c_str(), nullptr, 10);
  }
  if (const std::string* ttl = get("x-ttl-us")) r.ttl = ParseI64(*ttl);
  if (const std::string* lm = get("x-last-modified-us")) {
    r.last_modified = ParseI64(*lm);
  }
  if (get("x-served-stale-on-shed")) {
    out.served_stale_on_shed = true;
    if (const std::string* age = get("x-stale-age-us")) {
      out.stale_entry_age = ParseI64(*age);
    }
  }
  return out;
}

HttpMessage ToHttpMessage(const webcache::HttpRequest& request) {
  HttpMessage msg;
  msg.method = "GET";
  msg.target = "/fetch?key=" + PercentEncode(request.key);
  ParseTarget(&msg);
  if (request.has_if_none_match) {
    msg.headers["if-none-match"] =
        "\"" + std::to_string(request.if_none_match) + "\"";
  }
  if (!request.auth_token.empty()) {
    msg.headers["authorization"] = "Bearer " + request.auth_token;
  }
  if (request.context.deadline != 0) {
    msg.headers["x-deadline-us"] = std::to_string(request.context.deadline);
  }
  if (request.context.priority != Priority::kNormal) {
    msg.headers["x-priority"] =
        std::to_string(static_cast<int>(request.context.priority));
  }
  return msg;
}

webcache::HttpRequest FetchRequestFromHttpMessage(const HttpMessage& msg) {
  webcache::HttpRequest req;
  auto key = msg.params.find("key");
  if (key != msg.params.end()) req.key = key->second;
  auto inm = msg.headers.find("if-none-match");
  if (inm != msg.headers.end()) {
    std::string_view v = inm->second;
    if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
      v = v.substr(1, v.size() - 2);
    }
    req.has_if_none_match = true;
    req.if_none_match = std::strtoull(std::string(v).c_str(), nullptr, 10);
  }
  auto auth = msg.headers.find("authorization");
  if (auth != msg.headers.end()) {
    std::string_view v = auth->second;
    if (v.compare(0, 7, "Bearer ") == 0) v = v.substr(7);
    req.auth_token = std::string(v);
  }
  auto deadline = msg.headers.find("x-deadline-us");
  if (deadline != msg.headers.end()) {
    req.context.deadline = ParseI64(deadline->second);
  }
  auto priority = msg.headers.find("x-priority");
  if (priority != msg.headers.end()) {
    const int64_t p = ParseI64(priority->second);
    if (p >= 0 && p <= 3) req.context.priority = static_cast<Priority>(p);
  }
  return req;
}

}  // namespace quaestor::net
