#ifndef QUAESTOR_NET_SERVICE_H_
#define QUAESTOR_NET_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "core/server.h"
#include "invalidb/transport.h"
#include "net/event_loop.h"
#include "net/http_server.h"
#include "net/queue_bridge.h"

namespace quaestor::net {

/// Real-socket serving, off by default: the whole layer is inert until
/// `enabled` is set, and nothing else in the system references it.
struct NetOptions {
  bool enabled = false;
  /// 0 = ephemeral (port() reports the bound one) — the only safe choice
  /// for tests sharing a machine.
  uint16_t http_port = 0;
  uint16_t frame_port = 0;
  /// Per-connection write-buffer bounds: past `soft` only kCritical/kHigh
  /// frames still queue, at `hard` everything sheds (the reliable queue
  /// retransmits what matters).
  size_t write_buffer_soft_limit = 256u << 10;
  size_t write_buffer_hard_limit = 1u << 20;
  Micros reconnect_backoff = 20 * kMicrosPerMilli;
  /// Route the InvaliDB data path to workers over TCP (NetWorker peers)
  /// instead of the in-process cluster.
  bool remote_invalidb = false;
  std::string invalidb_prefix = "invalidb";
  invalidb::TransportOptions transport;
};

/// Serving-side bundle: event loop + HTTP front-end + frame hub, and —
/// when remote_invalidb is on — the InvalidbRemote stub wired into the
/// server's ExternalPipeline with its queues bridged over the hub.
class NetServer {
 public:
  NetServer(Clock* clock, core::QuaestorServer* server, NetOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Starts the loop and binds both listeners. False if anything failed
  /// (loop/listeners are torn down on failure paths by the dtor).
  bool Start();
  void Stop();

  uint16_t http_port() const;
  uint16_t frame_port() const;

  EventLoop* loop() { return &loop_; }
  FrameHub* hub() { return hub_.get(); }
  HttpFrontend* http() { return http_.get(); }
  invalidb::InvalidbRemote* remote() { return remote_.get(); }
  BridgedKvStore* bridged_kv() { return bridged_kv_.get(); }

 private:
  Clock* clock_;
  core::QuaestorServer* server_;
  NetOptions options_;
  EventLoop loop_;
  std::unique_ptr<FrameHub> hub_;
  std::unique_ptr<HttpFrontend> http_;
  std::unique_ptr<BridgedKvStore> bridged_kv_;
  std::unique_ptr<invalidb::InvalidbRemote> remote_;
  bool started_ = false;
};

/// Matching-cluster side: a FrameClient dialed into a NetServer's frame
/// hub, a bridged KV store, and the existing InvalidbWorker consuming
/// the bridged request queue exactly as it would a local one.
class NetWorker {
 public:
  NetWorker(Clock* clock, uint16_t frame_port, NetOptions options,
            invalidb::InvalidbOptions cluster_options =
                invalidb::InvalidbOptions());
  ~NetWorker();

  NetWorker(const NetWorker&) = delete;
  NetWorker& operator=(const NetWorker&) = delete;

  bool Start();
  void Stop();

  FrameClient* frame_client() { return client_.get(); }
  BridgedKvStore* bridged_kv() { return bridged_kv_.get(); }
  invalidb::InvalidbWorker* worker() { return worker_.get(); }

 private:
  Clock* clock_;
  NetOptions options_;
  invalidb::InvalidbOptions cluster_options_;
  const uint16_t frame_port_;
  EventLoop loop_;
  std::unique_ptr<FrameClient> client_;
  std::unique_ptr<BridgedKvStore> bridged_kv_;
  std::unique_ptr<invalidb::InvalidbWorker> worker_;
  bool started_ = false;
};

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_SERVICE_H_
