#include "net/framing.h"

namespace quaestor::net {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>(v & 0xff));
}

uint32_t ReadU32(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(
      (static_cast<uint16_t>(static_cast<unsigned char>(p[0])) << 8) |
      static_cast<uint16_t>(static_cast<unsigned char>(p[1])));
}

}  // namespace

void AppendFrame(std::string* out, const Frame& frame) {
  const size_t rest = 1 + 2 + frame.channel.size() + frame.payload.size();
  AppendU32(out, static_cast<uint32_t>(rest));
  out->push_back(static_cast<char>(frame.priority));
  AppendU16(out, static_cast<uint16_t>(frame.channel.size()));
  out->append(frame.channel);
  out->append(frame.payload);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(4 + 1 + 2 + frame.channel.size() + frame.payload.size());
  AppendFrame(&out, frame);
  return out;
}

FrameDecode DecodeFrame(std::string_view in, Frame* frame, size_t* consumed) {
  if (in.size() < 4) return FrameDecode::kNeedMore;
  const uint32_t rest = ReadU32(in.data());
  if (rest > kMaxFrameBytes || rest < 1 + 2) return FrameDecode::kError;
  if (in.size() < 4 + static_cast<size_t>(rest)) return FrameDecode::kNeedMore;
  const char* p = in.data() + 4;
  frame->priority = static_cast<uint8_t>(*p);
  const uint16_t channel_len = ReadU16(p + 1);
  if (static_cast<size_t>(channel_len) + 1 + 2 > rest) {
    return FrameDecode::kError;  // channel overruns the frame
  }
  frame->channel.assign(p + 3, channel_len);
  frame->payload.assign(p + 3 + channel_len, rest - 1 - 2 - channel_len);
  *consumed = 4 + static_cast<size_t>(rest);
  return FrameDecode::kFrame;
}

}  // namespace quaestor::net
