#include "net/http_server.h"

#include <utility>

#include "db/query.h"
#include "db/update.h"
#include "db/value.h"
#include "ebf/bloom_filter.h"

namespace quaestor::net {

namespace {

HttpMessage StatusResponse(const Status& st) {
  HttpMessage msg;
  if (st.IsNotFound()) {
    msg.status = 404;
  } else if (st.IsUnavailable()) {
    msg.status = 503;
  } else if (st.IsResourceExhausted()) {
    msg.status = 429;
  } else if (st.IsDeadlineExceeded()) {
    msg.status = 504;
  } else {
    msg.status = 400;
  }
  msg.headers["x-status-code"] =
      std::to_string(static_cast<int>(st.code()));
  msg.body = st.message();
  return msg;
}

HttpMessage DocumentResponse(const db::Document& doc) {
  db::Object out;
  out["table"] = doc.table;
  out["id"] = doc.id;
  out["version"] = static_cast<int64_t>(doc.version);
  out["write_time"] = doc.write_time;
  out["deleted"] = doc.deleted;
  out["body"] = doc.body;
  HttpMessage msg;
  msg.status = 200;
  msg.body = db::Value(std::move(out)).ToJson();
  return msg;
}

RequestContext ContextFromHeaders(const HttpMessage& request) {
  RequestContext ctx;
  auto deadline = request.headers.find("x-deadline-us");
  if (deadline != request.headers.end()) {
    ctx.deadline = std::strtoll(deadline->second.c_str(), nullptr, 10);
  }
  auto priority = request.headers.find("x-priority");
  if (priority != request.headers.end()) {
    const long p = std::strtol(priority->second.c_str(), nullptr, 10);
    if (p >= 0 && p <= 3) ctx.priority = static_cast<Priority>(p);
  }
  return ctx;
}

std::string AuthToken(const HttpMessage& request) {
  auto it = request.headers.find("authorization");
  if (it == request.headers.end()) return "";
  std::string_view v = it->second;
  if (v.compare(0, 7, "Bearer ") == 0) v = v.substr(7);
  return std::string(v);
}

}  // namespace

HttpFrontend::HttpFrontend(EventLoop* loop, core::QuaestorServer* server)
    : loop_(loop), server_(server) {}

HttpFrontend::~HttpFrontend() { Close(); }

bool HttpFrontend::Listen(uint16_t port) {
  bool ok = false;
  loop_->RunInLoopSync([&] {
    listener_ = std::make_unique<TcpListener>(loop_);
    listener_->set_on_accept([this](int fd) { HandleAccept(fd); });
    ok = listener_->Listen(port);
    if (ok) port_ = listener_->port();
  });
  return ok;
}

void HttpFrontend::Close() {
  loop_->RunInLoopSync([&] {
    if (listener_) listener_->Close();
    std::map<uint64_t, std::shared_ptr<TcpConnection>> doomed;
    doomed.swap(conns_);
    for (auto& [id, conn] : doomed) conn->Close();
  });
}

uint64_t HttpFrontend::requests_served() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return requests_served_;
}

void HttpFrontend::HandleAccept(int fd) {
  std::shared_ptr<TcpConnection> conn = TcpConnection::Adopt(loop_, fd);
  const uint64_t id = next_conn_id_++;
  conns_[id] = conn;
  conn->set_on_data([this, id] { HandleData(id); });
  conn->set_on_close([this, id] { conns_.erase(id); });
}

void HttpFrontend::HandleData(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::shared_ptr<TcpConnection> conn = it->second;
  size_t cursor = 0;
  std::string& input = conn->input();
  for (;;) {
    HttpMessage request;
    size_t consumed = 0;
    const HttpDecode rc = DecodeHttpRequest(
        std::string_view(input).substr(cursor), &request, &consumed);
    if (rc == HttpDecode::kError) {
      conn->Close();
      return;
    }
    if (rc == HttpDecode::kNeedMore) break;
    cursor += consumed;
    HttpMessage response = Dispatch(request);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++requests_served_;
    }
    if (!conn->Send(EncodeHttpResponse(response))) {
      conn->Close();
      return;
    }
  }
  input.erase(0, cursor);
}

HttpMessage HttpFrontend::Dispatch(const HttpMessage& request) {
  if (request.method == "GET" && request.path == "/fetch") {
    return HandleFetch(request);
  }
  if (request.method == "GET" && request.path == "/ebf") {
    return HandleEbf(request);
  }
  if (request.method == "POST" && request.path == "/query-shape") {
    return HandleQueryShape(request);
  }
  if (request.method == "POST" && request.path == "/write") {
    return HandleWrite(request);
  }
  HttpMessage msg;
  msg.status = 404;
  msg.body = "unknown route";
  return msg;
}

HttpMessage HttpFrontend::HandleFetch(const HttpMessage& request) {
  const webcache::HttpRequest req = FetchRequestFromHttpMessage(request);
  if (req.key.empty()) {
    HttpMessage msg;
    msg.status = 400;
    msg.body = "missing key";
    return msg;
  }
  WireResponse wire;
  wire.http = server_->Fetch(req);
  return ToHttpMessage(wire);
}

HttpMessage HttpFrontend::HandleEbf(const HttpMessage& request) {
  auto table = request.params.find("table");
  const ebf::BloomFilter bloom = table == request.params.end()
                                     ? server_->BloomSnapshot()
                                     : server_->BloomSnapshotForTable(
                                           table->second);
  HttpMessage msg;
  msg.status = 200;
  msg.headers["content-type"] = "application/octet-stream";
  msg.body = bloom.Serialize();
  return msg;
}

HttpMessage HttpFrontend::HandleQueryShape(const HttpMessage& request) {
  Result<db::Value> spec = db::Value::FromJson(request.body);
  if (!spec.ok()) return StatusResponse(spec.status());
  Result<db::Query> query = db::Query::FromSpec(spec.value());
  if (!query.ok()) return StatusResponse(query.status());
  server_->RegisterQueryShape(query.value());
  HttpMessage msg;
  msg.status = 200;
  return msg;
}

HttpMessage HttpFrontend::HandleWrite(const HttpMessage& request) {
  auto op = request.params.find("op");
  auto table = request.params.find("table");
  auto id = request.params.find("id");
  if (op == request.params.end() || table == request.params.end() ||
      id == request.params.end()) {
    HttpMessage msg;
    msg.status = 400;
    msg.body = "missing op/table/id";
    return msg;
  }
  const core::Credentials who = server_->auth().Resolve(AuthToken(request));
  const RequestContext ctx = ContextFromHeaders(request);
  Result<db::Document> doc = Status::InvalidArgument("unknown op");
  if (op->second == "insert") {
    Result<db::Value> body = db::Value::FromJson(request.body);
    if (!body.ok()) return StatusResponse(body.status());
    doc = server_->Insert(who, table->second, id->second,
                          std::move(body.value()), ctx);
  } else if (op->second == "update") {
    Result<db::Value> spec = db::Value::FromJson(request.body);
    if (!spec.ok()) return StatusResponse(spec.status());
    Result<db::Update> update = db::Update::Parse(spec.value());
    if (!update.ok()) return StatusResponse(update.status());
    doc = server_->Update(who, table->second, id->second, update.value(), ctx);
  } else if (op->second == "delete") {
    doc = server_->Delete(who, table->second, id->second, ctx);
  }
  if (!doc.ok()) return StatusResponse(doc.status());
  return DocumentResponse(doc.value());
}

}  // namespace quaestor::net
