#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <condition_variable>
#include <utility>

namespace quaestor::net {

namespace {
constexpr int kMaxEvents = 64;
}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

int64_t EventLoop::MonotonicNow() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

bool EventLoop::Start() {
  if (running_.load()) return true;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return false;
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return false;
  }
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) return false;
  running_.store(true);
  thread_ = std::thread([this] { Run(); });
  return true;
}

void EventLoop::Stop() {
  if (!running_.exchange(false)) return;
  Wake();
  if (thread_.joinable()) thread_.join();
}

void EventLoop::Wake() {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::InLoopThread() const {
  return thread_.joinable() && std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  if (InLoopThread() || !running_.load()) {
    // After Stop() no loop thread exists to drain the queue; the caller
    // is tearing down single-threaded, so run inline.
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::RunInLoopSync(std::function<void()> fn) {
  if (InLoopThread() || !running_.load()) {
    fn();
    return;
  }
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
  RunInLoop([&] {
    fn();
    std::lock_guard<std::mutex> lock(done_mu);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done; });
}

EventLoop::TimerId EventLoop::AddTimer(int64_t delay_us,
                                       std::function<void()> fn) {
  const int64_t deadline = MonotonicNow() + (delay_us < 0 ? 0 : delay_us);
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_timer_id_++;
    timers_.emplace(deadline, std::make_pair(id, std::move(fn)));
  }
  Wake();  // the loop may be sleeping past the new deadline
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->second.first == id) {
      timers_.erase(it);
      return;
    }
  }
}

bool EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_[fd] = std::move(handler);
  return true;
}

bool EventLoop::ModFd(int fd, uint32_t events) {
  struct epoll_event ev = {};
  ev.events = events;
  ev.data.fd = fd;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::RemoveFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::DrainPending() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.swap(pending_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::FireDueTimers() {
  const int64_t now = MonotonicNow();
  // Pop due timers one at a time so a timer callback adding or
  // cancelling timers never races an in-progress snapshot.
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = timers_.begin();
      if (it == timers_.end() || it->first > now) break;
      fn = std::move(it->second.second);
      timers_.erase(it);
    }
    fn();
  }
}

int64_t EventLoop::NextTimerDelayMs() {
  std::lock_guard<std::mutex> lock(mu_);
  if (timers_.empty()) return -1;  // epoll: wait indefinitely
  const int64_t delta_us = timers_.begin()->first - MonotonicNow();
  if (delta_us <= 0) return 0;
  return delta_us / 1000 + 1;  // round up so we don't spin before due
}

void EventLoop::Run() {
  struct epoll_event events[kMaxEvents];
  while (running_.load()) {
    DrainPending();
    FireDueTimers();
    if (!running_.load()) break;
    const int timeout_ms = static_cast<int>(NextTimerDelayMs());
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      // Look the handler up at dispatch time: an earlier handler in this
      // batch may have removed this fd (e.g. closed the connection).
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      FdHandler handler = it->second;  // copy: handler may RemoveFd(fd)
      handler(events[i].events);
    }
  }
  DrainPending();
}

}  // namespace quaestor::net
