#include "net/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace quaestor::net {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpConnection

std::shared_ptr<TcpConnection> TcpConnection::Adopt(EventLoop* loop, int fd) {
  SetNonBlocking(fd);
  SetNoDelay(fd);
  std::shared_ptr<TcpConnection> conn(new TcpConnection(loop, fd));
  // The epoll handler keeps the connection alive while registered.
  std::weak_ptr<TcpConnection> weak = conn;
  loop->AddFd(fd, EPOLLIN, [weak](uint32_t events) {
    if (auto self = weak.lock()) self->HandleEvents(events);
  });
  return conn;
}

TcpConnection::TcpConnection(EventLoop* loop, int fd) : loop_(loop), fd_(fd) {}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) {
    loop_->RemoveFd(fd_);
    ::close(fd_);
  }
}

void TcpConnection::Close() {
  if (fd_ < 0) return;
  loop_->RemoveFd(fd_);
  ::close(fd_);
  fd_ = -1;
  output_.clear();
  output_offset_ = 0;
  if (on_close_) on_close_();
}

void TcpConnection::HandleEvents(uint32_t events) {
  // Keep *this alive across user callbacks that may drop their refs.
  std::shared_ptr<TcpConnection> guard = shared_from_this();
  if (events & (EPOLLHUP | EPOLLERR)) {
    Close();
    return;
  }
  if (events & EPOLLIN) HandleReadable();
  if (fd_ >= 0 && (events & EPOLLOUT)) HandleWritable();
}

void TcpConnection::HandleReadable() {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      input_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      Close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();  // ECONNRESET etc.
    return;
  }
  if (on_data_) on_data_();
}

bool TcpConnection::Send(std::string_view data) {
  if (fd_ < 0) return false;
  if (output_.size() - output_offset_ + data.size() > hard_limit_) {
    return false;  // bounded buffer: refuse, caller sheds
  }
  if (output_.size() == output_offset_) {
    // Nothing queued: try the socket directly.
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n =
          ::write(fd_, data.data() + written, data.size() - written);
      if (n > 0) {
        written += static_cast<size_t>(n);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close();  // EPIPE / ECONNRESET
      return false;
    }
    if (written == data.size()) return true;
    data.remove_prefix(written);
  }
  output_.clear();
  output_offset_ = 0;
  output_.append(data);
  UpdateInterest();
  return true;
}

void TcpConnection::HandleWritable() {
  while (output_offset_ < output_.size()) {
    const ssize_t n = ::write(fd_, output_.data() + output_offset_,
                              output_.size() - output_offset_);
    if (n > 0) {
      output_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    Close();
    return;
  }
  if (output_offset_ == output_.size()) {
    output_.clear();
    output_offset_ = 0;
  } else if (output_offset_ > (64u << 10)) {
    output_.erase(0, output_offset_);
    output_offset_ = 0;
  }
  UpdateInterest();
}

void TcpConnection::UpdateInterest() {
  const bool want = output_offset_ < output_.size();
  if (want == want_write_ || fd_ < 0) return;
  want_write_ = want;
  loop_->ModFd(fd_, want ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

// ---------------------------------------------------------------------------
// TcpListener

TcpListener::~TcpListener() { Close(); }

bool TcpListener::Listen(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 128) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  return loop_->AddFd(fd_, EPOLLIN, [this](uint32_t) {
    for (;;) {
      const int client = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (client < 0) break;  // EAGAIN or transient error: wait for epoll
      if (on_accept_) {
        on_accept_(client);
      } else {
        ::close(client);
      }
    }
  });
}

void TcpListener::Close() {
  if (fd_ < 0) return;
  loop_->RemoveFd(fd_);
  ::close(fd_);
  fd_ = -1;
}

// ---------------------------------------------------------------------------
// Dialers

int DialLoopback(uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int DialLoopbackBlocking(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  SetNoDelay(fd);
  return fd;
}

}  // namespace quaestor::net
