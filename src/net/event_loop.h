#ifndef QUAESTOR_NET_EVENT_LOOP_H_
#define QUAESTOR_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace quaestor::net {

/// Single-threaded epoll reactor. One background thread owns every fd;
/// all fd and connection mutation happens on that thread, either from an
/// fd handler or a function posted via RunInLoop(). The loop never holds
/// a lock while invoking user callbacks, so handlers may freely call
/// into server code that takes its own locks (see DESIGN.md §"Network
/// layer" for how this composes with the lock hierarchy).
class EventLoop {
 public:
  using FdHandler = std::function<void(uint32_t epoll_events)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. Returns false if epoll setup failed.
  bool Start();

  /// Stops the loop thread and joins it. Registered fds are not closed;
  /// their owners (connections) must be torn down first or leak.
  void Stop();

  /// Posts `fn` to run on the loop thread. Safe from any thread; if
  /// called on the loop thread itself, runs `fn` immediately.
  void RunInLoop(std::function<void()> fn);

  /// Runs `fn` on the loop thread and blocks until it returns. Used for
  /// setup calls (Listen, Close) issued from the owning thread. Must NOT
  /// be called from the loop thread's own callbacks via another thread's
  /// sync call (classic deadlock) — callbacks should use RunInLoop.
  void RunInLoopSync(std::function<void()> fn);

  /// One-shot timer after `delay_us` of monotonic time. Loop thread or
  /// any thread. Returns an id usable with CancelTimer.
  TimerId AddTimer(int64_t delay_us, std::function<void()> fn);
  void CancelTimer(TimerId id);

  /// fd registration — loop thread only (call via RunInLoop).
  bool AddFd(int fd, uint32_t events, FdHandler handler);
  bool ModFd(int fd, uint32_t events);
  void RemoveFd(int fd);

  bool InLoopThread() const;

  /// CLOCK_MONOTONIC in microseconds — the loop's timer base.
  static int64_t MonotonicNow();

 private:
  void Run();
  void Wake();
  void DrainPending();
  void FireDueTimers();
  int64_t NextTimerDelayMs();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;

  std::mutex mu_;
  std::vector<std::function<void()>> pending_;
  // Timers ordered by absolute monotonic deadline.
  std::multimap<int64_t, std::pair<TimerId, std::function<void()>>> timers_;
  uint64_t next_timer_id_ = 1;

  // Loop-thread-only: fd -> handler. Dispatch re-looks-up by fd so a
  // handler may RemoveFd (even itself) mid-dispatch without a dangling
  // callback firing.
  std::unordered_map<int, FdHandler> handlers_;
};

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_EVENT_LOOP_H_
