#ifndef QUAESTOR_NET_HTTP_CLIENT_H_
#define QUAESTOR_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "client/backend.h"
#include "common/result.h"
#include "net/http_codec.h"

namespace quaestor::net {

/// Minimal blocking HTTP/1.1 client over one keep-alive connection. The
/// SDK models a single browser session issuing sequential requests, so
/// one connection with synchronous round trips is the faithful shape.
/// A dead socket is redialed once per round trip.
class SyncHttpChannel {
 public:
  explicit SyncHttpChannel(uint16_t port) : port_(port) {}
  ~SyncHttpChannel();

  SyncHttpChannel(const SyncHttpChannel&) = delete;
  SyncHttpChannel& operator=(const SyncHttpChannel&) = delete;

  /// Sends one request and blocks for the full response.
  Result<HttpMessage> RoundTrip(const HttpMessage& request);

 private:
  bool EnsureConnected();
  void Drop();

  const uint16_t port_;
  int fd_ = -1;
  std::string residue_;  // bytes past the previous response, if any
};

/// client::Backend over a real socket: every SDK operation becomes an
/// HTTP request against a net::HttpFrontend. Also the webcache::Origin
/// the client-side cache hierarchy fetches through, so cache misses
/// travel the wire with full header semantics (ETag / If-None-Match /
/// Cache-Control / X-Deadline-Us) and 503/429/504 map back onto the
/// domain response flags.
class HttpBackend final : public client::Backend, public webcache::Origin {
 public:
  explicit HttpBackend(uint16_t port) : channel_(port) {}

  // -- webcache::Origin --
  webcache::HttpResponse Fetch(const webcache::HttpRequest& request) override;

  // -- client::Backend --
  webcache::Origin* origin() override { return this; }
  ebf::BloomFilter BloomSnapshot() override;
  ebf::BloomFilter BloomSnapshotForTable(const std::string& table) override;
  void RegisterQueryShape(const db::Query& query) override;
  Result<db::Document> Insert(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              db::Value body,
                              const RequestContext& ctx) override;
  Result<db::Document> Update(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              const db::Update& update,
                              const RequestContext& ctx) override;
  Result<db::Document> Delete(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              const RequestContext& ctx) override;

 private:
  ebf::BloomFilter FetchEbf(const std::string& target);
  Result<db::Document> Write(const std::string& op,
                             const std::string& auth_token,
                             const std::string& table, const std::string& id,
                             std::string body, const RequestContext& ctx);

  SyncHttpChannel channel_;
};

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_HTTP_CLIENT_H_
