#ifndef QUAESTOR_NET_FRAMING_H_
#define QUAESTOR_NET_FRAMING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace quaestor::net {

/// One length-prefixed message on a frame connection. The channel names
/// the KV queue (or control topic) the payload belongs to; the priority
/// byte (common/request_context.h Priority values, lower = more
/// important) lets a congested sender shed the least important classes
/// first instead of buffering without bound.
struct Frame {
  uint8_t priority = 2;  // Priority::kNormal
  std::string channel;
  std::string payload;
};

/// Control topic: a frame sent on this channel subscribes the sending
/// connection to every channel whose name starts with the payload. The
/// leading control byte keeps it out of the KV queue namespace.
inline constexpr std::string_view kSubscribeChannel = "\x01sub";

/// Upper bound on a frame's length-of-rest. A peer announcing more is
/// protocol breakage (or garbage on the port) — the connection is
/// dropped rather than waiting for gigabytes that never arrive.
inline constexpr size_t kMaxFrameBytes = 16u << 20;

/// Wire format (integers big-endian):
///   u32  length of everything after this field
///   u8   priority
///   u16  channel length, then the channel bytes
///   payload (the remainder)
void AppendFrame(std::string* out, const Frame& frame);
std::string EncodeFrame(const Frame& frame);

enum class FrameDecode {
  kFrame,     // one frame decoded; *consumed bytes used
  kNeedMore,  // torn frame: keep the bytes, read more
  kError,     // unrecoverable stream (oversized / malformed header)
};

/// Decodes one frame from the head of `in`.
FrameDecode DecodeFrame(std::string_view in, Frame* frame, size_t* consumed);

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_FRAMING_H_
