#ifndef QUAESTOR_NET_HTTP_CODEC_H_
#define QUAESTOR_NET_HTTP_CODEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "webcache/http.h"

namespace quaestor::net {

/// A parsed HTTP/1.1 message (request or response). Header names are
/// lowercased on decode; query parameters are percent-decoded.
struct HttpMessage {
  // Request side.
  std::string method;
  std::string target;  // raw request target, e.g. "/fetch?key=t%2Fx"
  std::string path;    // target up to '?'
  std::map<std::string, std::string> params;
  // Response side.
  int status = 0;
  // Both.
  std::map<std::string, std::string> headers;
  std::string body;
};

enum class HttpDecode {
  kComplete,  // one message decoded; *consumed bytes used
  kNeedMore,  // headers or body still arriving
  kError,     // malformed start-line / headers / length
};

HttpDecode DecodeHttpRequest(std::string_view in, HttpMessage* msg,
                             size_t* consumed);
HttpDecode DecodeHttpResponse(std::string_view in, HttpMessage* msg,
                              size_t* consumed);

std::string EncodeHttpRequest(const HttpMessage& msg);
std::string EncodeHttpResponse(const HttpMessage& msg);

std::string PercentEncode(std::string_view raw);

/// webcache::HttpResponse plus the stale-serving annotations that ride
/// along as X- headers (they live in FetchOutcome, not HttpResponse, so
/// the wire mapping carries them separately).
struct WireResponse {
  webcache::HttpResponse http;
  bool served_stale_on_shed = false;
  Micros stale_entry_age = 0;
};

/// Maps a domain response onto HTTP/1.1 status + caching headers:
///   304 not_modified · 200 ok · 504 deadline_exceeded · 429 shed ·
///   503 unavailable · 404 otherwise.
/// Cache-Control carries floor(ttl) in seconds (no-store when ttl==0);
/// X-TTL-Us / X-Last-Modified-Us preserve exact microseconds so the
/// round trip is lossless; Last-Modified is the standard HTTP-date.
HttpMessage ToHttpMessage(const WireResponse& response);
WireResponse FromHttpMessage(const HttpMessage& msg);

/// GET /fetch with key/If-None-Match/Authorization/X-Deadline-Us (absolute
/// request deadline) / X-Priority headers.
HttpMessage ToHttpMessage(const webcache::HttpRequest& request);
webcache::HttpRequest FetchRequestFromHttpMessage(const HttpMessage& msg);

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_HTTP_CODEC_H_
