#ifndef QUAESTOR_NET_HTTP_SERVER_H_
#define QUAESTOR_NET_HTTP_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>

#include "core/server.h"
#include "net/event_loop.h"
#include "net/http_codec.h"
#include "net/tcp.h"

namespace quaestor::net {

/// HTTP/1.1 front door for core::QuaestorServer. Keep-alive connections,
/// one in-flight request per connection (the SDK pipeline is
/// sequential). Routes:
///   GET  /fetch?key=K        origin fetch; honours If-None-Match /
///                            Authorization / X-Deadline-Us / X-Priority,
///                            answers with the caching headers of
///                            http_codec.h (ETag, Cache-Control, ...)
///   GET  /ebf[?table=T]      serialized Bloom filter snapshot
///   POST /query-shape        body: query spec JSON; announces the shape
///   POST /write?op=insert|update|delete&table=T&id=I
///                            body: document JSON (insert) / update spec
///                            JSON (update); Authorization resolved by
///                            the server's access controller. Errors
///                            carry x-status-code so the remote client
///                            reconstructs the exact Status.
class HttpFrontend {
 public:
  HttpFrontend(EventLoop* loop, core::QuaestorServer* server);
  ~HttpFrontend();

  /// Binds 127.0.0.1:<port> (0 = ephemeral). Thread-safe (sync-posts).
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  uint64_t requests_served() const;

 private:
  void HandleAccept(int fd);
  void HandleData(uint64_t conn_id);
  HttpMessage Dispatch(const HttpMessage& request);
  HttpMessage HandleFetch(const HttpMessage& request);
  HttpMessage HandleEbf(const HttpMessage& request);
  HttpMessage HandleQueryShape(const HttpMessage& request);
  HttpMessage HandleWrite(const HttpMessage& request);

  EventLoop* loop_;
  core::QuaestorServer* server_;
  std::unique_ptr<TcpListener> listener_;
  uint16_t port_ = 0;
  // Loop-thread only.
  std::map<uint64_t, std::shared_ptr<TcpConnection>> conns_;
  uint64_t next_conn_id_ = 1;

  mutable std::mutex stats_mu_;
  uint64_t requests_served_ = 0;
};

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_HTTP_SERVER_H_
