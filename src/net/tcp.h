#ifndef QUAESTOR_NET_TCP_H_
#define QUAESTOR_NET_TCP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/event_loop.h"

namespace quaestor::net {

/// Non-blocking TCP connection owned by an EventLoop. All methods are
/// loop-thread only (call via EventLoop::RunInLoop from elsewhere).
/// Writes buffer in user space when the socket is full; the buffer is
/// bounded — Send() refuses outright once `hard_limit` is reached so a
/// slow reader cannot grow the buffer without bound. Caller decides what
/// to do with the refusal (the frame hub sheds by priority).
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using DataHandler = std::function<void()>;
  using CloseHandler = std::function<void()>;

  /// Takes ownership of an already-connected fd and registers it.
  static std::shared_ptr<TcpConnection> Adopt(EventLoop* loop, int fd);

  ~TcpConnection();

  void set_on_data(DataHandler fn) { on_data_ = std::move(fn); }
  void set_on_close(CloseHandler fn) { on_close_ = std::move(fn); }
  void set_write_limits(size_t soft, size_t hard) {
    soft_limit_ = soft;
    hard_limit_ = hard;
  }

  /// Bytes received but not yet consumed. The data handler erases what
  /// it has parsed from the front and leaves torn tails in place.
  std::string& input() { return input_; }

  /// Queues `data` (attempting an immediate write first). Returns false
  /// — and buffers nothing — when the pending write buffer is already at
  /// the hard limit.
  bool Send(std::string_view data);

  size_t write_buffered() const { return output_.size(); }
  size_t soft_limit() const { return soft_limit_; }
  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }

  /// Closes now; pending unsent bytes are dropped. Fires on_close.
  void Close();

 private:
  TcpConnection(EventLoop* loop, int fd);
  void HandleEvents(uint32_t events);
  void HandleReadable();
  void HandleWritable();
  void UpdateInterest();

  EventLoop* loop_;
  int fd_;
  std::string input_;
  std::string output_;  // bytes accepted by Send but not yet written
  size_t output_offset_ = 0;
  size_t soft_limit_ = 256u << 10;
  size_t hard_limit_ = 1u << 20;
  bool want_write_ = false;
  DataHandler on_data_;
  CloseHandler on_close_;
};

/// Listening socket. Listen(0) binds an ephemeral port; port() reports
/// the actual one, so test fixtures never race over a fixed port.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(int fd)>;

  explicit TcpListener(EventLoop* loop) : loop_(loop) {}
  ~TcpListener();

  /// Loop-thread only. Binds 127.0.0.1:<port> and starts accepting.
  bool Listen(uint16_t port);
  void Close();
  uint16_t port() const { return port_; }
  void set_on_accept(AcceptHandler fn) { on_accept_ = std::move(fn); }

 private:
  EventLoop* loop_;
  int fd_ = -1;
  uint16_t port_ = 0;
  AcceptHandler on_accept_;
};

/// Opens a non-blocking connection to 127.0.0.1:<port>. Returns the fd
/// (connect may still be in progress — wait for EPOLLOUT) or -1.
int DialLoopback(uint16_t port);

/// Blocking variant used by the synchronous HTTP client.
int DialLoopbackBlocking(uint16_t port);

void SetNonBlocking(int fd);

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_TCP_H_
