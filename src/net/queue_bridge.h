#ifndef QUAESTOR_NET_QUEUE_BRIDGE_H_
#define QUAESTOR_NET_QUEUE_BRIDGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kv/kv_store.h"
#include "net/framing.h"
#include "net/tcp.h"

namespace quaestor::net {

/// KvStore whose queue *pushes* go out over a frame connection instead
/// of into local memory, while pops stay local. Each endpoint of a
/// bridged queue pair owns one BridgedKvStore: its sends leave on the
/// wire exactly once, and frames arriving from the peer are fed back in
/// via Deliver(), which enqueues into the local (base-class) queue for
/// the usual QueuePop/QueueTryPop consumers (ReliableQueue, transport).
class BridgedKvStore : public kv::KvStore {
 public:
  /// send(queue, payload, priority) ships one message; it may shed.
  using SendFn =
      std::function<void(const std::string&, const std::string&, uint8_t)>;

  BridgedKvStore(Clock* clock, SendFn send)
      : kv::KvStore(clock), send_(std::move(send)) {}

  void QueuePush(const std::string& queue, std::string message) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pushes_sent_;
    }
    send_(queue, message, PriorityFor(queue));
  }

  /// Feeds a frame received from the peer into the local queue.
  void Deliver(const std::string& queue, std::string message) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++deliveries_;
    }
    kv::KvStore::QueuePush(queue, std::move(message));
  }

  /// Marks a queue's frames with a wire priority (default kNormal).
  void set_queue_priority(const std::string& queue, uint8_t priority) {
    std::lock_guard<std::mutex> lock(mu_);
    queue_priority_[queue] = priority;
  }

  uint64_t pushes_sent() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pushes_sent_;
  }
  uint64_t deliveries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return deliveries_;
  }

 private:
  uint8_t PriorityFor(const std::string& queue) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queue_priority_.find(queue);
    return it == queue_priority_.end() ? uint8_t{2} : it->second;
  }

  SendFn send_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, uint8_t> queue_priority_;
  uint64_t pushes_sent_ = 0;
  uint64_t deliveries_ = 0;
};

/// Server side of the frame protocol: accepts connections, tracks which
/// channel prefixes each peer subscribed to (via kSubscribeChannel
/// control frames), fans outgoing frames to interested peers, and hands
/// frames arriving *from* peers to local Subscribe() handlers.
///
/// Backpressure: a peer whose connection buffer is at the hard limit
/// gets nothing; at or past the soft limit only frames with priority
/// kHigh or better (<= 1) are still queued. Everything shed is counted.
class FrameHub {
 public:
  using Handler = std::function<void(const Frame&)>;

  FrameHub(EventLoop* loop, size_t soft_limit, size_t hard_limit)
      : loop_(loop), soft_limit_(soft_limit), hard_limit_(hard_limit) {}
  ~FrameHub();

  /// Binds 127.0.0.1:<port> (0 = ephemeral). Thread-safe (sync-posts).
  bool Listen(uint16_t port);
  uint16_t port() const { return port_; }
  void Close();

  /// Registers a local consumer for incoming frames whose channel starts
  /// with `prefix`. Call before Listen (not synchronized afterwards).
  void Subscribe(const std::string& prefix, Handler handler);

  /// Ships one frame to every connected peer subscribed to `channel`.
  /// Safe from any thread.
  void Send(const std::string& channel, const std::string& payload,
            uint8_t priority);

  uint64_t frames_shed() const;
  uint64_t frames_shed_low_priority() const;
  size_t connections() const;

 private:
  struct Peer {
    std::shared_ptr<TcpConnection> conn;
    std::vector<std::string> prefixes;  // subscription prefixes
  };

  void HandleAccept(int fd);
  void HandleFrames(uint64_t peer_id);

  EventLoop* loop_;
  const size_t soft_limit_;
  const size_t hard_limit_;
  std::unique_ptr<TcpListener> listener_;
  uint16_t port_ = 0;
  // Loop-thread only.
  std::map<uint64_t, Peer> peers_;
  uint64_t next_peer_id_ = 1;
  std::vector<std::pair<std::string, Handler>> local_subs_;

  mutable std::mutex stats_mu_;
  uint64_t frames_shed_ = 0;
  uint64_t frames_shed_low_priority_ = 0;
};

/// Client side: dials a FrameHub, replays its subscriptions on every
/// (re)connect, and reconnects with a fixed backoff when the connection
/// drops. Send() while disconnected sheds — the reliable-queue layer on
/// top retransmits, so nothing needs buffering here.
class FrameClient {
 public:
  using Handler = std::function<void(const Frame&)>;

  FrameClient(EventLoop* loop, uint16_t port, int64_t reconnect_backoff_us);
  ~FrameClient();

  /// Registers interest in channels starting with `prefix`; replayed to
  /// the hub on every connect. Call before Connect.
  void Subscribe(const std::string& prefix, Handler handler);

  /// Starts dialing (async). Thread-safe.
  void Connect();
  void Close();

  /// Ships one frame if connected; sheds (returns false) otherwise.
  bool Send(const std::string& channel, const std::string& payload,
            uint8_t priority);

  bool connected() const;
  uint64_t reconnects() const;
  uint64_t frames_shed() const;

 private:
  void ConnectInLoop();
  void HandleConnected();
  void HandleFrames();
  void HandleDisconnect();

  EventLoop* loop_;
  const uint16_t port_;
  const int64_t reconnect_backoff_us_;
  std::vector<std::pair<std::string, Handler>> subs_;

  mutable std::mutex mu_;
  std::shared_ptr<TcpConnection> conn_;  // null while disconnected
  bool handshake_done_ = false;
  bool closing_ = false;
  uint64_t reconnects_ = 0;
  uint64_t frames_shed_ = 0;
};

}  // namespace quaestor::net

#endif  // QUAESTOR_NET_QUEUE_BRIDGE_H_
