#include "net/queue_bridge.h"

#include <algorithm>
#include <utility>

namespace quaestor::net {

namespace {

bool MatchesAny(const std::vector<std::string>& prefixes,
                const std::string& channel) {
  for (const std::string& p : prefixes) {
    if (channel.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

/// Parses every complete frame at the head of `buffer`, invoking `fn`
/// for each; erases consumed bytes and leaves torn tails in place.
/// Returns false on protocol error (caller closes the connection).
template <typename Fn>
bool DrainFrames(std::string* buffer, Fn&& fn) {
  size_t cursor = 0;
  for (;;) {
    Frame frame;
    size_t consumed = 0;
    const FrameDecode rc = DecodeFrame(
        std::string_view(*buffer).substr(cursor), &frame, &consumed);
    if (rc == FrameDecode::kError) return false;
    if (rc == FrameDecode::kNeedMore) break;
    cursor += consumed;
    fn(frame);
  }
  buffer->erase(0, cursor);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameHub

FrameHub::~FrameHub() { Close(); }

bool FrameHub::Listen(uint16_t port) {
  bool ok = false;
  loop_->RunInLoopSync([&] {
    listener_ = std::make_unique<TcpListener>(loop_);
    listener_->set_on_accept([this](int fd) { HandleAccept(fd); });
    ok = listener_->Listen(port);
    if (ok) port_ = listener_->port();
  });
  return ok;
}

void FrameHub::Close() {
  loop_->RunInLoopSync([&] {
    if (listener_) listener_->Close();
    // Close() mutates peers_ via on_close; detach the map first.
    std::map<uint64_t, Peer> doomed;
    doomed.swap(peers_);
    for (auto& [id, peer] : doomed) peer.conn->Close();
  });
}

void FrameHub::Subscribe(const std::string& prefix, Handler handler) {
  local_subs_.emplace_back(prefix, std::move(handler));
}

void FrameHub::HandleAccept(int fd) {
  std::shared_ptr<TcpConnection> conn = TcpConnection::Adopt(loop_, fd);
  conn->set_write_limits(soft_limit_, hard_limit_);
  const uint64_t id = next_peer_id_++;
  peers_[id] = Peer{conn, {}};
  conn->set_on_data([this, id] { HandleFrames(id); });
  conn->set_on_close([this, id] { peers_.erase(id); });
}

void FrameHub::HandleFrames(uint64_t peer_id) {
  auto it = peers_.find(peer_id);
  if (it == peers_.end()) return;
  std::shared_ptr<TcpConnection> conn = it->second.conn;
  const bool ok = DrainFrames(&conn->input(), [&](const Frame& frame) {
    if (frame.channel == kSubscribeChannel) {
      auto again = peers_.find(peer_id);
      if (again != peers_.end()) {
        again->second.prefixes.push_back(frame.payload);
      }
      return;
    }
    for (auto& [prefix, handler] : local_subs_) {
      if (frame.channel.compare(0, prefix.size(), prefix) == 0) {
        handler(frame);
      }
    }
  });
  if (!ok) conn->Close();  // malformed stream: drop the peer
}

void FrameHub::Send(const std::string& channel, const std::string& payload,
                    uint8_t priority) {
  std::string wire = EncodeFrame(Frame{priority, channel, payload});
  loop_->RunInLoop([this, channel, wire = std::move(wire), priority] {
    for (auto& [id, peer] : peers_) {
      if (!MatchesAny(peer.prefixes, channel)) continue;
      // Backpressure: past the soft limit only critical/high classes
      // still queue; the hard limit (enforced in TcpConnection::Send)
      // sheds everything.
      if (peer.conn->write_buffered() >= soft_limit_ && priority > 1) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++frames_shed_;
        ++frames_shed_low_priority_;
        continue;
      }
      if (!peer.conn->Send(wire)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++frames_shed_;
      }
    }
  });
}

uint64_t FrameHub::frames_shed() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return frames_shed_;
}

uint64_t FrameHub::frames_shed_low_priority() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return frames_shed_low_priority_;
}

size_t FrameHub::connections() const {
  // peers_ is loop-thread state; snapshot via a sync hop.
  size_t n = 0;
  loop_->RunInLoopSync([&] { n = peers_.size(); });
  return n;
}

// ---------------------------------------------------------------------------
// FrameClient

FrameClient::FrameClient(EventLoop* loop, uint16_t port,
                         int64_t reconnect_backoff_us)
    : loop_(loop), port_(port), reconnect_backoff_us_(reconnect_backoff_us) {}

FrameClient::~FrameClient() { Close(); }

void FrameClient::Subscribe(const std::string& prefix, Handler handler) {
  subs_.emplace_back(prefix, std::move(handler));
}

void FrameClient::Connect() {
  loop_->RunInLoop([this] { ConnectInLoop(); });
}

void FrameClient::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) return;
    closing_ = true;
  }
  // Sync barrier: every Send/Connect posted before this has drained by
  // the time we return, so nothing references *this afterwards.
  loop_->RunInLoopSync([this] {
    std::shared_ptr<TcpConnection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn.swap(conn_);
    }
    if (conn) {
      conn->set_on_close(nullptr);
      conn->Close();
    }
  });
}

void FrameClient::ConnectInLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ || conn_) return;
  }
  const int fd = DialLoopback(port_);
  if (fd < 0) {
    HandleDisconnect();
    return;
  }
  std::shared_ptr<TcpConnection> conn = TcpConnection::Adopt(loop_, fd);
  conn->set_on_data([this] { HandleFrames(); });
  conn->set_on_close([this] { HandleDisconnect(); });
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_ = conn;
  }
  HandleConnected();
}

void FrameClient::HandleConnected() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn = conn_;
    if (handshake_done_) ++reconnects_;
    handshake_done_ = true;
  }
  if (!conn) return;
  // Replay subscriptions. On a still-in-progress connect these buffer
  // and flush when the socket turns writable; on failure the error
  // surfaces as a close and we retry.
  for (auto& [prefix, handler] : subs_) {
    conn->Send(EncodeFrame(Frame{0, std::string(kSubscribeChannel), prefix}));
  }
}

void FrameClient::HandleFrames() {
  std::shared_ptr<TcpConnection> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn = conn_;
  }
  if (!conn) return;
  const bool ok = DrainFrames(&conn->input(), [&](const Frame& frame) {
    for (auto& [prefix, handler] : subs_) {
      if (frame.channel.compare(0, prefix.size(), prefix) == 0) {
        handler(frame);
      }
    }
  });
  if (!ok) conn->Close();
}

void FrameClient::HandleDisconnect() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_.reset();
    if (closing_) return;
  }
  loop_->AddTimer(reconnect_backoff_us_, [this] {
    bool closing;
    {
      std::lock_guard<std::mutex> lock(mu_);
      closing = closing_;
    }
    if (!closing) ConnectInLoop();
  });
}

bool FrameClient::Send(const std::string& channel, const std::string& payload,
                       uint8_t priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ || !conn_) {
      ++frames_shed_;
      return false;
    }
  }
  std::string wire = EncodeFrame(Frame{priority, channel, payload});
  loop_->RunInLoop([this, wire = std::move(wire)] {
    std::shared_ptr<TcpConnection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn = conn_;
      if (closing_) return;
    }
    if (!conn || !conn->Send(wire)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++frames_shed_;
    }
  });
  return true;
}

bool FrameClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_ != nullptr;
}

uint64_t FrameClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconnects_;
}

uint64_t FrameClient::frames_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return frames_shed_;
}

}  // namespace quaestor::net
