#include "net/service.h"

#include <utility>
#include <vector>

namespace quaestor::net {

namespace {

constexpr uint8_t kPriCritical = 0;
constexpr uint8_t kPriHigh = 1;
constexpr uint8_t kPriNormal = 2;

}  // namespace

// ---------------------------------------------------------------------------
// NetServer

NetServer::NetServer(Clock* clock, core::QuaestorServer* server,
                     NetOptions options)
    : clock_(clock), server_(server), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

bool NetServer::Start() {
  if (!options_.enabled || started_) return false;
  if (!loop_.Start()) return false;
  hub_ = std::make_unique<FrameHub>(&loop_, options_.write_buffer_soft_limit,
                                    options_.write_buffer_hard_limit);
  http_ = std::make_unique<HttpFrontend>(&loop_, server_);

  if (options_.remote_invalidb) {
    const std::string& p = options_.invalidb_prefix;
    FrameHub* hub = hub_.get();
    bridged_kv_ = std::make_unique<BridgedKvStore>(
        clock_, [hub](const std::string& queue, const std::string& payload,
                      uint8_t priority) { hub->Send(queue, payload, priority); });
    // Origin-side sends: registrations/changes are the data path
    // (critical); acks for incoming notifications are high.
    bridged_kv_->set_queue_priority(p + ":requests", kPriCritical);
    bridged_kv_->set_queue_priority(p + ":notifications:acks", kPriHigh);
    // Frames arriving from workers feed the local queue pair the remote
    // stub consumes.
    BridgedKvStore* bridged = bridged_kv_.get();
    const auto deliver = [bridged](const Frame& frame) {
      bridged->Deliver(frame.channel, frame.payload);
    };
    hub_->Subscribe(p + ":notifications", deliver);
    hub_->Subscribe(p + ":requests:acks", deliver);

    remote_ = std::make_unique<invalidb::InvalidbRemote>(
        clock_, bridged_kv_.get(), p,
        [this](const invalidb::Notification& n) {
          server_->OnExternalNotifications({n});
        },
        options_.transport);
    invalidb::InvalidbRemote* remote = remote_.get();
    core::QuaestorServer::ExternalPipeline pipeline;
    pipeline.register_query = [remote](const db::Query& query,
                                       const std::vector<db::Document>& init,
                                       invalidb::EventMask events) {
      remote->RegisterQuery(query, init, events);
      return Status::OK();
    };
    pipeline.deregister_query = [remote](const std::string& key) {
      remote->DeregisterQuery(key);
    };
    pipeline.on_change = [remote](const db::ChangeEvent& ev) {
      remote->OnChange(ev);
    };
    pipeline.on_change_batch = [remote](std::vector<db::ChangeEvent> batch) {
      for (const db::ChangeEvent& ev : batch) remote->OnChange(ev);
    };
    server_->SetExternalPipeline(std::move(pipeline));
  }

  // Invalidation fan-out to socket peers (remote CDN nodes subscribe to
  // the "purge" channel). Purges must beat everything else out.
  FrameHub* hub = hub_.get();
  server_->AddPurgeTarget(
      [hub](const std::string& key) { hub->Send("purge", key, kPriCritical); });

  if (!hub_->Listen(options_.frame_port)) return false;
  if (!http_->Listen(options_.http_port)) return false;
  if (remote_) remote_->StartPolling();
  started_ = true;
  return true;
}

void NetServer::Stop() {
  if (!started_) {
    loop_.Stop();
    return;
  }
  started_ = false;
  if (remote_) remote_->StopPolling();
  if (http_) http_->Close();
  if (hub_) hub_->Close();
  loop_.Stop();
}

uint16_t NetServer::http_port() const { return http_ ? http_->port() : 0; }

uint16_t NetServer::frame_port() const { return hub_ ? hub_->port() : 0; }

// ---------------------------------------------------------------------------
// NetWorker

NetWorker::NetWorker(Clock* clock, uint16_t frame_port, NetOptions options,
                     invalidb::InvalidbOptions cluster_options)
    : clock_(clock),
      options_(std::move(options)),
      cluster_options_(cluster_options),
      frame_port_(frame_port) {}

NetWorker::~NetWorker() { Stop(); }

bool NetWorker::Start() {
  if (started_) return false;
  if (!loop_.Start()) return false;
  const std::string& p = options_.invalidb_prefix;
  client_ = std::make_unique<FrameClient>(
      &loop_, frame_port_, options_.reconnect_backoff);
  FrameClient* client = client_.get();
  bridged_kv_ = std::make_unique<BridgedKvStore>(
      clock_,
      [client](const std::string& queue, const std::string& payload,
               uint8_t priority) { client->Send(queue, payload, priority); });
  // Worker-side sends: notifications are the sheddable class under
  // backpressure (the reliable sender retransmits them); request acks
  // stay high so the origin's sender retires state promptly.
  bridged_kv_->set_queue_priority(p + ":notifications", kPriNormal);
  bridged_kv_->set_queue_priority(p + ":requests:acks", kPriHigh);
  BridgedKvStore* bridged = bridged_kv_.get();
  const auto deliver = [bridged](const Frame& frame) {
    bridged->Deliver(frame.channel, frame.payload);
  };
  client_->Subscribe(p + ":requests", deliver);
  client_->Subscribe(p + ":notifications:acks", deliver);
  client_->Connect();

  worker_ = std::make_unique<invalidb::InvalidbWorker>(
      clock_, bridged_kv_.get(), p, cluster_options_, options_.transport);
  worker_->Start();
  started_ = true;
  return true;
}

void NetWorker::Stop() {
  if (!started_) {
    loop_.Stop();
    return;
  }
  started_ = false;
  if (worker_) worker_->Stop();
  if (client_) client_->Close();
  loop_.Stop();
}

}  // namespace quaestor::net
