#include "net/http_client.h"

#include <errno.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

#include "net/tcp.h"

namespace quaestor::net {

namespace {

/// Reconstructs the Status a write endpoint reported via x-status-code.
Status StatusFromResponse(const HttpMessage& msg) {
  auto it = msg.headers.find("x-status-code");
  if (it != msg.headers.end()) {
    const long code = std::strtol(it->second.c_str(), nullptr, 10);
    if (code > 0 && code <= 13) {
      return Status(static_cast<StatusCode>(code), msg.body);
    }
  }
  return Status::Internal("http status " + std::to_string(msg.status));
}

}  // namespace

// ---------------------------------------------------------------------------
// SyncHttpChannel

SyncHttpChannel::~SyncHttpChannel() { Drop(); }

void SyncHttpChannel::Drop() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  residue_.clear();
}

bool SyncHttpChannel::EnsureConnected() {
  if (fd_ >= 0) return true;
  fd_ = DialLoopbackBlocking(port_);
  return fd_ >= 0;
}

Result<HttpMessage> SyncHttpChannel::RoundTrip(const HttpMessage& request) {
  const std::string wire = EncodeHttpRequest(request);
  for (int dial = 0; dial < 2; ++dial) {
    if (!EnsureConnected()) {
      return Status::Unavailable("connect failed");
    }
    // Write the full request.
    size_t written = 0;
    bool write_ok = true;
    while (written < wire.size()) {
      const ssize_t n =
          ::write(fd_, wire.data() + written, wire.size() - written);
      if (n > 0) {
        written += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      write_ok = false;  // stale keep-alive connection: redial once
      break;
    }
    if (!write_ok) {
      Drop();
      continue;
    }
    // Read until one complete response decodes.
    std::string buffer = std::move(residue_);
    residue_.clear();
    for (;;) {
      HttpMessage response;
      size_t consumed = 0;
      const HttpDecode rc = DecodeHttpResponse(buffer, &response, &consumed);
      if (rc == HttpDecode::kComplete) {
        residue_ = buffer.substr(consumed);
        return response;
      }
      if (rc == HttpDecode::kError) {
        Drop();
        return Status::Internal("malformed http response");
      }
      char chunk[64 * 1024];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n > 0) {
        buffer.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      Drop();
      if (!buffer.empty()) {
        return Status::Unavailable("connection lost mid-response");
      }
      break;  // closed before any bytes: retry on a fresh connection
    }
  }
  return Status::Unavailable("connection lost");
}

// ---------------------------------------------------------------------------
// HttpBackend

webcache::HttpResponse HttpBackend::Fetch(
    const webcache::HttpRequest& request) {
  Result<HttpMessage> response = channel_.RoundTrip(ToHttpMessage(request));
  if (!response.ok()) {
    webcache::HttpResponse unavailable;
    unavailable.unavailable = true;
    return unavailable;
  }
  return FromHttpMessage(response.value()).http;
}

ebf::BloomFilter HttpBackend::FetchEbf(const std::string& target) {
  HttpMessage request;
  request.method = "GET";
  request.target = target;
  Result<HttpMessage> response = channel_.RoundTrip(request);
  if (response.ok() && response->status == 200) {
    Result<ebf::BloomFilter> bloom =
        ebf::BloomFilter::Deserialize(response->body);
    if (bloom.ok()) return std::move(bloom).value();
  }
  // Unreachable/garbled EBF endpoint: an empty filter degrades to "no
  // revalidation hints", never to a wrong answer.
  return ebf::BloomFilter();
}

ebf::BloomFilter HttpBackend::BloomSnapshot() { return FetchEbf("/ebf"); }

ebf::BloomFilter HttpBackend::BloomSnapshotForTable(const std::string& table) {
  return FetchEbf("/ebf?table=" + PercentEncode(table));
}

void HttpBackend::RegisterQueryShape(const db::Query& query) {
  HttpMessage request;
  request.method = "POST";
  request.target = "/query-shape";
  request.body = query.ToSpec().ToJson();
  (void)channel_.RoundTrip(request);
}

Result<db::Document> HttpBackend::Write(const std::string& op,
                                        const std::string& auth_token,
                                        const std::string& table,
                                        const std::string& id,
                                        std::string body,
                                        const RequestContext& ctx) {
  HttpMessage request;
  request.method = "POST";
  request.target = "/write?op=" + op + "&table=" + PercentEncode(table) +
                   "&id=" + PercentEncode(id);
  request.body = std::move(body);
  if (!auth_token.empty()) {
    request.headers["authorization"] = "Bearer " + auth_token;
  }
  if (ctx.deadline != 0) {
    request.headers["x-deadline-us"] = std::to_string(ctx.deadline);
  }
  if (ctx.priority != Priority::kNormal) {
    request.headers["x-priority"] =
        std::to_string(static_cast<int>(ctx.priority));
  }
  Result<HttpMessage> response = channel_.RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->status != 200) return StatusFromResponse(response.value());
  Result<db::Value> parsed = db::Value::FromJson(response->body);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->is_object()) {
    return Status::Internal("write response is not an object");
  }
  const db::Object& obj = parsed->as_object();
  db::Document doc;
  auto str = [&](const char* field) -> std::string {
    auto it = obj.find(field);
    return it != obj.end() && it->second.is_string() ? it->second.as_string()
                                                     : "";
  };
  auto num = [&](const char* field) -> int64_t {
    auto it = obj.find(field);
    return it != obj.end() && it->second.is_int() ? it->second.as_int() : 0;
  };
  doc.table = str("table");
  doc.id = str("id");
  doc.version = static_cast<uint64_t>(num("version"));
  doc.write_time = num("write_time");
  auto deleted = obj.find("deleted");
  doc.deleted = deleted != obj.end() && deleted->second.is_bool() &&
                deleted->second.as_bool();
  auto body_it = obj.find("body");
  if (body_it != obj.end()) doc.body = body_it->second;
  return doc;
}

Result<db::Document> HttpBackend::Insert(const std::string& auth_token,
                                         const std::string& table,
                                         const std::string& id,
                                         db::Value body,
                                         const RequestContext& ctx) {
  return Write("insert", auth_token, table, id, body.ToJson(), ctx);
}

Result<db::Document> HttpBackend::Update(const std::string& auth_token,
                                         const std::string& table,
                                         const std::string& id,
                                         const db::Update& update,
                                         const RequestContext& ctx) {
  return Write("update", auth_token, table, id, update.ToSpec().ToJson(),
               ctx);
}

Result<db::Document> HttpBackend::Delete(const std::string& auth_token,
                                         const std::string& table,
                                         const std::string& id,
                                         const RequestContext& ctx) {
  return Write("delete", auth_token, table, id, "", ctx);
}

}  // namespace quaestor::net
