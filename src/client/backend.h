#ifndef QUAESTOR_CLIENT_BACKEND_H_
#define QUAESTOR_CLIENT_BACKEND_H_

#include <string>
#include <utility>

#include "common/request_context.h"
#include "common/result.h"
#include "core/server.h"
#include "db/document.h"
#include "db/query.h"
#include "db/update.h"
#include "db/value.h"
#include "ebf/bloom_filter.h"
#include "webcache/http.h"

namespace quaestor::client {

/// Everything the SDK needs from the service it talks to. The in-process
/// default (LocalBackend) calls core::QuaestorServer directly; the
/// socket backend (net::HttpBackend) speaks HTTP/1.1 to a remote
/// HttpFrontend. The SDK itself cannot tell the difference.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Origin the cache hierarchy fetches through (read path).
  virtual webcache::Origin* origin() = 0;

  virtual ebf::BloomFilter BloomSnapshot() = 0;
  virtual ebf::BloomFilter BloomSnapshotForTable(const std::string& table) = 0;
  virtual void RegisterQueryShape(const db::Query& query) = 0;

  /// Writes: the token is resolved to credentials server-side (a remote
  /// client never sees the access controller).
  virtual Result<db::Document> Insert(const std::string& auth_token,
                                      const std::string& table,
                                      const std::string& id, db::Value body,
                                      const RequestContext& ctx) = 0;
  virtual Result<db::Document> Update(const std::string& auth_token,
                                      const std::string& table,
                                      const std::string& id,
                                      const db::Update& update,
                                      const RequestContext& ctx) = 0;
  virtual Result<db::Document> Delete(const std::string& auth_token,
                                      const std::string& table,
                                      const std::string& id,
                                      const RequestContext& ctx) = 0;

  /// Non-null only for in-process backends (transactions commit through
  /// the server object; a remote session cannot run them).
  virtual core::QuaestorServer* local_server() { return nullptr; }
};

/// In-process backend: the pre-net wiring, now behind the seam.
class LocalBackend final : public Backend {
 public:
  explicit LocalBackend(core::QuaestorServer* server) : server_(server) {}

  webcache::Origin* origin() override { return server_; }
  ebf::BloomFilter BloomSnapshot() override {
    return server_->BloomSnapshot();
  }
  ebf::BloomFilter BloomSnapshotForTable(const std::string& table) override {
    return server_->BloomSnapshotForTable(table);
  }
  void RegisterQueryShape(const db::Query& query) override {
    server_->RegisterQueryShape(query);
  }
  Result<db::Document> Insert(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              db::Value body,
                              const RequestContext& ctx) override {
    return server_->Insert(server_->auth().Resolve(auth_token), table, id,
                           std::move(body), ctx);
  }
  Result<db::Document> Update(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              const db::Update& update,
                              const RequestContext& ctx) override {
    return server_->Update(server_->auth().Resolve(auth_token), table, id,
                           update, ctx);
  }
  Result<db::Document> Delete(const std::string& auth_token,
                              const std::string& table, const std::string& id,
                              const RequestContext& ctx) override {
    return server_->Delete(server_->auth().Resolve(auth_token), table, id,
                           ctx);
  }
  core::QuaestorServer* local_server() override { return server_; }

 private:
  core::QuaestorServer* server_;
};

}  // namespace quaestor::client

#endif  // QUAESTOR_CLIENT_BACKEND_H_
