#ifndef QUAESTOR_CLIENT_TRANSACTION_H_
#define QUAESTOR_CLIENT_TRANSACTION_H_

#include <map>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/result.h"
#include "core/transactions.h"

namespace quaestor::client {

/// A client-side optimistic transaction (§3.2): reads execute through the
/// normal cached read path (shrinking transaction duration — the paper's
/// motivation for cache-accelerated transactions), collecting a read set
/// of (key, observed version); writes are buffered locally and visible to
/// the transaction's own reads. Commit ships read set + writes to the
/// server, which validates with backwards-oriented OCC and applies
/// atomically; a stale cached read or a concurrent conflicting write
/// aborts (retry with `Commit` returning Status::Aborted).
///
/// Single-threaded like the owning client session. One-shot: after
/// Commit() the transaction cannot be reused.
class ClientTransaction {
 public:
  explicit ClientTransaction(QuaestorClient* client);

  ClientTransaction(const ClientTransaction&) = delete;
  ClientTransaction& operator=(const ClientTransaction&) = delete;

  /// Transactional read: buffered writes overlay the cached read.
  ReadResult Read(const std::string& table, const std::string& id);

  /// Buffers an insert (fails at commit if the id exists).
  void Insert(const std::string& table, const std::string& id,
              db::Value body);

  /// Buffers a partial update.
  void Update(const std::string& table, const std::string& id,
              db::Update update);

  /// Buffers a delete.
  void Delete(const std::string& table, const std::string& id);

  /// Validates and applies at the server. On success the client session
  /// absorbs the committed after-images (read-your-writes continuity).
  /// Returns Status::Aborted on validation conflicts.
  Result<core::CommitResult> Commit();

  /// Discards all buffered state.
  void Rollback();

  size_t read_set_size() const { return request_.read_set.size(); }
  size_t write_count() const { return request_.writes.size(); }
  bool committed() const { return committed_; }

 private:
  struct Overlay {
    bool deleted = false;
    bool inserted = false;
    bool has_value = false;
    db::Value body;
  };

  /// Buffered view of a key, if any write touched it.
  Overlay* FindOverlay(const std::string& key);

  QuaestorClient* client_;
  core::TransactionRequest request_;
  std::map<std::string, Overlay> overlays_;
  bool committed_ = false;
};

}  // namespace quaestor::client

#endif  // QUAESTOR_CLIENT_TRANSACTION_H_
