#include "client/live_query.h"

#include <algorithm>

#include "core/server.h"

namespace quaestor::client {

LiveQuery::LiveQuery(core::ChangeStreamHub* hub,
                     core::QuaestorServer* server, db::Query query)
    : hub_(hub), server_(server), query_(std::move(query)) {
  std::vector<db::Document> initial;
  auto id = hub_->Subscribe(
      query_, [this](const core::StreamEvent& ev) { OnEvent(ev); },
      &initial);
  if (!id.ok()) {
    status_ = id.status();
    return;
  }
  subscription_id_ = id.value();
  std::lock_guard<std::mutex> lock(mu_);
  result_ = std::move(initial);
}

LiveQuery::~LiveQuery() {
  if (status_.ok()) hub_->Unsubscribe(subscription_id_);
}

std::vector<db::Document> LiveQuery::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_;
}

std::vector<std::string> LiveQuery::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(result_.size());
  for (const db::Document& d : result_) ids.push_back(d.id);
  return ids;
}

size_t LiveQuery::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_.size();
}

uint64_t LiveQuery::change_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return change_count_;
}

uint64_t LiveQuery::resync_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resync_count_;
}

void LiveQuery::SetListener(std::function<void()> on_change) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(on_change);
}

void LiveQuery::ResyncLocked() {
  result_ = server_->database().Execute(query_);
  resync_count_++;
}

void LiveQuery::OnEvent(const core::StreamEvent& ev) {
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    change_count_++;
    auto find = [this](const std::string& id) {
      return std::find_if(result_.begin(), result_.end(),
                          [&id](const db::Document& d) { return d.id == id; });
    };
    switch (ev.type) {
      case invalidb::NotificationType::kAdd: {
        if (!ev.has_body || find(ev.record_id) != result_.end()) {
          ResyncLocked();
          break;
        }
        db::Document doc;
        doc.table = query_.table();
        doc.id = ev.record_id;
        doc.body = ev.body;
        doc.write_time = ev.event_time;
        if (ev.new_index >= 0 &&
            static_cast<size_t>(ev.new_index) <= result_.size()) {
          result_.insert(result_.begin() + ev.new_index, std::move(doc));
        } else {
          // Stateless result: keep deterministic id order.
          auto pos = std::lower_bound(
              result_.begin(), result_.end(), doc,
              [](const db::Document& a, const db::Document& b) {
                return a.id < b.id;
              });
          result_.insert(pos, std::move(doc));
        }
        break;
      }
      case invalidb::NotificationType::kRemove: {
        auto it = find(ev.record_id);
        if (it == result_.end()) {
          ResyncLocked();
          break;
        }
        result_.erase(it);
        break;
      }
      case invalidb::NotificationType::kChange: {
        auto it = find(ev.record_id);
        if (it == result_.end() || !ev.has_body) {
          ResyncLocked();
          break;
        }
        it->body = ev.body;
        it->write_time = ev.event_time;
        break;
      }
      case invalidb::NotificationType::kChangeIndex: {
        auto it = find(ev.record_id);
        if (it == result_.end() || ev.new_index < 0 ||
            static_cast<size_t>(ev.new_index) >= result_.size()) {
          ResyncLocked();
          break;
        }
        db::Document doc = std::move(*it);
        result_.erase(it);
        result_.insert(result_.begin() + ev.new_index, std::move(doc));
        break;
      }
    }
    listener = listener_;
  }
  if (listener) listener();
}

}  // namespace quaestor::client
