#include "client/transaction.h"

namespace quaestor::client {

ClientTransaction::ClientTransaction(QuaestorClient* client)
    : client_(client) {}

ClientTransaction::Overlay* ClientTransaction::FindOverlay(
    const std::string& key) {
  auto it = overlays_.find(key);
  return it == overlays_.end() ? nullptr : &it->second;
}

ReadResult ClientTransaction::Read(const std::string& table,
                                   const std::string& id) {
  const std::string key = table + "/" + id;
  ReadResult result;
  Overlay* ov = FindOverlay(key);
  if (ov != nullptr && ov->deleted) {
    result.status = Status::NotFound(key);
    return result;
  }
  if (ov != nullptr && ov->has_value) {
    // Buffered write or transaction-local snapshot: repeatable, free.
    result.doc = ov->body;
    result.outcome.served_by = webcache::ServedBy::kClientCache;
    return result;
  }

  ReadResult rr = client_->Read(table, id);
  // Record the observed version exactly once — this is what commit-time
  // validation checks (0 = observed-as-absent).
  request_.read_set.emplace(key, rr.status.ok() ? rr.version : 0);
  if (!rr.status.ok()) return rr;

  // Snapshot into the overlay so subsequent reads are repeatable.
  Overlay& snap = overlays_[key];
  snap.has_value = true;
  snap.body = rr.doc;
  return rr;
}

void ClientTransaction::Insert(const std::string& table,
                               const std::string& id, db::Value body) {
  const std::string key = table + "/" + id;
  core::TxWrite w;
  w.kind = core::TxWrite::Kind::kInsert;
  w.table = table;
  w.id = id;
  w.body = body;
  request_.writes.push_back(std::move(w));
  Overlay& ov = overlays_[key];
  ov.deleted = false;
  ov.inserted = true;
  ov.has_value = true;
  ov.body = std::move(body);
}

void ClientTransaction::Update(const std::string& table,
                               const std::string& id, db::Update update) {
  const std::string key = table + "/" + id;
  Overlay* ov = FindOverlay(key);
  if (ov != nullptr && ov->has_value) {
    // Keep the transaction-local view current (best effort; the server
    // re-applies against the validated base at commit).
    (void)update.ApplyTo(ov->body);
  }
  core::TxWrite w;
  w.kind = core::TxWrite::Kind::kUpdate;
  w.table = table;
  w.id = id;
  w.update = std::move(update);
  request_.writes.push_back(std::move(w));
}

void ClientTransaction::Delete(const std::string& table,
                               const std::string& id) {
  const std::string key = table + "/" + id;
  core::TxWrite w;
  w.kind = core::TxWrite::Kind::kDelete;
  w.table = table;
  w.id = id;
  request_.writes.push_back(std::move(w));
  Overlay& ov = overlays_[key];
  ov.deleted = true;
  ov.has_value = false;
  ov.inserted = false;
}

Result<core::CommitResult> ClientTransaction::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("transaction already committed");
  }
  auto result = client_->server()->transactions().Commit(request_);
  if (result.ok()) {
    committed_ = true;
    // The session keeps read-your-writes across the commit boundary.
    for (const db::Document& doc : result->applied) {
      client_->AbsorbWrite(doc);
    }
  }
  return result;
}

void ClientTransaction::Rollback() {
  request_ = core::TransactionRequest();
  overlays_.clear();
}

}  // namespace quaestor::client
