#ifndef QUAESTOR_CLIENT_CLIENT_H_
#define QUAESTOR_CLIENT_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/backend.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "core/query_result.h"
#include "core/server.h"
#include "db/query.h"
#include "db/update.h"
#include "db/value.h"
#include "ebf/bloom_filter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "webcache/hierarchy.h"
#include "webcache/web_cache.h"

namespace quaestor::client {

/// Client-side consistency levels (Figure 4). ∆-atomicity, monotonic
/// writes, read-your-writes and monotonic reads are always provided;
/// causal and strong consistency are opt-in with a performance penalty.
enum class ConsistencyLevel {
  kDeltaAtomic,
  kCausal,
  kStrong,
};

/// SDK configuration.
struct ClientOptions {
  /// ∆: the EBF refresh interval. Staleness is bounded by this value
  /// (Theorem 1). The first request after ∆ elapses is promoted to a
  /// revalidation that piggybacks a fresh EBF (§3.1 Freshness Policies).
  Micros ebf_refresh_interval = SecondsToMicros(1.0);

  ConsistencyLevel consistency = ConsistencyLevel::kDeltaAtomic;

  /// Consult the Expiring Bloom Filter before reads (disabled for the
  /// "CDN only" and "Uncached" baselines).
  bool use_ebf = true;

  /// Load table-specific EBF partitions (lazily, per accessed table)
  /// instead of the single aggregate filter — §3.3: lowers the total
  /// false-positive rate at the expense of more individual transfers.
  /// The causal consistency level requires the aggregate mode.
  bool use_table_ebfs = false;

  /// Let EBF-triggered revalidations be served by the invalidation-based
  /// cache instead of the origin (the ∆ − ∆_invalidation optimization of
  /// §3.2 — trades invalidation latency for backend offload).
  bool revalidate_at_cdn = false;

  /// TTL for the client's own writes in its session cache
  /// (read-your-writes).
  Micros own_write_ttl = SecondsToMicros(60.0);

  /// Bearer token for this session (empty = anonymous). Sent with every
  /// origin request and used for write authorization.
  std::string auth_token;

  /// HTTP/2 transport semantics (§7): the server pushes the member
  /// records of an id-list result over the multiplexed connection, so
  /// result assembly adds no round-trip latency ("simplify the query
  /// result representation to always favor id-lists without any
  /// performance downsides").
  bool http2 = false;

  /// Fault injection (testing only): never refresh the EBF after the
  /// initial Connect(), even once ∆ elapses. The session then keeps
  /// consulting a stale filter forever, so cached copies can be served
  /// arbitrarily long after a write — the consistency oracle's
  /// ∆-atomicity check must flag this (see src/check).
  bool fault_skip_ebf_refresh = false;

  /// Bounded retry for transient origin faults (503 responses). Off by
  /// default: a failed fetch then surfaces immediately, as before.
  struct RetryOptions {
    bool enabled = false;
    /// Total attempts, including the first (so 3 = up to 2 retries).
    size_t max_attempts = 3;
    Micros initial_backoff = 50 * kMicrosPerMilli;
    double multiplier = 2.0;
    Micros max_backoff = 1 * kMicrosPerSecond;
    /// Uniform backoff jitter fraction (avoids retry stampedes).
    double jitter = 0.2;
    uint64_t seed = 1;
    /// Token-bucket retry budget shared across this session's requests
    /// (layered on the per-request backoff): each retry spends one token,
    /// each success refills `budget_refill_per_success` up to the cap.
    /// When the bucket is empty further retries are suppressed — a fleet
    /// of budgeted clients cannot amplify an overload into a retry storm
    /// (a healthy backend keeps everyone's bucket full; a sick one drains
    /// it fleet-wide). 0 = unlimited (legacy behaviour).
    double retry_budget = 0.0;
    double budget_refill_per_success = 0.1;
  };
  RetryOptions retry;

  /// Per-request deadline (relative; 0 = none). Propagated to every tier
  /// as an absolute RequestContext deadline: the origin abandons work it
  /// cannot finish in time, and the hierarchy skips origin round trips
  /// the remaining budget no longer covers.
  Micros request_deadline = 0;

  /// Overload fallback: serve flagged stale-retained copies when the
  /// origin sheds (see webcache::StaleServePolicy). Off by default.
  webcache::StaleServePolicy stale_serve;
};

/// Per-request outcome telemetry.
struct RequestOutcome {
  webcache::ServedBy served_by = webcache::ServedBy::kOrigin;
  double latency_ms = 0.0;
  bool revalidated = false;       // EBF (or consistency level) forced it
  bool ebf_refreshed = false;     // this request piggybacked a new EBF
  /// Overload accounting: response came from a stale-retained copy after
  /// the origin shed (age in stale_entry_age), or the request failed
  /// shed / past-deadline.
  bool served_stale_on_shed = false;
  Micros stale_entry_age = 0;
  bool shed = false;
  bool deadline_exceeded = false;
};

/// Result of a record read.
struct ReadResult {
  Status status = Status::OK();
  db::Value doc;
  uint64_t version = 0;
  RequestOutcome outcome;
};

/// Result of a query.
struct QueryResult {
  Status status = Status::OK();
  std::vector<std::string> ids;
  std::vector<db::Value> docs;
  uint64_t etag = 0;
  ttl::ResultRepresentation representation =
      ttl::ResultRepresentation::kObjectList;
  RequestOutcome outcome;
};

/// Aggregate client counters.
struct ClientStats {
  uint64_t reads = 0;
  uint64_t queries = 0;
  uint64_t writes = 0;
  uint64_t revalidations = 0;
  uint64_t ebf_refreshes = 0;
  uint64_t client_cache_hits = 0;
  uint64_t cdn_hits = 0;
  uint64_t origin_fetches = 0;
  /// Retry accounting (retry.enabled only).
  uint64_t retries = 0;
  uint64_t unavailable_failures = 0;  // budget exhausted, 503 surfaced
  /// Retries the token-bucket budget refused to fund.
  uint64_t retries_suppressed = 0;
  /// Overload accounting: flagged stale responses served after a shed,
  /// and requests that ultimately failed shed / past-deadline.
  uint64_t stale_shed_serves = 0;
  uint64_t shed_failures = 0;
  uint64_t deadline_exceeded_failures = 0;

  /// Adds these totals into `client_*` registry counters — exporting
  /// every session's stats under the same labels sums them.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// The Quaestor client SDK (the "SDK (Data API)" box in Figure 3): wraps a
/// cache hierarchy, transparently consults the Expiring Bloom Filter
/// before every read, maintains the session guarantees (read-your-writes,
/// monotonic reads) and executes the configured freshness policy.
///
/// Not thread-safe: one instance models one browser session (use one
/// instance per simulated client).
class QuaestorClient {
 public:
  /// `client_cache` may be nullptr (no browser cache); `cdn` may be
  /// nullptr (no CDN). The client owns neither.
  QuaestorClient(Clock* clock, core::QuaestorServer* server,
                 webcache::ExpirationCache* client_cache,
                 webcache::InvalidationCache* cdn,
                 ClientOptions options = ClientOptions(),
                 webcache::LatencyModel latency = webcache::LatencyModel());

  /// Same session, arbitrary backend (e.g. net::HttpBackend speaking to a
  /// remote origin over a real socket). The backend must outlive the
  /// client.
  QuaestorClient(Clock* clock, Backend* backend,
                 webcache::ExpirationCache* client_cache,
                 webcache::InvalidationCache* cdn,
                 ClientOptions options = ClientOptions(),
                 webcache::LatencyModel latency = webcache::LatencyModel());

  /// Fetches the initial EBF (piggybacked on connect, §3.1). Costs one
  /// origin round-trip.
  void Connect();

  // -- Reads --

  ReadResult Read(const std::string& table, const std::string& id);

  QueryResult ExecuteQuery(const db::Query& query);

  // -- Writes (monotonic writes are guaranteed by the database) --

  Result<db::Document> Insert(const std::string& table, const std::string& id,
                              db::Value body);
  Result<db::Document> Update(const std::string& table, const std::string& id,
                              const db::Update& update);
  Result<db::Document> Delete(const std::string& table, const std::string& id);

  /// Forces an EBF refresh now (beyond the automatic ∆ policy).
  void RefreshEbf();

  /// Age of the current EBF (µs): the ∆ actually in force.
  Micros EbfAge() const;

  ClientStats stats() const { return stats_; }
  const ClientOptions& options() const { return options_; }

  /// Tokens left in the retry budget bucket (tests / dashboards).
  double retry_tokens() const { return retry_tokens_; }

  /// Installs a tracer on the SDK and its cache hierarchy (spans:
  /// client.read/client.query/client.write, client.ebf_decide, plus the
  /// cache-tier and server spans beneath). Does NOT propagate to the
  /// shared server — install there separately with the same tracer.
  /// nullptr detaches.
  void set_tracer(obs::Tracer* tracer) {
    tracer_ = tracer;
    hierarchy_.set_tracer(tracer);
  }

  /// Changes ∆ mid-session (the fuzzer exercises this; a real deployment
  /// reconfigures the refresh interval without reconnecting clients).
  /// Takes effect at the next DecideMode evaluation.
  void set_ebf_refresh_interval(Micros delta) {
    options_.ebf_refresh_interval = delta;
  }

  /// Write latency (one origin round-trip) — exposed for simulators.
  double WriteLatencyMs() const { return latency_model_.origin_ms; }

  /// The in-process server this session talks to (transactions commit
  /// through it). nullptr when the session runs over a socket backend.
  core::QuaestorServer* server() { return backend_->local_server(); }

  /// Absorbs an externally committed write (e.g. a transaction's
  /// after-image) into the session: read-your-writes and monotonic-reads
  /// state are updated as if this session had written it.
  void AbsorbWrite(const db::Document& doc) { CacheOwnWrite(doc); }

 private:
  /// Decides the fetch mode for a key: EBF lookup + whitelist +
  /// consistency level; refreshes the EBF when ∆ elapsed.
  webcache::FetchMode DecideMode(const std::string& key,
                                 RequestOutcome* outcome);

  void NoteServedBy(const webcache::FetchOutcome& fo, RequestOutcome* out);

  /// hierarchy_.Fetch plus the configured 503 retry policy: jittered
  /// exponential backoff, bounded attempts; failed attempts and waits are
  /// charged to `out->latency_ms` (the simulation models waiting as
  /// response latency rather than sleeping a clock). Shed (429) responses
  /// retry like 503s, but every retry must be funded by the token-bucket
  /// budget when one is configured.
  webcache::FetchOutcome FetchWithRetry(const std::string& key,
                                        webcache::FetchMode mode,
                                        RequestOutcome* out);

  /// RequestContext for a request starting now (absolute deadline from
  /// options_.request_deadline; disabled context when unset).
  RequestContext MakeContext() const;

  /// Maps a failed fetch outcome to the client-facing status.
  static Status FailureStatus(const webcache::FetchOutcome& fo,
                              const std::string& key);

  /// Monotonic reads: returns true if `version` regresses below the
  /// highest version this session has seen for `key`.
  bool IsRegression(const std::string& key, uint64_t version) const;
  void NoteVersion(const std::string& key, uint64_t version);

  void CacheOwnWrite(const db::Document& doc);

  /// Delegation target of the public ctors: exactly one of `owned` /
  /// `backend` is set (the server ctor wraps its server in an owned
  /// LocalBackend; the Backend ctor borrows).
  QuaestorClient(std::unique_ptr<Backend> owned, Backend* backend,
                 Clock* clock, webcache::ExpirationCache* client_cache,
                 webcache::InvalidationCache* cdn, ClientOptions options,
                 webcache::LatencyModel latency);

  Clock* clock_;
  std::unique_ptr<Backend> owned_backend_;
  Backend* backend_;  // owned_backend_.get() or the borrowed one
  webcache::ExpirationCache* client_cache_;
  webcache::CacheHierarchy hierarchy_;
  ClientOptions options_;
  webcache::LatencyModel latency_model_;

  /// Returns the fetch mode implied by the table-partitioned EBF policy
  /// (use_table_ebfs): lazily fetches/refreshes the key's table filter.
  webcache::FetchMode DecideModeTablePartitioned(const std::string& key,
                                                 RequestOutcome* outcome);

  void EraseWhitelistForTable(const std::string& table);

  std::optional<ebf::BloomFilter> bloom_;
  Micros bloom_time_ = 0;
  /// Per-table filters (use_table_ebfs mode).
  struct TableEbf {
    ebf::BloomFilter filter;
    Micros fetched_at = 0;
  };
  std::map<std::string, TableEbf> table_ebfs_;
  /// Keys revalidated since the last EBF renewal — treated as fresh
  /// ("differential whitelisting", §3.3).
  std::set<std::string> whitelist_;
  /// Monotonic-reads bookkeeping: highest seen version per key.
  std::unordered_map<std::string, uint64_t> seen_versions_;
  /// Monotonic reads for query results: etags are unordered, so
  /// regressions are detected via the result's Last-Modified instead
  /// (highest seen per query key).
  std::unordered_map<std::string, Micros> seen_result_times_;
  /// Causal mode: a read newer than the EBF was observed; reads must
  /// revalidate until the next refresh (§3.2 Opt-in Consistency).
  bool read_newer_than_ebf_ = false;

  Rng retry_rng_;  // retry backoff jitter (deterministic from retry.seed)
  /// Token-bucket retry budget (retry.retry_budget > 0): starts full,
  /// retries spend, successes refill.
  double retry_tokens_ = 0.0;
  ClientStats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace quaestor::client

#endif  // QUAESTOR_CLIENT_CLIENT_H_
