#include "client/client.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "ebf/expiring_bloom_filter.h"

namespace quaestor::client {

QuaestorClient::QuaestorClient(Clock* clock, core::QuaestorServer* server,
                               webcache::ExpirationCache* client_cache,
                               webcache::InvalidationCache* cdn,
                               ClientOptions options,
                               webcache::LatencyModel latency)
    : QuaestorClient(std::make_unique<LocalBackend>(server), nullptr, clock,
                     client_cache, cdn, std::move(options), latency) {}

QuaestorClient::QuaestorClient(Clock* clock, Backend* backend,
                               webcache::ExpirationCache* client_cache,
                               webcache::InvalidationCache* cdn,
                               ClientOptions options,
                               webcache::LatencyModel latency)
    : QuaestorClient(nullptr, backend, clock, client_cache, cdn,
                     std::move(options), latency) {}

QuaestorClient::QuaestorClient(std::unique_ptr<Backend> owned,
                               Backend* backend, Clock* clock,
                               webcache::ExpirationCache* client_cache,
                               webcache::InvalidationCache* cdn,
                               ClientOptions options,
                               webcache::LatencyModel latency)
    : clock_(clock),
      owned_backend_(std::move(owned)),
      backend_(owned_backend_ ? owned_backend_.get() : backend),
      client_cache_(client_cache),
      hierarchy_(clock, client_cache, /*proxy=*/nullptr, cdn,
                 backend_->origin(), latency),
      options_(options),
      latency_model_(latency),
      retry_rng_(options.retry.seed),
      retry_tokens_(options.retry.retry_budget) {
  hierarchy_.set_auth_token(options_.auth_token);
  hierarchy_.set_stale_serve(options_.stale_serve);
}

RequestContext QuaestorClient::MakeContext() const {
  if (options_.request_deadline <= 0) return RequestContext();
  return RequestContext::WithTimeout(clock_->NowMicros(),
                                     options_.request_deadline);
}

Status QuaestorClient::FailureStatus(const webcache::FetchOutcome& fo,
                                     const std::string& key) {
  if (fo.deadline_exceeded) return Status::DeadlineExceeded(key);
  if (fo.shed) return Status::ResourceExhausted(key);
  if (fo.unavailable) return Status::Unavailable(key);
  return Status::NotFound(key);
}

webcache::FetchOutcome QuaestorClient::FetchWithRetry(
    const std::string& key, webcache::FetchMode mode, RequestOutcome* out) {
  const RequestContext ctx = MakeContext();
  webcache::FetchOutcome fo = hierarchy_.Fetch(key, mode, ctx);
  if (!options_.retry.enabled) return fo;
  const ClientOptions::RetryOptions& r = options_.retry;
  const bool budgeted = r.retry_budget > 0.0;
  // 503 (origin down) and 429 (origin shedding) are both worth one more
  // try after backoff; a deadline that already expired is not.
  const auto retryable = [](const webcache::FetchOutcome& f) {
    return !f.ok && (f.unavailable || f.shed) && !f.deadline_exceeded;
  };
  Micros backoff = r.initial_backoff;
  for (size_t attempt = 1; retryable(fo) && attempt < r.max_attempts;
       ++attempt) {
    if (budgeted && retry_tokens_ < 1.0) {
      // Bucket empty: the backend is sick fleet-wide, don't pile on.
      stats_.retries_suppressed++;
      break;
    }
    const double spread =
        1.0 + r.jitter * (2.0 * retry_rng_.NextDouble() - 1.0);
    // Clamp in the double domain BEFORE narrowing to Micros: the grown
    // backoff can exceed the int64 range after a few doublings with a
    // large max_backoff, and casting an out-of-range double is UB
    // (in practice INT64_MIN, i.e. a negative wait). At the cap, reuse
    // the exact Micros value — max_backoff == INT64_MAX rounds UP when
    // converted to double, so even the clamped double can be uncastable.
    const double cap = static_cast<double>(r.max_backoff);
    const double grown_wait = static_cast<double>(backoff) * spread;
    const Micros wait =
        grown_wait >= cap ? r.max_backoff : static_cast<Micros>(grown_wait);
    // The failed round-trip and the backoff wait both delay the response.
    out->latency_ms += fo.latency_ms + MicrosToMillis(wait);
    const double grown_backoff = static_cast<double>(backoff) * r.multiplier;
    backoff = grown_backoff >= cap ? r.max_backoff
                                   : static_cast<Micros>(grown_backoff);
    if (budgeted) retry_tokens_ -= 1.0;
    stats_.retries++;
    fo = hierarchy_.Fetch(key, mode, ctx);
  }
  if (fo.ok && budgeted) {
    // Bucket capacity is at least one whole token: a configured budget in
    // (0, 1) would otherwise cap refills below 1.0 forever, permanently
    // suppressing retries even against a healthy backend.
    retry_tokens_ = std::min(std::max(r.retry_budget, 1.0),
                             retry_tokens_ + r.budget_refill_per_success);
  }
  if (!fo.ok && fo.unavailable) stats_.unavailable_failures++;
  if (!fo.ok && fo.shed) stats_.shed_failures++;
  if (!fo.ok && fo.deadline_exceeded) stats_.deadline_exceeded_failures++;
  return fo;
}

void QuaestorClient::Connect() {
  if (!options_.use_ebf) return;
  bloom_ = backend_->BloomSnapshot();
  bloom_time_ = clock_->NowMicros();
  whitelist_.clear();
  read_newer_than_ebf_ = false;
}

void QuaestorClient::RefreshEbf() {
  bloom_ = backend_->BloomSnapshot();
  bloom_time_ = clock_->NowMicros();
  whitelist_.clear();
  read_newer_than_ebf_ = false;
  stats_.ebf_refreshes++;
}

Micros QuaestorClient::EbfAge() const {
  return clock_->NowMicros() - bloom_time_;
}

webcache::FetchMode QuaestorClient::DecideMode(const std::string& key,
                                               RequestOutcome* outcome) {
  obs::ScopedSpan span(tracer_, "client.ebf_decide");
  // The ∆ − ∆_invalidation optimization only applies at the default
  // ∆-atomic level: a CDN copy can lag a purge by the invalidation
  // latency, which ∆-atomicity absorbs into its bound but causal
  // consistency cannot (a dependency committed just before the purge
  // lands could be missed). Causal/strong revalidations are end-to-end.
  const webcache::FetchMode reval =
      options_.revalidate_at_cdn &&
              options_.consistency == ConsistencyLevel::kDeltaAtomic
          ? webcache::FetchMode::kRevalidateAtCdn
          : webcache::FetchMode::kRevalidate;
  if (options_.consistency == ConsistencyLevel::kStrong) {
    // Strong consistency: explicit revalidation, cache miss at all levels
    // (Figure 4) — always end-to-end regardless of the CDN optimization.
    outcome->revalidated = true;
    return webcache::FetchMode::kRevalidate;
  }
  if (!options_.use_ebf) return webcache::FetchMode::kNormal;
  if (options_.use_table_ebfs) {
    return DecideModeTablePartitioned(key, outcome);
  }
  if (!bloom_.has_value()) return webcache::FetchMode::kNormal;
  // ∆ elapsed: promote this request to a revalidation piggybacking a
  // fresh EBF (§3.1 Freshness Policies — non-disruptive refresh).
  if (EbfAge() >= options_.ebf_refresh_interval &&
      !options_.fault_skip_ebf_refresh) {
    RefreshEbf();
    outcome->ebf_refreshed = true;
    outcome->revalidated = true;
    return reval;
  }
  // Causal opt-in: after observing data newer than the EBF, reads must
  // revalidate until the next refresh (§3.2).
  if (options_.consistency == ConsistencyLevel::kCausal &&
      read_newer_than_ebf_) {
    outcome->revalidated = true;
    return reval;
  }
  if (bloom_->MaybeContains(key) && whitelist_.count(key) == 0) {
    outcome->revalidated = true;
    return reval;
  }
  return webcache::FetchMode::kNormal;
}

void QuaestorClient::EraseWhitelistForTable(const std::string& table) {
  for (auto it = whitelist_.begin(); it != whitelist_.end();) {
    if (ebf::PartitionedEbf::TableOfKey(*it) == table) {
      it = whitelist_.erase(it);
    } else {
      ++it;
    }
  }
}

webcache::FetchMode QuaestorClient::DecideModeTablePartitioned(
    const std::string& key, RequestOutcome* outcome) {
  const webcache::FetchMode reval = options_.revalidate_at_cdn
                                        ? webcache::FetchMode::kRevalidateAtCdn
                                        : webcache::FetchMode::kRevalidate;
  const std::string table = ebf::PartitionedEbf::TableOfKey(key);
  const Micros now = clock_->NowMicros();
  auto it = table_ebfs_.find(table);
  if (it == table_ebfs_.end()) {
    // Lazy initial fetch of this table's filter (piggybacked).
    TableEbf entry;
    entry.filter = backend_->BloomSnapshotForTable(table);
    entry.fetched_at = now;
    it = table_ebfs_.emplace(table, std::move(entry)).first;
  } else if (now - it->second.fetched_at >= options_.ebf_refresh_interval) {
    // ∆ elapsed for this table: refresh and promote to a revalidation.
    it->second.filter = backend_->BloomSnapshotForTable(table);
    it->second.fetched_at = now;
    EraseWhitelistForTable(table);
    stats_.ebf_refreshes++;
    outcome->ebf_refreshed = true;
    outcome->revalidated = true;
    return reval;
  }
  if (it->second.filter.MaybeContains(key) && whitelist_.count(key) == 0) {
    outcome->revalidated = true;
    return reval;
  }
  return webcache::FetchMode::kNormal;
}

void QuaestorClient::NoteServedBy(const webcache::FetchOutcome& fo,
                                  RequestOutcome* out) {
  out->served_by = fo.served_by;
  out->latency_ms += fo.latency_ms;
  out->shed = fo.shed;
  out->deadline_exceeded = fo.deadline_exceeded;
  if (fo.ok && fo.served_stale_on_shed) {
    out->served_stale_on_shed = true;
    out->stale_entry_age = fo.stale_entry_age;
    stats_.stale_shed_serves++;
  }
  switch (fo.served_by) {
    case webcache::ServedBy::kClientCache:
      stats_.client_cache_hits++;
      break;
    case webcache::ServedBy::kExpirationCache:
    case webcache::ServedBy::kInvalidationCache:
      stats_.cdn_hits++;
      break;
    case webcache::ServedBy::kOrigin:
      stats_.origin_fetches++;
      break;
  }
  // Causal tracking (§3.2): data committed after the current EBF fetch
  // may be served from ANY level — a CDN copy refreshed by another
  // session is just as young as an origin response. Compare the
  // response's Last-Modified against the EBF fetch time; fall back to
  // treating unstamped origin responses as young (conservative).
  if (fo.last_modified > bloom_time_ ||
      (fo.last_modified == 0 &&
       fo.served_by == webcache::ServedBy::kOrigin)) {
    read_newer_than_ebf_ = true;
  }
}

bool QuaestorClient::IsRegression(const std::string& key,
                                  uint64_t version) const {
  auto it = seen_versions_.find(key);
  return it != seen_versions_.end() && version < it->second;
}

void QuaestorClient::NoteVersion(const std::string& key, uint64_t version) {
  uint64_t& v = seen_versions_[key];
  v = std::max(v, version);
}

ReadResult QuaestorClient::Read(const std::string& table,
                                const std::string& id) {
  const std::string key = table + "/" + id;
  obs::ScopedSpan span(tracer_, "client.read");
  span.Annotate("key", key);
  stats_.reads++;
  ReadResult result;
  webcache::FetchMode mode = DecideMode(key, &result.outcome);
  if (result.outcome.revalidated) stats_.revalidations++;

  webcache::FetchOutcome fo = FetchWithRetry(key, mode, &result.outcome);
  NoteServedBy(fo, &result.outcome);
  if (!fo.ok) {
    result.status = FailureStatus(fo, key);
    return result;
  }

  // Monotonic reads: a different cache may serve an older version than
  // this session has already seen — trigger a revalidation (§3.2).
  if (IsRegression(key, fo.etag)) {
    webcache::FetchOutcome fresh = FetchWithRetry(
        key, webcache::FetchMode::kRevalidate, &result.outcome);
    result.outcome.revalidated = true;
    stats_.revalidations++;
    NoteServedBy(fresh, &result.outcome);
    if (!fresh.ok) {
      result.status = FailureStatus(fresh, key);
      return result;
    }
    fo = std::move(fresh);
  }
  NoteVersion(key, fo.etag);
  // Differential whitelisting (§3.3): any key revalidated since the last
  // EBF renewal — at the origin or at a purge-coherent CDN — is fresh
  // until the next renewal. A stale-shed serve proves nothing about
  // freshness and must not whitelist.
  if (!fo.served_stale_on_shed &&
      (result.outcome.revalidated ||
       fo.served_by == webcache::ServedBy::kOrigin)) {
    whitelist_.insert(key);
  }

  auto doc = db::Value::FromJson(fo.body);
  if (!doc.ok()) {
    result.status = doc.status();
    return result;
  }
  result.doc = std::move(doc).value();
  result.version = fo.etag;
  return result;
}

QueryResult QuaestorClient::ExecuteQuery(const db::Query& query) {
  const std::string key = query.NormalizedKey();
  obs::ScopedSpan span(tracer_, "client.query");
  span.Annotate("key", key);
  // The HTTP URL carries the query; the server can always decode it.
  backend_->RegisterQueryShape(query);
  stats_.queries++;
  QueryResult result;
  webcache::FetchMode mode = DecideMode(key, &result.outcome);
  if (result.outcome.revalidated) stats_.revalidations++;

  webcache::FetchOutcome fo = FetchWithRetry(key, mode, &result.outcome);
  NoteServedBy(fo, &result.outcome);
  if (!fo.ok) {
    result.status = FailureStatus(fo, key);
    return result;
  }

  // Monotonic reads for query results (§3.2): a delayed CDN purge can
  // leave a copy older than a result this session has already seen.
  // Etags are not ordered, so regressions are detected via Last-Modified
  // (mirrors the version-regression check in Read()).
  Micros& seen_lm = seen_result_times_[key];
  if (fo.last_modified < seen_lm) {
    webcache::FetchOutcome fresh = FetchWithRetry(
        key, webcache::FetchMode::kRevalidate, &result.outcome);
    result.outcome.revalidated = true;
    stats_.revalidations++;
    NoteServedBy(fresh, &result.outcome);
    if (!fresh.ok) {
      result.status = FailureStatus(fresh, key);
      return result;
    }
    fo = std::move(fresh);
  }
  seen_lm = std::max(seen_lm, fo.last_modified);

  if (!fo.served_stale_on_shed &&
      (result.outcome.revalidated ||
       fo.served_by == webcache::ServedBy::kOrigin)) {
    whitelist_.insert(key);
  }

  auto parsed = core::QueryResponse::FromJson(fo.body);
  if (!parsed.ok()) {
    result.status = parsed.status();
    return result;
  }
  core::QueryResponse& qr = parsed.value();
  result.etag = fo.etag;
  result.ids = qr.ids;
  result.representation = qr.representation;

  if (qr.representation == ttl::ResultRepresentation::kObjectList) {
    // Results are inserted into the cache as individual record entries
    // (§6.2) — bounded by the result's own remaining freshness. A stale-
    // shed result's records inherit its marker: they are exactly as old
    // as the flagged result body, and caching them unflagged would let a
    // later record read serve the stale state as fresh data.
    const Micros record_marker =
        fo.served_stale_on_shed
            ? std::max<Micros>(clock_->NowMicros() - fo.stale_entry_age, 1)
            : 0;
    for (size_t i = 0; i < qr.ids.size(); ++i) {
      const Micros record_ttl =
          std::min(qr.record_ttls[i], fo.remaining_ttl);
      if (client_cache_ != nullptr && record_ttl > 0) {
        client_cache_->Put(qr.ids[i], qr.docs[i].ToJson(), qr.versions[i],
                           record_ttl, /*last_modified=*/0, record_marker,
                           record_marker);
      }
      NoteVersion(qr.ids[i], qr.versions[i]);
    }
    result.docs = std::move(qr.docs);
    return result;
  }

  // Id-list: assemble the result with per-record reads. Browsers issue
  // these in parallel over multiple connections, so the added latency is
  // the slowest single fetch, not the sum. Under HTTP/2 (§7) the server
  // pushes the member records with the id-list frame, so assembly adds no
  // round-trips at all.
  double max_record_latency = 0.0;
  for (const std::string& record_key : qr.ids) {
    const size_t slash = record_key.find('/');
    if (slash == std::string::npos) continue;
    ReadResult rr =
        Read(record_key.substr(0, slash), record_key.substr(slash + 1));
    if (rr.status.ok()) {
      result.docs.push_back(std::move(rr.doc));
      max_record_latency =
          std::max(max_record_latency, rr.outcome.latency_ms);
    }
  }
  if (!options_.http2) result.outcome.latency_ms += max_record_latency;
  return result;
}

void QuaestorClient::CacheOwnWrite(const db::Document& doc) {
  NoteVersion(doc.Key(), doc.version);
  if (client_cache_ == nullptr) return;
  if (doc.deleted) {
    client_cache_->Remove(doc.Key());
    return;
  }
  // Read-your-writes: the session serves its own writes from the local
  // cache (§3.2).
  client_cache_->Put(doc.Key(), doc.body.ToJson(), doc.version,
                     options_.own_write_ttl, doc.write_time);
}

Result<db::Document> QuaestorClient::Insert(const std::string& table,
                                            const std::string& id,
                                            db::Value body) {
  obs::ScopedSpan span(tracer_, "client.write");
  stats_.writes++;
  auto res = backend_->Insert(options_.auth_token, table, id, std::move(body),
                              MakeContext());
  if (res.ok()) CacheOwnWrite(res.value());
  return res;
}

Result<db::Document> QuaestorClient::Update(const std::string& table,
                                            const std::string& id,
                                            const db::Update& update) {
  obs::ScopedSpan span(tracer_, "client.write");
  stats_.writes++;
  // Beginning an update drops the record from the session's own cache.
  if (client_cache_ != nullptr) client_cache_->Remove(table + "/" + id);
  auto res =
      backend_->Update(options_.auth_token, table, id, update, MakeContext());
  if (res.ok()) CacheOwnWrite(res.value());
  return res;
}

Result<db::Document> QuaestorClient::Delete(const std::string& table,
                                            const std::string& id) {
  obs::ScopedSpan span(tracer_, "client.write");
  stats_.writes++;
  if (client_cache_ != nullptr) client_cache_->Remove(table + "/" + id);
  auto res = backend_->Delete(options_.auth_token, table, id, MakeContext());
  if (res.ok()) CacheOwnWrite(res.value());
  return res;
}

void ClientStats::ExportTo(obs::MetricsRegistry* registry,
                           const obs::Labels& labels) const {
  registry->Count("client_reads", labels, reads);
  registry->Count("client_queries", labels, queries);
  registry->Count("client_writes", labels, writes);
  registry->Count("client_revalidations", labels, revalidations);
  registry->Count("client_ebf_refreshes", labels, ebf_refreshes);
  registry->Count("client_cache_hits", labels, client_cache_hits);
  registry->Count("client_cdn_hits", labels, cdn_hits);
  registry->Count("client_origin_fetches", labels, origin_fetches);
  registry->Count("client_retries", labels, retries);
  registry->Count("client_unavailable_failures", labels,
                  unavailable_failures);
  registry->Count("client_retries_suppressed", labels, retries_suppressed);
  registry->Count("client_stale_shed_serves", labels, stale_shed_serves);
  registry->Count("client_shed_failures", labels, shed_failures);
  registry->Count("client_deadline_exceeded_failures", labels,
                  deadline_exceeded_failures);
}

}  // namespace quaestor::client
