#ifndef QUAESTOR_CLIENT_LIVE_QUERY_H_
#define QUAESTOR_CLIENT_LIVE_QUERY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/streams.h"
#include "db/document.h"
#include "db/query.h"

namespace quaestor::client {

/// A self-maintaining query result (§3.2: "the application can define its
/// critical data set through queries and keep it up-to-date in
/// real-time"). Subscribes to the query's change stream on construction
/// and applies add / remove / change / changeIndex events to a local
/// result copy; `Snapshot()` is always current without polling.
///
/// If the event stream ever becomes inconsistent with the local state
/// (e.g. after missed events), the result is resynchronized from the
/// origin and `resync_count()` increments.
class LiveQuery {
 public:
  /// Subscribes immediately. Check `status()` before use.
  LiveQuery(core::ChangeStreamHub* hub, core::QuaestorServer* server,
            db::Query query);
  ~LiveQuery();

  LiveQuery(const LiveQuery&) = delete;
  LiveQuery& operator=(const LiveQuery&) = delete;

  /// OK when the subscription is active.
  const Status& status() const { return status_; }

  /// The current result, in query order (sorted queries keep their
  /// window order; stateless results are id-ordered).
  std::vector<db::Document> Snapshot() const;

  std::vector<std::string> Ids() const;
  size_t size() const;

  /// Number of stream events applied so far.
  uint64_t change_count() const;
  uint64_t resync_count() const;

  /// Invoked (synchronously, after the local state updated) on every
  /// change to the result.
  void SetListener(std::function<void()> on_change);

  const db::Query& query() const { return query_; }

 private:
  void OnEvent(const core::StreamEvent& ev);
  void ResyncLocked();

  core::ChangeStreamHub* hub_;
  core::QuaestorServer* server_;
  db::Query query_;
  Status status_;
  uint64_t subscription_id_ = 0;

  mutable std::mutex mu_;
  std::vector<db::Document> result_;
  uint64_t change_count_ = 0;
  uint64_t resync_count_ = 0;
  std::function<void()> listener_;
};

}  // namespace quaestor::client

#endif  // QUAESTOR_CLIENT_LIVE_QUERY_H_
