#ifndef QUAESTOR_SIM_SIMULATION_H_
#define QUAESTOR_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "core/server.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/event_queue.h"
#include "webcache/web_cache.h"
#include "workload/workload.h"

namespace quaestor::sim {

/// Which caching layers the simulated deployment uses — the four
/// architectures compared throughout §6.2.
struct CacheArchitecture {
  bool client_cache = true;
  bool cdn = true;
  bool use_ebf = true;

  /// Full Quaestor: client caches + EBF + CDN + InvaliDB.
  static CacheArchitecture Quaestor() { return {true, true, true}; }
  /// "EBF only": client caches kept coherent by the EBF, no CDN.
  static CacheArchitecture EbfOnly() { return {true, false, true}; }
  /// "CDN only": InvaliDB-purged CDN, no client caches, no EBF.
  static CacheArchitecture CdnOnly() { return {false, true, false}; }
  /// Uncached baseline (Orestes with uncached communication).
  static CacheArchitecture Uncached() { return {false, false, false}; }
};

/// Simulation parameters. Defaults mirror the paper's cloud setup (§6.1):
/// 145 ms client↔origin RTT, 4 ms client↔CDN, 3 backend servers.
struct SimOptions {
  size_t num_client_instances = 10;
  size_t connections_per_instance = 30;
  Micros duration = SecondsToMicros(120.0);
  Micros warmup = SecondsToMicros(10.0);
  uint64_t seed = 42;

  CacheArchitecture arch = CacheArchitecture::Quaestor();
  client::ClientOptions client_options;
  core::ServerOptions server_options;
  webcache::LatencyModel latency;

  /// ∆_invalidation: delay between a server purge decision and the CDN
  /// actually dropping the entry.
  Micros cdn_purge_latency = MillisToMicros(50.0);

  /// Capacity model: per-op CPU cost at a client instance and per-origin-
  /// request service time at the backend pool.
  Micros client_cpu = MillisToMicros(0.06);
  Micros server_service = MillisToMicros(0.2);
  size_t num_servers = 3;

  /// LRU bound for each client's browser cache (0 = unbounded).
  size_t client_cache_entries = 0;

  /// Pause between operations on one connection (models real browsers
  /// that issue requests at human pace rather than in a closed loop).
  Micros think_time = 0;

  /// Record per-request spans through client → caches → server →
  /// EBF/TTL/InvaliDB (deterministic ids + simulated timestamps: two
  /// same-seed runs export byte-identical Chrome-trace JSON). Off by
  /// default — tracing every op of a long run costs memory.
  bool trace = false;
  size_t trace_max_spans = 1 << 20;

  /// Elastic scale-out events: at simulated time `at`, the server
  /// live-repartitions its InvaliDB grid to the given shape (rides the
  /// migration out in degraded mode when degradation is enabled).
  struct ScheduledResize {
    Micros at = 0;
    size_t query_partitions = 1;
    size_t object_partitions = 1;
  };
  std::vector<ScheduledResize> scheduled_resizes;

  /// Overload schedule: between `at` and `at + duration` the arrival rate
  /// is multiplied — a flash crowd of extra connections joins (and think
  /// time shrinks by the same factor) — while the origin pool's service
  /// time is scaled by `origin_slowdown`. Phases drive the overload-
  /// protection experiments: admission shedding, deadline misses, and
  /// stale-serving all need sustained pressure, not a single burst event.
  struct OverloadPhase {
    Micros at = 0;
    Micros duration = 0;
    double load_multiplier = 10.0;
    double origin_slowdown = 1.0;
  };
  std::vector<OverloadPhase> overload_phases;

  /// Origin slowness feedback: sampled once per served origin visit with
  /// the current simulated time, and charged to the server's admission
  /// workers as extra service time. This is the channel by which the
  /// controller "measures" real origin latency — wire it to
  /// fault::FaultInjector::LatencySpikeFor for seeded chaos spikes,
  /// and/or return the current phase's extra service time so admission
  /// tracks a slowed-down origin. Null = no feedback.
  std::function<Micros(Micros now)> origin_spike_fn;
};

/// Per-operation-type measurements.
struct OpMetrics {
  Histogram latency;  // ms
  /// How old stale responses were (ms): a lower bound — time since the
  /// latest commit known to supersede the served state. p99 of this is
  /// the observed staleness a degraded TTL cap must bound.
  Histogram stale_age_ms;
  uint64_t count = 0;
  uint64_t stale = 0;
  uint64_t client_hits = 0;
  uint64_t cdn_hits = 0;
  uint64_t origin = 0;

  double StaleRate() const {
    return count == 0 ? 0.0
                      : static_cast<double>(stale) /
                            static_cast<double>(count);
  }
  /// Fraction of requests answered by the client cache.
  double ClientHitRate() const {
    return count == 0 ? 0.0
                      : static_cast<double>(client_hits) /
                            static_cast<double>(count);
  }
  /// Fraction of requests that passed the client cache and hit the CDN.
  double CdnHitRate() const {
    const uint64_t at_cdn = cdn_hits + origin;
    return at_cdn == 0 ? 0.0
                       : static_cast<double>(cdn_hits) /
                             static_cast<double>(at_cdn);
  }
};

/// Results of one simulation run.
struct SimResults {
  OpMetrics reads;
  OpMetrics queries;
  OpMetrics writes;
  double duration_s = 0.0;
  uint64_t total_ops = 0;
  double throughput_ops_s = 0.0;

  /// Overload accounting (measurement window): successes, failures by
  /// cause, and successes served from a flagged stale-retained copy.
  /// Goodput is successful ops per second — the number overload
  /// protection exists to defend while total_ops explodes.
  uint64_t ok_ops = 0;
  uint64_t shed_ops = 0;
  uint64_t deadline_exceeded_ops = 0;
  uint64_t stale_shed_serves = 0;
  double goodput_ops_s = 0.0;

  /// TTL estimation quality samples (seconds) for Figure 11: parallel
  /// arrays are NOT paired; each is the population for one CDF.
  std::vector<double> estimated_ttls_s;
  std::vector<double> true_ttls_s;

  core::ServerStats server_stats;
  webcache::CacheStats cdn_stats;
  /// InvaliDB activity, including the match-check reduction achieved by
  /// predicate-indexed matching (match_checks vs match_checks_naive).
  invalidb::ClusterStats invalidb_stats;

  /// Unified metrics snapshot: every *Stats surface above exported
  /// through the registry, plus sim-level op counters/latency timers.
  /// Merge across runs and export via MetricsSnapshot::ToValue().
  obs::MetricsSnapshot metrics;
};

/// Observation of one completed client operation, handed to registered
/// op observers. Pointer fields reference stack state of the executing
/// step and are only valid for the duration of the callback. The
/// consistency oracle (src/check) attaches through this hook to validate
/// every simulated read against the global write history.
struct OpObservation {
  size_t instance = 0;  // which client session performed the op
  workload::OpType type = workload::OpType::kRead;
  std::string table;
  std::string id;                                  // record ops
  const db::Query* query = nullptr;                // kQuery
  const client::ReadResult* read = nullptr;        // kRead
  const client::QueryResult* query_result = nullptr;  // kQuery
  const db::Document* written = nullptr;           // writes (null on error)
  /// Ground-truth staleness verdict for this op (reads/queries; always
  /// false for writes). `stale_age_ms` is the lower-bound age of the
  /// superseded state that was served.
  bool stale = false;
  double stale_age_ms = 0.0;
};

/// An end-to-end Monte Carlo simulation of concurrent clients talking to
/// Quaestor through web caches (the paper's simulation framework, §6.1).
/// Deterministic for a given seed: simulated clock, FIFO event order,
/// seeded workload.
class Simulation {
 public:
  using OpObserver = std::function<void(const OpObservation&)>;

  Simulation(workload::WorkloadOptions workload_options, SimOptions options);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Loads the database, connects the clients, and runs the event loop for
  /// `duration`. Can only be called once.
  SimResults Run();

  /// Registers a callback invoked after every completed client operation
  /// (register before Run()).
  void AddOpObserver(OpObserver observer) {
    op_observers_.push_back(std::move(observer));
  }

  core::QuaestorServer& server() { return *server_; }
  db::Database& database() { return *db_; }
  SimulatedClock& clock() { return clock_; }
  workload::WorkloadGenerator& generator() { return *generator_; }

  /// The run's metrics registry (snapshotted into SimResults::metrics at
  /// the end of Run()).
  obs::MetricsRegistry& registry() { return registry_; }

  /// The request tracer, or nullptr when SimOptions::trace is false.
  obs::Tracer* tracer() { return tracer_.get(); }

 private:
  struct ClientInstance {
    std::unique_ptr<webcache::ExpirationCache> cache;  // browser cache
    std::unique_ptr<client::QuaestorClient> client;
    std::unique_ptr<QueueingResource> cpu;
  };

  /// One closed-loop connection step; reschedules itself until `stop_at`
  /// (the run's end for permanent connections, the phase's end for
  /// flash-crowd extras).
  void RunConnectionStep(size_t instance_index, Micros stop_at);
  bool CheckReadStale(const std::string& table, const std::string& id,
                      const client::ReadResult& rr, double* stale_age_ms);
  bool CheckQueryStale(const db::Query& query,
                       const client::QueryResult& qr, double* stale_age_ms);
  void RecordOutcome(OpMetrics* metrics, const client::RequestOutcome& o,
                     bool ok, double total_latency_ms, bool stale,
                     double stale_age_ms, bool in_window);

  workload::WorkloadOptions workload_options_;
  SimOptions options_;
  SimulatedClock clock_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::Tracer> tracer_;
  EventQueue events_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  std::vector<ClientInstance> clients_;
  std::unique_ptr<workload::WorkloadGenerator> generator_;
  QueueingResource server_pool_;
  std::vector<OpObserver> op_observers_;
  /// Arrival-rate multiplier currently in force (overload phases).
  double load_multiplier_ = 1.0;

  // Figure 11 bookkeeping: query serve events and invalidation times.
  struct QueryServe {
    std::string key;
    Micros at;
    Micros estimated_ttl;
  };
  std::vector<QueryServe> query_serves_;
  std::unordered_map<std::string, std::vector<Micros>> invalidations_;

  /// Ground-truth result etags, recomputed only when the query's table
  /// sees a commit (staleness checks would otherwise scan the table per
  /// operation). Keyed on the table's commit count — NOT the query's
  /// invalidation count, which undercounts when the invalidation pipeline
  /// is lossy or down (exactly the regimes the fault experiments create).
  struct FreshEtags {
    bool valid = false;
    uint64_t commit_count = 0;
    uint64_t etag_objects = 0;
    uint64_t etag_ids = 0;
    /// When this query's result last changed (0 = never observed to
    /// change). A late lower bound — set to the table's latest commit at
    /// recompute time — but far tighter than the table's last commit for
    /// stale-age measurement: a busy table keeps committing while an
    /// individual query's lost invalidation keeps its copy stale.
    Micros last_change = 0;
    /// When each previously-fresh etag stopped being fresh. Lets a stale
    /// serve be aged against the moment *its own* result state expired,
    /// not just the query's latest change (a copy can outlive several
    /// result changes during a pipeline outage).
    std::unordered_map<uint64_t, Micros> expired_at;
  };
  std::unordered_map<std::string, FreshEtags> fresh_etags_;

  /// Per-table commit tracking (ground truth, independent of InvaliDB).
  struct TableActivity {
    uint64_t commits = 0;
    Micros last_commit = 0;
  };
  std::unordered_map<std::string, TableActivity> table_activity_;

  SimResults results_;
  bool ran_ = false;
};

}  // namespace quaestor::sim

#endif  // QUAESTOR_SIM_SIMULATION_H_
