#ifndef QUAESTOR_SIM_EVENT_QUEUE_H_
#define QUAESTOR_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace quaestor::sim {

/// A deterministic discrete-event scheduler driving a SimulatedClock.
/// Events at equal times run in scheduling order (FIFO via sequence
/// numbers), which makes every simulation bit-reproducible — the property
/// the paper relies on for staleness analysis ("globally ordered event
/// time stamps ... does not rely on error-prone clock synchronization").
class EventQueue {
 public:
  explicit EventQueue(SimulatedClock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at` (clamped to now for past times).
  void Schedule(Micros at, std::function<void()> fn) {
    if (at < clock_->NowMicros()) at = clock_->NowMicros();
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after `delay` microseconds.
  void ScheduleAfter(Micros delay, std::function<void()> fn) {
    Schedule(clock_->NowMicros() + delay, std::move(fn));
  }

  /// Runs events in time order until the queue is empty or the next event
  /// is later than `end`. The clock is advanced to each event's time, and
  /// to `end` on return.
  void RunUntil(Micros end) {
    while (!heap_.empty() && heap_.top().at <= end) {
      // Copy out before pop: fn may schedule new events.
      Event ev = heap_.top();
      heap_.pop();
      clock_->SetTime(ev.at);
      ev.fn();
    }
    if (clock_->NowMicros() < end) clock_->SetTime(end);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  Micros Now() const { return clock_->NowMicros(); }

 private:
  struct Event {
    Micros at;
    uint64_t seq;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  SimulatedClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
};

/// A k-server FIFO queueing resource with deterministic service times —
/// models backend capacity (e.g. the 3 Quaestor servers of §6.1) and
/// per-client-instance CPU. `Acquire` returns the total sojourn time
/// (wait + service) for a job arriving now.
class QueueingResource {
 public:
  QueueingResource(size_t servers, Micros service_time)
      : next_free_(servers == 0 ? 1 : servers, 0),
        service_time_(service_time) {}

  /// Admits a job at time `now`; returns wait + service time.
  Micros Acquire(Micros now) {
    // Pick the earliest-free server.
    size_t best = 0;
    for (size_t i = 1; i < next_free_.size(); ++i) {
      if (next_free_[i] < next_free_[best]) best = i;
    }
    const Micros start = next_free_[best] > now ? next_free_[best] : now;
    next_free_[best] = start + service_time_;
    return (start - now) + service_time_;
  }

  Micros service_time() const { return service_time_; }

  /// Changes the per-job service time from now on (overload schedules
  /// slow the origin mid-run); in-flight jobs keep their old cost.
  void set_service_time(Micros service_time) { service_time_ = service_time; }

 private:
  std::vector<Micros> next_free_;
  Micros service_time_;
};

}  // namespace quaestor::sim

#endif  // QUAESTOR_SIM_EVENT_QUEUE_H_
