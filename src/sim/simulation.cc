#include "sim/simulation.h"

#include <algorithm>

namespace quaestor::sim {

Simulation::Simulation(workload::WorkloadOptions workload_options,
                       SimOptions options)
    : workload_options_(workload_options),
      options_(options),
      clock_(0),
      events_(&clock_),
      server_pool_(options.num_servers, options.server_service) {
  db_ = std::make_unique<db::Database>(&clock_);

  core::ServerOptions server_options = options_.server_options;
  // The simulation needs deterministic, synchronous invalidation matching.
  server_options.invalidb_options.threaded = false;
  server_ = std::make_unique<core::QuaestorServer>(&clock_, db_.get(),
                                                   server_options);

  if (options_.trace) {
    obs::TracerOptions topts;
    topts.max_spans = options_.trace_max_spans;
    topts.deterministic_ids = true;
    tracer_ = std::make_unique<obs::Tracer>(&clock_, topts);
    server_->set_tracer(tracer_.get());
  }

  if (options_.arch.cdn) {
    cdn_ = std::make_unique<webcache::InvalidationCache>(&clock_);
    // Purges reach the CDN after ∆_invalidation.
    server_->AddPurgeTarget([this](const std::string& key) {
      events_.ScheduleAfter(options_.cdn_purge_latency,
                            [this, key] { cdn_->Purge(key); });
    });
  }

  // Record invalidation times per query for the TTL-quality analysis.
  server_->AddNotificationTap([this](const invalidb::Notification& n) {
    invalidations_[n.query_key].push_back(clock_.NowMicros());
  });

  // Ground-truth commit tracking per table (staleness checks key on this;
  // the InvaliDB notification stream is not reliable under fault
  // injection).
  db_->AddChangeListener([this](const db::ChangeEvent& ev) {
    TableActivity& ta = table_activity_[ev.after.table];
    ta.commits++;
    ta.last_commit = ev.commit_time;
  });

  client::ClientOptions copts = options_.client_options;
  copts.use_ebf = copts.use_ebf && options_.arch.use_ebf;

  clients_.reserve(options_.num_client_instances);
  for (size_t i = 0; i < options_.num_client_instances; ++i) {
    ClientInstance ci;
    if (options_.arch.client_cache) {
      ci.cache = std::make_unique<webcache::ExpirationCache>(
          &clock_, options_.client_cache_entries);
    }
    ci.client = std::make_unique<client::QuaestorClient>(
        &clock_, server_.get(), ci.cache.get(), cdn_.get(), copts,
        options_.latency);
    if (tracer_ != nullptr) ci.client->set_tracer(tracer_.get());
    ci.cpu = std::make_unique<QueueingResource>(1, options_.client_cpu);
    clients_.push_back(std::move(ci));
  }

  generator_ = std::make_unique<workload::WorkloadGenerator>(
      workload_options_, options_.seed);
}

Simulation::~Simulation() = default;

bool Simulation::CheckReadStale(const std::string& table,
                                const std::string& id,
                                const client::ReadResult& rr,
                                double* stale_age_ms) {
  *stale_age_ms = 0.0;
  if (!rr.status.ok()) return false;
  auto current = db_->Get(table, id);
  const Micros now = clock_.NowMicros();
  if (!current.ok()) {
    // Served a copy of a deleted record; the table's latest commit is the
    // closest known lower bound on when the copy went stale.
    auto it = table_activity_.find(table);
    if (it != table_activity_.end() && it->second.last_commit <= now) {
      *stale_age_ms = MicrosToMillis(now - it->second.last_commit);
    }
    return true;
  }
  if (rr.version >= current->version) return false;
  // The served version was superseded no later than the current version's
  // commit.
  *stale_age_ms = MicrosToMillis(now - current->write_time);
  return true;
}

bool Simulation::CheckQueryStale(const db::Query& query,
                                 const client::QueryResult& qr,
                                 double* stale_age_ms) {
  *stale_age_ms = 0.0;
  if (!qr.status.ok()) return false;
  // Responses assembled at the origin are fresh by construction.
  if (qr.outcome.served_by == webcache::ServedBy::kOrigin) return false;
  // The ground-truth etag only changes when a commit touches the query's
  // table — recompute lazily keyed on the table's commit count instead of
  // scanning the table on every check. (Keying on the query's
  // invalidation count would go wrong here: a lossy or downed pipeline
  // emits no notification for exactly the commits that make copies
  // stale.)
  const std::string key = query.NormalizedKey();
  const auto activity = table_activity_.find(query.table());
  const uint64_t commit_count =
      activity == table_activity_.end() ? 0 : activity->second.commits;
  FreshEtags& cache = fresh_etags_[key];
  if (!cache.valid || cache.commit_count != commit_count) {
    const std::vector<db::Document> fresh = db_->Execute(query);
    core::QueryResponse as_objects;
    as_objects.representation = ttl::ResultRepresentation::kObjectList;
    core::QueryResponse as_ids;
    as_ids.representation = ttl::ResultRepresentation::kIdList;
    for (const db::Document& d : fresh) {
      as_objects.ids.push_back(d.Key());
      as_objects.versions.push_back(d.version);
      as_ids.ids.push_back(d.Key());
    }
    const uint64_t new_objects = as_objects.ComputeEtag();
    const uint64_t new_ids = as_ids.ComputeEtag();
    if (cache.valid &&
        (cache.etag_objects != new_objects || cache.etag_ids != new_ids) &&
        activity != table_activity_.end()) {
      const Micros changed_at = activity->second.last_commit;
      cache.last_change = changed_at;
      // Only the first expiry matters: an etag that resurfaces later
      // (result flipped back) still went stale at its first supersession.
      cache.expired_at.emplace(cache.etag_objects, changed_at);
      cache.expired_at.emplace(cache.etag_ids, changed_at);
    }
    cache.valid = true;
    cache.commit_count = commit_count;
    cache.etag_objects = new_objects;
    cache.etag_ids = new_ids;
  }
  const uint64_t fresh_etag =
      qr.representation == ttl::ResultRepresentation::kObjectList
          ? cache.etag_objects
          : cache.etag_ids;
  if (fresh_etag == qr.etag) return false;
  // Lower-bound age: when the served etag itself stopped being fresh;
  // fallbacks are the query's last observed result change, then the
  // table's latest commit.
  const Micros now = clock_.NowMicros();
  const auto expired = cache.expired_at.find(qr.etag);
  if (expired != cache.expired_at.end() && expired->second <= now) {
    *stale_age_ms = MicrosToMillis(now - expired->second);
  } else if (cache.last_change > 0 && cache.last_change <= now) {
    *stale_age_ms = MicrosToMillis(now - cache.last_change);
  } else if (activity != table_activity_.end() &&
             activity->second.last_commit <= now) {
    *stale_age_ms = MicrosToMillis(now - activity->second.last_commit);
  }
  return true;
}

void Simulation::RecordOutcome(OpMetrics* metrics,
                               const client::RequestOutcome& o,
                               bool ok, double total_latency_ms, bool stale,
                               double stale_age_ms, bool in_window) {
  if (!in_window) return;
  if (ok) {
    results_.ok_ops++;
    if (o.served_stale_on_shed) results_.stale_shed_serves++;
  } else if (o.deadline_exceeded) {
    results_.deadline_exceeded_ops++;
  } else if (o.shed) {
    results_.shed_ops++;
  }
  metrics->count++;
  metrics->latency.Record(total_latency_ms);
  if (stale) {
    metrics->stale++;
    metrics->stale_age_ms.Record(stale_age_ms);
  }
  switch (o.served_by) {
    case webcache::ServedBy::kClientCache:
      metrics->client_hits++;
      break;
    case webcache::ServedBy::kExpirationCache:
    case webcache::ServedBy::kInvalidationCache:
      metrics->cdn_hits++;
      break;
    case webcache::ServedBy::kOrigin:
      metrics->origin++;
      break;
  }
}

void Simulation::RunConnectionStep(size_t instance_index, Micros stop_at) {
  const Micros now = clock_.NowMicros();
  const bool in_window = now >= options_.warmup;
  ClientInstance& ci = clients_[instance_index];
  workload::Operation op = generator_->Next();

  Micros total = ci.cpu->Acquire(now);
  bool origin_visit = false;
  // True only when the request actually held an origin worker (not shed,
  // not past-deadline): the slowness-feedback hook below samples per unit
  // of origin work performed, so a 100%-shed storm cannot keep charging
  // the admission controller for work the origin never did.
  bool origin_served = false;

  OpObservation obs;
  obs.instance = instance_index;
  obs.type = op.type;
  obs.table = op.table;
  obs.id = op.id;

  switch (op.type) {
    case workload::OpType::kRead: {
      client::ReadResult rr = ci.client->Read(op.table, op.id);
      origin_visit =
          rr.outcome.served_by == webcache::ServedBy::kOrigin;
      double latency_ms = rr.outcome.latency_ms;
      // A shed or past-deadline request never holds a backend worker —
      // the rejection (or the skipped round trip) is the whole point of
      // the protection — so it is not charged pool service time.
      origin_served =
          origin_visit && !rr.outcome.shed && !rr.outcome.deadline_exceeded;
      if (origin_served) {
        latency_ms += MicrosToMillis(server_pool_.Acquire(now));
      }
      total += MillisToMicros(latency_ms);
      double stale_age_ms = 0.0;
      const bool stale = CheckReadStale(op.table, op.id, rr, &stale_age_ms);
      RecordOutcome(&results_.reads, rr.outcome, rr.status.ok(), latency_ms,
                    stale, stale_age_ms, in_window);
      obs.read = &rr;
      obs.stale = stale;
      obs.stale_age_ms = stale_age_ms;
      for (const OpObserver& o : op_observers_) o(obs);
      break;
    }
    case workload::OpType::kQuery: {
      client::QueryResult qr = ci.client->ExecuteQuery(op.query);
      origin_visit =
          qr.outcome.served_by == webcache::ServedBy::kOrigin;
      double latency_ms = qr.outcome.latency_ms;
      // Shed / past-deadline queries don't hold a backend worker either.
      origin_served =
          origin_visit && !qr.outcome.shed && !qr.outcome.deadline_exceeded;
      if (origin_served) {
        latency_ms += MicrosToMillis(server_pool_.Acquire(now));
        // Track the issued TTL estimate for Figure 11.
        if (in_window) {
          const std::string key = op.query.NormalizedKey();
          auto entry = server_->active_list().Find(key);
          if (entry.has_value() && entry->last_read_time == now &&
              entry->last_issued_ttl > 0) {
            query_serves_.push_back(
                QueryServe{key, now, entry->last_issued_ttl});
          }
        }
      }
      total += MillisToMicros(latency_ms);
      double stale_age_ms = 0.0;
      const bool stale = CheckQueryStale(op.query, qr, &stale_age_ms);
      RecordOutcome(&results_.queries, qr.outcome, qr.status.ok(), latency_ms,
                    stale, stale_age_ms, in_window);
      obs.query = &op.query;
      obs.query_result = &qr;
      obs.stale = stale;
      obs.stale_age_ms = stale_age_ms;
      for (const OpObserver& o : op_observers_) o(obs);
      break;
    }
    case workload::OpType::kInsert:
    case workload::OpType::kUpdate:
    case workload::OpType::kDelete: {
      Result<db::Document> wr = [&] {
        if (op.type == workload::OpType::kInsert) {
          return ci.client->Insert(op.table, op.id, std::move(op.body));
        }
        if (op.type == workload::OpType::kUpdate) {
          return ci.client->Update(op.table, op.id, op.update);
        }
        return ci.client->Delete(op.table, op.id);
      }();
      client::RequestOutcome o;
      o.served_by = webcache::ServedBy::kOrigin;
      o.shed = !wr.ok() && wr.status().IsResourceExhausted();
      o.deadline_exceeded = !wr.ok() && wr.status().IsDeadlineExceeded();
      double latency_ms = ci.client->WriteLatencyMs();
      // Shed writes are rejected at admission, before a backend worker
      // picks them up — no pool service time.
      if (!o.shed && !o.deadline_exceeded) {
        latency_ms += MicrosToMillis(server_pool_.Acquire(now));
      }
      total += MillisToMicros(latency_ms);
      o.latency_ms = latency_ms;
      RecordOutcome(&results_.writes, o, wr.ok(), latency_ms, /*stale=*/false,
                    /*stale_age_ms=*/0.0, in_window);
      if (wr.ok()) obs.written = &wr.value();
      for (const OpObserver& ob : op_observers_) ob(obs);
      break;
    }
  }

  // Origin slowness injection: a seeded latency spike stalls the server's
  // admission workers, so slowness becomes queue pressure the controller
  // can react to (not just a latency number in the results).
  if (origin_served && options_.origin_spike_fn) {
    const Micros spike = options_.origin_spike_fn(now);
    if (spike > 0) server_->admission().InjectDelay(now, spike);
  }

  Micros think = options_.think_time;
  if (load_multiplier_ > 1.0) {
    think = static_cast<Micros>(static_cast<double>(think) /
                                load_multiplier_);
  }
  const Micros next = now + std::max<Micros>(total, 1) + think;
  if (next < stop_at) {
    events_.Schedule(next, [this, instance_index, stop_at] {
      RunConnectionStep(instance_index, stop_at);
    });
  }
}

SimResults Simulation::Run() {
  if (ran_) return results_;
  ran_ = true;

  generator_->Load(db_.get());

  for (ClientInstance& ci : clients_) ci.client->Connect();

  // Elastic scale-out events: repartition the matching grid mid-run.
  for (const SimOptions::ScheduledResize& r : options_.scheduled_resizes) {
    events_.Schedule(r.at, [this, r] {
      server_->ResizeInvalidb(r.query_partitions, r.object_partitions);
    });
  }

  // Overload phases: scale the origin pool and spawn the flash crowd.
  for (const SimOptions::OverloadPhase& p : options_.overload_phases) {
    const Micros phase_end = p.at + p.duration;
    events_.Schedule(p.at, [this, p, phase_end] {
      load_multiplier_ = std::max(1.0, p.load_multiplier);
      if (p.origin_slowdown > 1.0) {
        server_pool_.set_service_time(static_cast<Micros>(
            static_cast<double>(options_.server_service) *
            p.origin_slowdown));
      }
      // Flash crowd: (multiplier - 1)x extra connections per instance,
      // staggered like the permanent ones, gone when the phase ends.
      const size_t extra_per_instance = static_cast<size_t>(
          (std::max(1.0, p.load_multiplier) - 1.0) *
          static_cast<double>(options_.connections_per_instance));
      uint64_t stagger = 0;
      for (size_t i = 0; i < clients_.size(); ++i) {
        for (size_t c = 0; c < extra_per_instance; ++c) {
          stagger = (stagger + 7919) % 10000;
          events_.ScheduleAfter(static_cast<Micros>(stagger),
                                [this, i, phase_end] {
                                  RunConnectionStep(i, phase_end);
                                });
        }
      }
    });
    events_.Schedule(phase_end, [this] {
      load_multiplier_ = 1.0;
      server_pool_.set_service_time(options_.server_service);
    });
  }

  // Stagger connection start times to avoid lockstep artifacts.
  uint64_t stagger = 0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    for (size_t c = 0; c < options_.connections_per_instance; ++c) {
      stagger = (stagger + 7919) % 10000;
      events_.Schedule(static_cast<Micros>(stagger), [this, i] {
        RunConnectionStep(i, options_.duration);
      });
    }
  }

  events_.RunUntil(options_.duration);

  results_.duration_s =
      MicrosToSeconds(options_.duration - options_.warmup);
  results_.total_ops = results_.reads.count + results_.queries.count +
                       results_.writes.count;
  results_.throughput_ops_s =
      results_.duration_s > 0
          ? static_cast<double>(results_.total_ops) / results_.duration_s
          : 0.0;
  results_.goodput_ops_s =
      results_.duration_s > 0
          ? static_cast<double>(results_.ok_ops) / results_.duration_s
          : 0.0;

  // Figure 11: estimated vs true TTLs (seconds). The true TTL of a serve
  // is the time until the result's next invalidation; serves never
  // invalidated before simulation end are right-censored and dropped.
  for (const QueryServe& s : query_serves_) {
    results_.estimated_ttls_s.push_back(MicrosToSeconds(s.estimated_ttl));
    auto it = invalidations_.find(s.key);
    if (it == invalidations_.end()) continue;
    const std::vector<Micros>& times = it->second;
    auto next = std::upper_bound(times.begin(), times.end(), s.at);
    if (next != times.end()) {
      results_.true_ttls_s.push_back(MicrosToSeconds(*next - s.at));
    }
  }

  results_.server_stats = server_->stats();
  results_.invalidb_stats = server_->invalidb().stats();
  if (cdn_ != nullptr) results_.cdn_stats = cdn_->stats();

  // Unified export: every component's stats surface lands in the
  // registry, and the snapshot rides along in the results so benches can
  // merge runs and write one JSON blob.
  server_->ExportMetrics(&registry_);
  if (cdn_ != nullptr) {
    results_.cdn_stats.ExportTo(&registry_, {{"tier", "cdn"}});
  }
  for (const ClientInstance& ci : clients_) {
    ci.client->stats().ExportTo(&registry_);
    if (ci.cache != nullptr) {
      ci.cache->stats().ExportTo(&registry_, {{"tier", "client"}});
    }
  }
  const auto export_op = [this](const char* op_name, const OpMetrics& m) {
    const obs::Labels labels = {{"op", op_name}};
    registry_.Count("sim_ops", labels, m.count);
    registry_.Count("sim_stale", labels, m.stale);
    registry_.Count("sim_client_hits", labels, m.client_hits);
    registry_.Count("sim_cdn_hits", labels, m.cdn_hits);
    registry_.Count("sim_origin_fetches", labels, m.origin);
    registry_.GetTimer("sim_latency_ms", labels)->MergeHistogram(m.latency);
    registry_.GetTimer("sim_stale_age_ms", labels)
        ->MergeHistogram(m.stale_age_ms);
  };
  export_op("read", results_.reads);
  export_op("query", results_.queries);
  export_op("write", results_.writes);
  registry_.SetGauge("sim_throughput_ops_s", results_.throughput_ops_s);
  registry_.SetGauge("sim_goodput_ops_s", results_.goodput_ops_s);
  registry_.Count("sim_ok_ops", {}, results_.ok_ops);
  registry_.Count("sim_shed_ops", {}, results_.shed_ops);
  registry_.Count("sim_deadline_exceeded_ops", {},
                  results_.deadline_exceeded_ops);
  registry_.Count("sim_stale_shed_serves", {}, results_.stale_shed_serves);
  if (tracer_ != nullptr) {
    registry_.SetGauge("trace_spans",
                       static_cast<double>(tracer_->SpanCount()));
    registry_.SetGauge("trace_dropped_spans",
                       static_cast<double>(tracer_->DroppedSpans()));
  }
  results_.metrics = registry_.Snapshot();
  return results_;
}

}  // namespace quaestor::sim
