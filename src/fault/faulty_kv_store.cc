#include "fault/faulty_kv_store.h"

#include <vector>

namespace quaestor::fault {

void FaultyKvStore::ReleaseDue(const std::string& queue,
                               bool overtaking_push) {
  std::vector<std::string> release;
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    auto it = held_.find(queue);
    if (it == held_.end()) return;
    const Micros now = clock_->NowMicros();
    auto& pen = it->second;
    for (auto h = pen.begin(); h != pen.end();) {
      if (overtaking_push && h->overtakes_left > 0) h->overtakes_left--;
      const bool due = (h->due_time >= 0 && now >= h->due_time) ||
                       h->overtakes_left == 0;
      if (due) {
        release.push_back(std::move(h->message));
        h = pen.erase(h);
      } else {
        ++h;
      }
    }
    if (pen.empty()) held_.erase(it);
  }
  for (std::string& m : release) {
    kv::KvStore::QueuePush(queue, std::move(m));
  }
}

void FaultyKvStore::QueuePush(const std::string& queue, std::string message) {
  // This push overtakes any reordered messages parked earlier.
  ReleaseDue(queue, /*overtaking_push=*/true);
  if (injector_->ShouldDrop()) return;
  if (injector_->ShouldCorrupt()) injector_->Corrupt(&message);
  const bool duplicate = injector_->ShouldDuplicate();
  std::string copy = duplicate ? message : std::string();

  const Micros delay = injector_->DelayFor();
  if (delay > 0) {
    Held h;
    h.message = std::move(message);
    h.due_time = clock_->NowMicros() + delay;
    std::lock_guard<std::mutex> lock(held_mu_);
    held_[queue].push_back(std::move(h));
  } else if (injector_->ShouldReorder()) {
    Held h;
    h.message = std::move(message);
    h.overtakes_left = 1 + static_cast<int>(injector_->NextUint64(3));
    std::lock_guard<std::mutex> lock(held_mu_);
    held_[queue].push_back(std::move(h));
  } else {
    kv::KvStore::QueuePush(queue, std::move(message));
  }
  if (duplicate) {
    kv::KvStore::QueuePush(queue, std::move(copy));
  }
}

std::optional<std::string> FaultyKvStore::QueuePop(const std::string& queue,
                                                   Micros timeout_micros) {
  ReleaseDue(queue, /*overtaking_push=*/false);
  return kv::KvStore::QueuePop(queue, timeout_micros);
}

std::optional<std::string> FaultyKvStore::QueueTryPop(
    const std::string& queue) {
  ReleaseDue(queue, /*overtaking_push=*/false);
  return kv::KvStore::QueueTryPop(queue);
}

size_t FaultyKvStore::QueueLen(const std::string& queue) const {
  size_t held = 0;
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    auto it = held_.find(queue);
    if (it != held_.end()) held = it->second.size();
  }
  return kv::KvStore::QueueLen(queue) + held;
}

size_t FaultyKvStore::FlushHeld() {
  std::unordered_map<std::string, std::deque<Held>> pens;
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    pens.swap(held_);
  }
  size_t released = 0;
  for (auto& [queue, pen] : pens) {
    for (Held& h : pen) {
      kv::KvStore::QueuePush(queue, std::move(h.message));
      released++;
    }
  }
  return released;
}

size_t FaultyKvStore::held_count() const {
  std::lock_guard<std::mutex> lock(held_mu_);
  size_t n = 0;
  for (const auto& [queue, pen] : held_) n += pen.size();
  return n;
}

}  // namespace quaestor::fault
