#include "fault/fault_injector.h"

#include <algorithm>

namespace quaestor::fault {

void FaultStats::ExportTo(obs::MetricsRegistry* registry,
                          const obs::Labels& labels) const {
  registry->Count("fault_decisions", labels, decisions);
  registry->Count("fault_dropped", labels, dropped);
  registry->Count("fault_duplicated", labels, duplicated);
  registry->Count("fault_reordered", labels, reordered);
  registry->Count("fault_delayed", labels, delayed);
  registry->Count("fault_corrupted", labels, corrupted);
  registry->Count("fault_latency_spikes", labels, latency_spikes);
}

bool FaultInjector::ShouldDrop() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.decisions++;
  if (!rng_.NextBool(profile_.drop_rate)) return false;
  stats_.dropped++;
  return true;
}

bool FaultInjector::ShouldDuplicate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.NextBool(profile_.duplicate_rate)) return false;
  stats_.duplicated++;
  return true;
}

bool FaultInjector::ShouldReorder() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.NextBool(profile_.reorder_rate)) return false;
  stats_.reordered++;
  return true;
}

bool FaultInjector::ShouldCorrupt() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!rng_.NextBool(profile_.corrupt_rate)) return false;
  stats_.corrupted++;
  return true;
}

Micros FaultInjector::DelayFor() {
  std::lock_guard<std::mutex> lock(mu_);
  if (profile_.max_delay <= 0 || !rng_.NextBool(profile_.delay_rate)) {
    return 0;
  }
  stats_.delayed++;
  return static_cast<Micros>(
             rng_.NextUint64(static_cast<uint64_t>(profile_.max_delay))) +
         1;
}

Micros FaultInjector::LatencySpikeFor() {
  std::lock_guard<std::mutex> lock(mu_);
  if (profile_.max_latency_spike <= 0 ||
      !rng_.NextBool(profile_.latency_spike_rate)) {
    return 0;
  }
  stats_.latency_spikes++;
  return static_cast<Micros>(rng_.NextUint64(
             static_cast<uint64_t>(profile_.max_latency_spike))) +
         1;
}

void FaultInjector::Corrupt(std::string* message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (message->empty()) {
    message->push_back(static_cast<char>(rng_.NextUint64(256)));
    return;
  }
  switch (rng_.NextUint64(3)) {
    case 0: {  // truncate
      message->resize(rng_.NextUint64(message->size()));
      break;
    }
    case 1: {  // flip up to 4 bytes
      const size_t flips = 1 + rng_.NextUint64(4);
      for (size_t i = 0; i < flips; ++i) {
        const size_t pos = rng_.NextUint64(message->size());
        (*message)[pos] =
            static_cast<char>((*message)[pos] ^ (1 + rng_.NextUint64(255)));
      }
      break;
    }
    default: {  // splice random bytes into the middle
      const size_t pos = rng_.NextUint64(message->size());
      const size_t len = 1 + rng_.NextUint64(8);
      std::string junk;
      for (size_t i = 0; i < len; ++i) {
        junk.push_back(static_cast<char>(rng_.NextUint64(256)));
      }
      message->insert(pos, junk);
      break;
    }
  }
}

double FaultInjector::NextDouble() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextDouble();
}

uint64_t FaultInjector::NextUint64(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.NextUint64(n);
}

void FaultInjector::set_profile(const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  profile_ = profile;
}

FaultProfile FaultInjector::profile() const {
  std::lock_guard<std::mutex> lock(mu_);
  return profile_;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ResizePoint> MakeResizeSchedule(uint64_t seed, size_t num_events,
                                            size_t max_resizes,
                                            size_t max_partitions) {
  std::vector<ResizePoint> schedule;
  if (num_events == 0 || max_resizes == 0) return schedule;
  if (max_partitions == 0) max_partitions = 1;
  Rng rng(seed);
  const size_t count = 1 + rng.NextUint64(max_resizes);
  std::vector<size_t> positions;
  positions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    positions.push_back(static_cast<size_t>(rng.NextUint64(num_events)));
  }
  std::sort(positions.begin(), positions.end());
  positions.erase(std::unique(positions.begin(), positions.end()),
                  positions.end());
  schedule.reserve(positions.size());
  for (size_t pos : positions) {
    ResizePoint p;
    p.after_event = pos;
    p.query_partitions = 1 + rng.NextUint64(max_partitions);
    p.object_partitions = 1 + rng.NextUint64(max_partitions);
    schedule.push_back(p);
  }
  return schedule;
}

}  // namespace quaestor::fault
