#ifndef QUAESTOR_FAULT_FAULT_INJECTOR_H_
#define QUAESTOR_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace quaestor::fault {

/// Per-message fault probabilities for the injected channel. All rates are
/// independent per decision; a message can be both delayed and duplicated.
struct FaultProfile {
  double drop_rate = 0.0;       // message silently disappears
  double duplicate_rate = 0.0;  // message is delivered twice
  double reorder_rate = 0.0;    // message is held back and released later
  double delay_rate = 0.0;      // message is held until `max_delay` passes
  Micros max_delay = 0;         // upper bound for injected delays
  double corrupt_rate = 0.0;    // message bytes are mutated in place

  bool Lossless() const {
    return drop_rate == 0.0 && duplicate_rate == 0.0 && reorder_rate == 0.0 &&
           delay_rate == 0.0 && corrupt_rate == 0.0;
  }
};

/// Counters for what the injector actually did.
struct FaultStats {
  uint64_t decisions = 0;   // messages that passed through the injector
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;

  /// Adds these totals into `fault_*` registry counters.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// A seeded source of fault decisions: every randomized choice in the
/// fault layer flows through one injector so a chaos schedule replays
/// exactly from its seed. Thread-safe (the faulty KV store is shared
/// between the remote's poller and the worker's consumer threads).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, FaultProfile profile = FaultProfile())
      : rng_(seed), profile_(profile) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool ShouldDrop();
  bool ShouldDuplicate();
  bool ShouldReorder();
  bool ShouldCorrupt();

  /// A uniformly random delay in [1, max_delay] µs (0 when the profile
  /// injects no delay for this message).
  Micros DelayFor();

  /// Mutates `message` in place: truncation, byte flips, or random-byte
  /// splices, chosen by the seeded stream. The result is intentionally
  /// often invalid JSON — receivers must reject it, never crash.
  void Corrupt(std::string* message);

  /// Uniform double in [0, 1) from the injector's stream (for callers
  /// that need extra seeded decisions tied to the same schedule).
  double NextDouble();

  /// Uniform value in [0, n).
  uint64_t NextUint64(uint64_t n);

  void set_profile(const FaultProfile& profile);
  FaultProfile profile() const;
  FaultStats stats() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  FaultProfile profile_;
  FaultStats stats_;
};

}  // namespace quaestor::fault

#endif  // QUAESTOR_FAULT_FAULT_INJECTOR_H_
