#ifndef QUAESTOR_FAULT_FAULT_INJECTOR_H_
#define QUAESTOR_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "obs/metrics.h"

namespace quaestor::fault {

/// Per-message fault probabilities for the injected channel. All rates are
/// independent per decision; a message can be both delayed and duplicated.
struct FaultProfile {
  double drop_rate = 0.0;       // message silently disappears
  double duplicate_rate = 0.0;  // message is delivered twice
  double reorder_rate = 0.0;    // message is held back and released later
  double delay_rate = 0.0;      // message is held until `max_delay` passes
  Micros max_delay = 0;         // upper bound for injected delays
  double corrupt_rate = 0.0;    // message bytes are mutated in place
  /// Origin latency spikes: with this probability a served request is
  /// slowed by up to `max_latency_spike` (models GC pauses / noisy
  /// neighbours at the origin during overload experiments).
  double latency_spike_rate = 0.0;
  Micros max_latency_spike = 0;

  bool Lossless() const {
    return drop_rate == 0.0 && duplicate_rate == 0.0 && reorder_rate == 0.0 &&
           delay_rate == 0.0 && corrupt_rate == 0.0 &&
           latency_spike_rate == 0.0;
  }
};

/// Counters for what the injector actually did.
struct FaultStats {
  uint64_t decisions = 0;   // messages that passed through the injector
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t delayed = 0;
  uint64_t corrupted = 0;
  uint64_t latency_spikes = 0;

  /// Adds these totals into `fault_*` registry counters.
  void ExportTo(obs::MetricsRegistry* registry,
                const obs::Labels& labels = {}) const;
};

/// A seeded source of fault decisions: every randomized choice in the
/// fault layer flows through one injector so a chaos schedule replays
/// exactly from its seed. Thread-safe (the faulty KV store is shared
/// between the remote's poller and the worker's consumer threads).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, FaultProfile profile = FaultProfile())
      : rng_(seed), profile_(profile) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  bool ShouldDrop();
  bool ShouldDuplicate();
  bool ShouldReorder();
  bool ShouldCorrupt();

  /// A uniformly random delay in [1, max_delay] µs (0 when the profile
  /// injects no delay for this message).
  Micros DelayFor();

  /// A uniformly random origin latency spike in [1, max_latency_spike] µs
  /// (0 when no spike fires for this request).
  Micros LatencySpikeFor();

  /// Mutates `message` in place: truncation, byte flips, or random-byte
  /// splices, chosen by the seeded stream. The result is intentionally
  /// often invalid JSON — receivers must reject it, never crash.
  void Corrupt(std::string* message);

  /// Uniform double in [0, 1) from the injector's stream (for callers
  /// that need extra seeded decisions tied to the same schedule).
  double NextDouble();

  /// Uniform value in [0, n).
  uint64_t NextUint64(uint64_t n);

  void set_profile(const FaultProfile& profile);
  FaultProfile profile() const;
  FaultStats stats() const;

 private:
  mutable std::mutex mu_;
  Rng rng_;
  FaultProfile profile_;
  FaultStats stats_;
};

/// One scheduled elastic-resize point in a chaos run: after the stream's
/// `after_event`-th change event, repartition to the given grid shape.
struct ResizePoint {
  size_t after_event = 0;
  size_t query_partitions = 1;
  size_t object_partitions = 1;
};

/// Derives a deterministic resize schedule from `seed`: up to
/// `max_resizes` points at strictly increasing positions within a stream
/// of `num_events` events, each with partition counts in
/// [1, max_partitions]. Chaos suites interleave these with fault-injected
/// traffic to exercise resize-under-failure windows reproducibly.
std::vector<ResizePoint> MakeResizeSchedule(uint64_t seed, size_t num_events,
                                            size_t max_resizes,
                                            size_t max_partitions);

}  // namespace quaestor::fault

#endif  // QUAESTOR_FAULT_FAULT_INJECTOR_H_
