#ifndef QUAESTOR_FAULT_FAULTY_KV_STORE_H_
#define QUAESTOR_FAULT_FAULTY_KV_STORE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "fault/fault_injector.h"
#include "kv/kv_store.h"

namespace quaestor::fault {

/// A KvStore whose message queues are a lossy channel: pushes may be
/// dropped, corrupted, duplicated, delayed, or reordered, driven entirely
/// by a seeded FaultInjector. Strings/hashes/pub-sub stay reliable — the
/// paper's fault model targets the Quaestor ↔ InvaliDB Redis queues, not
/// the EBF substrate.
///
/// Delayed and reordered messages are parked in a per-queue holding pen:
/// a delayed message is released once its due time passes, a reordered
/// message after 1–3 subsequent pushes to the same queue overtake it.
/// Releases are checked at every queue operation, so any pumping loop
/// (DrainNotifications / ProcessPending / the poller threads) eventually
/// delivers them. FlushHeld() force-releases everything (test teardown).
class FaultyKvStore : public kv::KvStore {
 public:
  /// `injector` must outlive the store.
  FaultyKvStore(Clock* clock, FaultInjector* injector)
      : kv::KvStore(clock), clock_(clock), injector_(injector) {}

  void QueuePush(const std::string& queue, std::string message) override;
  std::optional<std::string> QueuePop(const std::string& queue,
                                      Micros timeout_micros) override;
  std::optional<std::string> QueueTryPop(const std::string& queue) override;
  size_t QueueLen(const std::string& queue) const override;

  /// Releases every held (delayed/reordered) message immediately.
  /// Returns how many were released.
  size_t FlushHeld();

  /// Messages currently parked in holding pens.
  size_t held_count() const;

  FaultInjector& injector() { return *injector_; }

 private:
  struct Held {
    std::string message;
    Micros due_time = -1;      // release when clock reaches this (-1: n/a)
    int overtakes_left = -1;   // release after this many later pushes
  };

  /// Moves every due held message of `queue` into the real queue.
  /// `overtaking_push` marks that a new push just arrived (decrements the
  /// reorder counters).
  void ReleaseDue(const std::string& queue, bool overtaking_push);

  Clock* clock_;
  FaultInjector* injector_;

  mutable std::mutex held_mu_;
  std::unordered_map<std::string, std::deque<Held>> held_;
};

}  // namespace quaestor::fault

#endif  // QUAESTOR_FAULT_FAULTY_KV_STORE_H_
