// Ablation A1: the TTL estimation model (§3 straw-man vs §4.2 design).
//
// Compares three strategies on the same workload:
//   * static TTL   — one constant application-defined TTL for everything
//                    (the straw-man of §3): short → poor hit rates,
//                    long → many invalidations and a bloated EBF;
//   * Poisson only — per-record write-rate model, no feedback;
//   * Poisson+EWMA — the full Quaestor estimator (Equations 1 and 2).
// Reported per strategy: query hit rate, stale rate, invalidations, and
// the EBF stale-set size (estimation errors inflate it, §4.2).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

struct Strategy {
  std::string name;
  ttl::TtlOptions options;
};

void Run() {
  const Micros kStatic = SecondsToMicros(30.0);
  std::vector<Strategy> strategies;
  {
    Strategy s;
    s.name = "static TTL 30s";
    s.options.min_ttl = kStatic;
    s.options.max_ttl = kStatic;  // min == max → constant TTL
    s.options.use_ewma = false;
    strategies.push_back(s);
  }
  {
    Strategy s;
    s.name = "static TTL 300s";
    s.options.min_ttl = SecondsToMicros(300.0);
    s.options.max_ttl = SecondsToMicros(300.0);
    s.options.use_ewma = false;
    strategies.push_back(s);
  }
  {
    Strategy s;
    s.name = "Poisson only";
    s.options.use_ewma = false;
    strategies.push_back(s);
  }
  {
    Strategy s;
    s.name = "Poisson + EWMA";
    strategies.push_back(s);
  }

  PrintHeader("Ablation A1: TTL estimation strategies");
  PrintColumns("strategy",
               {"q hit rate", "q stale", "invalidations", "ebf stale"});

  for (const Strategy& strat : strategies) {
    workload::WorkloadOptions w = DefaultWorkload();
    w.update_weight = 0.05;
    w.read_weight = 0.475;
    w.query_weight = 0.475;

    sim::SimOptions s = DefaultSim();
    s.duration = SecondsToMicros(60.0);
    s.warmup = SecondsToMicros(10.0);
    s.server_options.ttl_options = strat.options;

    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    AccumulateObs(r.metrics);
    PrintRow(strat.name,
             {r.queries.ClientHitRate(), r.queries.StaleRate(),
              static_cast<double>(r.server_stats.query_invalidations),
              static_cast<double>(
                  simulation.server().ebf().StaleCount())});
  }
  PrintNote("expected: static TTLs buy hit rate at the price of staleness");
  PrintNote("and invalidation-pipeline load; the adaptive estimator trades");
  PrintNote("a few hits for markedly lower staleness and fewer");
  PrintNote("invalidations (the §4.2 accuracy argument)");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("ablation_ttl");
  return 0;
}
