// Regenerates Figures 8a/8b/8c of the paper: throughput, mean read
// latency, and mean query latency versus the number of client connections
// for the four architectures (Quaestor, EBF only, CDN only, Uncached) on
// the read-heavy workload (99% reads+queries, 1% writes).
//
// Scale: connections are 1/10 of the paper's 300–3,000 (see
// EXPERIMENTS.md); the comparison shape — Quaestor > CDN-only > EBF-only >
// Uncached in throughput, and the inverse in latency — is the
// reproduction target.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/thread_driver.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "db/query.h"
#include "webcache/http.h"

namespace quaestor::bench {
namespace {

struct ArchResult {
  std::string name;
  std::vector<double> throughput;
  std::vector<double> read_latency;
  std::vector<double> query_latency;
};

/// Threads axis: the simulation above is single-threaded by construction
/// (discrete-event clock), so Fig. 8-style scalability additionally
/// sweeps real threads over the live serving path — the read-heavy mix
/// (~49.5% record reads, ~49.5% query reads, 1% writes) against a
/// QuaestorServer + Database, closed loop.
db::Value ThreadSweep() {
  db::Database database(SystemClock::Default());
  core::ServerOptions opts;
  opts.ttl_options.max_ttl = 600 * kMicrosPerSecond;
  core::QuaestorServer server(SystemClock::Default(), &database, opts);
  constexpr int kRecords = 1000;
  for (int i = 0; i < kRecords; ++i) {
    db::Object o;
    o["group"] = db::Value(static_cast<int64_t>(i % 100));
    o["views"] = db::Value(static_cast<int64_t>(i));
    auto res = server.Insert("posts", "post-" + std::to_string(i),
                             db::Value(std::move(o)));
    if (!res.ok()) std::abort();
  }
  database.GetOrCreateTable("posts")->CreateIndex("group");
  std::vector<std::string> query_keys;
  for (int g = 0; g < 50; ++g) {
    auto q =
        db::Query::ParseJson("posts", "{\"group\":" + std::to_string(g) + "}");
    server.RegisterQueryShape(q.value());
    query_keys.push_back(q->NormalizedKey());
  }

  PrintHeader("Threads axis: live read path ops/s (1% writes)");
  db::Object per_thread;
  double single = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    const ThroughputResult r = MeasureThroughput(
        threads, 0.3, [&](size_t t, uint64_t n) {
          const uint64_t x = n * 2654435761u + t * 40503u;
          if (x % 100 == 99) {
            db::Update up;
            up.Set("views", db::Value(static_cast<int64_t>(n)));
            (void)server.Update(
                "posts", "post-" + std::to_string(x % kRecords), up);
            return;
          }
          webcache::HttpRequest req;
          req.key = x % 2 == 0
                        ? "posts/post-" + std::to_string(x % kRecords)
                        : query_keys[x % query_keys.size()];
          auto resp = server.Fetch(req);
          if (!resp.ok) std::abort();
        });
    const double ops = r.OpsPerSecond();
    if (threads == 1) single = ops;
    per_thread["t" + std::to_string(threads)] = db::Value(ops);
    PrintRow("threads=" + std::to_string(threads),
             {ops, single > 0.0 ? ops / single : 0.0});
  }
  db::Object out;
  out["ops_per_sec"] = db::Value(std::move(per_thread));
  out["hardware_threads"] = db::Value(
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  return db::Value(std::move(out));
}

db::Value Run() {
  const std::vector<size_t> connection_counts = {30, 60, 120, 180, 240, 300};
  const std::vector<std::pair<std::string, sim::CacheArchitecture>> archs = {
      {"Quaestor", sim::CacheArchitecture::Quaestor()},
      {"EBF only", sim::CacheArchitecture::EbfOnly()},
      {"CDN only", sim::CacheArchitecture::CdnOnly()},
      {"Uncached", sim::CacheArchitecture::Uncached()},
  };

  std::vector<ArchResult> results;
  for (const auto& [name, arch] : archs) {
    ArchResult ar;
    ar.name = name;
    for (size_t conns : connection_counts) {
      sim::SimOptions s = DefaultSim();
      s.arch = arch;
      s.num_client_instances = 10;
      s.connections_per_instance = conns / 10;
      sim::Simulation simulation(DefaultWorkload(), s);
      sim::SimResults r = simulation.Run();
      AccumulateObs(r.metrics);
      ar.throughput.push_back(r.throughput_ops_s);
      ar.read_latency.push_back(r.reads.latency.Mean());
      ar.query_latency.push_back(r.queries.latency.Mean());
    }
    results.push_back(std::move(ar));
  }

  std::vector<std::string> cols;
  for (size_t c : connection_counts) cols.push_back(std::to_string(c));

  PrintHeader("Figure 8a: throughput (ops/s) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.throughput);

  PrintHeader("Figure 8b: mean read latency (ms) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.read_latency);

  PrintHeader("Figure 8c: mean query latency (ms) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.query_latency);

  // Paper's headline claims at maximum load.
  const ArchResult& quaestor = results[0];
  const ArchResult& ebf_only = results[1];
  const ArchResult& cdn_only = results[2];
  const ArchResult& uncached = results[3];
  const size_t last = connection_counts.size() - 1;
  PrintHeader("Headline ratios at max connections (paper: 11x / 5x / 1.7x)");
  PrintRow("Quaestor vs Uncached",
           {quaestor.throughput[last] / uncached.throughput[last]});
  PrintRow("Quaestor vs EBF only",
           {quaestor.throughput[last] / ebf_only.throughput[last]});
  PrintRow("Quaestor vs CDN only",
           {quaestor.throughput[last] / cdn_only.throughput[last]});

  // Figure data as JSON (merged with the threads axis in main).
  db::Object sim_out;
  db::Array conns;
  for (size_t c : connection_counts) {
    conns.push_back(db::Value(static_cast<int64_t>(c)));
  }
  sim_out["connections"] = db::Value(std::move(conns));
  db::Object arch_out;
  for (const ArchResult& ar : results) {
    db::Object one;
    db::Array tp, rl, ql;
    for (double v : ar.throughput) tp.push_back(db::Value(v));
    for (double v : ar.read_latency) rl.push_back(db::Value(v));
    for (double v : ar.query_latency) ql.push_back(db::Value(v));
    one["throughput_ops_s"] = db::Value(std::move(tp));
    one["read_latency_ms"] = db::Value(std::move(rl));
    one["query_latency_ms"] = db::Value(std::move(ql));
    arch_out[ar.name] = db::Value(std::move(one));
  }
  sim_out["architectures"] = db::Value(std::move(arch_out));
  return db::Value(std::move(sim_out));
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  using namespace quaestor;
  db::Object root;
  root["benchmark"] = db::Value("fig8abc_scalability");
  root["sim"] = bench::Run();
  root["threaded_path"] = bench::ThreadSweep();
  bench::WriteJsonFile("BENCH_fig8abc.json", db::Value(std::move(root)));
  bench::WriteObsSnapshot("fig8abc_scalability");
  return 0;
}
