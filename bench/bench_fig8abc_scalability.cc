// Regenerates Figures 8a/8b/8c of the paper: throughput, mean read
// latency, and mean query latency versus the number of client connections
// for the four architectures (Quaestor, EBF only, CDN only, Uncached) on
// the read-heavy workload (99% reads+queries, 1% writes).
//
// Scale: connections are 1/10 of the paper's 300–3,000 (see
// EXPERIMENTS.md); the comparison shape — Quaestor > CDN-only > EBF-only >
// Uncached in throughput, and the inverse in latency — is the
// reproduction target.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

struct ArchResult {
  std::string name;
  std::vector<double> throughput;
  std::vector<double> read_latency;
  std::vector<double> query_latency;
};

void Run() {
  const std::vector<size_t> connection_counts = {30, 60, 120, 180, 240, 300};
  const std::vector<std::pair<std::string, sim::CacheArchitecture>> archs = {
      {"Quaestor", sim::CacheArchitecture::Quaestor()},
      {"EBF only", sim::CacheArchitecture::EbfOnly()},
      {"CDN only", sim::CacheArchitecture::CdnOnly()},
      {"Uncached", sim::CacheArchitecture::Uncached()},
  };

  std::vector<ArchResult> results;
  for (const auto& [name, arch] : archs) {
    ArchResult ar;
    ar.name = name;
    for (size_t conns : connection_counts) {
      sim::SimOptions s = DefaultSim();
      s.arch = arch;
      s.num_client_instances = 10;
      s.connections_per_instance = conns / 10;
      sim::Simulation simulation(DefaultWorkload(), s);
      sim::SimResults r = simulation.Run();
      AccumulateObs(r.metrics);
      ar.throughput.push_back(r.throughput_ops_s);
      ar.read_latency.push_back(r.reads.latency.Mean());
      ar.query_latency.push_back(r.queries.latency.Mean());
    }
    results.push_back(std::move(ar));
  }

  std::vector<std::string> cols;
  for (size_t c : connection_counts) cols.push_back(std::to_string(c));

  PrintHeader("Figure 8a: throughput (ops/s) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.throughput);

  PrintHeader("Figure 8b: mean read latency (ms) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.read_latency);

  PrintHeader("Figure 8c: mean query latency (ms) vs connections");
  PrintColumns("architecture \\ connections", cols);
  for (const ArchResult& ar : results) PrintRow(ar.name, ar.query_latency);

  // Paper's headline claims at maximum load.
  const ArchResult& quaestor = results[0];
  const ArchResult& ebf_only = results[1];
  const ArchResult& cdn_only = results[2];
  const ArchResult& uncached = results[3];
  const size_t last = connection_counts.size() - 1;
  PrintHeader("Headline ratios at max connections (paper: 11x / 5x / 1.7x)");
  PrintRow("Quaestor vs Uncached",
           {quaestor.throughput[last] / uncached.throughput[last]});
  PrintRow("Quaestor vs EBF only",
           {quaestor.throughput[last] / ebf_only.throughput[last]});
  PrintRow("Quaestor vs CDN only",
           {quaestor.throughput[last] / cdn_only.throughput[last]});
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig8abc_scalability");
  return 0;
}
