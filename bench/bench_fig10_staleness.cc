// Regenerates Figure 10: stale read and query rates for 10 and 100
// clients under varying Bloom filter refresh intervals — the paper's
// Monte Carlo staleness analysis (§6.2 "EBF-Bounded Staleness").
//
// Setting follows the paper: many clients with 6 connections each
// (browser-typical), staleness measured as any linearizability violation
// against the globally ordered commit log. Expected shapes: staleness
// rises steeply between 1 s and 10 s refresh intervals and then flattens
// (bounded by cache hit rates and write-through of own updates); query
// staleness exceeds record staleness because query hit rates are higher.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void Run() {
  const std::vector<double> refresh_seconds = {1, 5, 10, 20, 30, 50};
  const std::vector<size_t> client_counts = {10, 100};

  std::vector<std::string> cols;
  for (double r : refresh_seconds) {
    cols.push_back(std::to_string(static_cast<int>(r)) + "s");
  }

  PrintHeader("Figure 10: stale rates vs Bloom filter refresh interval");
  PrintColumns("series \\ refresh", cols);

  for (size_t clients : client_counts) {
    std::vector<double> stale_reads;
    std::vector<double> stale_queries;
    for (double refresh : refresh_seconds) {
      workload::WorkloadOptions w = DefaultWorkload();
      w.update_weight = 0.05;  // enough writes for measurable staleness
      w.read_weight = 0.475;
      w.query_weight = 0.475;

      sim::SimOptions s = DefaultSim();
      s.num_client_instances = clients;
      s.connections_per_instance = 6;  // browser connection pool
      s.think_time = MillisToMicros(100.0);
      s.duration = SecondsToMicros(60.0);
      s.warmup = SecondsToMicros(10.0);
      s.client_options.ebf_refresh_interval = SecondsToMicros(refresh);
      sim::Simulation simulation(w, s);
      sim::SimResults r = simulation.Run();
      AccumulateObs(r.metrics);
      stale_reads.push_back(r.reads.StaleRate());
      stale_queries.push_back(r.queries.StaleRate());
    }
    PrintRow(std::to_string(clients) + " clients/queries", stale_queries);
    PrintRow(std::to_string(clients) + " clients/reads", stale_reads);
  }

  // CDN staleness: governed by the invalidation latency, constantly below
  // 0.1% in the paper. Measure with client caches disabled.
  {
    workload::WorkloadOptions w = DefaultWorkload();
    w.update_weight = 0.05;
    w.read_weight = 0.475;
    w.query_weight = 0.475;
    sim::SimOptions s = DefaultSim();
    s.arch = sim::CacheArchitecture::CdnOnly();
    s.num_client_instances = 10;
    s.connections_per_instance = 6;
    s.think_time = MillisToMicros(50.0);
    s.duration = SecondsToMicros(60.0);
    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    AccumulateObs(r.metrics);
    PrintHeader("CDN staleness (paper: constantly below 0.1%)");
    PrintRow("CDN stale rate (queries)", {r.queries.StaleRate()});
    PrintRow("CDN stale rate (reads)", {r.reads.StaleRate()});
  }
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig10_staleness");
  return 0;
}
