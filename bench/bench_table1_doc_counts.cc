// Regenerates Table 1: query and read latencies for increasing database
// sizes at Zipf constant 0.99.
//
// The paper's rows are 10k/100k/1M/10M documents (each collection holds
// 10,000 documents with 100 distinct queries). This reproduction runs the
// first three rows natively; the 10M-document row is omitted for memory
// (documented in EXPERIMENTS.md) — the shape (small DBs are limited by
// read/write contention on the same hot objects; large DBs by cold
// caches) shows within the three rows.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void Run() {
  struct Row {
    size_t docs;
    size_t queries;
    size_t num_tables;
  };
  const std::vector<Row> rows = {
      {10000, 100, 1},
      {100000, 1000, 10},
      {1000000, 10000, 100},
  };

  PrintHeader("Table 1: latency vs document count (Zipf 0.99)");
  PrintColumns("documents/queries",
               {"query ms", "read ms", "q hit", "r hit"});

  for (const Row& row : rows) {
    workload::WorkloadOptions w = DefaultWorkload();
    w.num_tables = row.num_tables;
    w.docs_per_table = 10000;
    w.queries_per_table = 100;
    w.docs_per_query = 10;
    w.zipf_theta = 0.99;

    sim::SimOptions s = DefaultSim();
    s.num_client_instances = 10;
    s.connections_per_instance = 12;
    // The paper extends durations to 600 s because caches take longer to
    // fill; scaled here to 60 s.
    s.duration = SecondsToMicros(60.0);
    s.warmup = SecondsToMicros(10.0);

    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    AccumulateObs(r.metrics);
    PrintRow(std::to_string(row.docs) + "/" + std::to_string(row.queries),
             {r.queries.latency.Mean(), r.reads.latency.Mean(),
              r.queries.ClientHitRate(), r.reads.ClientHitRate()});
  }
  PrintNote("expected: latencies grow and hit rates fall with database");
  PrintNote("size — caches take longer to fill (the paper additionally");
  PrintNote("sees write contention penalizing its smallest configuration)");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("table1_doc_counts");
  return 0;
}
