// E1 — §3.3 claim: "the Redis-based implementation of the Expiring Bloom
// Filter provides sufficient performance to sustain a throughput of
// >150 K queries or invalidations per second for each Redis instance."
//
// google-benchmark micro-benchmarks for both EBF variants (in-memory and
// shared/KV-backed) across the three hot operations: ReportRead (every
// cacheable response), ReportWrite (every invalidation), and Snapshot
// (EBF handout / refresh).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "ebf/expiring_bloom_filter.h"
#include "ebf/shared_ebf.h"
#include "kv/kv_store.h"
#include "obs/metrics.h"

namespace quaestor::ebf {
namespace {

/// Binary-wide metrics registry, written as OBS_ebf_throughput.json.
obs::MetricsRegistry& Registry() {
  static obs::MetricsRegistry registry;
  return registry;
}

void NoteItems(benchmark::State& state, int64_t items) {
  state.SetItemsProcessed(items);
  Registry().Count("bench_items_processed", static_cast<uint64_t>(items));
}

std::vector<std::string> MakeKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("t/record-" + std::to_string(i));
  }
  return keys;
}

void BM_InMemoryReportRead(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  ExpiringBloomFilter ebf(clock);
  const auto keys = MakeKeys(10000);
  size_t i = 0;
  for (auto _ : state) {
    ebf.ReportRead(keys[i++ % keys.size()], SecondsToMicros(60.0));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_InMemoryReportRead);

void BM_InMemoryReportWrite(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  ExpiringBloomFilter ebf(clock);
  const auto keys = MakeKeys(10000);
  for (const auto& k : keys) ebf.ReportRead(k, SecondsToMicros(3600.0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebf.ReportWrite(keys[i++ % keys.size()]));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_InMemoryReportWrite);

void BM_InMemoryIsStale(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  ExpiringBloomFilter ebf(clock);
  const auto keys = MakeKeys(10000);
  for (const auto& k : keys) ebf.ReportRead(k, SecondsToMicros(3600.0));
  for (size_t i = 0; i < keys.size(); i += 2) ebf.ReportWrite(keys[i]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebf.IsStale(keys[i++ % keys.size()]));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_InMemoryIsStale);

void BM_InMemorySnapshot(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  ExpiringBloomFilter ebf(clock);
  const auto keys = MakeKeys(static_cast<size_t>(state.range(0)));
  for (const auto& k : keys) ebf.ReportRead(k, SecondsToMicros(3600.0));
  for (const auto& k : keys) ebf.ReportWrite(k);
  for (auto _ : state) {
    BloomFilter snap = ebf.Snapshot();
    benchmark::DoNotOptimize(snap);
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_InMemorySnapshot)->Arg(1000)->Arg(20000);

void BM_SharedReportRead(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  kv::KvStore kv(clock);
  SharedEbf ebf(clock, &kv);
  const auto keys = MakeKeys(10000);
  size_t i = 0;
  for (auto _ : state) {
    ebf.ReportRead(keys[i++ % keys.size()], SecondsToMicros(60.0));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_SharedReportRead);

void BM_SharedReportWrite(benchmark::State& state) {
  SystemClock* clock = SystemClock::Default();
  kv::KvStore kv(clock);
  SharedEbf ebf(clock, &kv);
  const auto keys = MakeKeys(10000);
  for (const auto& k : keys) ebf.ReportRead(k, SecondsToMicros(3600.0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebf.ReportWrite(keys[i++ % keys.size()]));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_SharedReportWrite);

}  // namespace
}  // namespace quaestor::ebf

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  quaestor::bench::AccumulateObs(quaestor::ebf::Registry().Snapshot());
  quaestor::bench::WriteObsSnapshot("ebf_throughput");
  return 0;
}
