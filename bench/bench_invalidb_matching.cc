// Micro-benchmark for predicate-indexed InvaliDB matching: a grid of
// installed-query counts × update batch sizes, each cell measured twice —
// with the brute-force seed matcher (every event evaluated against every
// query) and with the query index (only candidates evaluated). Emits the
// full grid to BENCH_matching.json for machine consumption; run it from
// the repo root so the artifact lands there.
//
// The query mix mirrors a realistic subscription population: ~90%
// carry an indexable conjunct (equality on "group", a range window on
// "score", or a string prefix on "name") and ~10% are residual (no
// indexable conjunct: $exists / $ne) and must be evaluated on every
// event in both modes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "db/query.h"
#include "invalidb/matching_node.h"
#include "obs/trace.h"

namespace quaestor::bench {
namespace {

using invalidb::MatchingNode;
using invalidb::Notification;

constexpr int kGroups = 1000;
constexpr int kScoreDomain = 1000;
constexpr int kNames = 1000;

db::Query MakeQuery(Rng& rng, bool* residual) {
  const uint64_t roll = rng.NextUint64(10);
  std::string filter;
  *residual = false;
  if (roll < 5) {  // equality on group
    filter = "{\"group\":" + std::to_string(rng.NextUint64(kGroups)) + "}";
  } else if (roll < 8) {  // range window on score
    const uint64_t lo = rng.NextUint64(kScoreDomain - 5);
    filter = "{\"score\":{\"$gte\":" + std::to_string(lo) +
             ",\"$lt\":" + std::to_string(lo + 5) + "}}";
  } else if (roll < 9) {  // string prefix on name
    filter = "{\"name\":{\"$prefix\":\"u" +
             std::to_string(rng.NextUint64(kNames / 10)) + "\"}}";
  } else {  // residual: no indexable conjunct
    *residual = true;
    filter = rng.NextBool(0.5)
                 ? "{\"flags\":{\"$exists\":true}}"
                 : "{\"group\":{\"$ne\":" +
                       std::to_string(rng.NextUint64(kGroups)) + "}}";
  }
  return db::Query::ParseJson("posts", filter).value();
}

db::ChangeEvent MakeEvent(Rng& rng, int i) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = "d" + std::to_string(i % 4096);
  db::Object body;
  body["group"] = db::Value(static_cast<int64_t>(rng.NextUint64(kGroups)));
  body["score"] =
      db::Value(static_cast<int64_t>(rng.NextUint64(kScoreDomain)));
  body["name"] = db::Value("u" + std::to_string(rng.NextUint64(kNames)));
  ev.after.body = db::Value(std::move(body));
  ev.commit_time = i;
  return ev;
}

struct ModeResult {
  double events_per_s = 0;
  double checks_per_event = 0;
  uint64_t notifications = 0;
  size_t residual_queries = 0;
};

ModeResult RunMode(bool use_index, size_t num_queries,
                   const std::vector<db::ChangeEvent>& events,
                   obs::Tracer* tracer = nullptr) {
  // Same seed in both modes → identical query populations.
  Rng rng(0xBE7C * (num_queries + 1));
  MatchingNode node(use_index);
  node.set_tracer(tracer);
  for (size_t i = 0; i < num_queries; ++i) {
    bool residual = false;
    const db::Query q = MakeQuery(rng, &residual);
    node.AddQuery(q, std::to_string(i) + ":" + q.NormalizedKey(), {});
  }
  std::vector<Notification> out;
  const auto start = std::chrono::steady_clock::now();
  for (const db::ChangeEvent& ev : events) {
    out.clear();
    node.Match(ev, &out);
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(end - start).count();

  ModeResult r;
  r.events_per_s =
      seconds > 0 ? static_cast<double>(events.size()) / seconds : 0;
  r.checks_per_event =
      static_cast<double>(node.match_checks()) /
      static_cast<double>(events.size());
  r.notifications = node.emitted_notifications();
  r.residual_queries = node.ResidualQueryCount();
  return r;
}

void Run(const std::string& json_path) {
  PrintHeader("InvaliDB matching: brute-force seed vs query index");
  PrintNote("~90% indexable queries (eq/range/prefix), ~10% residual");
  PrintColumns("queries/updates",
               {"seed ev/s", "idx ev/s", "speedup", "seed chk/ev",
                "idx chk/ev", "resid%"});

  db::Array rows;
  const std::vector<size_t> query_counts = {1000, 5000, 10000};
  const std::vector<size_t> update_counts = {1000, 4000};
  for (size_t nq : query_counts) {
    for (size_t nu : update_counts) {
      Rng ev_rng(0xE0E0 + nu);
      std::vector<db::ChangeEvent> events;
      events.reserve(nu);
      for (size_t i = 0; i < nu; ++i) {
        events.push_back(MakeEvent(ev_rng, static_cast<int>(i)));
      }

      const ModeResult seed = RunMode(/*use_index=*/false, nq, events);
      const ModeResult indexed = RunMode(/*use_index=*/true, nq, events);
      const double speedup = seed.events_per_s > 0
                                 ? indexed.events_per_s / seed.events_per_s
                                 : 0;
      const double resid_pct =
          100.0 * static_cast<double>(indexed.residual_queries) /
          static_cast<double>(nq);
      PrintRow(std::to_string(nq) + "q / " + std::to_string(nu) + "u",
               {seed.events_per_s, indexed.events_per_s, speedup,
                seed.checks_per_event, indexed.checks_per_event, resid_pct});

      // Both modes must agree on what they notified about.
      if (seed.notifications != indexed.notifications) {
        PrintNote("MISMATCH: seed delivered " +
                  std::to_string(seed.notifications) + ", indexed " +
                  std::to_string(indexed.notifications));
      }

      db::Object row;
      row["queries"] = db::Value(static_cast<int64_t>(nq));
      row["updates"] = db::Value(static_cast<int64_t>(nu));
      row["residual_queries"] =
          db::Value(static_cast<int64_t>(indexed.residual_queries));
      row["seed_events_per_s"] = db::Value(seed.events_per_s);
      row["indexed_events_per_s"] = db::Value(indexed.events_per_s);
      row["speedup"] = db::Value(speedup);
      row["seed_checks_per_event"] = db::Value(seed.checks_per_event);
      row["indexed_checks_per_event"] =
          db::Value(indexed.checks_per_event);
      row["notifications"] =
          db::Value(static_cast<int64_t>(indexed.notifications));
      row["notifications_match"] =
          db::Value(seed.notifications == indexed.notifications);
      rows.push_back(db::Value(std::move(row)));
    }
  }

  // Tracer overhead: the per-request span instrumentation must cost
  // < 5% matching throughput (CI gates on this). Each trial times the
  // tracer-off and tracer-on node back to back on the same events, and
  // the reported overhead is the median of the per-trial ratios — the
  // pairing cancels load drift that would swamp the sub-percent signal
  // if the two modes were timed in separate passes.
  PrintHeader("Tracer overhead on indexed matching (10000q)");
  Rng overhead_rng(0xE0E0 + 1000);
  std::vector<db::ChangeEvent> overhead_events;
  overhead_events.reserve(1000);
  for (size_t i = 0; i < 1000; ++i) {
    overhead_events.push_back(MakeEvent(overhead_rng, static_cast<int>(i)));
  }

  // Identical query populations in both nodes (same seed).
  MatchingNode off_node(/*use_index=*/true);
  MatchingNode on_node(/*use_index=*/true);
  for (MatchingNode* node : {&off_node, &on_node}) {
    Rng rng(0xBE7C * (10000 + 1));
    for (size_t i = 0; i < 10000; ++i) {
      bool residual = false;
      const db::Query q = MakeQuery(rng, &residual);
      node->AddQuery(q, std::to_string(i) + ":" + q.NormalizedKey(), {});
    }
  }
  obs::TracerOptions topts;
  topts.deterministic_ids = false;  // wall-clock mode, as in production
  obs::Tracer tracer(SystemClock::Default(), topts);
  on_node.set_tracer(&tracer);

  // Short slices interleave the two modes finely, so a load spike lands
  // on both sides of a pair rather than skewing one whole pass.
  constexpr size_t kSliceEvents = 200;
  constexpr int kTrials = 21;
  const auto time_slice = [&overhead_events](MatchingNode* node,
                                             size_t offset) {
    std::vector<Notification> out;
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kSliceEvents; ++i) {
      out.clear();
      node->Match(overhead_events[(offset + i) % overhead_events.size()],
                  &out);
    }
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
  };

  std::vector<double> ratios;
  double sum_off = 0.0;
  double sum_on = 0.0;
  (void)time_slice(&off_node, 0);  // warm both nodes before timing
  (void)time_slice(&on_node, 0);
  tracer.Clear();
  for (int trial = 0; trial < kTrials; ++trial) {
    const size_t offset = static_cast<size_t>(trial) * kSliceEvents;
    const double t_off = time_slice(&off_node, offset);
    const double t_on = time_slice(&on_node, offset);
    tracer.Clear();  // keep the span buffer from growing across trials
    if (t_off > 0) ratios.push_back(t_on / t_off);
    sum_off += t_off;
    sum_on += t_on;
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double overhead_pct = (median_ratio - 1.0) * 100.0;
  const double total_events =
      static_cast<double>(kTrials) * static_cast<double>(kSliceEvents);
  const double best_off = sum_off > 0 ? total_events / sum_off : 0.0;
  const double best_on = sum_on > 0 ? total_events / sum_on : 0.0;
  PrintRow("tracer off/on ev/s", {best_off, best_on, overhead_pct});
  PrintNote("overhead% (median of paired trials) must stay <= 5 (CI-gated)");

  db::Object root;
  root["benchmark"] = db::Value("invalidb_matching");
  root["description"] = db::Value(
      "MatchingNode::Match throughput, brute-force seed vs query index");
  root["rows"] = db::Value(std::move(rows));
  root["tracer_events_per_s_off"] = db::Value(best_off);
  root["tracer_events_per_s_on"] = db::Value(best_on);
  root["tracer_overhead_pct"] = db::Value(overhead_pct);
  WriteJsonFile(json_path, db::Value(std::move(root)));

  obs::MetricsRegistry registry;
  registry.SetGauge("tracer_overhead_pct", overhead_pct);
  registry.SetGauge("matching_events_per_s", {{"tracer", "off"}}, best_off);
  registry.SetGauge("matching_events_per_s", {{"tracer", "on"}}, best_on);
  AccumulateObs(registry.Snapshot());
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  quaestor::bench::Run(argc > 1 ? argv[1] : "BENCH_matching.json");
  quaestor::bench::WriteObsSnapshot("invalidb_matching");
  return 0;
}
