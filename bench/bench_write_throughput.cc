// End-to-end write-path throughput over the message-queue transport:
// change events flow remote → reliable queue → worker → cluster matching →
// notifications → reliable queue → remote sink. Sweeps the batch size
// (1 = batching disabled, the per-event reference) against two update
// workloads over a 10,000-query indexed cluster and writes
// BENCH_write.json so CI can gate on the batched speedup.
//
// Notification counts must be identical across batch sizes for the same
// workload — batching changes the framing, never the matching output.
//
// Usage: bench_write_throughput [output.json] [events-per-config] [repeats]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "db/document.h"
#include "db/query.h"
#include "db/value.h"
#include "invalidb/transport.h"
#include "kv/kv_store.h"

namespace quaestor::bench {
namespace {

using invalidb::BatchOptions;
using invalidb::InvalidbOptions;
using invalidb::InvalidbRemote;
using invalidb::InvalidbWorker;
using invalidb::TransportOptions;

constexpr size_t kQueries = 10000;
constexpr size_t kMemberDocs = 2 * kQueries;  // 2 result members per query
const std::vector<size_t> kBatchSizes = {1, 8, 64, 256};

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

db::Value MemberBody(size_t i, int64_t views) {
  db::Object o;
  o["group"] = db::Value(static_cast<int64_t>(i % kQueries));
  o["views"] = db::Value(views);
  return db::Value(std::move(o));
}

db::Value StrayBody(size_t i, int64_t views) {
  db::Object o;
  // Groups >= kQueries match no registered query: the index probe comes
  // back empty and no notification is emitted.
  o["group"] = db::Value(static_cast<int64_t>(kQueries + (i % kQueries)));
  o["views"] = db::Value(views);
  return db::Value(std::move(o));
}

db::Document MemberDoc(size_t i, int64_t views, Micros now) {
  db::Document d;
  d.table = "posts";
  d.id = "post-" + std::to_string(i);
  d.version = 1;
  d.write_time = now;
  d.body = MemberBody(i, views);
  return d;
}

struct RunResult {
  double events_per_s = 0.0;
  uint64_t notifications = 0;
  uint64_t batches_sent = 0;
};

/// One closed-loop run: registers the query set, then pumps `num_events`
/// update events through the transport until every notification is back.
/// `match_rate` is the fraction of events that touch a query member.
RunResult Run(size_t batch, size_t num_events, double match_rate) {
  Clock* clock = SystemClock::Default();
  kv::KvStore kv(clock);

  TransportOptions topts;
  topts.reliable.enabled = true;
  topts.batching.enabled = batch > 1;
  topts.batching.max_batch = batch;
  // Size- and barrier-triggered flushes only: the pump cadence, not the
  // wall clock, decides when partial batches ship.
  topts.batching.flush_interval = kMicrosPerSecond;

  InvalidbOptions copts;
  copts.query_partitions = 2;
  copts.object_partitions = 2;
  copts.threaded = true;  // the real-throughput mode: per-node workers
  copts.batched_matching = batch > 1;

  uint64_t notifications = 0;
  InvalidbWorker worker(clock, &kv, "bench", copts, topts);
  InvalidbRemote remote(clock, &kv, "bench",
                        [&notifications](const invalidb::Notification&) {
                          notifications++;
                        },
                        topts);

  // Install the query set: one equality query per group, two members each.
  const Micros t0 = clock->NowMicros();
  for (size_t g = 0; g < kQueries; ++g) {
    auto q = db::Query::ParseJson("posts",
                                  "{\"group\":" + std::to_string(g) + "}");
    if (!q.ok()) std::abort();
    std::vector<db::Document> initial;
    initial.push_back(MemberDoc(g, 0, t0));
    initial.push_back(MemberDoc(g + kQueries, 0, t0));
    remote.RegisterQuery(q.value(), initial, invalidb::kEventsObjectList,
                         t0);
    if (g % 512 == 511) worker.ProcessPending();
  }
  worker.ProcessPending();
  remote.DrainNotifications();

  const auto pump = [&] {
    worker.ProcessPending();
    remote.DrainNotifications();
  };

  // Closed-loop event stream. A seeded LCG picks the victim doc; every
  // in-rate event updates a member in place (group unchanged → one
  // kChange notification), the rest touch stray groups (no candidates).
  const uint64_t rate_mod = match_rate >= 1.0
                                ? 1
                                : static_cast<uint64_t>(1.0 / match_rate);
  uint64_t lcg = 0x2545f4914f6cdd1dull;
  const double start = MonotonicSeconds();
  for (size_t n = 0; n < num_events; ++n) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const size_t i = static_cast<size_t>((lcg >> 17) % kMemberDocs);
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "posts";
    ev.after.id = "post-" + std::to_string(i);
    ev.after.version = 2 + n;
    ev.after.write_time = t0 + 1 + static_cast<Micros>(n);
    ev.after.body = (n % rate_mod == 0)
                        ? MemberBody(i, static_cast<int64_t>(n))
                        : StrayBody(i, static_cast<int64_t>(n));
    ev.commit_time = ev.after.write_time;
    remote.OnChange(ev);
    if (n % 1024 == 1023) pump();
  }
  remote.FlushChanges();
  // Drain: with the in-memory KV every round trip completes in one pump,
  // but loop until the reliable layer confirms everything (bounded).
  for (int round = 0; round < 64; ++round) {
    pump();
    if (remote.unacked_requests() == 0 &&
        remote.pending_notifications() == 0) {
      break;
    }
  }
  const double elapsed = MonotonicSeconds() - start;

  RunResult r;
  r.events_per_s = elapsed > 0.0 ? num_events / elapsed : 0.0;
  r.notifications = notifications;
  r.batches_sent = remote.stats().batches_sent;
  return r;
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  using namespace quaestor;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_write.json";
  const size_t num_events =
      argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 40000;
  // Throughput is scheduler-noise-bound on small machines; each config
  // reports its best trial (all trials must agree on notification counts).
  const int repeats = argc > 3 ? std::atoi(argv[3]) : 3;

  const unsigned hw = std::thread::hardware_concurrency();
  bench::PrintNote("hardware threads: " + std::to_string(hw));

  db::Object workloads;
  bool all_match = true;
  double min_speedup = 0.0;
  double max_speedup = 0.0;
  for (const double match_rate : {0.1, 1.0}) {
    const std::string wname =
        match_rate >= 1.0 ? "update_rate_1.0" : "update_rate_0.1";
    bench::PrintHeader("write throughput, " + wname + " (" +
                       std::to_string(num_events) + " events)");
    bench::PrintColumns("batch",
                        {"events/s", "notifs", "envelopes", "speedup"});
    db::Object per_batch;
    double base = 0.0;
    double at64 = 0.0;
    uint64_t expect_notifs = 0;
    bool counts_match = true;
    for (const size_t batch : bench::kBatchSizes) {
      auto r = bench::Run(batch, num_events, match_rate);
      for (int rep = 1; rep < repeats; ++rep) {
        const auto again = bench::Run(batch, num_events, match_rate);
        if (again.notifications != r.notifications) counts_match = false;
        if (again.events_per_s > r.events_per_s) r = again;
      }
      if (batch == 1) {
        base = r.events_per_s;
        expect_notifs = r.notifications;
      }
      if (batch == 64) at64 = r.events_per_s;
      if (r.notifications != expect_notifs) counts_match = false;
      const double speedup = base > 0.0 ? r.events_per_s / base : 0.0;
      per_batch["b" + std::to_string(batch)] = db::Value(r.events_per_s);
      bench::PrintRow("batch=" + std::to_string(batch),
                      {r.events_per_s, static_cast<double>(r.notifications),
                       static_cast<double>(r.batches_sent), speedup});
    }
    const double speedup64 = base > 0.0 ? at64 / base : 0.0;
    if (!counts_match) {
      bench::PrintNote("NOTIFICATION COUNT MISMATCH — batching changed "
                       "matching output");
      all_match = false;
    }
    bench::PrintNote("speedup batch64 vs batch1: " +
                     std::to_string(speedup64));
    db::Object w;
    w["events_per_s"] = db::Value(std::move(per_batch));
    w["notifications"] = db::Value(static_cast<int64_t>(expect_notifs));
    w["notifications_match"] = db::Value(counts_match);
    w["speedup_64_vs_1"] = db::Value(speedup64);
    workloads[wname] = db::Value(std::move(w));
    if (min_speedup == 0.0 || speedup64 < min_speedup) {
      min_speedup = speedup64;
    }
    if (speedup64 > max_speedup) max_speedup = speedup64;
  }

  db::Object root;
  root["benchmark"] = db::Value("write_throughput");
  root["hardware_threads"] = db::Value(static_cast<int64_t>(hw));
  root["events_per_config"] = db::Value(static_cast<int64_t>(num_events));
  db::Array batch_axis;
  for (size_t b : bench::kBatchSizes) {
    batch_axis.push_back(db::Value(static_cast<int64_t>(b)));
  }
  root["batch_sizes"] = db::Value(std::move(batch_axis));
  root["workloads"] = db::Value(std::move(workloads));
  root["notifications_match"] = db::Value(all_match);
  // Headline: the ingest-bound workload's speedup; _min is the worst
  // workload (the notification-heavy one pays the return path's
  // byte-proportional cost in both modes) and is what CI gates on.
  root["speedup_64_vs_1"] = db::Value(max_speedup);
  root["speedup_64_vs_1_min"] = db::Value(min_speedup);
  bench::WriteJsonFile(out_path, db::Value(std::move(root)));
  return all_match ? 0 : 1;
}
