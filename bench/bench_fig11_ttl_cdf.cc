// Regenerates Figure 11: the cumulative distribution of Quaestor's
// estimated query TTLs against the true TTLs (time until the next
// invalidation), at a 1% write rate.
//
// Expected shape: the two CDFs track each other over the bulk of the
// distribution, with larger errors on the unpredictable long tail.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

std::vector<double> CdfAt(const std::vector<double>& sorted,
                          const std::vector<double>& points) {
  std::vector<double> out;
  for (double p : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), p);
    out.push_back(sorted.empty()
                      ? 0.0
                      : static_cast<double>(it - sorted.begin()) /
                            static_cast<double>(sorted.size()));
  }
  return out;
}

void Run() {
  workload::WorkloadOptions w = DefaultWorkload();
  w.update_weight = 0.01;
  w.read_weight = 0.299;
  w.query_weight = 0.69;  // query-heavy to collect many TTL samples

  sim::SimOptions s = DefaultSim();
  s.duration = SecondsToMicros(120.0);
  s.warmup = SecondsToMicros(10.0);
  s.num_client_instances = 10;
  s.connections_per_instance = 12;
  // Shorter TTL ceiling so expirations and invalidations both occur
  // within the (scaled-down) experiment duration.
  s.server_options.ttl_options.max_ttl = SecondsToMicros(60.0);

  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);

  std::vector<double> estimated = r.estimated_ttls_s;
  std::vector<double> true_ttls = r.true_ttls_s;
  std::sort(estimated.begin(), estimated.end());
  std::sort(true_ttls.begin(), true_ttls.end());

  const std::vector<double> points = {1, 2, 5, 10, 20, 30, 45, 60};
  std::vector<std::string> cols;
  for (double p : points) {
    cols.push_back(std::to_string(static_cast<int>(p)) + "s");
  }

  PrintHeader("Figure 11: CDF of estimated vs true query TTLs");
  PrintRow("samples (est / true)",
           {static_cast<double>(estimated.size()),
            static_cast<double>(true_ttls.size())});
  PrintColumns("series \\ TTL", cols);
  PrintRow("Quaestor TTLs", CdfAt(estimated, points));
  PrintRow("True TTLs", CdfAt(true_ttls, points));

  // Distribution summary.
  auto quantile = [](const std::vector<double>& v, double q) {
    if (v.empty()) return 0.0;
    return v[std::min(v.size() - 1,
                      static_cast<size_t>(q * static_cast<double>(v.size())))];
  };
  PrintHeader("TTL distribution summary (seconds)");
  PrintColumns("series", {"p25", "p50", "p75", "p90"});
  PrintRow("Quaestor TTLs",
           {quantile(estimated, 0.25), quantile(estimated, 0.5),
            quantile(estimated, 0.75), quantile(estimated, 0.9)});
  PrintRow("True TTLs",
           {quantile(true_ttls, 0.25), quantile(true_ttls, 0.5),
            quantile(true_ttls, 0.75), quantile(true_ttls, 0.9)});
  PrintNote("expected: similar distributions for the bulk; tail diverges");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig11_ttl_cdf");
  return 0;
}
