// Regenerates Figures 8d/8e/8f: the effect of the number of distinct
// queries on request latency and cache hit rates, plus the query latency
// histogram at high load.
//
// Paper setting: 1,000–10,000 distinct queries over 10 tables; here 1/10
// scale (100–1,000 queries over 10 tables × 1,000 documents). Expected
// shapes: query latency grows with query count (client hit rate falls),
// read latency *improves* (more records covered by cached results); CDN
// hit rates stay comparatively stable.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void Run() {
  const std::vector<size_t> queries_per_table = {10, 20, 40, 70, 100};

  std::vector<double> read_lat;
  std::vector<double> query_lat;
  std::vector<double> client_hit_q;
  std::vector<double> client_hit_r;
  std::vector<double> cdn_hit_q;
  std::vector<double> cdn_hit_r;

  for (size_t qpt : queries_per_table) {
    workload::WorkloadOptions w = DefaultWorkload();
    w.queries_per_table = qpt;
    sim::SimOptions s = DefaultSim();
    s.num_client_instances = 10;
    s.connections_per_instance = 12;
    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    AccumulateObs(r.metrics);
    read_lat.push_back(r.reads.latency.Mean());
    query_lat.push_back(r.queries.latency.Mean());
    client_hit_q.push_back(r.queries.ClientHitRate());
    client_hit_r.push_back(r.reads.ClientHitRate());
    cdn_hit_q.push_back(r.queries.CdnHitRate());
    cdn_hit_r.push_back(r.reads.CdnHitRate());
  }

  std::vector<std::string> cols;
  for (size_t q : queries_per_table) {
    cols.push_back(std::to_string(q * 10));  // total distinct queries
  }

  PrintHeader("Figure 8d: mean request latency (ms) vs total query count");
  PrintColumns("series \\ query count", cols);
  PrintRow("Queries", query_lat);
  PrintRow("Reads", read_lat);

  PrintHeader("Figure 8e: cache hit rates vs total query count");
  PrintColumns("series \\ query count", cols);
  PrintRow("Client/Qrs", client_hit_q);
  PrintRow("Client/Reads", client_hit_r);
  PrintRow("CDN/Qrs", cdn_hit_q);
  PrintRow("CDN/Reads", cdn_hit_r);

  // Figure 8f: latency distribution of queries at maximum load.
  sim::SimOptions s = DefaultSim();
  s.num_client_instances = 10;
  s.connections_per_instance = 30;
  sim::Simulation simulation(DefaultWorkload(), s);
  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);
  const double total = static_cast<double>(r.queries.count);
  PrintHeader("Figure 8f: query latency histogram (share of requests)");
  PrintRow("Client cache hits (~0 ms)",
           {static_cast<double>(r.queries.client_hits) / total});
  PrintRow("CDN cache hits (~4 ms)",
           {static_cast<double>(r.queries.cdn_hits) / total});
  PrintRow("Cache misses (~150 ms)",
           {static_cast<double>(r.queries.origin) / total});
  PrintRow("p50 latency (ms)", {r.queries.latency.Median()});
  PrintRow("p99 latency (ms)", {r.queries.latency.P99()});
  PrintNote("expected: client hits dominate, misses are the thin tail");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig8def_querycount");
  return 0;
}
