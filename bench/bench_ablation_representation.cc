// Ablation A2: query result representation (§4.2 "Representing Query
// Results") — object-lists versus id-lists versus the cost-based auto
// decision, on two workload profiles:
//   * state-churn  — updates mostly change document state in place
//                    (object-lists get invalidated on every change;
//                    id-lists survive because membership is stable);
//   * member-churn — updates mostly move documents between groups (both
//                    representations are invalidated; id-lists pay the
//                    extra assembly round-trips for nothing).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void RunProfile(const std::string& profile_name,
                double membership_change_fraction) {
  PrintHeader("Ablation A2 [" + profile_name + "]");
  PrintColumns("policy",
               {"q lat ms", "q hit rate", "invalidations", "purges"});

  struct Policy {
    std::string name;
    core::RepresentationPolicy representation;
    bool http2;
  };
  const std::vector<Policy> policies = {
      {"object-list", core::RepresentationPolicy::kAlwaysObjectList, false},
      {"id-list", core::RepresentationPolicy::kAlwaysIdList, false},
      {"id-list + HTTP/2 push", core::RepresentationPolicy::kAlwaysIdList,
       true},
      {"auto (cost-based)", core::RepresentationPolicy::kAuto, false},
  };

  for (const Policy& policy : policies) {
    workload::WorkloadOptions w = DefaultWorkload();
    w.update_weight = 0.05;
    w.read_weight = 0.475;
    w.query_weight = 0.475;
    w.membership_change_fraction = membership_change_fraction;

    sim::SimOptions s = DefaultSim();
    s.duration = SecondsToMicros(40.0);
    s.warmup = SecondsToMicros(8.0);
    s.server_options.representation = policy.representation;
    s.client_options.http2 = policy.http2;

    sim::Simulation simulation(w, s);
    sim::SimResults r = simulation.Run();
    AccumulateObs(r.metrics);
    PrintRow(policy.name,
             {r.queries.latency.Mean(), r.queries.ClientHitRate(),
              static_cast<double>(r.server_stats.query_invalidations),
              static_cast<double>(r.cdn_stats.purges)});
  }
}

void Run() {
  RunProfile("state-churn: 90% in-place updates", 0.1);
  RunProfile("member-churn: 90% membership moves", 0.9);
  PrintNote("expected: id-lists dodge invalidations under state churn but");
  PrintNote("pay assembly latency; object-lists win under member churn.");
  PrintNote("the auto policy cuts invalidation load like id-lists while");
  PrintNote("bounding assembly cost; a statically well-chosen");
  PrintNote("representation can still beat it on pure workloads.");
  PrintNote("HTTP/2 push removes the id-list assembly penalty entirely —");
  PrintNote("the paper's §7 claim that push makes id-lists strictly best");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("ablation_representation");
  return 0;
}
