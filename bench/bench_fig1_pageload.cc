// Regenerates Figure 1 of the paper: mean first-load latency of a simple
// data-driven news website for different Backend-as-a-Service providers,
// loaded from four geographic regions with a cold browser cache and a
// warm CDN cache.
//
// Substitution: the original figure measures live commercial services
// (Firebase, Parse, Kinvey, Azure Mobile Services) against Baqend. Those
// services are modelled here by their caching capability — the figure's
// point is round-trips × regional RTT:
//   * Quaestor/Baqend serves all resources from the nearest CDN edge
//     (warm CDN), so page-load latency is flat across regions.
//   * Conventional BaaS providers answer every dynamic request from their
//     home region, so latency grows with geographic distance.
// Provider "processing overhead" constants roughly rank the providers as
// measured in the paper (Parse/Azure slower backends than Firebase).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

struct Region {
  std::string name;
  double rtt_to_us_east_ms;  // backend home region of the BaaS providers
  double rtt_to_cdn_edge_ms; // nearest CDN edge
};

struct Provider {
  std::string name;
  bool uses_cdn;                 // can serve dynamic data from edge caches
  double per_request_backend_ms; // origin processing per dynamic request
};

/// The page model from the paper's Figure 1 experiment: a simple news
/// site rendered in the client from a BaaS — ~25 dynamic data requests
/// (records + queries) fetched over 6 parallel browser connections, after
/// an initial connection setup round-trip.
struct PageModel {
  // "As of 2017, loading an average website requires more than 100 HTTP
  // requests" (§1).
  int dynamic_requests = 100;
  int parallel_connections = 6;
  double dns_and_tls_rtts = 3.0;  // DNS + TCP + TLS handshakes
};

double PageLoadMs(const PageModel& page, const Region& region,
                  const Provider& provider) {
  const double rtt = provider.uses_cdn ? region.rtt_to_cdn_edge_ms
                                       : region.rtt_to_us_east_ms;
  const double setup = page.dns_and_tls_rtts * rtt;
  const double rounds = std::ceil(static_cast<double>(page.dynamic_requests) /
                                  page.parallel_connections);
  const double fetches =
      rounds * (rtt + (provider.uses_cdn ? 1.0  // edge serve time
                                         : provider.per_request_backend_ms));
  return setup + fetches;
}

void Run() {
  const std::vector<Region> regions = {
      {"Frankfurt", 95.0, 5.0},
      {"California", 65.0, 6.0},
      {"Sydney", 205.0, 9.0},
      {"Tokyo", 160.0, 7.0},
  };
  const std::vector<Provider> providers = {
      {"Baqend/Quaestor", true, 5.0},
      {"Kinvey", false, 45.0},
      {"Firebase", false, 25.0},
      {"Azure", false, 90.0},
      {"Parse", false, 140.0},
  };
  PageModel page;

  PrintHeader("Figure 1: mean first load latency (s) per provider/region");
  PrintNote("cold browser cache, warm CDN; commercial providers modelled");
  std::vector<std::string> cols;
  for (const Region& r : regions) cols.push_back(r.name);
  PrintColumns("provider \\ region", cols);
  obs::MetricsRegistry registry;
  for (const Provider& p : providers) {
    std::vector<double> row;
    for (const Region& r : regions) {
      const double ms = PageLoadMs(page, r, p);
      row.push_back(ms / 1000.0);
      registry.Count("pageload_models_evaluated");
      registry.SetGauge("pageload_ms",
                        {{"provider", p.name}, {"region", r.name}}, ms);
    }
    PrintRow(p.name, row);
  }
  AccumulateObs(registry.Snapshot());
  PrintNote("expected shape: Quaestor flat & sub-second everywhere;");
  PrintNote("others grow with distance to the backend region (paper: 2-8s)");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig1_pageload");
  return 0;
}
