// In-process vs real-socket serving overhead: the same origin fetch and
// write operations measured through a direct function call and through
// the src/net loopback stack (HTTP/1.1 over 127.0.0.1). Reports ops/s
// and p50/p99 latency per path and writes BENCH_net.json.
//
// Usage: bench_net_loopback [output.json] [ops-per-path]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "db/value.h"
#include "net/event_loop.h"
#include "net/http_client.h"
#include "net/service.h"
#include "webcache/http.h"

namespace quaestor::bench {
namespace {

db::Value MakeDoc(int i) {
  db::Object o;
  o["title"] = db::Value("Post " + std::to_string(i));
  o["group"] = db::Value(static_cast<int64_t>(i % 100));
  o["body"] = db::Value(std::string(200, 'x'));
  return db::Value(std::move(o));
}

struct PathResult {
  double ops_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double Percentile(std::vector<int64_t>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = std::min(
      samples->size() - 1,
      static_cast<size_t>(p * static_cast<double>(samples->size() - 1)));
  return static_cast<double>((*samples)[idx]);
}

/// Runs `op` n times, timing each call with the monotonic clock.
template <typename Op>
PathResult Measure(int n, Op&& op) {
  std::vector<int64_t> lat;
  lat.reserve(static_cast<size_t>(n));
  const int64_t start = net::EventLoop::MonotonicNow();
  for (int i = 0; i < n; ++i) {
    const int64_t t0 = net::EventLoop::MonotonicNow();
    op(i);
    lat.push_back(net::EventLoop::MonotonicNow() - t0);
  }
  const int64_t total = net::EventLoop::MonotonicNow() - start;
  PathResult r;
  r.ops_per_sec = total > 0 ? static_cast<double>(n) * 1e6 /
                                  static_cast<double>(total)
                            : 0.0;
  r.p50_us = Percentile(&lat, 0.50);
  r.p99_us = Percentile(&lat, 0.99);
  return r;
}

db::Value ToValue(const PathResult& r) {
  db::Object o;
  o["ops_per_sec"] = db::Value(r.ops_per_sec);
  o["p50_us"] = db::Value(r.p50_us);
  o["p99_us"] = db::Value(r.p99_us);
  return db::Value(std::move(o));
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  using namespace quaestor;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_net.json";
  const int ops = argc > 2 ? std::atoi(argv[2]) : 4000;
  constexpr int kKeys = 1024;

  SystemClock* clock = SystemClock::Default();
  db::Database db(clock);
  core::QuaestorServer server(clock, &db, core::ServerOptions());
  for (int i = 0; i < kKeys; ++i) {
    server.Insert("posts", "p" + std::to_string(i), bench::MakeDoc(i));
  }

  bench::PrintHeader("net loopback overhead (" + std::to_string(ops) +
                     " ops per path)");

  // --- In-process: direct webcache::Origin calls on the server. -----------
  const bench::PathResult local_read = bench::Measure(ops, [&](int i) {
    webcache::HttpRequest req;
    req.key = "posts/p" + std::to_string(i % kKeys);
    (void)server.Fetch(req);
  });
  const bench::PathResult local_write = bench::Measure(ops, [&](int i) {
    server.Insert("bench_local", "w" + std::to_string(i), bench::MakeDoc(i));
  });

  // --- Loopback: the same operations through the socket stack. ------------
  net::NetOptions nopts;
  nopts.enabled = true;
  net::NetServer net(clock, &server, nopts);
  if (!net.Start()) {
    std::fprintf(stderr, "failed to start loopback server\n");
    return 1;
  }
  net::HttpBackend backend(net.http_port());
  const bench::PathResult loop_read = bench::Measure(ops, [&](int i) {
    webcache::HttpRequest req;
    req.key = "posts/p" + std::to_string(i % kKeys);
    (void)backend.Fetch(req);
  });
  const bench::PathResult loop_write = bench::Measure(ops, [&](int i) {
    backend.Insert("", "bench_loop", "w" + std::to_string(i),
                   bench::MakeDoc(i), RequestContext());
  });
  net.Stop();

  std::printf("  %-18s %12s %10s %10s\n", "path", "ops/s", "p50 us", "p99 us");
  const auto row = [](const char* name, const bench::PathResult& r) {
    std::printf("  %-18s %12.0f %10.1f %10.1f\n", name, r.ops_per_sec,
                r.p50_us, r.p99_us);
  };
  row("read  in-process", local_read);
  row("read  loopback", loop_read);
  row("write in-process", local_write);
  row("write loopback", loop_write);

  db::Object root;
  root["benchmark"] = db::Value("net_loopback");
  root["ops_per_path"] = db::Value(static_cast<int64_t>(ops));
  db::Object read;
  read["inprocess"] = bench::ToValue(local_read);
  read["loopback"] = bench::ToValue(loop_read);
  root["read"] = db::Value(std::move(read));
  db::Object write;
  write["inprocess"] = bench::ToValue(local_write);
  write["loopback"] = bench::ToValue(loop_write);
  root["write"] = db::Value(std::move(write));
  bench::WriteJsonFile(out_path, db::Value(std::move(root)));
  return 0;
}
