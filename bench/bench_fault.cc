// Fault experiment: the invalidation pipeline silently loses 1% of the
// change stream throughout the run (a lossy broker, no retransmit) and
// suffers a hard 20 s outage mid-run. Two variants:
//
//   normal    degradation disabled — during the outage the caches keep
//             serving long-TTL copies whose invalidations never arrive,
//             so stale ages stretch toward the outage length.
//   degraded  degradation enabled — the server notices the outage, caps
//             every issued TTL (pure expiration caching), and on
//             recovery rebuilds the matchers and flags all registered
//             queries; stale ages stay bounded by cap + Δ.
//
// Writes BENCH_fault.json with stale rates and stale-age p99/max for
// both variants.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

struct VariantResult {
  double read_stale_rate = 0.0;
  double query_stale_rate = 0.0;
  double read_stale_age_p99_ms = 0.0;
  double query_stale_age_p99_ms = 0.0;
  double query_stale_age_max_ms = 0.0;
  /// Stale ages of serves during the outage + one grace budget — the
  /// window degraded caching is supposed to bound. Whole-run tails also
  /// contain staleness from the 1% background loss, which strikes while
  /// the pipeline looks healthy and only reliable transport can remove.
  double outage_stale_age_p99_ms = 0.0;
  double outage_stale_age_max_ms = 0.0;
  double throughput_ops_s = 0.0;
  uint64_t change_events_dropped = 0;
  uint64_t degraded_reads = 0;
};

VariantResult RunVariant(bool degraded) {
  workload::WorkloadOptions w;
  w.num_tables = 1;
  w.docs_per_table = 500;
  w.queries_per_table = 40;
  w.docs_per_query = 10;
  // Flat-ish popularity: per-query invalidations are rare, so TTL
  // estimates grow well past the floor — which is what makes a *lost*
  // invalidation expensive without degradation.
  w.zipf_theta = 0.3;
  w.read_weight = 0.595;
  w.query_weight = 0.40;
  // Low write rate (~2 writes/s with the think time below): per-query
  // invalidations are ~20 s apart, so TTL estimates grow well past the
  // floor. That is what makes a lost invalidation expensive — the copy
  // stays stale until its long TTL runs out, not until the next write.
  w.update_weight = 0.005;

  sim::SimOptions s = DefaultSim();
  s.num_client_instances = 20;
  s.connections_per_instance = 5;
  s.duration = SecondsToMicros(60.0);
  s.warmup = SecondsToMicros(5.0);
  s.seed = 42;
  s.think_time = MillisToMicros(250.0);  // human pace, ~400 ops/s total

  // 1% of committed changes never reach InvaliDB.
  s.server_options.fault_change_loss_rate = 0.01;
  s.server_options.fault_seed = 0x5eed;
  s.server_options.degradation.enabled = degraded;
  s.server_options.degradation.degraded_ttl_cap = SecondsToMicros(1.0);

  sim::Simulation simulation(w, s);

  // Hard outage from t=20s to t=40s. Driven from the op-observer hook so
  // the flip happens inside the simulated timeline; with degradation
  // enabled the server reacts on its own (capped TTLs, recovery rebuild).
  const Micros outage_start = SecondsToMicros(20.0);
  const Micros outage_end = SecondsToMicros(40.0);
  const Micros grace_end = outage_end + SecondsToMicros(5.0);
  bool down = false;
  Histogram outage_stale_age_ms;
  simulation.AddOpObserver([&](const sim::OpObservation& obs) {
    const Micros now = simulation.clock().NowMicros();
    if (!down && now >= outage_start && now < outage_end) {
      down = true;
      simulation.server().SetPipelineDown(true);
    } else if (down && now >= outage_end) {
      down = false;
      simulation.server().SetPipelineDown(false);
    }
    if (obs.stale && now >= outage_start && now < grace_end) {
      outage_stale_age_ms.Record(obs.stale_age_ms);
    }
  });

  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);

  VariantResult v;
  v.read_stale_rate = r.reads.StaleRate();
  v.query_stale_rate = r.queries.StaleRate();
  v.read_stale_age_p99_ms = r.reads.stale_age_ms.P99();
  v.query_stale_age_p99_ms = r.queries.stale_age_ms.P99();
  v.query_stale_age_max_ms = r.queries.stale_age_ms.max();
  v.outage_stale_age_p99_ms = outage_stale_age_ms.P99();
  v.outage_stale_age_max_ms = outage_stale_age_ms.max();
  v.throughput_ops_s = r.throughput_ops_s;
  v.change_events_dropped = r.server_stats.change_events_dropped;
  v.degraded_reads = r.server_stats.degraded_reads;
  return v;
}

db::Value ToJson(const VariantResult& v) {
  db::Object o;
  o["read_stale_rate"] = db::Value(v.read_stale_rate);
  o["query_stale_rate"] = db::Value(v.query_stale_rate);
  o["read_stale_age_p99_ms"] = db::Value(v.read_stale_age_p99_ms);
  o["query_stale_age_p99_ms"] = db::Value(v.query_stale_age_p99_ms);
  o["query_stale_age_max_ms"] = db::Value(v.query_stale_age_max_ms);
  o["outage_stale_age_p99_ms"] = db::Value(v.outage_stale_age_p99_ms);
  o["outage_stale_age_max_ms"] = db::Value(v.outage_stale_age_max_ms);
  o["throughput_ops_s"] = db::Value(v.throughput_ops_s);
  o["change_events_dropped"] =
      db::Value(static_cast<int64_t>(v.change_events_dropped));
  o["degraded_reads"] = db::Value(static_cast<int64_t>(v.degraded_reads));
  return db::Value(std::move(o));
}

void Run(const std::string& json_path) {
  PrintHeader("Lossy invalidation pipeline (1% change loss)");

  const VariantResult normal = RunVariant(/*degraded=*/false);
  const VariantResult capped = RunVariant(/*degraded=*/true);

  PrintRow("stale query rate (normal / degraded)",
           {normal.query_stale_rate, capped.query_stale_rate});
  PrintRow("stale read rate (normal / degraded)",
           {normal.read_stale_rate, capped.read_stale_rate});
  PrintRow("query stale-age p99 ms (normal / degraded)",
           {normal.query_stale_age_p99_ms, capped.query_stale_age_p99_ms});
  PrintRow("query stale-age max ms (normal / degraded)",
           {normal.query_stale_age_max_ms, capped.query_stale_age_max_ms});
  PrintRow("outage-window stale-age p99 ms (normal / degraded)",
           {normal.outage_stale_age_p99_ms, capped.outage_stale_age_p99_ms});
  PrintRow("outage-window stale-age max ms (normal / degraded)",
           {normal.outage_stale_age_max_ms, capped.outage_stale_age_max_ms});
  PrintRow("read stale-age p99 ms (normal / degraded)",
           {normal.read_stale_age_p99_ms, capped.read_stale_age_p99_ms});
  PrintRow("changes dropped (normal / degraded)",
           {static_cast<double>(normal.change_events_dropped),
            static_cast<double>(capped.change_events_dropped)});
  PrintNote("expected: the TTL cap bounds how long a lost invalidation");
  PrintNote("can keep serving stale data, at the cost of extra origin load");

  db::Object root;
  root["benchmark"] = db::Value("fault");
  root["description"] = db::Value(
      "staleness under 1% invalidation loss, with and without "
      "TTL-degraded caching");
  root["change_loss_rate"] = db::Value(0.01);
  root["degraded_ttl_cap_s"] = db::Value(1.0);
  root["normal"] = ToJson(normal);
  root["degraded"] = ToJson(capped);
  WriteJsonFile(json_path, db::Value(std::move(root)));
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  quaestor::bench::Run(argc > 1 ? argv[1] : "BENCH_fault.json");
  quaestor::bench::WriteObsSnapshot("fault");
  return 0;
}
