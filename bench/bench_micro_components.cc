// Component micro-benchmarks (google-benchmark): the hot paths that sit
// on Quaestor's critical request path — Bloom filter probes, query
// normalization (cache-key derivation), predicate matching (InvaliDB's
// per-update work), and document JSON (de)serialization.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "db/query.h"
#include "db/table.h"
#include "db/value.h"
#include "ebf/bloom_filter.h"
#include "invalidb/matching_node.h"

namespace quaestor {
namespace {

void BM_BloomAdd(benchmark::State& state) {
  ebf::BloomFilter bf;
  size_t i = 0;
  for (auto _ : state) {
    bf.Add("key-" + std::to_string(i++ % 100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomContains(benchmark::State& state) {
  ebf::BloomFilter bf;
  for (int i = 0; i < 20000; ++i) bf.Add("key-" + std::to_string(i));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bf.MaybeContains("key-" + std::to_string(i++ % 40000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomContains);

void BM_CountingBloomAddRemove(benchmark::State& state) {
  ebf::CountingBloomFilter cbf;
  size_t i = 0;
  for (auto _ : state) {
    const std::string key = "key-" + std::to_string(i++ % 10000);
    cbf.Add(key);
    cbf.Remove(key);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CountingBloomAddRemove);

void BM_QueryNormalize(benchmark::State& state) {
  auto q = db::Query::ParseJson(
      "posts",
      R"({"tags":{"$contains":"example"},"views":{"$gte":10,"$lt":500},
          "$or":[{"author":"ada"},{"author":"grace"}]})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->NormalizedKey());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryNormalize);

void BM_PredicateMatch(benchmark::State& state) {
  auto q = db::Query::ParseJson(
      "posts", R"({"tags":{"$contains":"example"},"views":{"$gte":10}})");
  auto doc = db::Value::FromJson(
      R"({"tags":["example","music"],"views":42,"title":"hello"})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->Matches(doc.value()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredicateMatch);

void BM_MatchingNodeSweep(benchmark::State& state) {
  // One update matched against `range(0)` installed queries — the unit of
  // work behind Figure 12's per-node throughput.
  invalidb::MatchingNode node;
  const int num_queries = static_cast<int>(state.range(0));
  for (int g = 0; g < num_queries; ++g) {
    auto q = db::Query::ParseJson("posts",
                                  "{\"group\":" + std::to_string(g) + "}");
    node.AddQuery(q.value(), q->NormalizedKey(), {});
  }
  db::ChangeEvent ev;
  ev.after.table = "posts";
  ev.after.id = "d1";
  ev.after.body = db::Value::FromJson(R"({"group":3,"views":1})").value();
  std::vector<invalidb::Notification> out;
  for (auto _ : state) {
    out.clear();
    node.Match(ev, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_queries));
}
BENCHMARK(BM_MatchingNodeSweep)->Arg(100)->Arg(500)->Arg(2000);

void BM_TableExecuteScan(benchmark::State& state) {
  db::Table table("t");
  const int docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) {
    (void)table.Insert(
        "d" + std::to_string(i),
        db::Value::FromJson(
            ("{\"group\":" + std::to_string(i % 100) + "}").c_str())
            .value(),
        1);
  }
  auto q = db::Query::ParseJson("t", R"({"group":7})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Execute(q.value()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableExecuteScan)->Arg(1000)->Arg(10000);

void BM_TableExecuteIndexed(benchmark::State& state) {
  db::Table table("t");
  const int docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) {
    (void)table.Insert(
        "d" + std::to_string(i),
        db::Value::FromJson(
            ("{\"group\":" + std::to_string(i % 100) + "}").c_str())
            .value(),
        1);
  }
  table.CreateIndex("group");
  auto q = db::Query::ParseJson("t", R"({"group":7})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Execute(q.value()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableExecuteIndexed)->Arg(1000)->Arg(10000);

void BM_JsonSerialize(benchmark::State& state) {
  auto doc = db::Value::FromJson(
      R"({"group":7,"title":"Post 123","author":"author42",
          "views":10,"tags":["tag1","tag2"],"nested":{"a":[1,2,3]}})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc->ToJson());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonSerialize);

void BM_JsonParse(benchmark::State& state) {
  const std::string json =
      R"({"group":7,"title":"Post 123","author":"author42",)"
      R"("views":10,"tags":["tag1","tag2"],"nested":{"a":[1,2,3]}})";
  for (auto _ : state) {
    auto v = db::Value::FromJson(json);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JsonParse);

}  // namespace
}  // namespace quaestor

BENCHMARK_MAIN();
