// Component micro-benchmarks (google-benchmark): the hot paths that sit
// on Quaestor's critical request path — Bloom filter probes, query
// normalization (cache-key derivation), predicate matching (InvaliDB's
// per-update work), and document JSON (de)serialization.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "db/query.h"
#include "db/table.h"
#include "db/value.h"
#include "ebf/bloom_filter.h"
#include "invalidb/matching_node.h"
#include "invalidb/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace quaestor {
namespace {

/// The binary's metrics registry: every benchmark folds its processed
/// items in, and main() writes the snapshot as BENCH_obs.json.
obs::MetricsRegistry& Registry() {
  static obs::MetricsRegistry registry;
  return registry;
}

void NoteItems(benchmark::State& state, int64_t items) {
  state.SetItemsProcessed(items);
  Registry().Count("bench_items_processed", static_cast<uint64_t>(items));
}

void BM_BloomAdd(benchmark::State& state) {
  ebf::BloomFilter bf;
  size_t i = 0;
  for (auto _ : state) {
    bf.Add("key-" + std::to_string(i++ % 100000));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomContains(benchmark::State& state) {
  ebf::BloomFilter bf;
  for (int i = 0; i < 20000; ++i) bf.Add("key-" + std::to_string(i));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bf.MaybeContains("key-" + std::to_string(i++ % 40000)));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_BloomContains);

void BM_CountingBloomAddRemove(benchmark::State& state) {
  ebf::CountingBloomFilter cbf;
  size_t i = 0;
  for (auto _ : state) {
    const std::string key = "key-" + std::to_string(i++ % 10000);
    cbf.Add(key);
    cbf.Remove(key);
  }
  NoteItems(state, state.iterations() * 2);
}
BENCHMARK(BM_CountingBloomAddRemove);

void BM_QueryNormalize(benchmark::State& state) {
  auto q = db::Query::ParseJson(
      "posts",
      R"({"tags":{"$contains":"example"},"views":{"$gte":10,"$lt":500},
          "$or":[{"author":"ada"},{"author":"grace"}]})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->NormalizedKey());
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_QueryNormalize);

void BM_PredicateMatch(benchmark::State& state) {
  auto q = db::Query::ParseJson(
      "posts", R"({"tags":{"$contains":"example"},"views":{"$gte":10}})");
  auto doc = db::Value::FromJson(
      R"({"tags":["example","music"],"views":42,"title":"hello"})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(q->Matches(doc.value()));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_PredicateMatch);

void BM_MatchingNodeSweep(benchmark::State& state) {
  // One update matched against `range(0)` installed queries — the unit of
  // work behind Figure 12's per-node throughput.
  invalidb::MatchingNode node;
  const int num_queries = static_cast<int>(state.range(0));
  for (int g = 0; g < num_queries; ++g) {
    auto q = db::Query::ParseJson("posts",
                                  "{\"group\":" + std::to_string(g) + "}");
    node.AddQuery(q.value(), q->NormalizedKey(), {});
  }
  db::ChangeEvent ev;
  ev.after.table = "posts";
  ev.after.id = "d1";
  ev.after.body = db::Value::FromJson(R"({"group":3,"views":1})").value();
  std::vector<invalidb::Notification> out;
  for (auto _ : state) {
    out.clear();
    node.Match(ev, &out);
    benchmark::DoNotOptimize(out);
  }
  NoteItems(state, state.iterations() *
                          static_cast<int64_t>(num_queries));
}
BENCHMARK(BM_MatchingNodeSweep)->Arg(100)->Arg(500)->Arg(2000);

void BM_TableExecuteScan(benchmark::State& state) {
  db::Table table("t");
  const int docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) {
    (void)table.Insert(
        "d" + std::to_string(i),
        db::Value::FromJson(
            ("{\"group\":" + std::to_string(i % 100) + "}").c_str())
            .value(),
        1);
  }
  auto q = db::Query::ParseJson("t", R"({"group":7})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Execute(q.value()));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TableExecuteScan)->Arg(1000)->Arg(10000);

void BM_TableExecuteIndexed(benchmark::State& state) {
  db::Table table("t");
  const int docs = static_cast<int>(state.range(0));
  for (int i = 0; i < docs; ++i) {
    (void)table.Insert(
        "d" + std::to_string(i),
        db::Value::FromJson(
            ("{\"group\":" + std::to_string(i % 100) + "}").c_str())
            .value(),
        1);
  }
  table.CreateIndex("group");
  auto q = db::Query::ParseJson("t", R"({"group":7})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Execute(q.value()));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TableExecuteIndexed)->Arg(1000)->Arg(10000);

void BM_JsonSerialize(benchmark::State& state) {
  auto doc = db::Value::FromJson(
      R"({"group":7,"title":"Post 123","author":"author42",
          "views":10,"tags":["tag1","tag2"],"nested":{"a":[1,2,3]}})");
  for (auto _ : state) {
    benchmark::DoNotOptimize(doc->ToJson());
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_JsonSerialize);

void BM_JsonSerializeAppend(benchmark::State& state) {
  // Single-pass serialization into one reused buffer — the hot-path form
  // (response assembly serializes many values into one body).
  auto doc = db::Value::FromJson(
      R"({"group":7,"title":"Post 123","author":"author42",
          "views":10,"tags":["tag1","tag2"],"nested":{"a":[1,2,3]}})");
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    doc->AppendJson(&buf);
    benchmark::DoNotOptimize(buf);
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_JsonSerializeAppend);

void BM_JsonParse(benchmark::State& state) {
  const std::string json =
      R"({"group":7,"title":"Post 123","author":"author42",)"
      R"("views":10,"tags":["tag1","tag2"],"nested":{"a":[1,2,3]}})";
  for (auto _ : state) {
    auto v = db::Value::FromJson(json);
    benchmark::DoNotOptimize(v);
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_JsonParse);

// -- Transport wire-format costs (the batched write path ships every
//    change event through these; see DESIGN.md §10) --

db::ChangeEvent SampleChange() {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = "post-12345";
  ev.after.version = 7;
  ev.after.write_time = 1234567;
  ev.after.body = db::Value::FromJson(
                      R"({"group":7,"title":"Post 123","views":10,
                          "tags":["tag1","tag2"]})")
                      .value();
  ev.commit_time = 1234567;
  return ev;
}

// Reference implementation: build the equivalent spec as a db::Value tree
// and serialize it. The delta vs BM_TransportEncodeChange is what the
// single-pass append-into-one-buffer encoder saves per event.
std::string EncodeChangeViaValueTree(const db::ChangeEvent& ev) {
  db::Object after;
  after["body"] = ev.after.body;
  after["deleted"] = db::Value(ev.after.deleted);
  after["id"] = db::Value(ev.after.id);
  after["table"] = db::Value(ev.after.table);
  after["version"] = db::Value(static_cast<int64_t>(ev.after.version));
  after["write_time"] = db::Value(static_cast<int64_t>(ev.after.write_time));
  db::Object spec;
  spec["after"] = db::Value(std::move(after));
  spec["commit_time"] = db::Value(static_cast<int64_t>(ev.commit_time));
  spec["kind"] = db::Value(static_cast<int64_t>(ev.kind));
  spec["op"] = db::Value("change");
  return db::Value(std::move(spec)).ToJson();
}

void BM_TransportEncodeChange(benchmark::State& state) {
  const db::ChangeEvent ev = SampleChange();
  for (auto _ : state) {
    benchmark::DoNotOptimize(invalidb::transport::EncodeChange(ev));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TransportEncodeChange);

void BM_TransportEncodeChangeTreeReference(benchmark::State& state) {
  const db::ChangeEvent ev = SampleChange();
  if (EncodeChangeViaValueTree(ev) != invalidb::transport::EncodeChange(ev)) {
    state.SkipWithError("tree reference diverged from single-pass encoder");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeChangeViaValueTree(ev));
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TransportEncodeChangeTreeReference);

void BM_TransportEncodeChangeBatch(benchmark::State& state) {
  const std::vector<db::ChangeEvent> events(
      static_cast<size_t>(state.range(0)), SampleChange());
  for (auto _ : state) {
    benchmark::DoNotOptimize(invalidb::transport::EncodeChangeBatch(events));
  }
  NoteItems(state, state.iterations() * state.range(0));
}
BENCHMARK(BM_TransportEncodeChangeBatch)->Arg(1)->Arg(64);

void BM_TransportDecodeChangeBatchCanonical(benchmark::State& state) {
  const std::vector<db::ChangeEvent> events(
      static_cast<size_t>(state.range(0)), SampleChange());
  const std::string wire = invalidb::transport::EncodeChangeBatch(events);
  for (auto _ : state) {
    auto decoded = invalidb::transport::DecodeChangeBatch(wire);
    benchmark::DoNotOptimize(decoded);
  }
  NoteItems(state, state.iterations() * state.range(0));
}
BENCHMARK(BM_TransportDecodeChangeBatchCanonical)->Arg(1)->Arg(64);

void BM_TransportDecodeChangeBatchFallback(benchmark::State& state) {
  // One leading space defeats the canonical scanner, forcing the generic
  // parse-to-Value fallback. The delta vs ...Canonical is the fast path's
  // saving on well-formed peer traffic.
  const std::vector<db::ChangeEvent> events(
      static_cast<size_t>(state.range(0)), SampleChange());
  std::string wire = invalidb::transport::EncodeChangeBatch(events);
  wire.insert(1, " ");
  for (auto _ : state) {
    auto decoded = invalidb::transport::DecodeChangeBatch(wire);
    benchmark::DoNotOptimize(decoded);
  }
  NoteItems(state, state.iterations() * state.range(0));
}
BENCHMARK(BM_TransportDecodeChangeBatchFallback)->Arg(1)->Arg(64);

// -- Observability-layer costs (the instrumentation is itself on the
//    critical path, so its primitives are benchmarked like any other) --

void BM_ObsCounterAdd(benchmark::State& state) {
  obs::Counter* c = Registry().GetCounter("bm_obs_counter");
  for (auto _ : state) {
    c->Add();
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_ObsCounterAdd);

void BM_ObsLabeledLookup(benchmark::State& state) {
  // Cold-path convenience: name+label → map lookup + atomic add.
  for (auto _ : state) {
    Registry().Count("bm_obs_lookup", {{"op", "read"}});
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_ObsLabeledLookup);

void BM_ObsTimerObserve(benchmark::State& state) {
  obs::Timer* t = Registry().GetTimer("bm_obs_timer_ms");
  for (auto _ : state) {
    t->Observe(0.5);
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_ObsTimerObserve);

void BM_TracerSpanStartEnd(benchmark::State& state) {
  obs::TracerOptions topts;
  topts.max_spans = 1 << 16;
  topts.deterministic_ids = false;
  obs::Tracer tracer(SystemClock::Default(), topts);
  for (auto _ : state) {
    uint64_t id = tracer.StartSpan("bm");
    if (id == 0) {  // buffer full: drain and keep measuring
      tracer.Clear();
      id = tracer.StartSpan("bm");
    }
    tracer.EndSpan(id);
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TracerSpanStartEnd);

void BM_TracerDisabledSpan(benchmark::State& state) {
  obs::TracerOptions topts;
  topts.enabled = false;
  obs::Tracer tracer(SystemClock::Default(), topts);
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "bm");
    benchmark::DoNotOptimize(span.id());
  }
  NoteItems(state, state.iterations());
}
BENCHMARK(BM_TracerDisabledSpan);

}  // namespace
}  // namespace quaestor

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  // Registry snapshot alongside the google-benchmark output (CI uploads
  // this as the BENCH_obs.json artifact).
  quaestor::obs::MetricsSnapshot snapshot = quaestor::Registry().Snapshot();
  quaestor::db::Object root = snapshot.ToValue().as_object();
  root["benchmark"] = quaestor::db::Value("micro_components");
  quaestor::bench::WriteJsonFile("BENCH_obs.json",
                                 quaestor::db::Value(std::move(root)));
  return 0;
}
