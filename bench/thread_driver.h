#ifndef QUAESTOR_BENCH_THREAD_DRIVER_H_
#define QUAESTOR_BENCH_THREAD_DRIVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace quaestor::bench {

/// One closed-loop throughput measurement.
struct ThroughputResult {
  int threads = 0;
  uint64_t total_ops = 0;
  double seconds = 0.0;

  double OpsPerSecond() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(total_ops) / seconds;
  }
};

/// Runs `op(thread_index, iteration)` in a closed loop on `num_threads`
/// threads for ~`seconds` of wall time and returns the aggregate
/// throughput. Threads spin on a start flag so they enter the measured
/// region together; each keeps its op count in a local and publishes it
/// once at exit (no shared counter on the hot loop).
inline ThroughputResult MeasureThroughput(
    int num_threads, double seconds,
    const std::function<void(size_t thread_index, uint64_t iteration)>& op) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<uint64_t> ops(static_cast<size_t>(num_threads), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        op(static_cast<size_t>(t), n);
        ++n;
      }
      ops[static_cast<size_t>(t)] = n;
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  for (std::thread& th : threads) th.join();

  ThroughputResult r;
  r.threads = num_threads;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (uint64_t n : ops) r.total_ops += n;
  return r;
}

}  // namespace quaestor::bench

#endif  // QUAESTOR_BENCH_THREAD_DRIVER_H_
