// Regenerates the §6.2 "Production results" scenario: a flash crowd (the
// Thinks TV-show case — 50,000 concurrent users, >20,000 requests/s) hits
// a shop whose articles and stock counters are served through Quaestor.
// The paper reports a 98% CDN cache hit rate, letting 2 DBaaS servers
// carry the load.
//
// Scaled reproduction in two parts:
//  1. The steady crowd: many short-lived clients with cold browser caches
//     all read the same few hot queries; the CDN absorbs nearly everything
//     and the origin request share collapses.
//  2. The overload storm: a 10x offered-load spike on an origin injected
//     with 20x slowness, run twice — overload protections OFF (unbounded
//     queueing) and ON (admission control + deadlines + stale-serving).
//     The comparison metric is in-deadline goodput: reads and queries
//     that completed successfully within the 1 s request budget. Emitted
//     as BENCH_flash_crowd.json for the CI gate (ON >= 2x OFF).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void RunProduction(db::Value* out) {
  workload::WorkloadOptions w;
  w.num_tables = 1;          // one shop catalogue
  w.docs_per_table = 1000;   // articles
  w.queries_per_table = 20;  // category/landing-page queries
  w.docs_per_query = 10;
  w.zipf_theta = 0.99;       // everyone lands on the same pages
  w.read_weight = 0.60;      // article detail views
  w.query_weight = 0.395;    // category pages
  w.update_weight = 0.005;   // occasional stock-counter updates

  sim::SimOptions s = DefaultSim();
  s.num_client_instances = 100;     // the crowd (each = fresh browser)
  s.connections_per_instance = 6;
  s.think_time = MillisToMicros(250.0);  // human browsing pace
  s.duration = SecondsToMicros(60.0);
  s.warmup = SecondsToMicros(5.0);
  s.num_servers = 2;  // the paper's two DBaaS servers

  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);

  const uint64_t total_reads = r.reads.count + r.queries.count;
  const uint64_t origin = r.reads.origin + r.queries.origin;
  const uint64_t cdn_hits = r.reads.cdn_hits + r.queries.cdn_hits;
  const uint64_t client_hits = r.reads.client_hits + r.queries.client_hits;
  const double cdn_hit_rate =
      (cdn_hits + origin) == 0
          ? 0.0
          : static_cast<double>(cdn_hits) /
                static_cast<double>(cdn_hits + origin);
  const double origin_share =
      static_cast<double>(origin) / static_cast<double>(total_reads);

  PrintHeader("Flash crowd (production scenario, paper: 98% CDN hit rate)");
  PrintRow("request rate (ops/s)", {r.throughput_ops_s});
  PrintRow("client cache share",
           {static_cast<double>(client_hits) /
            static_cast<double>(total_reads)});
  PrintRow("CDN hit rate (of CDN traffic)", {cdn_hit_rate});
  PrintRow("origin requests/s",
           {static_cast<double>(origin) / r.duration_s});
  PrintRow("origin share of all requests", {origin_share});
  PrintRow("stale query rate", {r.queries.StaleRate()});
  PrintNote("expected: CDN hit rate near the paper's 98%; the origin sees");
  PrintNote("a tiny fraction of the load, so 2 backend servers suffice");

  out->SetPath("production.request_rate_ops_s", db::Value(r.throughput_ops_s));
  out->SetPath("production.cdn_hit_rate", db::Value(cdn_hit_rate));
  out->SetPath("production.origin_share", db::Value(origin_share));
}

constexpr double kDeadlineMs = 1000.0;

/// One overload run: a 10x flash crowd on a 20x slower origin, with the
/// overload protections on or off. Mirrors the failure_test ChaosTest
/// storm so the bench and the test exercise the same machinery.
struct OverloadRun {
  double goodput_ops_s = 0.0;  // in-deadline successful reads+queries / s
  double read_p99_ms = 0.0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t stale_serves = 0;
};

OverloadRun RunOverloadOnce(bool protections) {
  workload::WorkloadOptions w;
  w.num_tables = 2;
  w.docs_per_table = 60;
  w.queries_per_table = 3;
  w.docs_per_query = 12;
  w.read_weight = 0.66;
  w.query_weight = 0.22;
  w.insert_weight = 0.02;
  w.update_weight = 0.10;

  sim::SimOptions s;
  s.num_client_instances = 3;
  s.connections_per_instance = 2;
  s.duration = SecondsToMicros(14.0);
  s.warmup = SecondsToMicros(1.0);
  s.seed = 11;
  s.think_time = MillisToMicros(50.0);
  // One backend worker, 2 ms service: ~500 req/s healthy, 25 req/s during
  // the storm — the crowd genuinely oversubscribes the origin.
  s.num_servers = 1;
  s.server_service = MillisToMicros(2.0);
  s.server_options.ttl_options.max_ttl = SecondsToMicros(5.0);

  // The storm: 10x offered load on a 20x slower origin, after several
  // seconds of normal traffic have warmed the caches.
  sim::SimOptions::OverloadPhase phase;
  phase.at = SecondsToMicros(6.0);
  phase.duration = SecondsToMicros(4.0);
  phase.load_multiplier = 10.0;
  phase.origin_slowdown = 20.0;
  s.overload_phases.push_back(phase);

  if (protections) {
    s.server_options.admission.enabled = true;
    s.server_options.admission.max_concurrent = 1;
    s.server_options.admission.service_cost = 4 * kMicrosPerMilli;
    s.server_options.admission.max_queue = 16;
    s.server_options.admission.target_queue_delay = 20 * kMicrosPerMilli;
    s.server_options.admission.codel_interval = 100 * kMicrosPerMilli;
    // Admission "measures" the storm: every served origin visit during
    // the phase charges the controller the extra service time.
    s.origin_spike_fn = [phase](Micros now) -> Micros {
      if (now >= phase.at && now < phase.at + phase.duration) {
        return MillisToMicros(38.0);
      }
      return 0;
    };
    s.client_options.request_deadline =
        static_cast<Micros>(kDeadlineMs) * kMicrosPerMilli;
    s.client_options.stale_serve.enabled = true;
    s.client_options.stale_serve.ttl_cap = 1 * kMicrosPerSecond;
    s.client_options.stale_serve.max_age = 30 * kMicrosPerSecond;
    s.client_options.retry.enabled = true;
    s.client_options.retry.max_attempts = 2;
    s.client_options.retry.retry_budget = 10.0;
    s.client_options.retry.budget_refill_per_success = 0.1;
  }

  sim::Simulation simulation(w, s);
  sim::Simulation* sim_ptr = &simulation;

  // In-deadline goodput, measured identically for both runs: successful
  // reads/queries that completed within the budget. The unprotected run
  // does not enforce the deadline — it is measured against it.
  uint64_t in_deadline = 0;
  simulation.AddOpObserver([&](const sim::OpObservation& obs) {
    if (sim_ptr->clock().NowMicros() < s.warmup) return;
    switch (obs.type) {
      case workload::OpType::kRead:
        if (obs.read->status.ok() &&
            obs.read->outcome.latency_ms <= kDeadlineMs) {
          in_deadline++;
        }
        break;
      case workload::OpType::kQuery:
        if (obs.query_result->status.ok() &&
            obs.query_result->outcome.latency_ms <= kDeadlineMs) {
          in_deadline++;
        }
        break;
      default:
        break;
    }
  });

  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);

  OverloadRun out;
  out.goodput_ops_s =
      r.duration_s > 0 ? static_cast<double>(in_deadline) / r.duration_s : 0.0;
  out.read_p99_ms = r.reads.latency.P99();
  out.shed = r.shed_ops;
  out.deadline_exceeded = r.deadline_exceeded_ops;
  out.stale_serves = r.stale_shed_serves;
  return out;
}

void RunOverload(db::Value* out) {
  const OverloadRun off = RunOverloadOnce(/*protections=*/false);
  const OverloadRun on = RunOverloadOnce(/*protections=*/true);
  const double ratio =
      off.goodput_ops_s > 0 ? on.goodput_ops_s / off.goodput_ops_s : 0.0;

  PrintHeader("Overload storm (10x load, 20x slower origin, 1 s budget)");
  PrintColumns("", {"off", "on"});
  PrintRow("in-deadline goodput (ops/s)",
           {off.goodput_ops_s, on.goodput_ops_s});
  PrintRow("read p99 (ms)", {off.read_p99_ms, on.read_p99_ms});
  PrintRow("shed ops", {static_cast<double>(off.shed),
                        static_cast<double>(on.shed)});
  PrintRow("deadline-exceeded ops",
           {static_cast<double>(off.deadline_exceeded),
            static_cast<double>(on.deadline_exceeded)});
  PrintRow("stale-shed serves", {static_cast<double>(off.stale_serves),
                                 static_cast<double>(on.stale_serves)});
  PrintRow("goodput ratio (on/off)", {ratio});
  PrintNote("expected: protections keep goodput >= 2x the unprotected run");
  PrintNote("by shedding writes, bounding the queue, and serving flagged");
  PrintNote("bounded-stale copies instead of queueing into the collapse");

  out->SetPath("overload.deadline_ms", db::Value(kDeadlineMs));
  out->SetPath("overload.off.goodput_in_deadline_ops_s",
               db::Value(off.goodput_ops_s));
  out->SetPath("overload.off.read_p99_ms", db::Value(off.read_p99_ms));
  out->SetPath("overload.on.goodput_in_deadline_ops_s",
               db::Value(on.goodput_ops_s));
  out->SetPath("overload.on.read_p99_ms", db::Value(on.read_p99_ms));
  out->SetPath("overload.on.shed_ops",
               db::Value(static_cast<int64_t>(on.shed)));
  out->SetPath("overload.on.deadline_exceeded_ops",
               db::Value(static_cast<int64_t>(on.deadline_exceeded)));
  out->SetPath("overload.on.stale_shed_serves",
               db::Value(static_cast<int64_t>(on.stale_serves)));
  out->SetPath("overload.goodput_ratio", db::Value(ratio));
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::db::Value results{quaestor::db::Object{}};
  quaestor::bench::RunProduction(&results);
  quaestor::bench::RunOverload(&results);
  quaestor::bench::WriteJsonFile("BENCH_flash_crowd.json", results);
  quaestor::bench::WriteObsSnapshot("flash_crowd");
  return 0;
}
