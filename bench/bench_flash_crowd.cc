// Regenerates the §6.2 "Production results" scenario: a flash crowd (the
// Thinks TV-show case — 50,000 concurrent users, >20,000 requests/s) hits
// a shop whose articles and stock counters are served through Quaestor.
// The paper reports a 98% CDN cache hit rate, letting 2 DBaaS servers
// carry the load.
//
// Scaled reproduction: many short-lived clients with cold browser caches
// all read the same few hot queries; the CDN absorbs nearly everything
// and the origin request share collapses.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void Run() {
  workload::WorkloadOptions w;
  w.num_tables = 1;          // one shop catalogue
  w.docs_per_table = 1000;   // articles
  w.queries_per_table = 20;  // category/landing-page queries
  w.docs_per_query = 10;
  w.zipf_theta = 0.99;       // everyone lands on the same pages
  w.read_weight = 0.60;      // article detail views
  w.query_weight = 0.395;    // category pages
  w.update_weight = 0.005;   // occasional stock-counter updates

  sim::SimOptions s = DefaultSim();
  s.num_client_instances = 100;     // the crowd (each = fresh browser)
  s.connections_per_instance = 6;
  s.think_time = MillisToMicros(250.0);  // human browsing pace
  s.duration = SecondsToMicros(60.0);
  s.warmup = SecondsToMicros(5.0);
  s.num_servers = 2;  // the paper's two DBaaS servers

  sim::Simulation simulation(w, s);
  sim::SimResults r = simulation.Run();
  AccumulateObs(r.metrics);

  const uint64_t total_reads = r.reads.count + r.queries.count;
  const uint64_t origin = r.reads.origin + r.queries.origin;
  const uint64_t cdn_hits = r.reads.cdn_hits + r.queries.cdn_hits;
  const uint64_t client_hits = r.reads.client_hits + r.queries.client_hits;
  const double cdn_hit_rate =
      (cdn_hits + origin) == 0
          ? 0.0
          : static_cast<double>(cdn_hits) /
                static_cast<double>(cdn_hits + origin);

  PrintHeader("Flash crowd (production scenario, paper: 98% CDN hit rate)");
  PrintRow("request rate (ops/s)", {r.throughput_ops_s});
  PrintRow("client cache share",
           {static_cast<double>(client_hits) /
            static_cast<double>(total_reads)});
  PrintRow("CDN hit rate (of CDN traffic)", {cdn_hit_rate});
  PrintRow("origin requests/s",
           {static_cast<double>(origin) / r.duration_s});
  PrintRow("origin share of all requests",
           {static_cast<double>(origin) / static_cast<double>(total_reads)});
  PrintRow("stale query rate", {r.queries.StaleRate()});
  PrintNote("expected: CDN hit rate near the paper's 98%; the origin sees");
  PrintNote("a tiny fraction of the load, so 2 backend servers suffice");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("flash_crowd");
  return 0;
}
