// Regenerates Figure 9: client cache hit rates for queries under varying
// update rates, for different EBF refresh intervals and query counts.
//
// Paper setting: 100k objects / 1k or 10k queries, update rate 0–0.20,
// refresh intervals 1 s / 10 s / 100 s, 1,200 connections. Here 1/10
// scale. Expected shapes: hit rates decay with the update rate; the
// refresh interval has only limited influence (higher write rates also
// shorten TTLs, §6.2 "Varying write rates"); more distinct queries lower
// the curve.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

struct Config {
  std::string label;
  size_t num_tables;
  size_t docs_per_table;
  size_t docs_per_query;
  double refresh_seconds;
};

void Run() {
  const std::vector<double> update_rates = {0.0, 0.02, 0.05, 0.10, 0.20};
  const std::vector<Config> configs = {
      {"10k obj/1k queries/1 s", 10, 1000, 10, 1.0},
      {"10k obj/1k queries/10 s", 10, 1000, 10, 10.0},
      {"10k obj/1k queries/100 s", 10, 1000, 10, 100.0},
      {"10k obj/2k queries/1 s", 20, 500, 5, 1.0},
  };

  std::vector<std::string> cols;
  for (double u : update_rates) cols.push_back(std::to_string(u).substr(0, 4));

  PrintHeader("Figure 9: query client-cache hit rate vs update rate");
  PrintColumns("config \\ update rate", cols);

  for (const Config& cfg : configs) {
    std::vector<double> row;
    for (double update_rate : update_rates) {
      workload::WorkloadOptions w = DefaultWorkload();
      w.num_tables = cfg.num_tables;
      w.docs_per_table = cfg.docs_per_table;
      w.docs_per_query = cfg.docs_per_query;
      w.queries_per_table = 100;
      w.update_weight = update_rate;
      const double rest = 1.0 - update_rate;
      w.read_weight = rest / 2.0;
      w.query_weight = rest / 2.0;

      sim::SimOptions s = DefaultSim();
      s.num_client_instances = 10;
      s.connections_per_instance = 12;  // paper's 1,200 connections / 100
      s.duration = SecondsToMicros(15.0);
      s.warmup = SecondsToMicros(4.0);
      s.client_options.ebf_refresh_interval =
          SecondsToMicros(cfg.refresh_seconds);
      sim::Simulation simulation(w, s);
      sim::SimResults r = simulation.Run();
      AccumulateObs(r.metrics);
      row.push_back(r.queries.ClientHitRate());
    }
    PrintRow(cfg.label, row);
  }
  PrintNote("expected: monotone decay; refresh interval has little effect");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("fig9_update_rates");
  return 0;
}
