#ifndef QUAESTOR_BENCH_BENCH_UTIL_H_
#define QUAESTOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "db/value.h"
#include "obs/metrics.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace quaestor::bench {

/// The scaled-down default workload for figure regeneration. The paper
/// uses 10 tables × 10,000 documents with 100 queries per table and
/// 300–3,000 client connections on an EC2 cluster; this repo reproduces
/// the *shapes* at 1/10 scale (10 × 1,000 documents, 30–300 connections)
/// so every figure regenerates in seconds on one machine. See
/// EXPERIMENTS.md for the mapping.
inline workload::WorkloadOptions DefaultWorkload() {
  workload::WorkloadOptions w;
  w.num_tables = 10;
  w.docs_per_table = 1000;
  w.queries_per_table = 100;
  w.docs_per_query = 10;
  w.zipf_theta = 0.99;  // YCSB's standard Zipfian constant
  // Read-heavy default (§6.2): 99% reads+queries equally weighted,
  // 1% updates.
  w.read_weight = 0.495;
  w.query_weight = 0.495;
  w.update_weight = 0.01;
  return w;
}

/// Default simulation parameters matching §6.1 (latencies, 3 servers).
inline sim::SimOptions DefaultSim() {
  sim::SimOptions s;
  s.num_client_instances = 10;
  s.connections_per_instance = 12;
  s.duration = SecondsToMicros(20.0);
  s.warmup = SecondsToMicros(5.0);
  s.seed = 42;
  s.client_options.ebf_refresh_interval = SecondsToMicros(1.0);
  // The ∆ − ∆_invalidation optimization of §3.2: EBF-triggered
  // revalidations are answered by the purge-coherent CDN instead of the
  // origin ("significantly offloads the backend"). Architectures without
  // a CDN fall through to the origin automatically.
  s.client_options.revalidate_at_cdn = true;
  // TTL model scaled with the workload (1/10 of the paper's 600 s
  // ceiling): an invalidated key stays in the EBF until its highest
  // issued TTL expires, so the ceiling bounds how long estimation errors
  // keep keys flagged (§4.2).
  s.server_options.ttl_options.max_ttl = SecondsToMicros(60.0);
  s.server_options.ttl_options.rate_window = SecondsToMicros(120.0);
  return s;
}

/// Section banner.
inline void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("  # %s\n", note.c_str());
}

/// Prints one table row: a label column followed by numeric columns.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-28s", label.c_str());
  for (double v : values) std::printf(" %12.3f", v);
  std::printf("\n");
}

inline void PrintColumns(const std::string& label,
                         const std::vector<std::string>& columns) {
  std::printf("%-28s", label.c_str());
  for (const std::string& c : columns) std::printf(" %12s", c.c_str());
  std::printf("\n");
}

/// Writes a benchmark result tree (built as a db::Value) to `path` as
/// JSON, so downstream tooling can diff runs without scraping stdout.
/// Returns false (after printing a note) if the file cannot be opened.
inline bool WriteJsonFile(const std::string& path, const db::Value& root) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    PrintNote("could not open " + path + " for writing");
    return false;
  }
  const std::string json = root.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  PrintNote("wrote " + path);
  return true;
}

/// The binary-wide metrics snapshot: every simulation run folds its
/// SimResults::metrics in here (counters add, timers merge), and
/// WriteObsSnapshot() emits the union at exit. Benches that drive
/// components directly (no Simulation) export their *Stats surfaces into
/// a local MetricsRegistry and accumulate its Snapshot() the same way.
inline obs::MetricsSnapshot& ObsAccumulator() {
  static obs::MetricsSnapshot snapshot;
  return snapshot;
}

inline void AccumulateObs(const obs::MetricsSnapshot& snapshot) {
  ObsAccumulator().Merge(snapshot);
}

/// Writes the accumulated registry snapshot as OBS_<bench>.json alongside
/// the bench's other outputs.
inline bool WriteObsSnapshot(const std::string& bench_name) {
  return WriteJsonFile("OBS_" + bench_name + ".json",
                       ObsAccumulator().ToValue());
}

}  // namespace quaestor::bench

#endif  // QUAESTOR_BENCH_BENCH_UTIL_H_
