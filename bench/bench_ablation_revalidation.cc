// Ablation A3: the ∆ − ∆_invalidation optimization (§3.2) — letting
// EBF-triggered revalidations be answered by the purge-coherent CDN
// instead of the origin "significantly offloads the backend".
//
// Compares revalidate-at-origin vs revalidate-at-CDN across EBF refresh
// intervals, reporting the origin's share of all requests (backend load),
// mean query latency, and the staleness cost.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace quaestor::bench {
namespace {

void Run() {
  const std::vector<double> refresh_seconds = {1, 5, 20};

  PrintHeader("Ablation A3: revalidation target (origin vs CDN)");
  PrintColumns("config", {"origin share", "q lat ms", "q stale", "thr ops/s"});

  for (bool at_cdn : {false, true}) {
    for (double refresh : refresh_seconds) {
      workload::WorkloadOptions w = DefaultWorkload();
      w.update_weight = 0.03;
      w.read_weight = 0.485;
      w.query_weight = 0.485;

      sim::SimOptions s = DefaultSim();
      s.duration = SecondsToMicros(20.0);
      s.warmup = SecondsToMicros(5.0);
      s.client_options.ebf_refresh_interval = SecondsToMicros(refresh);
      s.client_options.revalidate_at_cdn = at_cdn;

      sim::Simulation simulation(w, s);
      sim::SimResults r = simulation.Run();
      AccumulateObs(r.metrics);
      const uint64_t total =
          r.reads.count + r.queries.count + r.writes.count;
      const uint64_t origin =
          r.reads.origin + r.queries.origin + r.writes.count;
      PrintRow(std::string(at_cdn ? "CDN" : "origin") + " reval, ∆=" +
                   std::to_string(static_cast<int>(refresh)) + "s",
               {static_cast<double>(origin) / static_cast<double>(total),
                r.queries.latency.Mean(), r.queries.StaleRate(),
                r.throughput_ops_s});
    }
  }
  PrintNote("expected: CDN revalidation slashes the origin share and");
  PrintNote("latency at small ∆ (each refresh triggers a revalidation),");
  PrintNote("at a slight staleness cost bounded by the purge latency");
}

}  // namespace
}  // namespace quaestor::bench

int main() {
  quaestor::bench::Run();
  quaestor::bench::WriteObsSnapshot("ablation_revalidation");
  return 0;
}
