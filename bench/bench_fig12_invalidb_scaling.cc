// Regenerates Figure 12: InvaliDB matching throughput for cluster sizes
// of 1–16 matching nodes under tight notification-latency bounds.
//
// Substitution: the paper measures a 16-node EC2 Storm cluster; this host
// has a single core, so "nodes" are worker threads that time-slice it.
// The linear-scaling claim is therefore reproduced in two measured parts:
//   1. per-node capacity — real single-threaded matching throughput in
//      query×update checks per second (the paper's "ops/s"), and
//   2. load balance — the hash-partitioned grid spreads queries and
//      updates evenly, so N dedicated nodes sustain ≈ N × per-node
//      capacity. The aggregate column is per-node capacity × N ×
//      measured balance (min node share / ideal share).
// A real threaded run per cluster size additionally verifies that
// notification p99 latency stays low while the offered load fits the
// core's capacity.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "invalidb/cluster.h"

namespace quaestor::bench {
namespace {

using invalidb::InvalidbCluster;
using invalidb::InvalidbOptions;

db::Query GroupQuery(int group) {
  auto q = db::Query::ParseJson(
      "posts", "{\"group\":" + std::to_string(group) + "}");
  return q.value();
}

db::ChangeEvent MakeEvent(int i, Micros now) {
  db::ChangeEvent ev;
  ev.kind = db::WriteKind::kUpdate;
  ev.after.table = "posts";
  ev.after.id = "d" + std::to_string(i % 1024);
  db::Object body;
  body["group"] = db::Value(static_cast<int64_t>(i % 997));
  ev.after.body = db::Value(std::move(body));
  ev.commit_time = now;
  return ev;
}

/// Measures raw single-node matching capacity: one matcher, `queries`
/// installed, events pumped synchronously. Returns match-checks/second.
double MeasureNodeCapacity(size_t queries) {
  SystemClock* clock = SystemClock::Default();
  InvalidbOptions opts;  // 1×1 grid, synchronous
  uint64_t delivered = 0;
  InvalidbCluster cluster(clock, opts,
                          [&](const invalidb::Notification&) { delivered++; });
  for (size_t g = 0; g < queries; ++g) {
    (void)cluster.RegisterQuery(GroupQuery(static_cast<int>(g)), {},
                                invalidb::kEventsObjectList);
  }
  const auto start = std::chrono::steady_clock::now();
  constexpr int kEvents = 2000;
  for (int i = 0; i < kEvents; ++i) {
    cluster.OnChange(MakeEvent(i, clock->NowMicros()));
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration<double>(end - start).count();
  // The paper's "ops/s" is query×update pairs sustained. With predicate-
  // indexed matching each event logically covers every installed query
  // while evaluating only the candidates, so the sustained pair rate is
  // the naive-equivalent count (match_checks would under-report capacity
  // by exactly the index's pruning factor).
  const double pairs =
      static_cast<double>(cluster.stats().match_checks_naive);
  return pairs / seconds;
}

void Run() {
  SystemClock* clock = SystemClock::Default();

  PrintHeader("Figure 12: InvaliDB throughput vs matching nodes");
  PrintNote("single-core host: aggregate = measured per-node capacity x N");
  PrintNote("x measured partition balance (see header comment)");
  PrintColumns("nodes/queries", {"node Mops/s", "balance", "agg Mops/s",
                                 "p99 ms", "notif"});

  const std::vector<size_t> node_counts = {1, 2, 4, 8, 16};
  for (size_t n : node_counts) {
    const size_t queries = 500 * n;

    // (1) Per-node capacity at this cluster's per-node query load (500).
    const double per_node = MeasureNodeCapacity(500);

    // (2) Partition balance of the real grid.
    InvalidbOptions grid_opts;
    grid_opts.query_partitions = n;
    grid_opts.object_partitions = 1;
    InvalidbCluster grid(clock, grid_opts,
                         [](const invalidb::Notification&) {});
    for (size_t g = 0; g < queries; ++g) {
      (void)grid.RegisterQuery(GroupQuery(static_cast<int>(g)), {},
                               invalidb::kEventsObjectList);
    }
    const std::vector<size_t> per_node_queries = grid.QueriesPerNode();
    size_t max_q = 0;
    for (size_t q : per_node_queries) max_q = std::max(max_q, q);
    const double ideal = static_cast<double>(queries) / static_cast<double>(n);
    const double balance = max_q == 0 ? 1.0 : ideal / static_cast<double>(max_q);

    // (3) Real threaded run at an offered load that fits one core:
    // notification latency must stay bounded.
    InvalidbOptions t_opts;
    t_opts.query_partitions = n;
    t_opts.object_partitions = 1;
    t_opts.threaded = true;
    uint64_t delivered = 0;
    std::mutex mu;
    InvalidbCluster threaded(clock, t_opts,
                             [&](const invalidb::Notification&) {
                               std::lock_guard<std::mutex> lock(mu);
                               delivered++;
                             });
    for (size_t g = 0; g < queries; ++g) {
      (void)threaded.RegisterQuery(GroupQuery(static_cast<int>(g)), {},
                                   invalidb::kEventsObjectList);
    }
    threaded.Flush();
    constexpr int kEvents = 500;
    for (int i = 0; i < kEvents; ++i) {
      threaded.OnChange(MakeEvent(i, clock->NowMicros()));
    }
    threaded.Flush();
    const double p99 = threaded.LatencyHistogram().P99();

    const double aggregate = per_node * static_cast<double>(n) * balance;
    PrintRow(std::to_string(n) + " nodes / " + std::to_string(queries) + "q",
             {per_node / 1e6, balance, aggregate / 1e6, p99,
              static_cast<double>(delivered)});

    obs::MetricsRegistry registry;
    const obs::Labels labels = {{"nodes", std::to_string(n)}};
    threaded.stats().ExportTo(&registry, labels);
    registry.GetTimer("invalidb_notification_latency_ms", labels)
        ->MergeHistogram(threaded.LatencyHistogram());
    AccumulateObs(registry.Snapshot());
  }
  PrintNote("expected: per-node capacity flat, aggregate linear in N,");
  PrintNote("p99 low while load fits capacity (paper: <20-30 ms)");
}

std::string ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

/// Elastic step-up: a live threaded cluster with 10k installed queries
/// steps through the node counts of the figure via Resize() while an
/// update stream keeps flowing, and reports the migration-pause p99 —
/// the paper's elasticity story (§5.4: repartitioning without dropping
/// notifications). The result merges into BENCH_matching.json as the
/// "elastic" object so CI can gate the pause bound alongside the
/// matching-correctness checks (run bench_invalidb_matching first).
void RunElastic(const std::string& json_path) {
  SystemClock* clock = SystemClock::Default();

  PrintHeader("Elastic scale-out: live Resize() under load, 10k queries");
  PrintColumns("step", {"nodes", "pause ms", "reinstalled", "notif"});

  constexpr size_t kQueries = 10000;
  InvalidbOptions opts;  // starts 1x1, threaded
  opts.threaded = true;
  std::atomic<uint64_t> delivered{0};
  InvalidbCluster cluster(clock, opts, [&](const invalidb::Notification&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t g = 0; g < kQueries; ++g) {
    (void)cluster.RegisterQuery(GroupQuery(static_cast<int>(g)), {},
                                invalidb::kEventsObjectList);
  }
  cluster.Flush();

  const std::vector<std::pair<size_t, size_t>> steps = {
      {2, 1}, {2, 2}, {4, 2}, {4, 4}};
  constexpr int kEventsPerStep = 200;
  int event_id = 0;
  Histogram pauses_before;
  for (const auto& [qp, op] : steps) {
    for (int i = 0; i < kEventsPerStep; ++i) {
      cluster.OnChange(MakeEvent(event_id++, clock->NowMicros()));
    }
    const size_t reinstalled = cluster.Resize(qp, op);
    for (int i = 0; i < kEventsPerStep; ++i) {
      cluster.OnChange(MakeEvent(event_id++, clock->NowMicros()));
    }
    cluster.Flush();
    const Histogram pauses = cluster.MigrationPauseHistogram();
    const double step_pause = pauses.DiffSince(pauses_before).Mean();
    pauses_before = pauses;
    PrintRow("-> " + std::to_string(qp) + "x" + std::to_string(op),
             {static_cast<double>(qp * op), step_pause,
              static_cast<double>(reinstalled),
              static_cast<double>(delivered.load())});
  }

  const Histogram pauses = cluster.MigrationPauseHistogram();
  const double p99 = pauses.P99();
  PrintNote("migration pause p99 " + std::to_string(p99) + " ms over " +
            std::to_string(pauses.count()) + " resizes");

  // Merge the elastic results into the matching bench's JSON (preserving
  // whatever bench_invalidb_matching wrote) rather than clobbering it.
  db::Object root;
  const std::string existing = ReadFileToString(json_path);
  if (!existing.empty()) {
    auto parsed = db::Value::FromJson(existing);
    if (parsed.ok() && parsed.value().is_object()) {
      root = parsed.value().as_object();
    }
  }
  db::Object elastic;
  elastic["installed_queries"] = db::Value(static_cast<int64_t>(kQueries));
  elastic["resizes"] = db::Value(static_cast<int64_t>(pauses.count()));
  elastic["migration_pause_p99_ms"] = db::Value(p99);
  elastic["migration_pause_max_ms"] = db::Value(pauses.max());
  elastic["queries_reinstalled"] =
      db::Value(static_cast<int64_t>(cluster.stats().rebalance_queries_reinstalled));
  elastic["notifications_delivered"] =
      db::Value(static_cast<int64_t>(delivered.load()));
  root["elastic"] = db::Value(std::move(elastic));
  WriteJsonFile(json_path, db::Value(std::move(root)));

  obs::MetricsRegistry registry;
  cluster.stats().ExportTo(&registry, {{"bench", "elastic"}});
  AccumulateObs(registry.Snapshot());
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  quaestor::bench::Run();
  quaestor::bench::RunElastic(argc > 1 ? argv[1] : "BENCH_matching.json");
  quaestor::bench::WriteObsSnapshot("fig12_invalidb_scaling");
  return 0;
}
