// Threaded closed-loop throughput of the concurrent read path: the
// striped web-cache hit path, the server revalidation (304) path, and a
// mixed read/write workload across cache + server + db. Sweeps 1→2→4→8
// threads and writes BENCH_throughput.json so CI can gate on the
// multi-thread speedup.
//
// Usage: bench_throughput [output.json] [seconds-per-point]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/thread_driver.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "db/query.h"
#include "db/value.h"
#include "webcache/web_cache.h"

namespace quaestor::bench {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

std::string RecordKey(int i) { return "posts/post-" + std::to_string(i); }

db::Value MakeDoc(int i) {
  db::Object o;
  o["title"] = db::Value("Post " + std::to_string(i));
  o["author"] = db::Value("author-" + std::to_string(i % 50));
  o["group"] = db::Value(static_cast<int64_t>(i % 100));
  o["views"] = db::Value(static_cast<int64_t>(i * 7));
  db::Array tags;
  tags.push_back(db::Value("tag" + std::to_string(i % 10)));
  tags.push_back(db::Value("common"));
  o["tags"] = db::Value(std::move(tags));
  return db::Value(std::move(o));
}

/// Pure striped-cache hit path: every Get finds a fresh entry.
ThroughputResult RunCacheHit(int threads, double seconds) {
  webcache::ExpirationCache cache(SystemClock::Default(), 1 << 16);
  constexpr int kKeys = 8192;
  const std::string body(256, 'x');
  for (int i = 0; i < kKeys; ++i) {
    cache.Put(RecordKey(i), body, static_cast<uint64_t>(i + 1),
              3600 * kMicrosPerSecond);
  }
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) keys.push_back(RecordKey(i));
  return MeasureThroughput(
      threads, seconds, [&](size_t t, uint64_t n) {
        const auto& key = keys[(n * 31 + t * 1009) % kKeys];
        auto hit = cache.Get(key);
        if (!hit.has_value()) std::abort();  // the hit path must stay hot
      });
}

struct ServerFixture {
  db::Database database;
  core::QuaestorServer server;
  std::vector<std::string> query_keys;
  std::vector<uint64_t> query_etags;

  explicit ServerFixture(int num_records)
      : database(SystemClock::Default()),
        server(SystemClock::Default(), &database, [] {
          core::ServerOptions o;
          o.ttl_options.max_ttl = 600 * kMicrosPerSecond;
          return o;
        }()) {
    for (int i = 0; i < num_records; ++i) {
      auto res = server.Insert("posts", "post-" + std::to_string(i),
                               MakeDoc(i));
      if (!res.ok()) std::abort();
    }
    database.GetOrCreateTable("posts")->CreateIndex("group");
    for (int g = 0; g < 64; ++g) {
      auto q = db::Query::ParseJson(
          "posts", "{\"group\":" + std::to_string(g) + "}");
      server.RegisterQueryShape(q.value());
      query_keys.push_back(q->NormalizedKey());
    }
    // Warm each query once to learn its etag (what a revalidating cache
    // carries in If-None-Match).
    for (const std::string& key : query_keys) {
      webcache::HttpRequest req;
      req.key = key;
      auto resp = server.Fetch(req);
      if (!resp.ok) std::abort();
      query_etags.push_back(resp.etag);
    }
  }
};

/// Server revalidation path: conditional query fetches that re-execute
/// the query under shared db locks and answer 304.
ThroughputResult RunRevalidation(int threads, double seconds) {
  ServerFixture fx(2000);
  return MeasureThroughput(
      threads, seconds, [&](size_t t, uint64_t n) {
        const size_t qi = (n + t * 17) % fx.query_keys.size();
        webcache::HttpRequest req;
        req.key = fx.query_keys[qi];
        req.has_if_none_match = true;
        req.if_none_match = fx.query_etags[qi];
        auto resp = fx.server.Fetch(req);
        if (!resp.ok) std::abort();
      });
}

/// Mixed workload: 90% record fetches (miss path — serialized body, memo)
/// and 10% writes (exclusive table lock, EBF flag, memo invalidation).
ThroughputResult RunMixed(int threads, double seconds) {
  ServerFixture fx(2000);
  constexpr int kRecords = 2000;
  return MeasureThroughput(
      threads, seconds, [&](size_t t, uint64_t n) {
        const uint64_t x = n * 2654435761u + t * 40503u;
        const int i = static_cast<int>(x % kRecords);
        if (x % 10 == 9) {
          db::Update up;
          up.Set("views", db::Value(static_cast<int64_t>(n)));
          auto res =
              fx.server.Update("posts", "post-" + std::to_string(i), up);
          if (!res.ok()) std::abort();
        } else {
          webcache::HttpRequest req;
          req.key = RecordKey(i);
          auto resp = fx.server.Fetch(req);
          if (!resp.ok) std::abort();
        }
      });
}

db::Value SweepToValue(const std::string& name,
                       ThroughputResult (*run)(int, double), double seconds,
                       db::Object* summary) {
  PrintHeader(name + " (closed loop, " + std::to_string(seconds) +
              "s per point)");
  db::Object per_thread;
  double single = 0.0;
  double best = 0.0;
  for (int threads : kThreadCounts) {
    const ThroughputResult r = run(threads, seconds);
    const double ops = r.OpsPerSecond();
    if (threads == 1) single = ops;
    if (threads == 8) best = ops;
    per_thread["t" + std::to_string(threads)] = db::Value(ops);
    PrintRow("threads=" + std::to_string(threads),
             {static_cast<double>(r.total_ops), ops,
              single > 0.0 ? ops / single : 0.0});
  }
  db::Object out;
  out["ops_per_sec"] = db::Value(std::move(per_thread));
  out["speedup_8_vs_1"] = db::Value(single > 0.0 ? best / single : 0.0);
  (*summary)[name] = db::Value(out);
  return db::Value(std::move(out));
}

}  // namespace
}  // namespace quaestor::bench

int main(int argc, char** argv) {
  using namespace quaestor;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_throughput.json";
  const double seconds = argc > 2 ? std::atof(argv[2]) : 0.4;

  const unsigned hw = std::thread::hardware_concurrency();
  bench::PrintNote("hardware threads: " + std::to_string(hw));
  if (hw < 8) {
    bench::PrintNote(
        "fewer than 8 hardware threads — multi-thread speedups are "
        "bounded by the machine, not the code");
  }

  db::Object workloads;
  bench::SweepToValue("cache_hit", &bench::RunCacheHit, seconds, &workloads);
  bench::SweepToValue("revalidation", &bench::RunRevalidation, seconds,
                      &workloads);
  bench::SweepToValue("mixed", &bench::RunMixed, seconds, &workloads);

  db::Object root;
  root["benchmark"] = db::Value("throughput");
  root["hardware_threads"] = db::Value(static_cast<int64_t>(hw));
  root["seconds_per_point"] = db::Value(seconds);
  db::Array threads_axis;
  for (int t : bench::kThreadCounts) {
    threads_axis.push_back(db::Value(static_cast<int64_t>(t)));
  }
  root["threads"] = db::Value(std::move(threads_axis));
  root["workloads"] = db::Value(std::move(workloads));
  bench::WriteJsonFile(out_path, db::Value(std::move(root)));
  return 0;
}
