#include <gtest/gtest.h>

#include <map>

#include "common/clock.h"
#include "db/database.h"
#include "workload/workload.h"

namespace quaestor::workload {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions opts;
  opts.num_tables = 2;
  opts.docs_per_table = 100;
  opts.queries_per_table = 10;
  opts.docs_per_query = 10;
  return opts;
}

TEST(WorkloadTest, LoadPopulatesTables) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  WorkloadGenerator gen(SmallOptions(), 1);
  gen.Load(&db);
  EXPECT_EQ(db.TableNames().size(), 2u);
  EXPECT_EQ(db.FindTable("t0")->LiveCount(), 100u);
  EXPECT_EQ(db.FindTable("t1")->LiveCount(), 100u);
}

TEST(WorkloadTest, QueriesInitiallyMatchDocsPerQuery) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  WorkloadGenerator gen(SmallOptions(), 1);
  gen.Load(&db);
  for (const db::Query& q : gen.QueriesFor(0)) {
    EXPECT_EQ(db.Execute(q).size(), 10u) << q.NormalizedKey();
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  WorkloadGenerator a(SmallOptions(), 99);
  WorkloadGenerator b(SmallOptions(), 99);
  for (int i = 0; i < 200; ++i) {
    Operation oa = a.Next();
    Operation ob = b.Next();
    EXPECT_EQ(static_cast<int>(oa.type), static_cast<int>(ob.type));
    EXPECT_EQ(oa.table, ob.table);
    EXPECT_EQ(oa.id, ob.id);
  }
}

TEST(WorkloadTest, OperationMixMatchesWeights) {
  WorkloadOptions opts = SmallOptions();
  opts.read_weight = 0.5;
  opts.query_weight = 0.3;
  opts.update_weight = 0.2;
  WorkloadGenerator gen(opts, 7);
  std::map<OpType, int> counts;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) counts[gen.Next().type]++;
  EXPECT_NEAR(counts[OpType::kRead] / double(kSamples), 0.5, 0.02);
  EXPECT_NEAR(counts[OpType::kQuery] / double(kSamples), 0.3, 0.02);
  EXPECT_NEAR(counts[OpType::kUpdate] / double(kSamples), 0.2, 0.02);
  EXPECT_EQ(counts[OpType::kInsert], 0);
  EXPECT_EQ(counts[OpType::kDelete], 0);
}

TEST(WorkloadTest, ZipfMakesKeysSkewed) {
  WorkloadOptions opts = SmallOptions();
  opts.read_weight = 1.0;
  opts.query_weight = 0.0;
  opts.update_weight = 0.0;
  opts.zipf_theta = 0.99;
  WorkloadGenerator gen(opts, 5);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[gen.Next().id]++;
  // The hottest key must be dramatically more popular than the median.
  EXPECT_GT(counts["d0"], 2000);
}

TEST(WorkloadTest, UpdatesSplitMembershipVsState) {
  WorkloadOptions opts = SmallOptions();
  opts.read_weight = 0.0;
  opts.query_weight = 0.0;
  opts.update_weight = 1.0;
  opts.membership_change_fraction = 0.5;
  WorkloadGenerator gen(opts, 3);
  int membership = 0;
  int state = 0;
  for (int i = 0; i < 5000; ++i) {
    Operation op = gen.Next();
    ASSERT_EQ(op.type, OpType::kUpdate);
    ASSERT_EQ(op.update.actions().size(), 1u);
    if (op.update.actions()[0].op == db::UpdateOp::kSet) {
      EXPECT_EQ(op.update.actions()[0].path, "group");
      membership++;
    } else {
      EXPECT_EQ(op.update.actions()[0].op, db::UpdateOp::kInc);
      state++;
    }
  }
  EXPECT_NEAR(membership / 5000.0, 0.5, 0.05);
  EXPECT_NEAR(state / 5000.0, 0.5, 0.05);
}

TEST(WorkloadTest, MembershipUpdateChangesQueryResults) {
  SimulatedClock clock(0);
  db::Database db(&clock);
  WorkloadOptions opts = SmallOptions();
  WorkloadGenerator gen(opts, 1);
  gen.Load(&db);
  // Move d0 out of its initial group: that group's query shrinks, the
  // target group's query grows.
  const size_t from = gen.GroupOf(0);
  const size_t to = (from + 1) % 10;
  db::Update u;
  u.Set("group", db::Value(static_cast<int64_t>(to)));
  ASSERT_TRUE(db.Apply("t0", "d0", u).ok());
  EXPECT_EQ(db.Execute(gen.QueriesFor(0)[from]).size(), 9u);
  EXPECT_EQ(db.Execute(gen.QueriesFor(0)[to]).size(), 11u);
}

TEST(WorkloadTest, GroupPermutationIsBijective) {
  WorkloadGenerator gen(SmallOptions(), 1);
  std::vector<bool> seen(10, false);
  for (size_t d = 0; d < 10; ++d) {
    const size_t g = gen.GroupOf(d);
    ASSERT_LT(g, 10u);
    EXPECT_FALSE(seen[g]) << "group " << g << " assigned twice";
    seen[g] = true;
  }
  // Hot doc 0 must not land in the hot query's group (decorrelation).
  EXPECT_NE(gen.GroupOf(0), 0u);
}

TEST(WorkloadTest, InsertsGetFreshIds) {
  WorkloadOptions opts = SmallOptions();
  opts.read_weight = 0.0;
  opts.query_weight = 0.0;
  opts.update_weight = 0.0;
  opts.insert_weight = 1.0;
  WorkloadGenerator gen(opts, 1);
  Operation a = gen.Next();
  Operation b = gen.Next();
  EXPECT_EQ(a.type, OpType::kInsert);
  EXPECT_NE(a.id, b.id);
  EXPECT_TRUE(a.body.is_object());
}

TEST(WorkloadTest, DocSchemaHasQueryableFields) {
  WorkloadGenerator gen(SmallOptions(), 1);
  db::Value doc = gen.MakeDoc(0, 17);
  ASSERT_NE(doc.Find("group"), nullptr);
  EXPECT_EQ(doc.Find("group")->as_int(),
            static_cast<int64_t>(gen.GroupOf(17)));
  EXPECT_NE(doc.Find("title"), nullptr);
  EXPECT_NE(doc.Find("tags"), nullptr);
  EXPECT_TRUE(doc.Find("tags")->is_array());
}

}  // namespace
}  // namespace quaestor::workload
