#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "db/document.h"
#include "db/query.h"
#include "invalidb/cluster.h"
#include "invalidb/matching_node.h"
#include "invalidb/notification.h"
#include "invalidb/sorted_layer.h"

namespace quaestor::invalidb {
namespace {

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

db::ChangeEvent Change(const char* table, const char* id, const char* body,
                       Micros at = 0, bool deleted = false) {
  db::ChangeEvent ev;
  ev.kind = deleted ? db::WriteKind::kDelete : db::WriteKind::kUpdate;
  ev.after.table = table;
  ev.after.id = id;
  ev.after.body = Doc(body);
  ev.after.deleted = deleted;
  ev.after.write_time = at;
  ev.commit_time = at;
  return ev;
}

// ---------------------------------------------------------------------------
// MatchingNode — the add/change/remove lifecycle of Figure 5
// ---------------------------------------------------------------------------

TEST(MatchingNodeTest, Figure5Lifecycle) {
  MatchingNode node;
  db::Query q = Q("posts", R"({"tags":{"$contains":"example"}})");
  node.AddQuery(q, q.NormalizedKey(), {});

  std::vector<Notification> out;
  // New untagged post: not contained, no notification.
  node.Match(Change("posts", "p1", R"({"tags":[]})"), &out);
  EXPECT_TRUE(out.empty());

  // +'example': enters the result set → add.
  node.Match(Change("posts", "p1", R"({"tags":["example"]})"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kAdd);
  EXPECT_EQ(out[0].record_id, "p1");

  // +'music': still matches → change.
  out.clear();
  node.Match(Change("posts", "p1", R"({"tags":["example","music"]})"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kChange);

  // -'example': leaves the result set → remove.
  out.clear();
  node.Match(Change("posts", "p1", R"({"tags":["music"]})"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kRemove);

  // Further changes to a non-member: silence.
  out.clear();
  node.Match(Change("posts", "p1", R"({"tags":[]})"), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MatchingNodeTest, InitialResultSeedsMatchState) {
  MatchingNode node;
  db::Query q = Q("posts", R"({"g":1})");
  node.AddQuery(q, q.NormalizedKey(), {"p1"});
  std::vector<Notification> out;
  // p1 was a match; moving it out produces remove (not silence).
  node.Match(Change("posts", "p1", R"({"g":2})"), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kRemove);
}

TEST(MatchingNodeTest, DeleteOfMemberEmitsRemove) {
  MatchingNode node;
  db::Query q = Q("posts", R"({"g":1})");
  node.AddQuery(q, q.NormalizedKey(), {"p1"});
  std::vector<Notification> out;
  node.Match(Change("posts", "p1", R"({"g":1})", 0, /*deleted=*/true), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kRemove);
}

TEST(MatchingNodeTest, IgnoresOtherTables) {
  MatchingNode node;
  db::Query q = Q("posts", R"({"g":1})");
  node.AddQuery(q, q.NormalizedKey(), {});
  std::vector<Notification> out;
  node.Match(Change("users", "p1", R"({"g":1})"), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MatchingNodeTest, MultipleQueriesEachNotified) {
  MatchingNode node;
  db::Query q1 = Q("posts", R"({"g":1})");
  db::Query q2 = Q("posts", R"({"g":{"$lte":5}})");
  node.AddQuery(q1, q1.NormalizedKey(), {});
  node.AddQuery(q2, q2.NormalizedKey(), {});
  std::vector<Notification> out;
  node.Match(Change("posts", "p1", R"({"g":1})"), &out);
  EXPECT_EQ(out.size(), 2u);  // add for both
}

TEST(MatchingNodeTest, RemoveQueryStopsNotifications) {
  MatchingNode node;
  db::Query q = Q("posts", R"({"g":1})");
  node.AddQuery(q, q.NormalizedKey(), {});
  node.RemoveQuery(q.NormalizedKey());
  EXPECT_FALSE(node.HasQuery(q.NormalizedKey()));
  std::vector<Notification> out;
  node.Match(Change("posts", "p1", R"({"g":1})"), &out);
  EXPECT_TRUE(out.empty());
}

TEST(MatchingNodeTest, MatchSingleTargetsOneQuery) {
  MatchingNode node;
  db::Query q1 = Q("posts", R"({"g":1})");
  db::Query q2 = Q("posts", R"({"g":{"$gte":0}})");
  node.AddQuery(q1, q1.NormalizedKey(), {});
  node.AddQuery(q2, q2.NormalizedKey(), {});
  std::vector<Notification> out;
  node.MatchSingle(q1.NormalizedKey(), Change("posts", "p1", R"({"g":1})"),
                   &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query_key, q1.NormalizedKey());
}

// ---------------------------------------------------------------------------
// SortedLayer — windowed results (ORDER BY / LIMIT / OFFSET)
// ---------------------------------------------------------------------------

db::Document MakeDoc(const char* id, const char* body) {
  db::Document d;
  d.table = "posts";
  d.id = id;
  d.body = Doc(body);
  return d;
}

class SortedLayerTest : public ::testing::Test {
 protected:
  // Top-2 by descending score.
  SortedLayerTest() {
    query_ = Q("posts", "{}");
    query_.SetOrderBy({{"score", false}}).SetLimit(2);
    key_ = query_.NormalizedKey();
    layer_.AddQuery(query_, key_,
                    {MakeDoc("a", R"({"score":30})"),
                     MakeDoc("b", R"({"score":20})"),
                     MakeDoc("c", R"({"score":10})")});
  }

  db::Document DocFor(const char* id, int score) {
    return MakeDoc(id,
                   ("{\"score\":" + std::to_string(score) + "}").c_str());
  }

  db::Query query_;
  std::string key_;
  SortedLayer layer_;
};

TEST_F(SortedLayerTest, InitialWindow) {
  EXPECT_EQ(layer_.WindowIds(key_), (std::vector<std::string>{"a", "b"}));
}

TEST_F(SortedLayerTest, AddOutsideWindowIsSilent) {
  std::vector<Notification> out;
  db::Document d = DocFor("d", 5);  // below the window
  layer_.OnRawEvent(key_, NotificationType::kAdd, d, 0, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(layer_.WindowIds(key_), (std::vector<std::string>{"a", "b"}));
}

TEST_F(SortedLayerTest, AddIntoWindowEmitsAddAndRemove) {
  std::vector<Notification> out;
  db::Document d = DocFor("d", 25);  // lands at index 1; b leaves window
  layer_.OnRawEvent(key_, NotificationType::kAdd, d, 0, &out);
  ASSERT_EQ(out.size(), 2u);
  // Order: removes first, then adds.
  EXPECT_EQ(out[0].type, NotificationType::kRemove);
  EXPECT_EQ(out[0].record_id, "b");
  EXPECT_EQ(out[1].type, NotificationType::kAdd);
  EXPECT_EQ(out[1].record_id, "d");
  EXPECT_EQ(out[1].new_index, 1);
  EXPECT_EQ(layer_.WindowIds(key_), (std::vector<std::string>{"a", "d"}));
}

TEST_F(SortedLayerTest, RemoveFromWindowSlidesNextIn) {
  std::vector<Notification> out;
  db::Document d = DocFor("a", 30);
  layer_.OnRawEvent(key_, NotificationType::kRemove, d, 0, &out);
  // a leaves; b moves to index 0 (changeIndex); c slides in at index 1.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type, NotificationType::kRemove);
  EXPECT_EQ(out[0].record_id, "a");
  EXPECT_EQ(out[1].type, NotificationType::kChangeIndex);
  EXPECT_EQ(out[1].record_id, "b");
  EXPECT_EQ(out[1].new_index, 0);
  EXPECT_EQ(out[2].type, NotificationType::kAdd);
  EXPECT_EQ(out[2].record_id, "c");
  EXPECT_EQ(layer_.WindowIds(key_), (std::vector<std::string>{"b", "c"}));
}

TEST_F(SortedLayerTest, InPlaceChangeInsideWindow) {
  std::vector<Notification> out;
  db::Document d = DocFor("a", 35);  // still rank 0
  layer_.OnRawEvent(key_, NotificationType::kChange, d, 0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, NotificationType::kChange);
  EXPECT_EQ(out[0].record_id, "a");
}

TEST_F(SortedLayerTest, ScoreChangeReordersWindow) {
  std::vector<Notification> out;
  db::Document d = DocFor("b", 40);  // b overtakes a
  layer_.OnRawEvent(key_, NotificationType::kChange, d, 0, &out);
  // b: index 1→0, a: index 0→1, both changeIndex.
  ASSERT_EQ(out.size(), 2u);
  for (const Notification& n : out) {
    EXPECT_EQ(n.type, NotificationType::kChangeIndex);
  }
  EXPECT_EQ(layer_.WindowIds(key_), (std::vector<std::string>{"b", "a"}));
}

TEST_F(SortedLayerTest, OffsetWindow) {
  db::Query q = Q("posts", "{}");
  q.SetOrderBy({{"score", false}}).SetLimit(1).SetOffset(1);
  const std::string key = q.NormalizedKey();
  SortedLayer layer;
  layer.AddQuery(q, key,
                 {MakeDoc("a", R"({"score":30})"),
                  MakeDoc("b", R"({"score":20})")});
  EXPECT_EQ(layer.WindowIds(key), (std::vector<std::string>{"b"}));
  // A new top element shifts the offset window.
  std::vector<Notification> out;
  layer.OnRawEvent(key, NotificationType::kAdd,
                   MakeDoc("c", R"({"score":99})"), 0, &out);
  EXPECT_EQ(layer.WindowIds(key), (std::vector<std::string>{"a"}));
}

TEST_F(SortedLayerTest, RemoveQueryForgetsState) {
  layer_.RemoveQuery(key_);
  EXPECT_FALSE(layer_.Handles(key_));
  EXPECT_TRUE(layer_.WindowIds(key_).empty());
}

// ---------------------------------------------------------------------------
// InvalidbCluster — routing, subscription filtering, replay
// ---------------------------------------------------------------------------

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : clock_(0) {}

  void MakeCluster(InvalidbOptions options) {
    options.threaded = false;
    cluster_ = std::make_unique<InvalidbCluster>(
        &clock_, options, [this](const Notification& n) {
          std::lock_guard<std::mutex> lock(mu_);
          notifications_.push_back(n);
        });
  }

  std::vector<Notification> TakeNotifications() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Notification> out = std::move(notifications_);
    notifications_.clear();
    return out;
  }

  SimulatedClock clock_;
  std::unique_ptr<InvalidbCluster> cluster_;
  std::mutex mu_;
  std::vector<Notification> notifications_;
};

TEST_F(ClusterTest, SingleNodeEndToEnd) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsObjectList).ok());
  EXPECT_TRUE(cluster_->IsRegistered(q.NormalizedKey()));
  cluster_->OnChange(Change("posts", "p1", R"({"g":1})", 5));
  auto ns = TakeNotifications();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].type, NotificationType::kAdd);
  EXPECT_EQ(ns[0].event_time, 5);
}

TEST_F(ClusterTest, DuplicateRegistrationFails) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsIdList).ok());
  EXPECT_TRUE(
      cluster_->RegisterQuery(q, {}, kEventsIdList).IsAlreadyExists());
}

TEST_F(ClusterTest, SubscriptionMaskFiltersChangeEvents) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  // Id-list subscription: add/remove only.
  db::Document init = MakeDoc("p1", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {init}, kEventsIdList).ok());
  // In-place change: filtered.
  cluster_->OnChange(Change("posts", "p1", R"({"g":1,"views":5})"));
  EXPECT_TRUE(TakeNotifications().empty());
  // Membership change: delivered.
  cluster_->OnChange(Change("posts", "p1", R"({"g":2})"));
  auto ns = TakeNotifications();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].type, NotificationType::kRemove);
}

TEST_F(ClusterTest, DeregisteredQueryIsSilent) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsAll).ok());
  cluster_->DeregisterQuery(q.NormalizedKey());
  EXPECT_FALSE(cluster_->IsRegistered(q.NormalizedKey()));
  cluster_->OnChange(Change("posts", "p1", R"({"g":1})"));
  EXPECT_TRUE(TakeNotifications().empty());
}

TEST_F(ClusterTest, GridPartitioningDeliversExactlyOnce) {
  InvalidbOptions opts;
  opts.query_partitions = 3;
  opts.object_partitions = 3;
  MakeCluster(opts);
  EXPECT_EQ(cluster_->NumNodes(), 9u);
  // Register many queries; fire updates matching all of them; each
  // (query, update) pair must produce exactly one notification.
  std::vector<std::string> keys;
  for (int g = 0; g < 10; ++g) {
    db::Query q = Q("posts",
                    ("{\"g\":{\"$gte\":" + std::to_string(-1) + "}}").c_str());
    // Make each query distinct via a different threshold field.
    q = Q("posts", ("{\"n\":{\"$gte\":" + std::to_string(-g - 1) + "}}")
                       .c_str());
    ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsAll).ok());
    keys.push_back(q.NormalizedKey());
  }
  for (int i = 0; i < 20; ++i) {
    cluster_->OnChange(Change("posts", ("p" + std::to_string(i)).c_str(),
                              R"({"n":0})"));
  }
  auto ns = TakeNotifications();
  EXPECT_EQ(ns.size(), 10u * 20u);
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Notification& n : ns) {
    counts[{n.query_key, n.record_id}]++;
  }
  for (const auto& [pair, count] : counts) EXPECT_EQ(count, 1);
}

TEST_F(ClusterTest, ReplayClosesActivationRace) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  // The write arrives BEFORE the query is activated (between Quaestor's
  // initial evaluation and installation) — replay must catch it.
  cluster_->OnChange(Change("posts", "p1", R"({"g":1})", 3));
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsAll).ok());
  auto ns = TakeNotifications();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].type, NotificationType::kAdd);
  EXPECT_EQ(ns[0].record_id, "p1");
}

TEST_F(ClusterTest, ReplayDoesNotDuplicateInitialResult) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  // The initial evaluation already saw p1 (it is in the initial result);
  // replaying the same after-image must yield change, not add.
  cluster_->OnChange(Change("posts", "p1", R"({"g":1})", 3));
  db::Document init = MakeDoc("p1", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {init}, kEventsAll).ok());
  auto ns = TakeNotifications();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].type, NotificationType::kChange);
}

TEST_F(ClusterTest, StatefulQueryEmitsWindowEvents) {
  MakeCluster({});
  db::Query q = Q("posts", "{}");
  q.SetOrderBy({{"score", false}}).SetLimit(2);
  std::vector<db::Document> init = {MakeDoc("a", R"({"score":30})"),
                                    MakeDoc("b", R"({"score":20})"),
                                    MakeDoc("c", R"({"score":10})")};
  ASSERT_TRUE(cluster_->RegisterQuery(q, init, kEventsAll).ok());
  EXPECT_EQ(cluster_->SortedWindow(q.NormalizedKey()),
            (std::vector<std::string>{"a", "b"}));
  // A new high scorer enters the window.
  cluster_->OnChange(Change("posts", "d", R"({"score":99})"));
  auto ns = TakeNotifications();
  // remove b, add d at index 0, changeIndex a (0 → 1).
  ASSERT_EQ(ns.size(), 3u);
  EXPECT_EQ(ns[0].type, NotificationType::kRemove);
  EXPECT_EQ(ns[0].record_id, "b");
  EXPECT_EQ(ns[1].type, NotificationType::kAdd);
  EXPECT_EQ(ns[1].record_id, "d");
  EXPECT_EQ(ns[2].type, NotificationType::kChangeIndex);
  EXPECT_EQ(ns[2].record_id, "a");
  EXPECT_EQ(cluster_->SortedWindow(q.NormalizedKey()),
            (std::vector<std::string>{"d", "a"}));
}

TEST_F(ClusterTest, StatefulChangeIndexFiltered) {
  MakeCluster({});
  db::Query q = Q("posts", "{}");
  q.SetOrderBy({{"score", false}}).SetLimit(2);
  std::vector<db::Document> init = {MakeDoc("a", R"({"score":30})"),
                                    MakeDoc("b", R"({"score":20})")};
  // Subscribe without changeIndex.
  ASSERT_TRUE(cluster_->RegisterQuery(q, init, kEventsIdList).ok());
  cluster_->OnChange(Change("posts", "b", R"({"score":50})"));
  // The reorder yields only changeIndex events → filtered out.
  EXPECT_TRUE(TakeNotifications().empty());
}

TEST_F(ClusterTest, StatsCountMatchChecks) {
  MakeCluster({});
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsAll).ok());
  // Non-candidate changes: the query index rules them out without a single
  // predicate evaluation, while the pre-index cost shows up as "naive".
  cluster_->OnChange(Change("posts", "p1", R"({"g":9})"));
  cluster_->OnChange(Change("posts", "p2", R"({"g":9})"));
  ClusterStats stats = cluster_->stats();
  EXPECT_EQ(stats.changes_ingested, 2u);
  EXPECT_EQ(stats.match_checks, 0u);
  EXPECT_EQ(stats.match_checks_naive, 2u);
  EXPECT_EQ(stats.notifications_delivered, 0u);
  // A matching change is a candidate and gets evaluated.
  cluster_->OnChange(Change("posts", "p3", R"({"g":1})"));
  stats = cluster_->stats();
  EXPECT_EQ(stats.match_checks, 1u);
  EXPECT_EQ(stats.match_checks_naive, 3u);
  EXPECT_EQ(stats.index_candidates, 1u);
  EXPECT_EQ(stats.notifications_delivered, 1u);
}

TEST_F(ClusterTest, BruteForceModeMatchesEveryQuery) {
  InvalidbOptions opts;
  opts.indexed_matching = false;
  MakeCluster(opts);
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster_->RegisterQuery(q, {}, kEventsAll).ok());
  cluster_->OnChange(Change("posts", "p1", R"({"g":9})"));
  cluster_->OnChange(Change("posts", "p2", R"({"g":1})"));
  const ClusterStats stats = cluster_->stats();
  EXPECT_EQ(stats.match_checks, 2u);
  EXPECT_EQ(stats.match_checks_naive, 2u);
  EXPECT_EQ(stats.notifications_delivered, 1u);
}

// ---------------------------------------------------------------------------
// Threaded mode
// ---------------------------------------------------------------------------

TEST(ClusterThreadedTest, DeliversAllNotifications) {
  SystemClock* clock = SystemClock::Default();
  InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  opts.threaded = true;
  std::atomic<int> count{0};
  InvalidbCluster cluster(clock, opts,
                          [&](const Notification&) { count++; });
  db::Query q = Q("posts", R"({"g":{"$gte":0}})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll).ok());
  cluster.Flush();
  constexpr int kChanges = 500;
  for (int i = 0; i < kChanges; ++i) {
    cluster.OnChange(Change("posts", ("p" + std::to_string(i)).c_str(),
                            R"({"g":1})"));
  }
  cluster.Flush();
  EXPECT_EQ(count.load(), kChanges);
  EXPECT_EQ(cluster.stats().notifications_delivered,
            static_cast<uint64_t>(kChanges));
  EXPECT_GT(cluster.LatencyHistogram().count(), 0u);
}

TEST(ClusterThreadedTest, ShutdownWithPendingWorkIsClean) {
  SystemClock* clock = SystemClock::Default();
  InvalidbOptions opts;
  opts.threaded = true;
  std::atomic<int> count{0};
  auto cluster = std::make_unique<InvalidbCluster>(
      clock, opts, [&](const Notification&) { count++; });
  db::Query q = Q("posts", R"({"g":1})");
  ASSERT_TRUE(cluster->RegisterQuery(q, {}, kEventsAll).ok());
  for (int i = 0; i < 100; ++i) {
    cluster->OnChange(Change("posts", "p", R"({"g":1})"));
  }
  cluster.reset();  // must not hang or crash
  SUCCEED();
}

}  // namespace
}  // namespace quaestor::invalidb

namespace quaestor::invalidb {
namespace {

// ---------------------------------------------------------------------------
// Additional routing / buffering coverage
// ---------------------------------------------------------------------------

TEST(ClusterRoutingTest, ObjectPartitionRowsShareQueryState) {
  // With multiple object partitions, one query's result set is split
  // across rows; membership transitions must still be exact when a record
  // "moves" between states (each record is always owned by one row).
  SimulatedClock clock(0);
  InvalidbOptions opts;
  opts.query_partitions = 1;
  opts.object_partitions = 4;
  std::vector<Notification> ns;
  InvalidbCluster cluster(&clock, opts,
                          [&](const Notification& n) { ns.push_back(n); });
  db::Query q = db::Query::ParseJson("t", R"({"g":1})").value();
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll).ok());

  // 40 records enter, then leave, the result set.
  for (int i = 0; i < 40; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "t";
    ev.after.id = "d" + std::to_string(i);
    ev.after.body = db::Value::FromJson(R"({"g":1})").value();
    cluster.OnChange(ev);
  }
  for (int i = 0; i < 40; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "t";
    ev.after.id = "d" + std::to_string(i);
    ev.after.body = db::Value::FromJson(R"({"g":2})").value();
    cluster.OnChange(ev);
  }
  ASSERT_EQ(ns.size(), 80u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(ns[i].type, NotificationType::kAdd);
  }
  for (size_t i = 40; i < 80; ++i) {
    EXPECT_EQ(ns[i].type, NotificationType::kRemove);
  }
  // Work was actually spread over the rows.
  const auto ops = cluster.OpsPerNode();
  int busy_nodes = 0;
  for (uint64_t n : ops) {
    if (n > 0) busy_nodes++;
  }
  EXPECT_GT(busy_nodes, 1);
}

TEST(ClusterRoutingTest, ReplayBufferIsBounded) {
  SimulatedClock clock(0);
  InvalidbOptions opts;
  opts.replay_buffer_size = 4;
  std::vector<Notification> ns;
  InvalidbCluster cluster(&clock, opts,
                          [&](const Notification& n) { ns.push_back(n); });
  // 10 events before any query exists; only the last 4 are replayable.
  for (int i = 0; i < 10; ++i) {
    db::ChangeEvent ev;
    ev.kind = db::WriteKind::kUpdate;
    ev.after.table = "t";
    ev.after.id = "d" + std::to_string(i);
    ev.after.body = db::Value::FromJson(R"({"g":1})").value();
    ev.commit_time = 100 + i;  // all in the "future" wrt evaluated_at=0
    cluster.OnChange(ev);
  }
  db::Query q = db::Query::ParseJson("t", R"({"g":1})").value();
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll, /*evaluated_at=*/0)
                  .ok());
  EXPECT_EQ(ns.size(), 4u);  // d6..d9 replayed
  EXPECT_EQ(ns[0].record_id, "d6");
}

TEST(ClusterRoutingTest, ReplaySkipsEventsBeforeEvaluation) {
  SimulatedClock clock(1000);
  InvalidbOptions opts;
  std::vector<Notification> ns;
  InvalidbCluster cluster(&clock, opts,
                          [&](const Notification& n) { ns.push_back(n); });
  db::ChangeEvent before;
  before.kind = db::WriteKind::kUpdate;
  before.after.table = "t";
  before.after.id = "old";
  before.after.body = db::Value::FromJson(R"({"g":1})").value();
  before.commit_time = 500;  // before the evaluation snapshot
  cluster.OnChange(before);
  db::ChangeEvent after = before;
  after.after.id = "new";
  after.commit_time = 900;  // after the evaluation snapshot
  cluster.OnChange(after);

  db::Query q = db::Query::ParseJson("t", R"({"g":1})").value();
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll, /*evaluated_at=*/600)
                  .ok());
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].record_id, "new");
}

// ---------------------------------------------------------------------------
// Resize — compact unit cases (the chaos/equivalence properties live in
// rebalance_test.cc and matching_equivalence_test.cc)
// ---------------------------------------------------------------------------

TEST(ClusterResizeTest, HandoffCarriesMembershipToNewShape) {
  SimulatedClock clock(0);
  InvalidbOptions opts;  // 1x1
  std::vector<Notification> ns;
  InvalidbCluster cluster(&clock, opts,
                          [&](const Notification& n) { ns.push_back(n); });
  db::Query q = Q("t", R"({"g":1})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll).ok());
  cluster.OnChange(Change("t", "a", R"({"g":1})", 10));
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(ns[0].type, NotificationType::kAdd);

  EXPECT_EQ(cluster.Resize(3, 2), 1u);
  EXPECT_EQ(cluster.NumNodes(), 6u);
  EXPECT_TRUE(cluster.IsRegistered(q.NormalizedKey()));

  // Membership carried over: leaving the result emits a remove, not a
  // spurious re-add.
  cluster.OnChange(Change("t", "a", R"({"g":2})", 20));
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[1].type, NotificationType::kRemove);
  EXPECT_EQ(cluster.stats().rebalance_resizes, 1u);
  EXPECT_EQ(cluster.stats().rebalance_nodes_added, 5u);
}

TEST(ClusterResizeTest, ZeroPartitionsClampToOne) {
  SimulatedClock clock(0);
  InvalidbOptions opts;
  opts.query_partitions = 2;
  opts.object_partitions = 2;
  InvalidbCluster cluster(&clock, opts, [](const Notification&) {});
  EXPECT_EQ(cluster.Resize(0, 0), 0u);
  EXPECT_EQ(cluster.NumNodes(), 1u);
}

TEST(ClusterResizeTest, DrainedEventsNeverReplayEvenIfClockLags) {
  // Stream commit_times run far ahead of the cluster clock; a resize must
  // still not re-deliver events the old grid already matched.
  SimulatedClock clock(0);
  InvalidbOptions opts;
  std::vector<Notification> ns;
  InvalidbCluster cluster(&clock, opts,
                          [&](const Notification& n) { ns.push_back(n); });
  db::Query q = Q("t", R"({"g":1})");
  ASSERT_TRUE(cluster.RegisterQuery(q, {}, kEventsAll).ok());
  cluster.OnChange(Change("t", "a", R"({"g":1})", /*at=*/1000000));
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_EQ(cluster.Resize(2, 2), 1u);
  EXPECT_EQ(ns.size(), 1u) << "drained event replayed as a duplicate";
}

TEST(ClusterResizeTest, MigrationPauseIsRecorded) {
  SimulatedClock clock(0);
  InvalidbOptions opts;
  InvalidbCluster cluster(&clock, opts, [](const Notification&) {});
  EXPECT_EQ(cluster.MigrationPauseHistogram().count(), 0u);
  cluster.Resize(2, 1);
  cluster.Resize(1, 2);
  EXPECT_EQ(cluster.MigrationPauseHistogram().count(), 2u);
  EXPECT_EQ(cluster.stats().rebalance_resizes, 2u);
}

}  // namespace
}  // namespace quaestor::invalidb
