#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ebf/bloom_filter.h"

namespace quaestor::ebf {
namespace {

TEST(BitVectorTest, SetTestClear) {
  BitVector bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_FALSE(bits.Test(5));
  bits.Set(5);
  EXPECT_TRUE(bits.Test(5));
  bits.Clear(5);
  EXPECT_FALSE(bits.Test(5));
}

TEST(BitVectorTest, WordBoundaries) {
  BitVector bits(130);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_EQ(bits.PopCount(), 3u);
}

TEST(BitVectorTest, UnionWith) {
  BitVector a(64);
  BitVector b(64);
  a.Set(1);
  b.Set(2);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_FALSE(b.Test(1));  // b unchanged
}

TEST(BitVectorTest, ResetClearsAll) {
  BitVector bits(64);
  bits.Set(0);
  bits.Set(63);
  bits.Reset();
  EXPECT_EQ(bits.PopCount(), 0u);
}

TEST(BitVectorTest, ByteSize) {
  EXPECT_EQ(BitVector(8).ByteSize(), 1u);
  EXPECT_EQ(BitVector(9).ByteSize(), 2u);
  EXPECT_EQ(BitVector(116800).ByteSize(), 14600u);  // the paper's 14.6 KB
}

// ---------------------------------------------------------------------------
// BloomParams math
// ---------------------------------------------------------------------------

TEST(BloomParamsTest, PaperConfigurationHasSixPercentFpr) {
  // §3.3: m = 10 × 1460 B = 116,800 bits holds 20,000 stale queries at
  // ~6% false positives.
  const double fpr = BloomParams::FalsePositiveRate(116800, 20000, 4);
  EXPECT_NEAR(fpr, 0.06, 0.005);
}

TEST(BloomParamsTest, OptimalHashes) {
  // k = (m/n) ln 2 ≈ 4.05 for the paper's sizing.
  EXPECT_EQ(BloomParams::OptimalNumHashes(116800, 20000), 4u);
  EXPECT_EQ(BloomParams::OptimalNumHashes(1000, 0), 1u);
  EXPECT_GE(BloomParams::OptimalNumHashes(10000, 100), 1u);
}

TEST(BloomParamsTest, ForCapacityMeetsTarget) {
  const BloomParams p = BloomParams::ForCapacity(10000, 0.01);
  const double fpr =
      BloomParams::FalsePositiveRate(p.num_bits, 10000, p.num_hashes);
  EXPECT_LE(fpr, 0.015);
}

TEST(BloomParamsTest, FprMonotonicInLoad) {
  const double f1 = BloomParams::FalsePositiveRate(10000, 100, 4);
  const double f2 = BloomParams::FalsePositiveRate(10000, 1000, 4);
  const double f3 = BloomParams::FalsePositiveRate(10000, 5000, 4);
  EXPECT_LT(f1, f2);
  EXPECT_LT(f2, f3);
}

// ---------------------------------------------------------------------------
// BloomFilter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf;
  for (int i = 0; i < 1000; ++i) bf.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bf.MaybeContains("key" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, EmptyContainsNothing) {
  BloomFilter bf;
  EXPECT_FALSE(bf.MaybeContains("anything"));
  EXPECT_DOUBLE_EQ(bf.FillRatio(), 0.0);
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  BloomParams params;
  params.num_bits = 116800;
  params.num_hashes = 4;
  BloomFilter bf(params);
  constexpr int kInserted = 20000;
  for (int i = 0; i < kInserted; ++i) bf.Add("in" + std::to_string(i));
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (bf.MaybeContains("out" + std::to_string(i))) ++false_positives;
  }
  const double measured =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  EXPECT_NEAR(measured, 0.06, 0.015);  // the paper's ~6%
  EXPECT_NEAR(bf.EstimatedFpr(), measured, 0.02);
}

TEST(BloomFilterTest, ClearEmpties) {
  BloomFilter bf;
  bf.Add("x");
  bf.Clear();
  EXPECT_FALSE(bf.MaybeContains("x"));
}

TEST(BloomFilterTest, UnionIsSuperset) {
  BloomFilter a;
  BloomFilter b;
  a.Add("only-a");
  b.Add("only-b");
  a.UnionWith(b);
  EXPECT_TRUE(a.MaybeContains("only-a"));
  EXPECT_TRUE(a.MaybeContains("only-b"));
}

TEST(BloomFilterTest, DefaultIsOneTcpWindow) {
  BloomFilter bf;
  EXPECT_EQ(bf.ByteSize(), 14600u);
}

// ---------------------------------------------------------------------------
// CountingBloomFilter
// ---------------------------------------------------------------------------

TEST(CountingBloomTest, AddRemoveRestoresAbsence) {
  CountingBloomFilter cbf;
  cbf.Add("key");
  EXPECT_TRUE(cbf.MaybeContains("key"));
  cbf.Remove("key");
  EXPECT_FALSE(cbf.MaybeContains("key"));
}

TEST(CountingBloomTest, DoubleAddNeedsDoubleRemove) {
  CountingBloomFilter cbf;
  cbf.Add("key");
  cbf.Add("key");
  cbf.Remove("key");
  EXPECT_TRUE(cbf.MaybeContains("key"));
  cbf.Remove("key");
  EXPECT_FALSE(cbf.MaybeContains("key"));
}

TEST(CountingBloomTest, RemoveOfSharedBitsKeepsOtherKeys) {
  CountingBloomFilter cbf;
  for (int i = 0; i < 500; ++i) cbf.Add("k" + std::to_string(i));
  cbf.Remove("k0");
  // All remaining keys must still be present (counters prevent the
  // clear-on-shared-bit bug of plain bitmaps).
  for (int i = 1; i < 500; ++i) {
    EXPECT_TRUE(cbf.MaybeContains("k" + std::to_string(i))) << i;
  }
}

TEST(CountingBloomTest, RemoveAbsentIsSafe) {
  CountingBloomFilter cbf;
  cbf.Add("a");
  cbf.Remove("never-added");  // underflow guard: counters stay sane
  EXPECT_TRUE(cbf.MaybeContains("a"));
}

TEST(CountingBloomTest, BitTransitionCallbacks) {
  CountingBloomFilter cbf;
  int sets = 0;
  int clears = 0;
  cbf.Add("key", [&](size_t) { sets++; });
  EXPECT_EQ(sets, static_cast<int>(cbf.params().num_hashes));
  cbf.Add("key", [&](size_t) { sets++; });  // counters 1→2: no new bits
  EXPECT_EQ(sets, static_cast<int>(cbf.params().num_hashes));
  cbf.Remove("key", [&](size_t) { clears++; });
  EXPECT_EQ(clears, 0);  // counters 2→1
  cbf.Remove("key", [&](size_t) { clears++; });
  EXPECT_EQ(clears, static_cast<int>(cbf.params().num_hashes));
}

TEST(CountingBloomTest, ToBloomFilterMatchesMembership) {
  CountingBloomFilter cbf;
  for (int i = 0; i < 100; ++i) cbf.Add("k" + std::to_string(i));
  BloomFilter flat = cbf.ToBloomFilter();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(flat.MaybeContains("k" + std::to_string(i)));
  }
  EXPECT_EQ(flat.MaybeContains("absent-key-xyz"),
            cbf.MaybeContains("absent-key-xyz"));
}

// Property sweep: flat filter maintained via callbacks equals rebuild.
class CountingBloomSweep : public ::testing::TestWithParam<int> {};

TEST_P(CountingBloomSweep, IncrementalFlatEqualsRebuilt) {
  const int n = GetParam();
  BloomParams params;
  params.num_bits = 4096;
  params.num_hashes = 3;
  CountingBloomFilter cbf(params);
  BloomFilter incremental(params);
  // Add n keys, remove every third one.
  for (int i = 0; i < n; ++i) {
    cbf.Add("k" + std::to_string(i),
            [&](size_t pos) { incremental.SetBit(pos); });
  }
  for (int i = 0; i < n; i += 3) {
    cbf.Remove("k" + std::to_string(i),
               [&](size_t pos) { incremental.ClearBit(pos); });
  }
  EXPECT_TRUE(incremental.bits() == cbf.ToBloomFilter().bits());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CountingBloomSweep,
                         ::testing::Values(1, 10, 100, 500, 2000));

}  // namespace
}  // namespace quaestor::ebf
