// End-to-end integration scenarios across the full Quaestor stack:
// client SDK → web caches → server → InvaliDB → EBF → back to clients.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "core/server.h"
#include "db/database.h"
#include "webcache/web_cache.h"

namespace quaestor {
namespace {

constexpr Micros kSecond = kMicrosPerSecond;

db::Value Doc(const char* json) {
  auto v = db::Value::FromJson(json);
  EXPECT_TRUE(v.ok());
  return v.value();
}

db::Query Q(const char* table, const char* filter) {
  auto q = db::Query::ParseJson(table, filter);
  EXPECT_TRUE(q.ok());
  return q.value();
}

/// A full single-CDN deployment with N independent browser sessions.
class Deployment {
 public:
  Deployment(SimulatedClock* clock, size_t num_clients,
             client::ClientOptions copts = client::ClientOptions(),
             core::ServerOptions sopts = core::ServerOptions()) {
    clock_ = clock;
    db_ = std::make_unique<db::Database>(clock);
    server_ = std::make_unique<core::QuaestorServer>(clock, db_.get(), sopts);
    cdn_ = std::make_unique<webcache::InvalidationCache>(clock);
    server_->AddPurgeTarget(
        [this](const std::string& key) { cdn_->Purge(key); });
    for (size_t i = 0; i < num_clients; ++i) {
      caches_.push_back(std::make_unique<webcache::ExpirationCache>(clock));
      clients_.push_back(std::make_unique<client::QuaestorClient>(
          clock, server_.get(), caches_.back().get(), cdn_.get(), copts));
      clients_.back()->Connect();
    }
  }

  client::QuaestorClient& client(size_t i) { return *clients_[i]; }
  core::QuaestorServer& server() { return *server_; }
  db::Database& db() { return *db_; }
  webcache::InvalidationCache& cdn() { return *cdn_; }

 private:
  SimulatedClock* clock_;
  std::unique_ptr<db::Database> db_;
  std::unique_ptr<core::QuaestorServer> server_;
  std::unique_ptr<webcache::InvalidationCache> cdn_;
  std::vector<std::unique_ptr<webcache::ExpirationCache>> caches_;
  std::vector<std::unique_ptr<client::QuaestorClient>> clients_;
};

// ---------------------------------------------------------------------------
// The paper's running example (§1): a social blogging application.
// ---------------------------------------------------------------------------

TEST(IntegrationTest, SocialBlogExampleFigure7) {
  SimulatedClock clock(0);
  Deployment dep(&clock, 2);
  client::QuaestorClient& writer = dep.client(0);
  client::QuaestorClient& reader = dep.client(1);

  // Posts tagged 'example'.
  ASSERT_TRUE(writer
                  .Insert("posts", "p1",
                          Doc(R"({"title":"First","tags":["example"]})"))
                  .ok());
  ASSERT_TRUE(writer
                  .Insert("posts", "p2",
                          Doc(R"({"title":"Second","tags":["other"]})"))
                  .ok());

  db::Query q = Q("posts", R"({"tags":{"$contains":"example"}})");

  // Reader's first query: origin miss, caches warm up.
  client::QueryResult r1 = reader.ExecuteQuery(q);
  ASSERT_TRUE(r1.status.ok());
  EXPECT_EQ(r1.ids, std::vector<std::string>{"posts/p1"});
  EXPECT_EQ(r1.outcome.served_by, webcache::ServedBy::kOrigin);

  // Second read: client cache hit — zero latency.
  client::QueryResult r2 = reader.ExecuteQuery(q);
  EXPECT_EQ(r2.outcome.served_by, webcache::ServedBy::kClientCache);

  // p2 gains the 'example' tag → InvaliDB detects the add → CDN purged,
  // EBF flags the query.
  clock.Advance(1 * kSecond);
  db::Update u;
  u.Push("tags", db::Value("example"));
  ASSERT_TRUE(writer.Update("posts", "p2", u).ok());
  EXPECT_TRUE(dep.server().ebf().IsStale(q.NormalizedKey()));

  // Reader still has an EBF from connect time; refreshing it reveals the
  // staleness and the next query revalidates, returning both posts.
  reader.RefreshEbf();
  client::QueryResult r3 = reader.ExecuteQuery(q);
  ASSERT_TRUE(r3.status.ok());
  EXPECT_TRUE(r3.outcome.revalidated);
  EXPECT_EQ(r3.ids,
            (std::vector<std::string>{"posts/p1", "posts/p2"}));
}

// ---------------------------------------------------------------------------
// Bounded staleness across many clients
// ---------------------------------------------------------------------------

class BoundedStalenessTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundedStalenessTest, NoReadOlderThanDeltaAfterRefresh) {
  // Property (Theorem 1): with refresh interval ∆, a client that refreshed
  // its EBF at time t sees no data that was stale before t.
  const int delta_s = GetParam();
  SimulatedClock clock(0);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = delta_s * kSecond;
  Deployment dep(&clock, 3);
  client::QuaestorClient& writer = dep.client(0);

  ASSERT_TRUE(writer.Insert("t", "x", Doc(R"({"v":0})")).ok());

  // All readers cache v0.
  for (int c = 1; c <= 2; ++c) {
    auto r = dep.client(c).Read("t", "x");
    ASSERT_TRUE(r.status.ok());
  }

  // Writer bumps v repeatedly; after each write, once ∆ passes, every
  // reader must observe a version at least as new as the write.
  for (int round = 1; round <= 5; ++round) {
    db::Update u;
    u.Set("v", db::Value(round));
    ASSERT_TRUE(writer.Update("t", "x", u).ok());
    const uint64_t version_floor = dep.db().Get("t", "x")->version;

    clock.Advance(static_cast<Micros>(delta_s + 1) * kSecond);
    for (int c = 1; c <= 2; ++c) {
      // The client-side policy refreshes the EBF on this read because ∆
      // has elapsed; the read must be fresh.
      auto r = dep.client(c).Read("t", "x");
      ASSERT_TRUE(r.status.ok());
      EXPECT_GE(r.version, version_floor)
          << "client " << c << " round " << round << " delta " << delta_s;
      EXPECT_EQ(r.doc.Find("v")->as_int(), round);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, BoundedStalenessTest,
                         ::testing::Values(1, 5, 30));

// ---------------------------------------------------------------------------
// CDN coherence through purges
// ---------------------------------------------------------------------------

TEST(IntegrationTest, CdnPurgeKeepsSecondClientFresh) {
  SimulatedClock clock(0);
  Deployment dep(&clock, 2);
  ASSERT_TRUE(dep.client(0).Insert("t", "x", Doc(R"({"v":1})")).ok());

  // Client 1 warms the CDN.
  (void)dep.client(1).Read("t", "x");
  // Writer updates → purge (synchronous in this deployment).
  db::Update u;
  u.Set("v", db::Value(2));
  ASSERT_TRUE(dep.client(0).Update("t", "x", u).ok());

  // A brand-new client (empty browser cache) reads through the CDN: the
  // purge means it cannot see v1.
  webcache::ExpirationCache fresh_cache(&clock);
  client::QuaestorClient fresh(&clock, &dep.server(), &fresh_cache,
                               &dep.cdn(), client::ClientOptions());
  fresh.Connect();
  auto r = fresh.Read("t", "x");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.doc.Find("v")->as_int(), 2);
}

// ---------------------------------------------------------------------------
// Query caching correctness under mixed workload churn
// ---------------------------------------------------------------------------

TEST(IntegrationTest, RepeatedChurnConvergesAfterRefresh) {
  SimulatedClock clock(0);
  client::ClientOptions copts;
  copts.ebf_refresh_interval = 2 * kSecond;
  Deployment dep(&clock, 2, copts);
  client::QuaestorClient& writer = dep.client(0);
  client::QuaestorClient& reader = dep.client(1);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(writer
                    .Insert("t", "d" + std::to_string(i),
                            Doc(i < 5 ? R"({"g":1})" : R"({"g":2})"))
                    .ok());
  }
  db::Query q = Q("t", R"({"g":1})");

  for (int round = 0; round < 8; ++round) {
    // Move one document between groups each round.
    db::Update u;
    u.Set("g", db::Value(round % 2 == 0 ? 2 : 1));
    ASSERT_TRUE(writer.Update("t", "d0", u).ok());
    clock.Advance(3 * kSecond);  // > ∆ → reader refreshes on next query

    client::QueryResult qr = reader.ExecuteQuery(q);
    ASSERT_TRUE(qr.status.ok());
    // Ground truth from the database.
    const size_t truth = dep.db().Execute(q).size();
    EXPECT_EQ(qr.ids.size(), truth) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Server stats sanity across a busy session
// ---------------------------------------------------------------------------

TEST(IntegrationTest, StatsConsistency) {
  SimulatedClock clock(0);
  Deployment dep(&clock, 1);
  client::QuaestorClient& c = dep.client(0);
  ASSERT_TRUE(c.Insert("t", "1", Doc(R"({"g":1})")).ok());
  db::Query q = Q("t", R"({"g":1})");
  (void)c.ExecuteQuery(q);
  (void)c.ExecuteQuery(q);  // cache hit — no server-side query read
  db::Update u;
  u.Set("g", db::Value(2));
  ASSERT_TRUE(c.Update("t", "1", u).ok());

  const core::ServerStats s = dep.server().stats();
  EXPECT_EQ(s.writes, 2u);               // insert + update
  EXPECT_EQ(s.query_reads, 1u);          // only the miss reached the origin
  EXPECT_GE(s.query_invalidations, 1u);  // the update removed the match
}

}  // namespace
}  // namespace quaestor
